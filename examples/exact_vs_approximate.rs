//! The paper's §I motivation, dramatized: exact subgraph matching
//! "often fails to produce useful results" on noisy data, approximate
//! matching keeps working.
//!
//! A clean pathway module is planted in a database graph, then the
//! database copy is corrupted with the noise real PIN data exhibits
//! (missing interactions, spurious edges, a lost protein). The exact
//! pipeline (GraphGrep-style path filter + Ullmann verification) and
//! TALE both search for the clean module.
//!
//! ```text
//! cargo run --release --example exact_vs_approximate
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tale::{QueryOptions, TaleDatabase, TaleParams};
use tale_baselines::pathindex::PathIndex;
use tale_graph::generate::{gnm, mutate, MutationRates};
use tale_graph::GraphDb;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(2008);
    let labels = 8u32;

    // the module a biologist is looking for
    let module = gnm(&mut rng, 14, 24, labels);

    // database graph: the module embedded in a larger network...
    let mut clean_host = module.clone();
    let extra = gnm(&mut rng, 60, 110, labels);
    let offset = clean_host.node_count() as u32;
    for n in extra.nodes() {
        clean_host.add_node(extra.label(n));
    }
    for (u, v, _) in extra.edges() {
        clean_host
            .add_edge(
                tale_graph::NodeId(offset + u.0),
                tale_graph::NodeId(offset + v.0),
            )
            .unwrap();
    }
    // ...then corrupted the way high-throughput data is (§I: false
    // positives, missing interactions)
    let noise = MutationRates {
        node_delete: 0.05,
        node_insert: 0.05,
        edge_delete: 0.10,
        edge_insert: 0.10,
        relabel: 0.0,
    };
    let (noisy_host, _) = mutate(&mut rng, &clean_host, &noise, labels);

    println!(
        "module: {} nodes / {} edges; database graph: {} nodes / {} edges (noisy)",
        module.node_count(),
        module.edge_count(),
        noisy_host.node_count(),
        noisy_host.edge_count()
    );

    // --- exact pipeline ---
    let t0 = std::time::Instant::now();
    let pidx = PathIndex::build(vec![clean_host.clone(), noisy_host.clone()], 3);
    let exact = pidx.exact_matches(&module);
    println!(
        "\nexact (path filter + Ullmann), {:.0} ms:",
        t0.elapsed().as_secs_f64() * 1e3
    );
    println!("  clean host contains module : {}", exact.contains(&0));
    println!("  noisy host contains module : {}", exact.contains(&1));

    // --- TALE ---
    let mut db = GraphDb::new();
    for i in 0..labels {
        db.intern_node_label(&format!("L{i}"));
    }
    db.insert("clean", clean_host);
    db.insert("noisy", noisy_host);
    let tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).expect("build");
    let opts = QueryOptions {
        rho: 0.25,
        p_imp: 0.4,
        ..QueryOptions::default()
    };
    let t0 = std::time::Instant::now();
    let res = tale.query(&module, &opts).expect("query");
    println!(
        "\nTALE (approximate, rho = 25%), {:.0} ms:",
        t0.elapsed().as_secs_f64() * 1e3
    );
    for r in &res {
        println!(
            "  {}: {}/{} module nodes recovered, {}/{} interactions",
            r.graph_name,
            r.matched_nodes,
            module.node_count(),
            r.matched_edges,
            module.edge_count()
        );
    }

    let noisy_hit = res.iter().find(|r| r.graph_name == "noisy");
    match noisy_hit {
        Some(r) if r.matched_nodes * 10 >= module.node_count() * 7 => {
            println!(
                "\n=> exact matching lost the corrupted module ({}), TALE still \
                 recovered {} of {} nodes — the gap the paper exists to close.",
                if exact.contains(&1) {
                    "unexpectedly found!"
                } else {
                    "as expected"
                },
                r.matched_nodes,
                module.node_count()
            );
        }
        _ => println!("\n=> unexpected: TALE failed on the noisy host too"),
    }
}
