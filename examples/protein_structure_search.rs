//! Protein-structure family retrieval — the paper's §VI-B.2 scenario
//! (Fig. 5) on synthetic ASTRAL-like contact graphs.
//!
//! Generates structural families of domain contact graphs, indexes them
//! with the paper's ASTRAL settings (`Sbit = 32, ρ = 25%, Pimp = 25%`),
//! then retrieves each query's family and reports precision/recall for
//! TALE and the C-Tree baseline.
//!
//! ```text
//! cargo run --release --example protein_structure_search [families]
//! ```

use std::sync::Arc;
use std::time::Instant;
use tale::{CTreeStyle, QueryOptions, TaleDatabase, TaleParams};
use tale_baselines::ctree::{CTree, CTreeConfig};
use tale_datasets::contact::{ContactDataset, ContactSpec};
use tale_datasets::metrics::precision_recall_curve;

fn main() {
    let families: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40);
    let spec = ContactSpec {
        families,
        domains_per_family: 10,
        mean_nodes: 120.0,
        mean_edges: 460.0,
    };
    println!(
        "generating {} contact graphs ({} families × 10 domains)...",
        families * 10,
        families
    );
    let ds = ContactDataset::generate(11, &spec);

    let t0 = Instant::now();
    let tale = TaleDatabase::build_in_temp(ds.db.clone(), &TaleParams::astral()).expect("build");
    println!("NH-Index built in {:.2}s", t0.elapsed().as_secs_f64());

    let t0 = Instant::now();
    let ctree = CTree::build(
        CTreeConfig::default(),
        ds.db.iter().map(|(_, _, g)| g.clone()).collect::<Vec<_>>(),
    );
    println!(
        "C-Tree built in {:.2}s (memory-resident, ~{} KiB)",
        t0.elapsed().as_secs_f64(),
        ctree.approx_memory_bytes() / 1024
    );

    let queries = ds.pick_queries(3, 10);
    let k = 15;
    let opts = QueryOptions::astral()
        .with_top_k(k)
        .with_similarity(Arc::new(CTreeStyle));

    let mut tale_flags = Vec::new();
    let mut ctree_flags = Vec::new();
    let (mut tale_time, mut ctree_time) = (0.0, 0.0);
    for &q in &queries {
        let qg = ds.db.graph(q);
        let fam = ds.family(q);

        let t0 = Instant::now();
        let res = tale.query(qg, &opts).expect("query");
        tale_time += t0.elapsed().as_secs_f64();
        tale_flags.push(
            res.iter()
                .filter(|r| r.graph != q)
                .map(|r| ds.family(r.graph) == fam)
                .collect::<Vec<bool>>(),
        );

        let t0 = Instant::now();
        let res = ctree.knn(qg, k + 1);
        ctree_time += t0.elapsed().as_secs_f64();
        ctree_flags.push(
            res.iter()
                .filter(|(i, _)| *i != q.idx())
                .map(|(i, _)| ds.family_of[*i] == fam)
                .collect::<Vec<bool>>(),
        );
    }

    let totals = vec![spec.domains_per_family - 1; queries.len()];
    let tale_curve = precision_recall_curve(&tale_flags, &totals, k);
    let ctree_curve = precision_recall_curve(&ctree_flags, &totals, k);

    println!(
        "\n{} queries; avg time TALE {:.3}s vs C-Tree {:.3}s",
        queries.len(),
        tale_time / queries.len() as f64,
        ctree_time / queries.len() as f64
    );
    println!("\n  k | TALE  P / R      | C-Tree P / R");
    println!("----+------------------+----------------");
    for (t, c) in tale_curve.iter().zip(ctree_curve.iter()) {
        println!(
            " {:2} | {:.3} / {:.3}    | {:.3} / {:.3}",
            t.k, t.precision, t.recall, c.precision, c.recall
        );
    }
    println!("\nexpected shape (paper Fig. 5): precision high at low k for both,");
    println!("dropping as recall climbs toward its plateau.");
}
