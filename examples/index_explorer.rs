//! NH-Index internals explorer: shows the hybrid index structure,
//! persistence layout and probe-time pruning statistics (§IV of the
//! paper) on a small synthetic database.
//!
//! ```text
//! cargo run --release --example index_explorer
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tale::{TaleDatabase, TaleParams};
use tale_graph::generate::preferential_attachment;
use tale_graph::{GraphDb, NodeId};

fn main() {
    // Build a small database of power-law graphs over a 12-label alphabet.
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let mut db = GraphDb::new();
    for i in 0..12 {
        db.intern_node_label(&format!("L{i:02}"));
    }
    for i in 0..8 {
        let g = preferential_attachment(&mut rng, 300, 2, 0.9, 12);
        db.insert(format!("g{i}"), g);
    }

    // Persist to an explicit directory so the on-disk layout is visible.
    let dir = std::env::temp_dir().join(format!("tale-explorer-{}", std::process::id()));
    let params = TaleParams {
        sbit: 32,
        ..TaleParams::default()
    };
    let tale = TaleDatabase::build(db, &dir, &params).expect("build");

    println!("== index layout ({}) ==", dir.display());
    for entry in std::fs::read_dir(&dir).expect("read dir") {
        let e = entry.expect("entry");
        println!(
            "  {:14} {:>10} bytes",
            e.file_name().to_string_lossy(),
            e.metadata().map(|m| m.len()).unwrap_or(0)
        );
    }
    let idx = tale.index();
    println!("\n== index statistics ==");
    println!("  indexing units (db nodes) : {}", idx.node_count());
    println!("  distinct (label,deg,nbc)  : {}", idx.key_count());
    println!(
        "  scheme                    : Sbit={} {}",
        idx.scheme().sbit,
        if idx.scheme().deterministic {
            "deterministic bit array"
        } else {
            "Bloom-hashed bit array"
        }
    );

    // Probe a few nodes of graph 0 at different approximation levels and
    // show how the conditions prune.
    let g0 = tale.db().graph(tale_graph::GraphId(0));
    let label_of = |n: NodeId| tale.db().effective_label(tale_graph::GraphId(0), n);
    // pick the highest-degree node (an "important" node) and a leaf
    let hub = g0
        .nodes()
        .max_by_key(|&n| g0.degree(n))
        .expect("non-empty graph");
    let leaf = g0
        .nodes()
        .filter(|&n| g0.degree(n) >= 1)
        .min_by_key(|&n| g0.degree(n))
        .expect("graph has edges");

    println!(
        "\n== probe pruning (hub: degree {}, leaf: degree {}) ==",
        g0.degree(hub),
        g0.degree(leaf)
    );
    println!("  node  rho  keys-scanned  postings  rows-examined  candidates");
    for (name, node) in [("hub ", hub), ("leaf", leaf)] {
        for rho in [0.0, 0.25, 0.5] {
            let sig = idx.signature(g0, node, &label_of);
            let (hits, stats) = idx.probe_with_stats(&sig, rho).expect("probe");
            println!(
                "  {}  {:.2}  {:12}  {:8}  {:13}  {:10}",
                name,
                rho,
                stats.keys_scanned,
                stats.postings_fetched,
                stats.rows_examined,
                hits.len()
            );
        }
    }
    println!("\nNote how the hub's rich neighborhood keeps its candidate list");
    println!("short even at rho=0.5 — the pruning power that makes important-");
    println!("node-first matching work (§IV-A, §V-A).");

    // Reopen from disk to demonstrate persistence.
    drop(tale);
    let reopened = TaleDatabase::open(&dir, 1024).expect("reopen");
    println!(
        "\nreopened from disk: {} graphs, {} indexed nodes — OK",
        reopened.db().len(),
        reopened.index().node_count()
    );
    drop(reopened);
    let _ = std::fs::remove_dir_all(&dir);
}
