//! NH-Index internals explorer: shows the hybrid index structure,
//! persistence layout and probe-time pruning statistics (§IV of the
//! paper) on a small synthetic database.
//!
//! ```text
//! cargo run --release --example index_explorer
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tale::{TaleDatabase, TaleParams};
use tale_graph::generate::preferential_attachment;
use tale_graph::{GraphDb, NodeId};
use tale_nhindex::IndexReader;

fn main() {
    // Build a small database of power-law graphs over a 12-label alphabet.
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let mut db = GraphDb::new();
    for i in 0..12 {
        db.intern_node_label(&format!("L{i:02}"));
    }
    for i in 0..8 {
        let g = preferential_attachment(&mut rng, 300, 2, 0.9, 12);
        db.insert(format!("g{i}"), g);
    }

    // Persist to an explicit directory so the on-disk layout is visible.
    let dir = std::env::temp_dir().join(format!("tale-explorer-{}", std::process::id()));
    let params = TaleParams {
        sbit: 32,
        ..TaleParams::default()
    };
    let tale = TaleDatabase::build(db, &dir, &params).expect("build");

    // The database directory holds the graph store, the MVCC manifest and
    // one immutable generation directory per on-disk index version.
    println!("== index layout ({}) ==", dir.display());
    let mut listing = Vec::new();
    let mut walk = vec![dir.clone()];
    while let Some(d) = walk.pop() {
        for entry in std::fs::read_dir(&d).expect("read dir") {
            let e = entry.expect("entry");
            if e.file_type().expect("file type").is_dir() {
                walk.push(e.path());
            } else {
                let rel = e.path().strip_prefix(&dir).expect("child").to_owned();
                let len = e.metadata().map(|m| m.len()).unwrap_or(0);
                listing.push((rel, len));
            }
        }
    }
    listing.sort();
    for (rel, len) in listing {
        println!("  {:24} {:>10} bytes", rel.display(), len);
    }
    let idx = tale.index();
    println!("\n== index statistics ==");
    println!("  indexing units (db nodes) : {}", idx.node_count());
    println!("  distinct (label,deg,nbc)  : {}", idx.key_count());
    println!(
        "  scheme                    : Sbit={} {}",
        idx.scheme().sbit,
        if idx.scheme().deterministic {
            "deterministic bit array"
        } else {
            "Bloom-hashed bit array"
        }
    );

    // Probe a few nodes of graph 0 at different approximation levels and
    // show how the conditions prune.
    let db = tale.db(); // Arc clone of the current published GraphDb
    let g0 = db.graph(tale_graph::GraphId(0));
    let label_of = |n: NodeId| db.effective_label(tale_graph::GraphId(0), n);
    // pick the highest-degree node (an "important" node) and a leaf
    let hub = g0
        .nodes()
        .max_by_key(|&n| g0.degree(n))
        .expect("non-empty graph");
    let leaf = g0
        .nodes()
        .filter(|&n| g0.degree(n) >= 1)
        .min_by_key(|&n| g0.degree(n))
        .expect("graph has edges");

    println!(
        "\n== probe pruning (hub: degree {}, leaf: degree {}) ==",
        g0.degree(hub),
        g0.degree(leaf)
    );
    println!("  node  rho  keys-scanned  postings  rows-examined  candidates");
    // Queries pin an MVCC snapshot and probe its base generation plus the
    // in-memory delta overlay (empty here — nothing inserted since build).
    let snap = idx.snapshot();
    for (name, node) in [("hub ", hub), ("leaf", leaf)] {
        for rho in [0.0, 0.25, 0.5] {
            let sig = idx.signature(g0, node, &label_of);
            let sigs = std::slice::from_ref(&sig);
            let mut base = snap.base_reader().probe_batch(sigs, rho, 1).expect("probe");
            let delta = snap
                .delta_reader()
                .probe_batch(sigs, rho, 1)
                .expect("probe");
            let (ref mut hits, ref mut stats) = base[0];
            let (dh, ds) = &delta[0];
            hits.extend(dh.iter().copied());
            stats.keys_scanned += ds.keys_scanned;
            stats.postings_fetched += ds.postings_fetched;
            stats.postings_filtered += ds.postings_filtered;
            stats.rows_examined += ds.rows_examined;
            println!(
                "  {}  {:.2}  {:12}  {:8}  {:13}  {:10}",
                name,
                rho,
                stats.keys_scanned,
                stats.postings_fetched,
                stats.rows_examined,
                hits.len()
            );
        }
    }
    println!("\nNote how the hub's rich neighborhood keeps its candidate list");
    println!("short even at rho=0.5 — the pruning power that makes important-");
    println!("node-first matching work (§IV-A, §V-A).");

    // Reopen from disk to demonstrate persistence.
    drop(tale);
    let reopened = TaleDatabase::open(&dir, 1024).expect("reopen");
    println!(
        "\nreopened from disk: {} graphs, {} indexed nodes — OK",
        reopened.db().len(),
        reopened.index().node_count()
    );
    drop(reopened);
    let _ = std::fs::remove_dir_all(&dir);
}
