//! Cross-species protein-interaction-network comparison — the paper's
//! §VI-B.1 scenario (Table II) on synthetic BIND-like data.
//!
//! Generates human/mouse/rat PINs from a common ancestor with planted
//! conserved pathways, indexes them with the paper's BIND settings
//! (`Sbit = 96, ρ = 25%, Pimp = 15%`), queries mouse against human, and
//! scores the alignment with the KEGG hit/coverage metrics. A
//! Graemlin-like seed-and-extend aligner runs for comparison.
//!
//! ```text
//! cargo run --release --example pin_alignment [scale]
//! ```
//!
//! `scale` (default 0.2) shrinks the Table I network sizes.

use std::time::Instant;
use tale::{QueryOptions, TaleDatabase, TaleParams};
use tale_baselines::aligner::SeedExtendAligner;
use tale_datasets::metrics::kegg_metrics;
use tale_datasets::pin::{PinSpec, SpeciesPins, HUMAN, MOUSE, RAT};
use tale_graph::NodeId;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.2);
    let specs = [HUMAN, MOUSE, RAT].map(|s| PinSpec {
        name: s.name,
        nodes: ((s.nodes as f64 * scale) as usize).max(50),
        edges: ((s.edges as f64 * scale) as usize).max(60),
    });
    println!(
        "generating PINs at scale {scale} (human {} nodes)...",
        specs[0].nodes
    );
    let pins = SpeciesPins::generate(7, &specs, 60, 12);
    for s in &specs {
        let g = pins.db.graph(pins.species[s.name]);
        println!(
            "  {:6}: {} nodes, {} edges",
            s.name,
            g.node_count(),
            g.edge_count()
        );
    }

    // Index with the paper's BIND parameters.
    let t0 = Instant::now();
    let tale = TaleDatabase::build_in_temp(pins.db.clone(), &TaleParams::bind()).expect("build");
    println!(
        "NH-Index built in {:.2}s ({} bytes)",
        t0.elapsed().as_secs_f64(),
        tale.index_size_bytes()
    );

    let human_gid = pins.species["human"];
    for species in ["mouse", "rat"] {
        let query = pins.db.graph(pins.species[species]);
        println!("\n=== {species} vs. human ===");

        // TALE
        let t0 = Instant::now();
        let res = tale.query(query, &QueryOptions::bind()).expect("query");
        let secs = t0.elapsed().as_secs_f64();
        let pairs: Vec<(NodeId, NodeId)> = res
            .iter()
            .find(|r| r.graph == human_gid)
            .map(|r| r.m.pairs.iter().map(|p| (p.query, p.target)).collect())
            .unwrap_or_default();
        let k = kegg_metrics(&pins.pathways, species, "human", &pairs);
        println!(
            "TALE        : {} aligned pairs, {} / {} pathways hit, {:.1}% coverage, {:.3}s",
            pairs.len(),
            k.hits,
            k.evaluated,
            k.avg_coverage * 100.0,
            secs
        );

        // Graemlin-like baseline
        let sp = &pins.group_of_node[species];
        let hu = &pins.group_of_node["human"];
        let g1 = |n: NodeId| sp[n.idx()];
        let g2 = |n: NodeId| hu[n.idx()];
        let t0 = Instant::now();
        let al = SeedExtendAligner::default().align(query, pins.db.graph(human_gid), &g1, &g2);
        let secs = t0.elapsed().as_secs_f64();
        let k = kegg_metrics(&pins.pathways, species, "human", &al.pairs);
        println!(
            "seed-extend : {} aligned pairs, {} / {} pathways hit, {:.1}% coverage, {:.3}s",
            al.len(),
            k.hits,
            k.evaluated,
            k.avg_coverage * 100.0,
            secs
        );
    }
}
