//! Quickstart: build a graph database, index it, run an approximate
//! subgraph query — the whole TALE pipeline in ~60 lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tale::{QueryOptions, TaleDatabase, TaleParams};
use tale_graph::{Graph, GraphDb};

fn main() {
    // 1. A database of labeled graphs. Labels are interned strings shared
    //    across all graphs in the database.
    let mut db = GraphDb::new();
    let kinase = db.intern_node_label("kinase");
    let ligase = db.intern_node_label("ligase");
    let channel = db.intern_node_label("channel");
    let receptor = db.intern_node_label("receptor");

    // A target graph: a kinase-ligase-channel triangle with a receptor tail.
    let mut target = Graph::new_undirected();
    let k = target.add_node(kinase);
    let l = target.add_node(ligase);
    let c = target.add_node(channel);
    let r = target.add_node(receptor);
    target.add_edge(k, l).unwrap();
    target.add_edge(l, c).unwrap();
    target.add_edge(k, c).unwrap();
    target.add_edge(c, r).unwrap();
    db.insert("complex-A", target.clone());

    // A decoy with the same labels but no structure.
    let mut decoy = Graph::new_undirected();
    for lbl in [kinase, ligase, channel, receptor] {
        decoy.add_node(lbl);
    }
    db.insert("decoy", decoy);

    // 2. Build the NH-Index (disk-based; here in a self-cleaning temp dir).
    let tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).expect("index build");
    println!(
        "indexed {} graphs / {} nodes → {} distinct keys, {} bytes on disk",
        tale.db().len(),
        tale.index().node_count(),
        tale.index().key_count(),
        tale.index_size_bytes()
    );

    // 3. Query: the triangle with a *mutated* tail (receptor removed, so
    //    approximate matching must tolerate the miss).
    let mut query = Graph::new_undirected();
    let qk = query.add_node(kinase);
    let ql = query.add_node(ligase);
    let qc = query.add_node(channel);
    query.add_edge(qk, ql).unwrap();
    query.add_edge(ql, qc).unwrap();
    query.add_edge(qk, qc).unwrap();

    let opts = QueryOptions {
        rho: 0.25,  // allow 25% of each node's neighbors to be missing
        p_imp: 0.5, // anchor the top half of query nodes by degree
        ..QueryOptions::default()
    };
    let results = tale.query(&query, &opts).expect("query");

    // 4. Inspect ranked matches.
    for (rank, m) in results.iter().enumerate() {
        println!(
            "#{} {} — score {:.2}, {} nodes / {} edges matched",
            rank + 1,
            m.graph_name,
            m.score,
            m.matched_nodes,
            m.matched_edges
        );
        for p in &m.m.pairs {
            println!(
                "    query node {} → db node {} (quality {:.2})",
                p.query.0, p.target.0, p.quality
            );
        }
    }
    assert_eq!(results[0].graph_name, "complex-A");
    assert_eq!(results[0].matched_nodes, 3);
    println!("\nquickstart OK: the structured complex outranks the decoy");
}
