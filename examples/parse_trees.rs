//! Approximate matching of natural-language parse trees — one of the
//! non-bioinformatics applications the paper names ("comparing parse
//! trees produced by natural language parsers for literature mining",
//! §VI; also RDF graphs in the conclusion).
//!
//! A tiny corpus of dependency-style parse trees is indexed; a query
//! pattern ("someone <verb> something with something") retrieves
//! sentences whose parses approximately contain it, tolerating the
//! extra modifiers real sentences carry.
//!
//! ```text
//! cargo run --release --example parse_trees
//! ```

use tale::{QueryOptions, TaleDatabase, TaleParams};
use tale_graph::{Graph, GraphDb, NodeId, NodeLabel};

/// Builds a parse tree from `(label, parent index)` rows; parent -1 = root.
fn tree(db: &mut GraphDb, rows: &[(&str, i32)]) -> Graph {
    let mut g = Graph::new_undirected();
    let ids: Vec<NodeId> = rows
        .iter()
        .map(|(label, _)| {
            let l: NodeLabel = db.intern_node_label(label);
            g.add_node(l)
        })
        .collect();
    for (i, &(_, parent)) in rows.iter().enumerate() {
        if parent >= 0 {
            g.add_edge(ids[parent as usize], ids[i]).unwrap();
        }
    }
    g
}

fn main() {
    let mut db = GraphDb::new();

    // "The researcher measured the binding affinity with a calorimeter."
    let s1 = tree(
        &mut db,
        &[
            ("VERB:measure", -1),
            ("NOUN:researcher", 0),
            ("DET", 1),
            ("NOUN:affinity", 0),
            ("DET", 3),
            ("NOUN:binding", 3),
            ("PREP:with", 0),
            ("NOUN:calorimeter", 6),
            ("DET", 7),
        ],
    );
    // "A student measured the temperature with a thermometer yesterday."
    let s2 = tree(
        &mut db,
        &[
            ("VERB:measure", -1),
            ("NOUN:student", 0),
            ("DET", 1),
            ("NOUN:temperature", 0),
            ("DET", 3),
            ("PREP:with", 0),
            ("NOUN:thermometer", 5),
            ("DET", 6),
            ("ADV:yesterday", 0),
        ],
    );
    // "The protein binds the ligand." (no instrument)
    let s3 = tree(
        &mut db,
        &[
            ("VERB:bind", -1),
            ("NOUN:protein", 0),
            ("DET", 1),
            ("NOUN:ligand", 0),
            ("DET", 3),
        ],
    );
    // "They measured twice." (measure, but no instrument phrase)
    let s4 = tree(
        &mut db,
        &[("VERB:measure", -1), ("NOUN:they", 0), ("ADV:twice", 0)],
    );
    db.insert("s1-calorimeter", s1);
    db.insert("s2-thermometer", s2);
    db.insert("s3-binding", s3);
    db.insert("s4-bare-measure", s4);

    // Query pattern: measure-events with an instrument ("with" phrase):
    //   VERB:measure — NOUN (subject), VERB — PREP:with — NOUN (any)
    // The instrument noun is deliberately a label that matches nothing —
    // approximate matching may drop it but must keep the "with" frame.
    let mut q = Graph::new_undirected();
    let verb = q.add_node(db.node_vocab().get("VERB:measure").map(NodeLabel).unwrap());
    let subj = q.add_node(
        db.node_vocab()
            .get("NOUN:researcher")
            .map(NodeLabel)
            .unwrap(),
    );
    let with = q.add_node(db.node_vocab().get("PREP:with").map(NodeLabel).unwrap());
    q.add_edge(verb, subj).unwrap();
    q.add_edge(verb, with).unwrap();

    let tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).expect("build");
    let opts = QueryOptions {
        rho: 0.5,   // tolerate missing modifiers
        p_imp: 1.0, // tiny pattern: anchor everything
        ..QueryOptions::default()
    };
    let res = tale.query(&q, &opts).expect("query");

    println!("pattern: measure-event with an instrument phrase\n");
    for r in &res {
        println!(
            "  {:18} score {:5.2}  ({} pattern nodes, {} relations preserved)",
            r.graph_name, r.score, r.matched_nodes, r.matched_edges
        );
    }
    let top = &res[0];
    assert!(
        top.graph_name.starts_with("s1") || top.graph_name.starts_with("s2"),
        "an instrumented measure-sentence should win"
    );
    println!(
        "\n=> '{}' ranks first: the only parses containing the full frame are\n   \
         the instrumented measure-events, despite their extra modifiers.",
        top.graph_name
    );
}
