//! Umbrella crate for examples and integration tests.
pub use tale;
pub use tale_baselines;
pub use tale_datasets;
pub use tale_graph;
pub use tale_matching;
pub use tale_nhindex;
pub use tale_storage;
