//! Exactness tests: TALE at `ρ = 0` against the Ullmann oracle.
//!
//! Exact subgraph matching "can be viewed as a special case of approximate
//! subgraph matching when ρ = 0" (§IV-B). TALE is a heuristic (§VI-D), so
//! it cannot promise to *find* every embedding — but whenever a clean
//! planted copy exists and anchoring succeeds, the result must be a
//! genuine embedding, and Ullmann must agree the embedding exists.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use tale::{QueryOptions, TaleDatabase, TaleParams};
use tale_baselines::ullmann::find_embedding;
use tale_graph::generate::gnm;
use tale_graph::{Graph, GraphDb, NodeId};

/// Plants `query` inside a larger host: host = query ∪ extra nodes/edges.
fn plant(
    rng: &mut ChaCha8Rng,
    query: &Graph,
    extra_nodes: usize,
    extra_edges: usize,
    labels: u32,
) -> Graph {
    let mut host = query.clone();
    let base = host.node_count();
    for _ in 0..extra_nodes {
        host.add_node(tale_graph::labels::NodeLabel(rng.gen_range(0..labels)));
    }
    let mut added = 0;
    let mut guard = 0;
    while added < extra_edges && guard < extra_edges * 40 {
        guard += 1;
        let u = NodeId(rng.gen_range(0..host.node_count() as u32));
        let v = NodeId(rng.gen_range(base as u32..host.node_count() as u32));
        if u != v && !host.has_edge(u, v) {
            host.add_edge(u, v).unwrap();
            added += 1;
        }
    }
    host
}

#[test]
fn planted_subgraph_recovered_at_rho_zero() {
    // TALE is a heuristic (§VI-D): superset imposters score the same
    // perfect Eq. IV.5 quality as the true counterpart, so one or two
    // nodes of the planted copy may land on an imposter. The contract we
    // hold it to: every node matched, the large majority of edges
    // preserved, and some trials recovered perfectly — while Ullmann (the
    // exact oracle) always certifies the copy exists.
    let mut rng = ChaCha8Rng::seed_from_u64(71);
    let labels = 8u32;
    let mut perfect = 0;
    let trials = 12;
    for trial in 0..trials {
        let query = gnm(&mut rng, 12, 18, labels);
        let host = plant(&mut rng, &query, 40, 80, labels);

        // Ullmann oracle: the planted copy exists.
        let ql = |n: NodeId| query.label(n).0;
        let hl = |n: NodeId| host.label(n).0;
        assert!(
            find_embedding(&query, &host, &ql, &hl).is_some(),
            "oracle lost the planted copy (trial {trial})"
        );

        let mut db = GraphDb::new();
        for i in 0..labels {
            db.intern_node_label(&format!("L{i}"));
        }
        db.insert("host", host.clone());
        let tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).expect("build");
        // Anchor every query node: for a 12-node query the bipartite
        // assignment then resolves imposters globally, giving the
        // heuristic its best shot at the exact copy.
        let opts = QueryOptions {
            rho: 0.0,
            p_imp: 1.0,
            ..QueryOptions::default()
        };
        let res = tale.query(&query, &opts).expect("query");
        let top = res.first().expect("planted copy must produce a match");
        for p in &top.m.pairs {
            assert_eq!(
                query.label(p.query),
                host.label(p.target),
                "label violated at ρ=0 (trial {trial})"
            );
        }
        assert_eq!(
            top.matched_nodes,
            query.node_count(),
            "not all query nodes matched (trial {trial})"
        );
        assert!(
            top.matched_edges * 3 >= query.edge_count() * 2,
            "only {}/{} edges preserved (trial {trial})",
            top.matched_edges,
            query.edge_count()
        );
        if top.matched_edges == query.edge_count() {
            perfect += 1;
        }
    }
    assert!(perfect >= 1, "no trial recovered the copy perfectly");
}

#[test]
fn rho_zero_returns_nothing_when_no_copy_exists() {
    // Query requires a label the database lacks entirely in that position.
    let mut db = GraphDb::new();
    let a = db.intern_node_label("A");
    let b = db.intern_node_label("B");
    let z = db.intern_node_label("Z");
    let mut host = Graph::new_undirected();
    let n0 = host.add_node(a);
    let n1 = host.add_node(b);
    host.add_edge(n0, n1).unwrap();
    db.insert("host", host);
    let mut query = Graph::new_undirected();
    let q0 = query.add_node(a);
    let q1 = query.add_node(z);
    query.add_edge(q0, q1).unwrap();
    let tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).expect("build");
    let res = tale
        .query(
            &query,
            &QueryOptions {
                rho: 0.0,
                p_imp: 1.0,
                ..QueryOptions::default()
            },
        )
        .expect("query");
    // At best a partial match on the A node; never a full embedding.
    for r in &res {
        assert!(r.matched_nodes < 2, "impossible embedding claimed");
    }
}

#[test]
fn approximate_beats_exact_on_noisy_copy() {
    // Mutate the planted copy: ρ=0 can no longer fully match, ρ=0.5 can
    // recover much more — the paper's core motivation (§I).
    let mut rng = ChaCha8Rng::seed_from_u64(72);
    let labels = 6u32;
    let query = gnm(&mut rng, 20, 40, labels);
    let (noisy, _) = tale_graph::generate::mutate(
        &mut rng,
        &query,
        &tale_graph::generate::MutationRates {
            node_delete: 0.15,
            node_insert: 0.1,
            edge_delete: 0.15,
            edge_insert: 0.1,
            relabel: 0.0,
        },
        labels,
    );
    let mut db = GraphDb::new();
    for i in 0..labels {
        db.intern_node_label(&format!("L{i}"));
    }
    db.insert("noisy", noisy);
    let tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).expect("build");
    let strict = tale
        .query(
            &query,
            &QueryOptions {
                rho: 0.0,
                p_imp: 0.3,
                ..QueryOptions::default()
            },
        )
        .expect("strict");
    let loose = tale
        .query(
            &query,
            &QueryOptions {
                rho: 0.5,
                p_imp: 0.3,
                ..QueryOptions::default()
            },
        )
        .expect("loose");
    let strict_nodes = strict.first().map(|r| r.matched_nodes).unwrap_or(0);
    let loose_nodes = loose.first().map(|r| r.matched_nodes).unwrap_or(0);
    assert!(
        loose_nodes > strict_nodes,
        "approximation should help on noisy data: strict {strict_nodes}, loose {loose_nodes}"
    );
    assert!(loose_nodes >= 10, "loose match too small: {loose_nodes}");
}

#[test]
fn tale_match_is_always_a_valid_partial_embedding() {
    // Structural sanity on random data at several ρ: mappings injective,
    // labels consistent (group-free db ⇒ raw labels must be equal).
    let mut rng = ChaCha8Rng::seed_from_u64(73);
    let labels = 5u32;
    let mut db = GraphDb::new();
    for i in 0..labels {
        db.intern_node_label(&format!("L{i}"));
    }
    for i in 0..6 {
        db.insert(format!("g{i}"), gnm(&mut rng, 50, 100, labels));
    }
    let query = gnm(&mut rng, 30, 60, labels);
    let tale = TaleDatabase::build_in_temp(db.clone(), &TaleParams::default()).expect("build");
    for rho in [0.0, 0.25, 0.5, 1.0] {
        let res = tale
            .query(
                &query,
                &QueryOptions {
                    rho,
                    ..QueryOptions::default()
                },
            )
            .expect("query");
        for r in &res {
            let target = db.graph(r.graph);
            let mut qs = std::collections::HashSet::new();
            let mut ts = std::collections::HashSet::new();
            for p in &r.m.pairs {
                assert!(qs.insert(p.query), "query node reused (rho {rho})");
                assert!(ts.insert(p.target), "target node reused (rho {rho})");
                assert_eq!(
                    query.label(p.query),
                    target.label(p.target),
                    "label mismatch (rho {rho})"
                );
            }
            assert_eq!(r.matched_nodes, r.m.pairs.len());
            assert_eq!(r.matched_edges, r.m.matched_edges(&query, target));
        }
    }
}
