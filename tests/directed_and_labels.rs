//! Extended-paper features end-to-end: directed graphs and edge-labeled
//! graphs flowing through the full index + matching pipeline (§IV-E
//! mentions these adaptations; the short paper defers details to the
//! extended version, so these tests pin down this implementation's
//! semantics: out-neighbors define neighborhoods, direction is respected
//! in adjacency checks).

use tale::{QueryOptions, TaleDatabase, TaleParams};
use tale_graph::{Graph, GraphDb, NodeId};

fn opts_all() -> QueryOptions {
    QueryOptions {
        p_imp: 1.0,
        rho: 0.0,
        ..QueryOptions::default()
    }
}

#[test]
fn directed_pipeline_respects_direction() {
    let mut db = GraphDb::new();
    let a = db.intern_node_label("A");
    let b = db.intern_node_label("B");
    let c = db.intern_node_label("C");

    // forward chain a→b→c
    let mut fwd = Graph::new_directed();
    let n0 = fwd.add_node(a);
    let n1 = fwd.add_node(b);
    let n2 = fwd.add_node(c);
    fwd.add_edge(n0, n1).unwrap();
    fwd.add_edge(n1, n2).unwrap();
    db.insert("forward", fwd.clone());

    // reversed chain a←b←c (same labels, opposite direction)
    let mut rev = Graph::new_directed();
    let m0 = rev.add_node(a);
    let m1 = rev.add_node(b);
    let m2 = rev.add_node(c);
    rev.add_edge(m1, m0).unwrap();
    rev.add_edge(m2, m1).unwrap();
    db.insert("reverse", rev);

    let tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).expect("build");
    let res = tale.query(&fwd, &opts_all()).expect("query");
    let forward = res
        .iter()
        .find(|r| r.graph_name == "forward")
        .expect("self match");
    assert_eq!(forward.matched_nodes, 3);
    assert_eq!(forward.matched_edges, 2);
    // The reversed graph cannot preserve any directed edge of the query.
    if let Some(rev_hit) = res.iter().find(|r| r.graph_name == "reverse") {
        assert_eq!(
            rev_hit.matched_edges, 0,
            "reversed edges must not count as preserved"
        );
    }
    assert_eq!(res[0].graph_name, "forward");
}

#[test]
fn directed_neighborhoods_use_out_edges() {
    // hub with 3 out-neighbors vs hub with 3 in-neighbors: out-degree
    // differs, so the out-hub query must not anchor on the in-hub.
    let mut db = GraphDb::new();
    let h = db.intern_node_label("hub");
    let l = db.intern_node_label("leaf");
    let mut in_hub = Graph::new_directed();
    let c = in_hub.add_node(h);
    for _ in 0..3 {
        let x = in_hub.add_node(l);
        in_hub.add_edge(x, c).unwrap(); // edges point *into* the hub
    }
    db.insert("in-hub", in_hub);
    let tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).expect("build");

    let mut out_hub = Graph::new_directed();
    let qc = out_hub.add_node(h);
    for _ in 0..3 {
        let x = out_hub.add_node(l);
        out_hub.add_edge(qc, x).unwrap();
    }
    let res = tale.query(&out_hub, &opts_all()).expect("query");
    // leaves can pair up (out-degree 0 each way), but no matched edge can
    // exist and the hub (out-degree 3 vs 0) cannot match at ρ=0.
    for r in &res {
        assert_eq!(r.matched_edges, 0);
        assert!(r.m.pairs.iter().all(|p| p.query != qc));
    }
}

#[test]
fn edge_labels_survive_io_and_matching() {
    // Edge labels are carried through the graph layer and preserved edges
    // are counted on adjacency (labels themselves are application-level
    // payload here). Verify round trip + matching over a labeled db.
    let mut db = GraphDb::new();
    let a = db.intern_node_label("A");
    let b = db.intern_node_label("B");
    let strong = db.intern_edge_label("strong");
    let weak = db.intern_edge_label("weak");
    let mut g = Graph::new_undirected();
    let n0 = g.add_node(a);
    let n1 = g.add_node(b);
    let n2 = g.add_node(a);
    g.add_edge_labeled(n0, n1, strong).unwrap();
    g.add_edge_labeled(n1, n2, weak).unwrap();
    db.insert("labeled", g.clone());

    // text round trip keeps edge labels
    let mut buf = Vec::new();
    tale_graph::io::write_text(&db, &mut buf).unwrap();
    let back = tale_graph::io::read_text(&buf[..]).unwrap();
    let bg = back.graph(tale_graph::GraphId(0));
    let e = bg.edge_between(NodeId(0), NodeId(1)).unwrap();
    assert_eq!(
        back.edge_vocab().name(bg.edge_label(e).unwrap().0),
        Some("strong")
    );

    // the indexed pipeline still matches the labeled graph fully
    let tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).expect("build");
    let res = tale.query(&g, &opts_all()).expect("query");
    assert_eq!(res[0].matched_nodes, 3);
    assert_eq!(res[0].matched_edges, 2);
}

#[test]
fn edge_label_matching_end_to_end() {
    // Two hosts identical except for their edge labels. With edge-label
    // matching on (index + growth), only the right one fully matches; with
    // it off, both do — the extended paper's labeled-edge semantics.
    let mut db = GraphDb::new();
    let a = db.intern_node_label("A");
    let b = db.intern_node_label("B");
    let c = db.intern_node_label("C");
    let strong = db.intern_edge_label("strong");
    let weak = db.intern_edge_label("weak");
    let chain = |l1, l2| {
        let mut g = Graph::new_undirected();
        let n0 = g.add_node(a);
        let n1 = g.add_node(b);
        let n2 = g.add_node(c);
        g.add_edge_labeled(n0, n1, l1).unwrap();
        g.add_edge_labeled(n1, n2, l2).unwrap();
        g
    };
    db.insert("strong-strong", chain(strong, strong));
    db.insert("strong-weak", chain(strong, weak));
    let query = chain(strong, strong);

    let labeled_params = tale::TaleParams {
        use_edge_labels: true,
        ..tale::TaleParams::default()
    };
    let tale_db = TaleDatabase::build_in_temp(db.clone(), &labeled_params).unwrap();
    let opts = QueryOptions {
        rho: 0.0,
        p_imp: 1.0,
        match_edge_labels: true,
        ..QueryOptions::default()
    };
    let res = tale_db.query(&query, &opts).unwrap();
    let full: Vec<&str> = res
        .iter()
        .filter(|r| r.matched_nodes == 3)
        .map(|r| r.graph_name.as_str())
        .collect();
    assert_eq!(full, vec!["strong-strong"], "edge labels must discriminate");

    // with edge-label matching off, both hosts fully match
    let plain = TaleDatabase::build_in_temp(db, &tale::TaleParams::default()).unwrap();
    let res = plain
        .query(
            &query,
            &QueryOptions {
                rho: 0.0,
                p_imp: 1.0,
                ..QueryOptions::default()
            },
        )
        .unwrap();
    let full = res.iter().filter(|r| r.matched_nodes == 3).count();
    assert_eq!(full, 2);
}

#[test]
fn directed_index_probe_counts() {
    // A directed triangle: every node has out-degree 1, neighbor
    // connection counts directed edges among out-neighbors (none here).
    let mut db = GraphDb::new();
    let a = db.intern_node_label("X");
    let mut g = Graph::new_directed();
    let n: Vec<_> = (0..3).map(|_| g.add_node(a)).collect();
    g.add_edge(n[0], n[1]).unwrap();
    g.add_edge(n[1], n[2]).unwrap();
    g.add_edge(n[2], n[0]).unwrap();
    assert_eq!(g.neighbor_connection(n[0]), 0);
    // two-out-neighbor case: v→{x,y} with x→y counts 1
    let mut h = Graph::new_directed();
    let v = h.add_node(a);
    let x = h.add_node(a);
    let y = h.add_node(a);
    h.add_edge(v, x).unwrap();
    h.add_edge(v, y).unwrap();
    h.add_edge(x, y).unwrap();
    assert_eq!(h.neighbor_connection(v), 1);
    // and a mutual pair among out-neighbors counts both directions
    let mut m = Graph::new_directed();
    let v2 = m.add_node(a);
    let x2 = m.add_node(a);
    let y2 = m.add_node(a);
    m.add_edge(v2, x2).unwrap();
    m.add_edge(v2, y2).unwrap();
    m.add_edge(x2, y2).unwrap();
    m.add_edge(y2, x2).unwrap();
    assert_eq!(m.neighbor_connection(v2), 2);
    db.insert("tri", g);
}
