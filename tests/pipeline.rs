//! End-to-end integration tests: text format → database → disk index →
//! query → persistence round trip, spanning every crate in the workspace.

use std::sync::Arc;
use tale::{QueryOptions, TaleDatabase, TaleParams};
use tale_graph::{io, GraphDb, GraphId};

const FIXTURE: &str = "\
# two protein complexes and a decoy
graph complex-A
v kinase
v ligase
v channel
v receptor
e 0 1
e 1 2
e 0 2
e 2 3

graph complex-B
v kinase
v ligase
v channel
e 0 1
e 1 2

graph decoy
v kinase
v ligase
v channel
v receptor
";

#[test]
fn text_fixture_to_query_results() {
    let db = io::read_text(FIXTURE.as_bytes()).expect("parse fixture");
    assert_eq!(db.len(), 3);
    let query = db.graph(GraphId(0)).clone(); // complex-A as its own query
    let tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).expect("build");
    let opts = QueryOptions {
        p_imp: 0.5,
        ..QueryOptions::default()
    };
    let res = tale.query(&query, &opts).expect("query");
    assert_eq!(res[0].graph_name, "complex-A");
    assert_eq!(res[0].matched_nodes, 4);
    assert_eq!(res[0].matched_edges, 4);
    // complex-B (the sub-complex) should rank above the edgeless decoy
    let pos_b = res.iter().position(|r| r.graph_name == "complex-B");
    let pos_decoy = res.iter().position(|r| r.graph_name == "decoy");
    match (pos_b, pos_decoy) {
        (Some(b), Some(d)) => assert!(b < d, "sub-complex should outrank decoy"),
        // At ρ=25% the query's degree-3 hub cannot anchor in the sparser
        // sub-complex or the edgeless decoy, so neither matching at all is
        // a legitimate outcome; the decoy must never appear alone.
        (Some(_), None) | (None, None) => {}
        (None, Some(_)) => panic!("decoy matched but the sub-complex did not"),
    }
}

#[test]
fn disk_persistence_full_cycle() {
    let dir = tempfile::tempdir().expect("tempdir");
    let db = io::read_text(FIXTURE.as_bytes()).expect("parse");
    let query = db.graph(GraphId(1)).clone();
    let before;
    {
        let tale = TaleDatabase::build(db, dir.path(), &TaleParams::default()).expect("build");
        before = tale.query(&query, &QueryOptions::default()).expect("query");
        assert!(!before.is_empty());
    }
    // process "restart": reopen purely from disk files
    let tale = TaleDatabase::open(dir.path(), 128).expect("reopen");
    let after = tale.query(&query, &QueryOptions::default()).expect("query");
    assert_eq!(before.len(), after.len());
    for (b, a) in before.iter().zip(after.iter()) {
        assert_eq!(b.graph_name, a.graph_name);
        assert_eq!(b.matched_nodes, a.matched_nodes);
        assert_eq!(b.matched_edges, a.matched_edges);
        assert!((b.score - a.score).abs() < 1e-12);
    }
}

#[test]
fn similarity_models_change_ranking_scale() {
    let db = io::read_text(FIXTURE.as_bytes()).expect("parse");
    let query = db.graph(GraphId(0)).clone();
    let tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).expect("build");
    let by_quality = tale
        .query(
            &query,
            &QueryOptions::default().with_similarity(Arc::new(tale::QualitySum)),
        )
        .expect("query");
    let by_ctree = tale
        .query(
            &query,
            &QueryOptions::default().with_similarity(Arc::new(tale::CTreeStyle)),
        )
        .expect("query");
    // same top hit under both models; scores live on different scales
    assert_eq!(by_quality[0].graph_name, by_ctree[0].graph_name);
    assert!(by_ctree[0].score <= 1.0 + 1e-9);
    assert!(by_quality[0].score > 1.0);
}

#[test]
fn tiny_buffer_pool_still_correct() {
    // Disk-residency claim: a pool of 8 frames (64 KiB) must produce the
    // same answers as a large pool, just slower.
    let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(33);
    let mut db = GraphDb::new();
    for i in 0..10 {
        db.intern_node_label(&format!("L{i}"));
    }
    for i in 0..12 {
        let g = tale_graph::generate::gnm(&mut rng, 80, 160, 10);
        db.insert(format!("g{i}"), g);
    }
    let query = db.graph(GraphId(3)).clone();
    let big = TaleDatabase::build_in_temp(
        db.clone(),
        &TaleParams {
            buffer_frames: 4096,
            ..TaleParams::default()
        },
    )
    .expect("build big");
    let small = TaleDatabase::build_in_temp(
        db,
        &TaleParams {
            buffer_frames: 8,
            ..TaleParams::default()
        },
    )
    .expect("build small");
    let opts = QueryOptions::default();
    let a = big.query(&query, &opts).expect("big query");
    let b = small.query(&query, &opts).expect("small query");
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.graph_name, y.graph_name);
        assert_eq!(x.matched_nodes, y.matched_nodes);
    }
}

#[test]
fn group_model_crosses_label_boundaries_end_to_end() {
    // §IV-E: ortholog groups let differently-labeled nodes match.
    let mut db = GraphDb::new();
    let ha = db.intern_node_label("human:a");
    let hb = db.intern_node_label("human:b");
    let hc = db.intern_node_label("human:c");
    let ma = db.intern_node_label("mouse:a");
    let mb = db.intern_node_label("mouse:b");
    let mc = db.intern_node_label("mouse:c");
    let mut human = tale_graph::Graph::new_undirected();
    let n0 = human.add_node(ha);
    let n1 = human.add_node(hb);
    let n2 = human.add_node(hc);
    human.add_edge(n0, n1).unwrap();
    human.add_edge(n1, n2).unwrap();
    db.insert("human", human);
    db.set_group_by_names(&[
        ("human:a".into(), "ogA".into()),
        ("mouse:a".into(), "ogA".into()),
        ("human:b".into(), "ogB".into()),
        ("mouse:b".into(), "ogB".into()),
        ("human:c".into(), "ogC".into()),
        ("mouse:c".into(), "ogC".into()),
    ])
    .expect("groups");

    let mut mouse = tale_graph::Graph::new_undirected();
    let q0 = mouse.add_node(ma);
    let q1 = mouse.add_node(mb);
    let q2 = mouse.add_node(mc);
    mouse.add_edge(q0, q1).unwrap();
    mouse.add_edge(q1, q2).unwrap();

    let tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).expect("build");
    let res = tale
        .query(
            &mouse,
            &QueryOptions {
                p_imp: 0.5,
                ..QueryOptions::default()
            },
        )
        .expect("query");
    assert_eq!(res[0].graph_name, "human");
    assert_eq!(res[0].matched_nodes, 3, "all ortholog pairs should match");
    assert_eq!(res[0].matched_edges, 2);
}
