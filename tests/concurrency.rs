//! Concurrency smoke tests: many threads sharing one `TaleDatabase` (with a
//! deliberately tiny buffer pool, so the page-pinning paths are exercised
//! under contention) must each see answers identical to a serial baseline,
//! and the `threads` knob must never change what a query returns.

use std::sync::Arc;
use tale::{QueryMatch, QueryOptions, TaleDatabase, TaleParams};
use tale_graph::{generate::gnm, Graph, GraphDb, GraphId};

fn corpus(seed: u64) -> (GraphDb, Vec<Graph>) {
    let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(seed);
    let mut db = GraphDb::new();
    for i in 0..8 {
        db.intern_node_label(&format!("L{i}"));
    }
    for i in 0..10 {
        let g = gnm(&mut rng, 60, 120, 8);
        db.insert(format!("g{i}"), g);
    }
    let queries: Vec<Graph> = (0..4).map(|i| db.graph(GraphId(i)).clone()).collect();
    (db, queries)
}

/// Results must agree pair-for-pair, not just in aggregate: the parallel
/// pipeline claims bit-identical output.
fn assert_identical(a: &[QueryMatch], b: &[QueryMatch]) {
    assert_eq!(a.len(), b.len(), "result count");
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.graph, y.graph);
        assert_eq!(x.graph_name, y.graph_name);
        assert_eq!(x.matched_nodes, y.matched_nodes);
        assert_eq!(x.matched_edges, y.matched_edges);
        assert_eq!(x.score, y.score, "score must be bit-identical");
        assert_eq!(x.m.pairs, y.m.pairs, "match pairs must be identical");
    }
}

#[test]
fn shared_database_concurrent_queries_match_serial() {
    let (db, queries) = corpus(77);
    let tale = Arc::new(
        TaleDatabase::build_in_temp(
            db,
            &TaleParams {
                buffer_frames: 8,
                ..TaleParams::default()
            },
        )
        .expect("build"),
    );
    let opts = QueryOptions::default();
    let serial: Vec<Vec<QueryMatch>> = queries
        .iter()
        .map(|q| tale.query(q, &opts).expect("serial query"))
        .collect();

    std::thread::scope(|s| {
        for t in 0..8usize {
            let tale = Arc::clone(&tale);
            let queries = &queries;
            let serial = &serial;
            let opts = &opts;
            s.spawn(move || {
                for round in 0..3usize {
                    let i = (t + round) % queries.len();
                    let res = tale.query(&queries[i], opts).expect("concurrent query");
                    assert_identical(&serial[i], &res);
                }
            });
        }
    });
}

#[test]
fn thread_count_does_not_change_results() {
    let (db, queries) = corpus(78);
    let tale = TaleDatabase::build_in_temp(
        db,
        &TaleParams {
            buffer_frames: 16,
            ..TaleParams::default()
        },
    )
    .expect("build");
    for q in &queries {
        let baseline = tale
            .query(q, &QueryOptions::default().with_threads(1))
            .expect("serial");
        for threads in [0usize, 2, 4] {
            let res = tale
                .query(q, &QueryOptions::default().with_threads(threads))
                .expect("parallel");
            assert_identical(&baseline, &res);
        }
    }
}
