//! Determinism guarantees: identical inputs produce identical outputs,
//! across repeated runs in one process and across parallel/serial builds.
//! (A HashMap-iteration-order bug produced flaky experiment numbers once;
//! these tests pin the property.)

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tale::{QueryOptions, TaleDatabase, TaleParams};
use tale_graph::generate::gnm;
use tale_graph::GraphDb;

fn build_db(seed: u64) -> (GraphDb, tale_graph::Graph) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut db = GraphDb::new();
    for i in 0..6 {
        db.intern_node_label(&format!("L{i}"));
    }
    for i in 0..8 {
        db.insert(format!("g{i}"), gnm(&mut rng, 40, 80, 6));
    }
    let query = gnm(&mut rng, 25, 50, 6);
    (db, query)
}

fn result_fingerprint(res: &[tale::QueryMatch]) -> Vec<(String, usize, usize, u64)> {
    res.iter()
        .map(|r| {
            (
                r.graph_name.clone(),
                r.matched_nodes,
                r.matched_edges,
                r.score.to_bits(),
            )
        })
        .collect()
}

#[test]
fn repeated_queries_identical() {
    let (db, query) = build_db(101);
    let tale = TaleDatabase::build_in_temp(db, &TaleParams::default()).unwrap();
    let opts = QueryOptions::default();
    let a = result_fingerprint(&tale.query(&query, &opts).unwrap());
    let b = result_fingerprint(&tale.query(&query, &opts).unwrap());
    assert_eq!(a, b);
    // node-level mappings identical too
    let ra = tale.query(&query, &opts).unwrap();
    let rb = tale.query(&query, &opts).unwrap();
    for (x, y) in ra.iter().zip(rb.iter()) {
        assert_eq!(x.m.pairs.len(), y.m.pairs.len());
        for (p, q) in x.m.pairs.iter().zip(y.m.pairs.iter()) {
            assert_eq!((p.query, p.target), (q.query, q.target));
        }
    }
}

#[test]
fn rebuilt_database_gives_identical_answers() {
    let (db, query) = build_db(102);
    let t1 = TaleDatabase::build_in_temp(db.clone(), &TaleParams::default()).unwrap();
    let t2 = TaleDatabase::build_in_temp(db, &TaleParams::default()).unwrap();
    let opts = QueryOptions::default();
    assert_eq!(
        result_fingerprint(&t1.query(&query, &opts).unwrap()),
        result_fingerprint(&t2.query(&query, &opts).unwrap())
    );
}

#[test]
fn serial_and_parallel_builds_agree() {
    let (db, query) = build_db(103);
    let serial = TaleDatabase::build_in_temp(
        db.clone(),
        &TaleParams {
            parallel_build: false,
            ..TaleParams::default()
        },
    )
    .unwrap();
    let parallel = TaleDatabase::build_in_temp(
        db,
        &TaleParams {
            parallel_build: true,
            ..TaleParams::default()
        },
    )
    .unwrap();
    assert_eq!(serial.index().node_count(), parallel.index().node_count());
    assert_eq!(serial.index().key_count(), parallel.index().key_count());
    let opts = QueryOptions::default();
    assert_eq!(
        result_fingerprint(&serial.query(&query, &opts).unwrap()),
        result_fingerprint(&parallel.query(&query, &opts).unwrap())
    );
}

#[test]
fn generators_are_seed_deterministic() {
    // two dataset generations from the same seed are structurally equal
    let a = tale_datasets::pin::SpeciesPins::generate(
        55,
        &[tale_datasets::pin::RAT, tale_datasets::pin::MOUSE],
        10,
        8,
    );
    let b = tale_datasets::pin::SpeciesPins::generate(
        55,
        &[tale_datasets::pin::RAT, tale_datasets::pin::MOUSE],
        10,
        8,
    );
    assert_eq!(a.db.len(), b.db.len());
    for (ga, gb) in a.db.iter().zip(b.db.iter()) {
        assert_eq!(ga.2.node_count(), gb.2.node_count());
        assert_eq!(ga.2.edge_count(), gb.2.edge_count());
        let ea: Vec<_> = ga.2.edges().collect();
        let eb: Vec<_> = gb.2.edges().collect();
        assert_eq!(ea, eb);
    }
    for (pa, pb) in a.pathways.iter().zip(b.pathways.iter()) {
        assert_eq!(pa.groups, pb.groups);
        assert_eq!(pa.members, pb.members);
    }
}
