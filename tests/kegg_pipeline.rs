//! End-to-end directed-graph pipeline over the KEGG-like dataset: index
//! build, self-retrieval, family retrieval, and tombstone removal on
//! directed pathway graphs.

use tale::{QueryOptions, TaleDatabase, TaleParams};
use tale_datasets::kegg::{KeggDataset, KeggSpec};
use tale_graph::GraphId;

fn spec() -> KeggSpec {
    KeggSpec {
        families: 15,
        variants_per_family: 6,
        mean_compounds: 25,
        compound_alphabet: 200,
        reaction_alphabet: 30,
    }
}

#[test]
fn directed_pathways_self_retrieve() {
    let ds = KeggDataset::generate(21, &spec());
    let tale = TaleDatabase::build_in_temp(ds.db.clone(), &TaleParams::bind()).unwrap();
    for &q in &ds.pick_queries(1, 5) {
        let qg = ds.db.graph(q);
        let res = tale.query(qg, &QueryOptions::bind().with_top_k(3)).unwrap();
        assert!(!res.is_empty(), "no result for {q:?}");
        assert_eq!(res[0].graph, q, "self should rank first");
        // mutation can leave disconnected fragments with no important
        // node, which the anchor-and-grow heuristic won't reach — most of
        // the graph must still match
        assert!(
            res[0].matched_nodes * 10 >= qg.node_count() * 7,
            "only {}/{} nodes self-matched",
            res[0].matched_nodes,
            qg.node_count()
        );
        assert!(
            res[0].matched_edges * 10 >= qg.edge_count() * 6,
            "only {}/{} edges self-matched",
            res[0].matched_edges,
            qg.edge_count()
        );
    }
}

#[test]
fn family_members_outrank_strangers() {
    let ds = KeggDataset::generate(22, &spec());
    let tale = TaleDatabase::build_in_temp(ds.db.clone(), &TaleParams::bind()).unwrap();
    let mut good = 0;
    let queries = ds.pick_queries(2, 6);
    for &q in &queries {
        let qg = ds.db.graph(q);
        let fam = ds.family(q);
        let res = tale.query(qg, &QueryOptions::bind().with_top_k(4)).unwrap();
        // among the top non-self hits, family members should dominate
        let relevant = res
            .iter()
            .filter(|r| r.graph != q)
            .take(3)
            .filter(|r| ds.family(r.graph) == fam)
            .count();
        if relevant >= 2 {
            good += 1;
        }
    }
    assert!(
        good >= queries.len() - 1,
        "family retrieval weak: {good}/{} queries",
        queries.len()
    );
}

#[test]
fn removal_works_on_directed_graphs() {
    let ds = KeggDataset::generate(23, &spec());
    let tale = TaleDatabase::build_in_temp(ds.db.clone(), &TaleParams::bind()).unwrap();
    let q = ds.pick_queries(3, 1)[0];
    let qg = ds.db.graph(q).clone();
    let before = tale.query(&qg, &QueryOptions::bind()).unwrap();
    assert!(before.iter().any(|r| r.graph == q));
    tale.remove_graph(q).unwrap();
    let after = tale.query(&qg, &QueryOptions::bind()).unwrap();
    assert!(
        after.iter().all(|r| r.graph != q),
        "tombstoned graph returned"
    );
    // siblings in the family still retrievable
    let fam = ds.family(q);
    assert!(
        after.iter().any(|r| ds.family(r.graph) == fam),
        "family siblings lost"
    );
}

#[test]
fn incremental_insert_on_directed_graphs() {
    let ds = KeggDataset::generate(24, &spec());
    // build over all but the last graph, then add it incrementally
    let mut partial = tale_graph::GraphDb::new();
    for (_, name) in ds.db.node_vocab().iter() {
        partial.intern_node_label(name);
    }
    let n = ds.db.len();
    for (id, name, g) in ds.db.iter().take(n - 1) {
        let _ = id;
        partial.insert(name.to_owned(), g.clone());
    }
    let tale = TaleDatabase::build_in_temp(partial, &TaleParams::bind()).unwrap();
    let last = GraphId(n as u32 - 1);
    let last_graph = ds.db.graph(last).clone();
    let gid = tale
        .insert_graph(ds.db.name(last).to_owned(), last_graph.clone())
        .unwrap();
    let res = tale
        .query(&last_graph, &QueryOptions::bind().with_top_k(2))
        .unwrap();
    assert_eq!(
        res[0].graph, gid,
        "inserted pathway should self-match first"
    );
    assert!(
        res[0].matched_nodes * 10 >= last_graph.node_count() * 7,
        "only {}/{} nodes matched after incremental insert",
        res[0].matched_nodes,
        last_graph.node_count()
    );
}
