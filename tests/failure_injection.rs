//! Failure injection: corrupted or missing index files must surface as
//! errors, never as panics or silent wrong answers. (The generational
//! layout keeps a fresh build's index files under `gens/g0/`.)

use tale::{QueryOptions, TaleDatabase, TaleParams};
use tale_graph::{Graph, GraphDb};
use tale_nhindex::NhIndex;

fn sample_db() -> (GraphDb, Graph) {
    let mut db = GraphDb::new();
    let a = db.intern_node_label("A");
    let b = db.intern_node_label("B");
    let mut g = Graph::new_undirected();
    let n0 = g.add_node(a);
    let n1 = g.add_node(b);
    let n2 = g.add_node(a);
    g.add_edge(n0, n1).unwrap();
    g.add_edge(n1, n2).unwrap();
    db.insert("g", g.clone());
    (db, g)
}

#[test]
fn open_missing_directory_errors() {
    let err = TaleDatabase::open(std::path::Path::new("/nonexistent/tale-index"), 64);
    assert!(err.is_err());
}

#[test]
fn open_with_missing_meta_errors() {
    let dir = tempfile::tempdir().unwrap();
    let (db, _) = sample_db();
    TaleDatabase::build(db, dir.path(), &TaleParams::default()).unwrap();
    std::fs::remove_file(dir.path().join("gens/g0/nh.meta.json")).unwrap();
    assert!(TaleDatabase::open(dir.path(), 64).is_err());
}

#[test]
fn open_with_garbage_meta_errors() {
    let dir = tempfile::tempdir().unwrap();
    let (db, _) = sample_db();
    TaleDatabase::build(db, dir.path(), &TaleParams::default()).unwrap();
    std::fs::write(dir.path().join("gens/g0/nh.meta.json"), b"{not json").unwrap();
    let err = TaleDatabase::open(dir.path(), 64);
    assert!(err.is_err());
    let msg = format!("{}", err.err().unwrap());
    assert!(msg.contains("metadata"), "unexpected error: {msg}");
}

#[test]
fn corrupted_btree_page_detected_on_probe() {
    let dir = tempfile::tempdir().unwrap();
    let (db, query) = sample_db();
    TaleDatabase::build(db, dir.path(), &TaleParams::default()).unwrap();
    // Flip bytes in the middle of the B+-tree file payload.
    let path = dir.path().join("gens/g0/nh.btree");
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    let end = (mid + 64).min(bytes.len());
    for b in &mut bytes[mid..end] {
        *b ^= 0xFF;
    }
    std::fs::write(&path, &bytes).unwrap();

    let tale = TaleDatabase::open(dir.path(), 64).unwrap();
    // The checksum layer must turn the corruption into an error (or, if
    // the flipped page is never touched by this query, succeed cleanly) —
    // never a panic or garbage output.
    match tale.query(&query, &QueryOptions::default()) {
        Ok(res) => {
            for r in &res {
                assert!(r.matched_nodes <= query.node_count());
            }
        }
        Err(e) => {
            let msg = e.to_string();
            assert!(
                msg.contains("corrupt") || msg.contains("invariant") || msg.contains("posting"),
                "unexpected error kind: {msg}"
            );
        }
    }
}

#[test]
fn corrupted_blob_file_detected() {
    let dir = tempfile::tempdir().unwrap();
    let (db, query) = sample_db();
    TaleDatabase::build(db, dir.path(), &TaleParams::default()).unwrap();
    let path = dir.path().join("gens/g0/nh.blobs");
    let mut bytes = std::fs::read(&path).unwrap();
    for b in bytes.iter_mut().take(256) {
        *b ^= 0xAA;
    }
    std::fs::write(&path, &bytes).unwrap();
    let tale = TaleDatabase::open(dir.path(), 64).unwrap();
    let r = tale.query(&query, &QueryOptions::default());
    assert!(r.is_err(), "corrupted postings must not produce results");
}

#[test]
fn nhindex_open_requires_all_files() {
    let dir = tempfile::tempdir().unwrap();
    let (db, _) = sample_db();
    TaleDatabase::build(db, dir.path(), &TaleParams::default()).unwrap();
    std::fs::remove_file(dir.path().join("gens/g0/nh.blobs")).unwrap();
    assert!(NhIndex::open(&dir.path().join("gens/g0"), 64).is_err());
}

#[test]
fn truncated_graphs_json_errors() {
    let dir = tempfile::tempdir().unwrap();
    let (db, _) = sample_db();
    TaleDatabase::build(db, dir.path(), &TaleParams::default()).unwrap();
    let path = dir.path().join("graphs.json");
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    assert!(TaleDatabase::open(dir.path(), 64).is_err());
}
