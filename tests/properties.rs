//! Property-based tests (proptest) over the workspace's core invariants.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;
use tale_graph::graph::{Graph, NodeId};
use tale_graph::labels::NodeLabel;
use tale_matching::bipartite::{matching_weight, max_weight_matching};
use tale_nhindex::bitprobe::{probe_bitsliced, probe_naive, ColumnBitmap};
use tale_nhindex::posting::{NodeRef, Posting};
use tale_nhindex::scheme::NeighborArrayScheme;
use tale_storage::{BTree, BufferPool, CompositeKey, DiskManager};

// ---------------------------------------------------------------- helpers

fn bitmap_strategy() -> impl Strategy<Value = (Vec<Vec<u64>>, Vec<u64>, u32, u32)> {
    // (rows, query, sbit, nbmiss)
    (
        1usize..120,
        prop::sample::select(vec![8u32, 32, 96]),
        0u32..6,
    )
        .prop_flat_map(|(n, sbit, nbmiss)| {
            let words = (sbit as usize).div_ceil(64);
            let mask = if sbit % 64 == 0 {
                u64::MAX
            } else {
                (1u64 << (sbit % 64)) - 1
            };
            let row = prop::collection::vec(any::<u64>(), words).prop_map(move |mut v| {
                let last = v.len() - 1;
                v[last] &= mask;
                v
            });
            (
                prop::collection::vec(row.clone(), n),
                row,
                Just(sbit),
                Just(nbmiss),
            )
        })
}

fn graph_strategy(max_nodes: usize, labels: u32) -> impl Strategy<Value = Graph> {
    (2usize..max_nodes).prop_flat_map(move |n| {
        let labels_vec = prop::collection::vec(0..labels, n);
        let edges = prop::collection::vec((0..n, 0..n), 0..n * 2);
        (labels_vec, edges).prop_map(|(ls, es)| {
            let mut g = Graph::new_undirected();
            for l in ls {
                g.add_node(NodeLabel(l));
            }
            for (u, v) in es {
                if u != v {
                    let _ = g.add_edge(NodeId(u as u32), NodeId(v as u32));
                }
            }
            g
        })
    })
}

// -------------------------------------------------------------- bit probe

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Algorithm 1 must agree exactly with the naive per-row scan
    /// (rows and miss counts) for arbitrary bitmaps and thresholds.
    #[test]
    fn bitsliced_probe_equals_naive((rows, query, sbit, nbmiss) in bitmap_strategy()) {
        let mut bm = ColumnBitmap::new(rows.len(), sbit);
        for (i, row) in rows.iter().enumerate() {
            for j in 0..sbit {
                if row[(j / 64) as usize] >> (j % 64) & 1 == 1 {
                    bm.set(i, j);
                }
            }
        }
        let a = probe_bitsliced(&bm, &query, nbmiss);
        let b = probe_naive(&bm, &query, nbmiss);
        prop_assert_eq!(a.rows, b.rows);
        prop_assert_eq!(a.misses, b.misses);
    }

    /// Monotonicity: raising nbmiss can only add result rows.
    #[test]
    fn probe_monotone_in_threshold((rows, query, sbit, nbmiss) in bitmap_strategy()) {
        let mut bm = ColumnBitmap::new(rows.len(), sbit);
        for (i, row) in rows.iter().enumerate() {
            for j in 0..sbit {
                if row[(j / 64) as usize] >> (j % 64) & 1 == 1 {
                    bm.set(i, j);
                }
            }
        }
        let tight = probe_bitsliced(&bm, &query, nbmiss);
        let loose = probe_bitsliced(&bm, &query, nbmiss + 1);
        let tight_set: std::collections::HashSet<u32> = tight.rows.into_iter().collect();
        let loose_set: std::collections::HashSet<u32> = loose.rows.into_iter().collect();
        prop_assert!(tight_set.is_subset(&loose_set));
    }
}

// -------------------------------------------------------- neighbor arrays

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Bloom arrays never produce false negatives: if the db label set is
    /// a superset of the query's, the miss count is zero.
    #[test]
    fn neighbor_array_superset_no_false_negative(
        q_labels in prop::collection::vec(0u32..5000, 0..20),
        extra in prop::collection::vec(0u32..5000, 0..20),
        sbit in prop::sample::select(vec![16u32, 32, 96]),
    ) {
        let scheme = NeighborArrayScheme { sbit, deterministic: false, hashes: 1 };
        let mut db_labels = q_labels.clone();
        db_labels.extend(extra);
        let q = scheme.array_of(q_labels);
        let db = scheme.array_of(db_labels);
        prop_assert_eq!(NeighborArrayScheme::count_misses(&q, &db), 0);
    }

    /// Misses are bounded by the number of distinct query labels.
    #[test]
    fn miss_count_bounded(
        q_labels in prop::collection::vec(0u32..50, 0..30),
        db_labels in prop::collection::vec(0u32..50, 0..30),
    ) {
        let scheme = NeighborArrayScheme { sbit: 32, deterministic: false, hashes: 1 };
        let q = scheme.array_of(q_labels.iter().copied());
        let db = scheme.array_of(db_labels);
        let mut distinct = q_labels;
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert!(NeighborArrayScheme::count_misses(&q, &db) as usize <= distinct.len());
    }
}

// ----------------------------------------------------------------- B+-tree

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The disk B+-tree behaves exactly like a BTreeMap model under
    /// arbitrary insert sequences (with overwrites) and range scans.
    #[test]
    fn btree_matches_model(
        ops in prop::collection::vec(((0u32..6, 0u32..40, 0u32..6), any::<u64>()), 1..300),
        lo in (0u32..6, 0u32..40, 0u32..6),
        hi in (0u32..6, 0u32..40, 0u32..6),
    ) {
        let dir = tempfile::tempdir().unwrap();
        let dm = Arc::new(DiskManager::create(&dir.path().join("t.db")).unwrap());
        let pool = Arc::new(BufferPool::new(dm, 16)); // tiny pool: force eviction
        let mut tree = BTree::create(pool).unwrap();
        let mut model: BTreeMap<CompositeKey, u64> = BTreeMap::new();
        for ((a, b, c), v) in ops {
            let k = CompositeKey::new(a, b, c);
            tree.insert(k, v).unwrap();
            model.insert(k, v);
        }
        // point lookups
        for (k, v) in &model {
            prop_assert_eq!(tree.get(*k).unwrap(), Some(*v));
        }
        prop_assert_eq!(tree.len().unwrap(), model.len());
        // range scan
        let lo = CompositeKey::new(lo.0, lo.1, lo.2);
        let hi = CompositeKey::new(hi.0, hi.1, hi.2);
        let got = tree.range(lo, hi).unwrap();
        if lo <= hi {
            let want: Vec<(CompositeKey, u64)> =
                model.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
            prop_assert_eq!(got, want);
        } else {
            prop_assert!(got.is_empty());
        }
    }
}

// ---------------------------------------------------------------- posting

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Posting blobs round-trip bit-exactly through both layouts
    /// (row-major small, column-major large).
    #[test]
    fn posting_roundtrip(
        n in 0usize..80,
        sbit in prop::sample::select(vec![16u32, 32, 64]),
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let words = (sbit as usize).div_ceil(64);
        let mask = if sbit % 64 == 0 { u64::MAX } else { (1u64 << (sbit % 64)) - 1 };
        let refs: Vec<NodeRef> = (0..n)
            .map(|i| NodeRef { graph: rng.gen(), node: i as u32 })
            .collect();
        let rows: Vec<Vec<u64>> = (0..n)
            .map(|_| {
                (0..words)
                    .map(|w| {
                        let v: u64 = rng.gen();
                        if w == words - 1 { v & mask } else { v }
                    })
                    .collect()
            })
            .collect();
        let p = Posting::from_rows(refs, sbit, &rows);
        let bytes = p.encode();
        // encode may pick the WAH layout when smaller; never larger
        prop_assert!(bytes.len() <= Posting::encoded_len(n, sbit));
        let back = Posting::decode(&bytes).unwrap();
        prop_assert_eq!(back, p);
    }
}

// ----------------------------------------------------- bipartite matching

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Hungarian result is a valid matching and optimal vs brute force.
    #[test]
    fn hungarian_is_optimal(
        nl in 1usize..5,
        nr in 1usize..5,
        raw_edges in prop::collection::vec((0usize..5, 0usize..5, 1u32..100), 0..12),
    ) {
        let edges: Vec<(usize, usize, f64)> = raw_edges
            .into_iter()
            .filter(|(l, r, _)| *l < nl && *r < nr)
            .map(|(l, r, w)| (l, r, w as f64))
            .collect();
        let m = max_weight_matching(nl, nr, &edges);
        // validity
        let mut used = vec![false; nr];
        for r in m.iter().flatten() {
            prop_assert!(!used[*r]);
            used[*r] = true;
        }
        // optimality vs exhaustive search
        fn brute(l: usize, nl: usize, used: &mut Vec<bool>, adj: &Vec<Vec<(usize, f64)>>) -> f64 {
            if l == nl {
                return 0.0;
            }
            let mut best = brute(l + 1, nl, used, adj);
            for &(r, w) in &adj[l] {
                if !used[r] {
                    used[r] = true;
                    best = best.max(w + brute(l + 1, nl, used, adj));
                    used[r] = false;
                }
            }
            best
        }
        let mut best_pair = std::collections::HashMap::new();
        for &(l, r, w) in &edges {
            let e: &mut f64 = best_pair.entry((l, r)).or_insert(0.0);
            if w > *e {
                *e = w;
            }
        }
        let mut adj = vec![Vec::new(); nl];
        for (&(l, r), &w) in &best_pair {
            adj[l].push((r, w));
        }
        let mut used = vec![false; nr];
        let opt = brute(0, nl, &mut used, &adj);
        prop_assert!((matching_weight(&edges, &m) - opt).abs() < 1e-6);
    }
}

// ------------------------------------------------------------ grow match

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// GrowMatch on arbitrary graph pairs yields injective, label-
    /// consistent mappings whose queue discipline never panics.
    #[test]
    fn grow_match_invariants(
        q in graph_strategy(20, 4),
        t in graph_strategy(30, 4),
        rho in prop::sample::select(vec![0.0f64, 0.25, 0.5, 1.0]),
    ) {
        use tale_matching::grow::{grow_match, Anchor, GrowConfig, GrowInput};
        let ql = |n: NodeId| q.label(n).0;
        let tl = |n: NodeId| t.label(n).0;
        let input = GrowInput { query: &q, target: &t, q_label: &ql, t_label: &tl };
        let cfg = GrowConfig { rho, hops: 2, match_edge_labels: false };
        // anchor every label-compatible (0, t) pair candidate plus one
        // arbitrary interior pair to stress conflict handling
        let mut anchors = Vec::new();
        for tn in t.nodes() {
            if tl(tn) == ql(NodeId(0)) {
                anchors.push(Anchor { query: NodeId(0), target: tn, quality: 1.0 });
            }
        }
        let m = grow_match(&input, &cfg, &anchors);
        let mut qs = std::collections::HashSet::new();
        let mut ts = std::collections::HashSet::new();
        for p in &m.pairs {
            prop_assert!(qs.insert(p.query));
            prop_assert!(ts.insert(p.target));
            prop_assert_eq!(ql(p.query), tl(p.target));
        }
        prop_assert!(m.matched_edges(&q, &t) <= q.edge_count());
    }
}

// ----------------------------------------------------------- centralities

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Centrality invariants on arbitrary graphs: non-negative scores,
    /// right vector lengths, degree score equals the actual degree.
    #[test]
    fn centrality_invariants(g in graph_strategy(25, 3)) {
        use tale_graph::centrality::{betweenness, closeness, degree, eigenvector};
        let n = g.node_count();
        let d = degree(&g);
        prop_assert_eq!(d.len(), n);
        for node in g.nodes() {
            prop_assert_eq!(d[node.idx()], g.degree(node) as f64);
        }
        for s in [closeness(&g), betweenness(&g), eigenvector(&g, 50, 1e-9)] {
            prop_assert_eq!(s.len(), n);
            prop_assert!(s.iter().all(|v| *v >= -1e-12 && v.is_finite()));
        }
    }

    /// Quality formula stays within [0, 2] for any consistent inputs.
    #[test]
    fn quality_bounds(
        deg in 0u32..50,
        nbc in 0u32..100,
        miss_frac in 0.0f64..=1.0,
        cmiss_frac in 0.0f64..=1.0,
    ) {
        let miss = (deg as f64 * miss_frac) as u32;
        let cmiss = (nbc as f64 * cmiss_frac) as u32;
        let w = tale_graph::neighborhood::node_match_quality(deg, nbc, miss, cmiss);
        prop_assert!((0.0..=2.0).contains(&w), "w = {}", w);
    }
}

// ------------------------------------------------------------ robustness

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The text-format parser must reject or accept arbitrary input
    /// without panicking, and anything it accepts must round-trip.
    #[test]
    fn text_parser_never_panics(input in "\\PC{0,300}") {
        if let Ok(db) = tale_graph::io::read_text(input.as_bytes()) {
            let mut buf = Vec::new();
            tale_graph::io::write_text(&db, &mut buf).unwrap();
            let again = tale_graph::io::read_text(&buf[..]).unwrap();
            prop_assert_eq!(again.len(), db.len());
        }
    }

    /// Posting decode on arbitrary bytes errors gracefully, never panics.
    #[test]
    fn posting_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        let _ = Posting::decode(&bytes);
    }

    /// Structured-looking text inputs parse without panicking.
    #[test]
    fn text_parser_structured_fuzz(
        lines in prop::collection::vec(
            prop_oneof![
                Just("graph g".to_string()),
                Just("v A".to_string()),
                Just("v".to_string()),
                (0u32..10, 0u32..10).prop_map(|(a, b)| format!("e {a} {b}")),
                Just("e x y".to_string()),
                Just("# comment".to_string()),
                Just("".to_string()),
            ],
            0..40,
        )
    ) {
        let input = lines.join("\n");
        let _ = tale_graph::io::read_text(input.as_bytes());
    }
}

// ------------------------------------------------------- wah compression

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// WAH compression round-trips arbitrary bit vectors exactly.
    #[test]
    fn wah_roundtrip(
        nbits in 0usize..2000,
        seed in any::<u64>(),
        density in 0.0f64..=1.0,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let words = nbits.div_ceil(64).max(1);
        let mut bits = vec![0u64; words];
        for i in 0..nbits {
            if rng.gen_bool(density) {
                bits[i / 64] |= 1 << (i % 64);
            }
        }
        let wah = tale_storage::wah::compress(&bits, nbits);
        let back = tale_storage::wah::decompress(&wah, nbits);
        for i in 0..nbits {
            prop_assert_eq!(
                bits[i / 64] >> (i % 64) & 1,
                back[i / 64] >> (i % 64) & 1,
                "bit {} differs", i
            );
        }
        // never larger than one word per 63-bit group
        prop_assert!(wah.len() <= nbits.div_ceil(63).max(1));
    }
}

// ------------------------------------------------------ WL fingerprints

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The WL hash is invariant under node relabeling.
    #[test]
    fn wl_hash_permutation_invariant(
        g in graph_strategy(24, 3),
        seed in any::<u64>(),
    ) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let h = tale_graph::wl::wl_hash(&g, 3);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut perm: Vec<u32> = (0..g.node_count() as u32).collect();
        perm.shuffle(&mut rng);
        let p = tale_graph::wl::permute(&g, &perm);
        prop_assert_eq!(tale_graph::wl::wl_hash(&p, 3), h);
        // structure is preserved by permute itself
        prop_assert_eq!(p.node_count(), g.node_count());
        prop_assert_eq!(p.edge_count(), g.edge_count());
    }

    /// Centrality selection always returns a prefix of the full ranking.
    #[test]
    fn select_important_is_rank_prefix(
        g in graph_strategy(20, 3),
        p_imp in 0.0f64..=1.0,
    ) {
        use tale_graph::centrality::{rank, select_important, ImportanceMeasure};
        let full = rank(&g, ImportanceMeasure::Degree);
        let sel = select_important(&g, ImportanceMeasure::Degree, p_imp);
        prop_assert!(sel.len() <= full.len());
        prop_assert_eq!(&sel[..], &full[..sel.len()]);
        if g.node_count() > 0 {
            prop_assert!(!sel.is_empty());
        }
    }
}
