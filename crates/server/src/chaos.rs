//! Fault injection for the serving stack: a deterministic in-process
//! [`FaultyTransport`] and a TCP [`ChaosProxy`] that damages real
//! byte streams.
//!
//! The proxy sits between a frontend's `RemoteTransport` and a worker
//! and injects the failure modes machines actually produce: refused
//! connections, black holes, slow links, connections killed mid-frame,
//! truncated responses, and flipped bits. Faults are scripted — a FIFO
//! of per-connection [`Fault`]s for the test sweep, or a seeded random
//! plan at a fixed rate for the `experiments chaos` availability run —
//! so every chaos schedule is reproducible.
//!
//! The contract under test: a client behind the fault-tolerance layer
//! either gets an answer **bit-identical** to in-process execution, a
//! **typed** error, or (opt-in) an explicit `degraded` marker. Flipped
//! bits specifically must die at the frame CRC
//! ([`crate::wire::WireError::Corrupt`]), because a flipped JSON digit
//! would otherwise parse fine and merge a wrong score silently.

use crate::backoff::Jitter;
use crate::counters::ServerCounters;
use crate::transport::ShardTransport;
use crate::wire::{ReplicaHealthInfo, Request, Response};
use crate::{Result, ServerError};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One connection's injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Forward faithfully.
    None,
    /// Close the client connection immediately on accept.
    Refuse,
    /// Accept and read, forward nothing, never answer: the client's
    /// socket timeout or deadline is the only way out.
    BlackHole,
    /// Hold the client's bytes this long before forwarding them.
    Delay(Duration),
    /// Sever both directions after forwarding this many request bytes —
    /// the worker sees a truncated frame, the client a dead connection.
    KillAfterRequestBytes(usize),
    /// Forward only the first N response bytes, then sever — the client
    /// sees a stream that dies mid-frame.
    TruncateResponseAfter(usize),
    /// Flip one bit in the response byte at this stream offset (the
    /// frame CRC must refuse the payload).
    CorruptResponseByte(usize),
}

struct Plan {
    /// Scripted faults, one per accepted connection, FIFO.
    queue: VecDeque<Fault>,
    /// Fallback when the queue is empty: `Some((rate, rng))` injects a
    /// random fault on that fraction of connections.
    random: Option<(f64, Jitter)>,
}

impl Plan {
    fn next(&mut self) -> Fault {
        if let Some(f) = self.queue.pop_front() {
            return f;
        }
        if let Some((rate, rng)) = self.random.as_mut() {
            if rng.chance(*rate) {
                return random_fault(rng);
            }
        }
        Fault::None
    }
}

/// Uniform draw over the fault palette (black holes included — they are
/// the expensive tail that hedging exists for).
fn random_fault(rng: &mut Jitter) -> Fault {
    match rng.range(0, 5) {
        0 => Fault::Refuse,
        1 => Fault::BlackHole,
        2 => Fault::Delay(Duration::from_millis(rng.range(20, 120))),
        3 => Fault::KillAfterRequestBytes(rng.range(1, 48) as usize),
        4 => Fault::TruncateResponseAfter(rng.range(1, 48) as usize),
        _ => Fault::CorruptResponseByte(rng.range(0, 512) as usize),
    }
}

/// A TCP proxy that forwards client connections to `upstream`, applying
/// one scripted [`Fault`] per connection. Dropping it severs every
/// proxied connection and stops the accept loop.
pub struct ChaosProxy {
    addr: SocketAddr,
    plan: Arc<Mutex<Plan>>,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<(u64, TcpStream)>>>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    connections: Arc<AtomicU64>,
    faults_injected: Arc<AtomicU64>,
}

impl ChaosProxy {
    /// Binds an ephemeral local port proxying to `upstream`. Faithful
    /// pass-through until faults are scripted.
    pub fn new(upstream: SocketAddr) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0))?;
        let addr = listener.local_addr()?;
        let plan = Arc::new(Mutex::new(Plan {
            queue: VecDeque::new(),
            random: None,
        }));
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<(u64, TcpStream)>>> = Arc::new(Mutex::new(Vec::new()));
        let connections = Arc::new(AtomicU64::new(0));
        let faults_injected = Arc::new(AtomicU64::new(0));

        let accept = {
            let plan = Arc::clone(&plan);
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            let connections = Arc::clone(&connections);
            let faults_injected = Arc::clone(&faults_injected);
            std::thread::spawn(move || {
                let mut next_id = 0u64;
                for client in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let client = match client {
                        Ok(c) => c,
                        Err(_) => continue,
                    };
                    connections.fetch_add(1, Ordering::Relaxed);
                    let fault = plan.lock().next();
                    if fault != Fault::None {
                        faults_injected.fetch_add(1, Ordering::Relaxed);
                    }
                    if fault == Fault::Refuse {
                        let _ = client.shutdown(Shutdown::Both);
                        continue;
                    }
                    let id = next_id;
                    next_id += 1;
                    if let Ok(dup) = client.try_clone() {
                        conns.lock().push((id, dup));
                    }
                    let conns_done = Arc::clone(&conns);
                    std::thread::spawn(move || {
                        proxy_connection(client, upstream, fault);
                        conns_done.lock().retain(|(cid, _)| *cid != id);
                    });
                }
            })
        };

        Ok(ChaosProxy {
            addr,
            plan,
            stop,
            conns,
            accept_thread: Some(accept),
            connections,
            faults_injected,
        })
    }

    /// The proxy's listening address (point `RemoteTransport` here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Scripts `fault` for the next accepted connection (FIFO; scripted
    /// faults run before the random plan).
    pub fn enqueue(&self, fault: Fault) {
        self.plan.lock().queue.push_back(fault);
    }

    /// Arms the random plan: each connection not covered by the script
    /// draws a fault with probability `rate`, reproducibly from `seed`.
    pub fn set_random(&self, rate: f64, seed: u64) {
        self.plan.lock().random = Some((rate, Jitter::from_seed(seed)));
    }

    /// Connections accepted so far.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Connections that drew a non-`None` fault.
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected.load(Ordering::Relaxed)
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr); // unblock accept
        for (_, c) in self.conns.lock().drain(..) {
            let _ = c.shutdown(Shutdown::Both);
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Pumps one proxied connection, applying `fault`.
fn proxy_connection(client: TcpStream, upstream: SocketAddr, fault: Fault) {
    if fault == Fault::BlackHole {
        // Swallow the request, answer nothing. The read keeps the
        // socket open until the client gives up and closes.
        let mut client = client;
        let mut sink = [0u8; 4096];
        while matches!(client.read(&mut sink), Ok(n) if n > 0) {}
        return;
    }
    let server = match TcpStream::connect(upstream) {
        Ok(s) => s,
        Err(_) => {
            let _ = client.shutdown(Shutdown::Both);
            return;
        }
    };
    client.set_nodelay(true).ok();
    server.set_nodelay(true).ok();

    let (c_read, c_write) = match (client.try_clone(), client) {
        (Ok(r), w) => (r, w),
        (Err(_), w) => {
            let _ = w.shutdown(Shutdown::Both);
            return;
        }
    };
    let (s_read, s_write) = match (server.try_clone(), server) {
        (Ok(r), w) => (r, w),
        (Err(_), w) => {
            let _ = w.shutdown(Shutdown::Both);
            return;
        }
    };

    // Request path: client → upstream.
    let req_fault = fault;
    let up = std::thread::spawn(move || {
        pump(c_read, s_write, |chunk, offset| match req_fault {
            Fault::Delay(d) => {
                if offset == 0 {
                    std::thread::sleep(d);
                }
                PumpStep::Forward(chunk.len())
            }
            Fault::KillAfterRequestBytes(n) => {
                if offset >= n {
                    PumpStep::Sever
                } else {
                    PumpStep::Forward(chunk.len().min(n - offset))
                }
            }
            _ => PumpStep::Forward(chunk.len()),
        });
    });

    // Response path: upstream → client.
    pump(s_read, c_write, |chunk, offset| match fault {
        Fault::TruncateResponseAfter(n) => {
            if offset >= n {
                PumpStep::Sever
            } else {
                PumpStep::Forward(chunk.len().min(n - offset))
            }
        }
        Fault::CorruptResponseByte(target) => {
            if (offset..offset + chunk.len()).contains(&target) {
                chunk[target - offset] ^= 0x01;
            }
            PumpStep::Forward(chunk.len())
        }
        _ => PumpStep::Forward(chunk.len()),
    });
    let _ = up.join();
}

enum PumpStep {
    /// Forward this many bytes of the chunk (then sever if short).
    Forward(usize),
    /// Sever both directions now.
    Sever,
}

/// Copies `from` → `to` through `act`, which may damage, truncate, or
/// sever the stream. Severing shuts down both sockets so the peer pump
/// exits too.
fn pump(mut from: TcpStream, mut to: TcpStream, mut act: impl FnMut(&mut [u8], usize) -> PumpStep) {
    let mut offset = 0usize;
    let mut buf = [0u8; 4096];
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let chunk = &mut buf[..n];
        match act(chunk, offset) {
            PumpStep::Forward(m) => {
                if to.write_all(&chunk[..m]).is_err() {
                    break;
                }
                offset += n;
                if m < n {
                    break; // partial forward = sever after the cut
                }
            }
            PumpStep::Sever => break,
        }
    }
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

/// Deterministic in-process fault injection over any inner transport:
/// fail the next N calls, or play dead until revived. Drives the
/// replica-failover unit tests without sockets.
pub struct FaultyTransport {
    inner: Arc<dyn ShardTransport>,
    fail_next: AtomicU64,
    dead: AtomicBool,
    calls: AtomicU64,
}

impl FaultyTransport {
    /// Wraps `inner`; faithful until told otherwise.
    pub fn new(inner: Arc<dyn ShardTransport>) -> Arc<FaultyTransport> {
        Arc::new(FaultyTransport {
            inner,
            fail_next: AtomicU64::new(0),
            dead: AtomicBool::new(false),
            calls: AtomicU64::new(0),
        })
    }

    /// Injects transport failures into the next `n` calls.
    pub fn fail_next(&self, n: u64) {
        self.fail_next.store(n, Ordering::SeqCst);
    }

    /// Plays dead (every call fails) until `set_dead(false)`.
    pub fn set_dead(&self, dead: bool) {
        self.dead.store(dead, Ordering::SeqCst);
    }

    /// Calls that reached this transport (injected failures included).
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    fn should_fail(&self) -> bool {
        if self.dead.load(Ordering::SeqCst) {
            return true;
        }
        self.fail_next
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
    }
}

impl ShardTransport for FaultyTransport {
    fn shard(&self) -> u32 {
        self.inner.shard()
    }

    fn call(&self, req: &Request, deadline: Option<std::time::Instant>) -> Result<Response> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        if self.should_fail() {
            return Err(ServerError::Io(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "injected fault",
            )));
        }
        self.inner.call(req, deadline)
    }

    fn describe(&self) -> String {
        format!("faulty({})", self.inner.describe())
    }

    fn pin_fingerprint(&self, fp: u64) {
        self.inner.pin_fingerprint(fp);
    }

    fn replica_health(&self) -> Option<Vec<ReplicaHealthInfo>> {
        self.inner.replica_health()
    }

    fn attach_counters(&self, counters: &Arc<ServerCounters>) {
        self.inner.attach_counters(counters);
    }
}
