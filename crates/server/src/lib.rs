//! `tale-server`: the networked query service over the NH-Index shard
//! seam.
//!
//! The sharded database (`tale-shard`) already splits a corpus into
//! independent per-shard index directories and merges per-shard partials
//! deterministically — bit-identical to a single index at any shard or
//! thread count. This crate moves that scatter/gather boundary behind a
//! network protocol so shards can live on different hosts:
//!
//! * [`wire`] — versioned, length-prefixed request/response framing over
//!   `std::net::TcpStream`, JSON payloads, magic + version handshake that
//!   refuses protocol skew. Scores cross as IEEE-754 bit patterns so the
//!   remote merge is bit-exact.
//! * [`engine`] — [`ShardEngine`]: one shard's database + NH-Index +
//!   result cache behind an RwLock, serving batch queries, mutations
//!   (insert/remove/fold), stats and explain.
//! * [`worker`] — `tale-server shard`: a TCP loop serving one
//!   [`ShardEngine`], one handler thread per connection with a bounded
//!   connection budget.
//! * [`transport`] — the [`ShardTransport`] seam: [`LocalTransport`]
//!   (in-process, the N=1/loopback case) and [`RemoteTransport`]
//!   (pooled persistent connections, handshake verification,
//!   deadline-capped reconnect with decorrelated-jitter backoff).
//! * [`replica`] — [`ReplicaSet`]: N transports serving one shard
//!   behind a single [`ShardTransport`], with per-replica circuit
//!   breakers fed by request outcomes and a background prober, bounded
//!   retries + failover for idempotent requests, and p95-triggered
//!   hedging. Mutations go to the primary exactly once.
//! * [`chaos`] — fault injection: a deterministic [`FaultyTransport`]
//!   and a TCP [`ChaosProxy`] (refuse/black-hole/delay/kill-mid-frame/
//!   truncate/corrupt) driving the chaos test sweep and
//!   `experiments chaos`.
//! * [`frontend`] — `tale-server frontend`: fans a client batch out to
//!   one transport per shard, re-ranks the per-shard partials through
//!   the engine's own comparator (`exec::rank_matches`), and applies
//!   admission control ([`admission`]): a bounded in-flight gate with a
//!   bounded wait queue that sheds overload with an explicit
//!   `Overloaded` response — never a silent drop — and propagates
//!   per-request deadlines to workers.
//! * [`counters`] — server observability: accepted/active/shed
//!   connections, queue-depth high-water marks, per-endpoint request
//!   counts, bytes in/out; surfaced on the `stats` endpoint and by
//!   `tale-cli server-stats`.
//!
//! Why the remote path stays bit-identical: each worker runs the full
//! engine pipeline on its one shard via `exec::run_batch` (the N=1 case)
//! and returns its *ranked, top-K-truncated* partials. The gather
//! comparator — score descending, graph id ascending — is a total order
//! over disjoint per-shard graph sets, so concatenating per-shard ranked
//! lists and re-ranking yields exactly the sequence a single in-process
//! run produces, and a shard's own top-K always contains that shard's
//! contribution to the global top-K. The integration tests assert this
//! across shard counts, thread counts, and plan modes.

pub mod admission;
pub mod backoff;
pub mod chaos;
pub mod counters;
pub mod engine;
pub mod frontend;
pub mod replica;
pub mod transport;
pub mod wire;
pub mod worker;

pub use admission::{AdmissionGate, AdmissionOutcome, GateConfig};
pub use chaos::{ChaosProxy, Fault, FaultyTransport};
pub use counters::{ServerCounters, ServerStatsSnapshot};
pub use engine::ShardEngine;
pub use frontend::{Frontend, FrontendConfig};
pub use replica::{ReplicaConfig, ReplicaSet};
pub use transport::{LocalTransport, RemoteConfig, RemoteTransport, ShardTransport};
pub use wire::{Request, Response, WireError, WireGraph, WireOptions, PROTOCOL_VERSION};
pub use worker::{serve_shard, ServerHandle, WorkerConfig};

/// Errors surfaced by the serving layer.
#[derive(Debug)]
pub enum ServerError {
    /// Framing/transport failure.
    Wire(wire::WireError),
    /// Socket-level failure outside the framing layer.
    Io(std::io::Error),
    /// The peer returned a typed error response.
    Remote {
        /// Machine-readable code ([`wire::codes`]).
        code: String,
        /// Human-readable detail.
        message: String,
    },
    /// Request was malformed or semantically invalid.
    BadRequest(String),
    /// Admission control shed the request.
    Overloaded(String),
    /// The request's deadline expired before it could execute.
    DeadlineExceeded,
    /// Sharding/engine failure underneath the server.
    Shard(tale_shard::ShardError),
    /// The peer's handshake didn't match expectations (wrong shard,
    /// vocabulary fingerprint mismatch, …).
    Handshake(String),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Wire(e) => write!(f, "wire: {e}"),
            ServerError::Io(e) => write!(f, "io: {e}"),
            ServerError::Remote { code, message } => write!(f, "remote error [{code}]: {message}"),
            ServerError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServerError::Overloaded(m) => write!(f, "overloaded: {m}"),
            ServerError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServerError::Shard(e) => write!(f, "shard: {e}"),
            ServerError::Handshake(m) => write!(f, "handshake: {m}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Wire(e) => Some(e),
            ServerError::Io(e) => Some(e),
            ServerError::Shard(e) => Some(e),
            _ => None,
        }
    }
}

impl From<wire::WireError> for ServerError {
    fn from(e: wire::WireError) -> Self {
        ServerError::Wire(e)
    }
}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<tale_shard::ShardError> for ServerError {
    fn from(e: tale_shard::ShardError) -> Self {
        ServerError::Shard(e)
    }
}

impl ServerError {
    /// Maps the failure onto a wire error response.
    pub fn to_error_response(&self) -> wire::ErrorResponse {
        let (code, message) = match self {
            ServerError::Overloaded(m) => (wire::codes::OVERLOADED, m.clone()),
            ServerError::DeadlineExceeded => (wire::codes::DEADLINE_EXCEEDED, self.to_string()),
            ServerError::BadRequest(m) => (wire::codes::BAD_REQUEST, m.clone()),
            ServerError::Remote { code, message } => {
                return wire::ErrorResponse {
                    code: code.clone(),
                    message: message.clone(),
                }
            }
            other => (wire::codes::INTERNAL, other.to_string()),
        };
        wire::ErrorResponse {
            code: code.to_owned(),
            message,
        }
    }

    /// Reconstructs a typed failure from a peer's error response, so
    /// `Overloaded`/`DeadlineExceeded` survive a network hop intact.
    pub fn from_error_response(resp: &wire::ErrorResponse) -> ServerError {
        match resp.code.as_str() {
            wire::codes::OVERLOADED => ServerError::Overloaded(resp.message.clone()),
            wire::codes::DEADLINE_EXCEEDED => ServerError::DeadlineExceeded,
            wire::codes::BAD_REQUEST => ServerError::BadRequest(resp.message.clone()),
            _ => ServerError::Remote {
                code: resp.code.clone(),
                message: resp.message.clone(),
            },
        }
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, ServerError>;
