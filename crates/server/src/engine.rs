//! [`ShardEngine`]: one shard's slice of a sharded TALE database,
//! wrapped for serving.
//!
//! A worker process owns exactly one shard of a database built by
//! `ShardedTaleDatabase::build` (or `tale-cli build --shards N`): the
//! shared `graphs.json` + `shards.json` at the root, and its own
//! `shard-NNN/` NH-Index directory. Queries run the *complete* engine
//! pipeline via `exec::run_batch` with a single reader — the N=1 case of
//! the scatter/gather the in-process sharded database uses — so each
//! worker's partials are ranked exactly as a local run would rank that
//! shard's contribution. The frontend's re-rank of concatenated partials
//! is then bit-identical to local execution (see `exec::rank_matches`).
//!
//! Mutations are served at the worker level with the same journaling
//! discipline as [`tale_shard::ShardedTaleDatabase::insert_graph`]:
//! journal → `graphs.json` → WAL-protected index commit → manifest →
//! journal clear. A `fold` rebuilds the shard's postings from its live
//! graphs ([`tale_nhindex::NhIndex::build_subset`] into a temp dir +
//! atomic rename swap) and re-applies the tombstone *markers* — dead
//! graphs still hold ids in the shared database, so the markers persist
//! while their postings are reclaimed, matching the MVCC fold semantics.

use crate::wire::{
    ExplainRequest, FoldRequest, InsertRequest, QueryBatchRequest, RemoveRequest, WireExecStats,
    WireMatch, WireMatches,
};
use crate::{Result, ServerError};
use parking_lot::RwLock;
use std::path::{Path, PathBuf};
use tale::engine::cache::{ResultCache, DEFAULT_CACHE_ENTRIES};
use tale::engine::exec;
use tale::journal::{MutationJournal, PendingMutation};
use tale::BatchStats;
use tale_graph::{Graph, GraphDb, GraphId};
use tale_nhindex::{IndexReader, NhIndex, NhIndexConfig};
use tale_shard::{vocab_fingerprint, ShardManifest};

const DB_FILE: &str = "graphs.json";

/// Page-cache / I/O sizing for a worker's index.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Buffer-pool frames for this shard's page files.
    pub buffer_frames: usize,
    /// Async read-path worker threads (0 = no prefetching).
    pub io_workers: usize,
    /// Prefetch staging capacity in pages.
    pub prefetch_pages: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            buffer_frames: 4096,
            io_workers: tale_nhindex::DEFAULT_IO_WORKERS,
            prefetch_pages: tale_nhindex::DEFAULT_PREFETCH_PAGES,
        }
    }
}

struct EngineState {
    db: GraphDb,
    index: NhIndex,
    manifest: ShardManifest,
}

/// One shard's database + index + result cache, behind an RwLock so
/// concurrent connection handlers can query in parallel while mutations
/// serialize.
pub struct ShardEngine {
    root: PathBuf,
    shard: u32,
    cfg: EngineConfig,
    state: RwLock<EngineState>,
    cache: ResultCache,
}

impl ShardEngine {
    /// Opens shard `shard` of the sharded database rooted at `root`
    /// (the directory holding `graphs.json` and `shards.json`), running
    /// the shard's own WAL recovery if needed.
    pub fn open(root: &Path, shard: u32, cfg: EngineConfig) -> Result<ShardEngine> {
        let manifest = ShardManifest::load(root)?;
        if shard >= manifest.shard_count {
            return Err(ServerError::BadRequest(format!(
                "shard {shard} out of range: manifest has {} shards",
                manifest.shard_count
            )));
        }
        let db: GraphDb =
            tale_graph::io::load_json(&root.join(DB_FILE)).map_err(tale_shard::ShardError::from)?;
        let fp = vocab_fingerprint(&db);
        if let Some(&recorded) = manifest.vocab_fingerprints.get(shard as usize) {
            if recorded != fp {
                return Err(ServerError::Handshake(format!(
                    "vocabulary fingerprint mismatch: graphs.json has {fp:#018x}, \
                     manifest recorded {recorded:#018x} for shard {shard}"
                )));
            }
        }
        let shard_dir = ShardManifest::shard_dir(root, shard);
        let (index, _recovery) = NhIndex::open_with_recovery_io(
            &shard_dir,
            cfg.buffer_frames,
            cfg.io_workers,
            cfg.prefetch_pages,
        )
        .map_err(|source| tale_shard::ShardError::Shard { shard, source })?;
        Ok(ShardEngine {
            root: root.to_owned(),
            shard,
            cfg,
            state: RwLock::new(EngineState {
                db,
                index,
                manifest,
            }),
            cache: ResultCache::new(DEFAULT_CACHE_ENTRIES),
        })
    }

    /// The shard this engine serves.
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// Shards in the layout this engine belongs to.
    pub fn shard_count(&self) -> u32 {
        self.state.read().manifest.shard_count
    }

    /// Graphs in the shared database (all shards).
    pub fn graphs(&self) -> u64 {
        self.state.read().db.len() as u64
    }

    /// FNV-64 fingerprint of the database's label vocabulary.
    pub fn vocab_fingerprint(&self) -> u64 {
        vocab_fingerprint(&self.state.read().db)
    }

    /// Runs a wire batch through the full engine pipeline on this one
    /// shard and returns ranked, top-K-truncated partials.
    pub fn query_batch(
        &self,
        req: &QueryBatchRequest,
    ) -> Result<(Vec<WireMatches>, WireExecStats)> {
        let opts = req.options.to_options()?;
        let st = self.state.read();
        let queries: Vec<Graph> = req
            .queries
            .iter()
            .map(|w| w.to_query_graph(&st.db))
            .collect::<Result<_>>()?;
        let query_refs: Vec<&Graph> = queries.iter().collect();
        let readers: [&dyn IndexReader; 1] = [&st.index];
        let caches = [&self.cache];
        let (outputs, batch) = exec::run_batch(
            &st.db,
            &readers,
            opts.use_cache.then_some(&caches[..]),
            &query_refs,
            &opts,
        )
        .map_err(tale_shard::ShardError::from)?;
        let stats = exec_stats_of(&batch);
        let results = outputs
            .into_iter()
            .map(|ms| WireMatches {
                matches: ms.iter().map(WireMatch::from_match).collect(),
            })
            .collect();
        Ok((results, stats))
    }

    /// Renders the plan this shard's engine would choose.
    pub fn explain(&self, req: &ExplainRequest) -> Result<String> {
        let opts = req.options.to_options()?;
        let st = self.state.read();
        let query = req.query.to_query_graph(&st.db)?;
        let readers: [&dyn IndexReader; 1] = [&st.index];
        Ok(tale::engine::plan::plan_report(&st.db, &readers, &query, &opts).render())
    }

    /// Inserts a graph into this shard, journaled exactly like the
    /// in-process sharded database: stage → `graphs.json` → WAL-protected
    /// index commit → manifest rewrite → clear. Returns the new id.
    ///
    /// Only meaningful while this worker is the sole writer of the
    /// database root (the frontend enforces this by refusing to forward
    /// mutations in multi-shard deployments).
    pub fn insert(&self, req: &InsertRequest) -> Result<GraphId> {
        let mut st = self.state.write();
        let st = &mut *st;
        let g = req.graph.to_inserted_graph(&mut st.db)?;
        let gid = st.db.insert(req.name.clone(), g);
        if gid.idx() != st.manifest.assignment.len() {
            return Err(ServerError::BadRequest(format!(
                "insert of graph {} but manifest maps {} graphs",
                gid.0,
                st.manifest.assignment.len()
            )));
        }
        let journal = MutationJournal::new(&self.root);
        let stage = |st: &mut EngineState| -> tale_shard::Result<()> {
            journal.stage(
                &self.root.join(DB_FILE),
                PendingMutation {
                    pre_generation: st.index.generation(),
                    shard: Some(self.shard),
                },
            )?;
            tale_graph::io::save_json(&st.db, &self.root.join(DB_FILE))?;
            st.index.insert_graph(&st.db, gid)?;
            st.manifest.assignment.push(self.shard);
            let fp = vocab_fingerprint(&st.db);
            st.manifest.vocab_fingerprints = vec![fp; st.manifest.shard_count as usize];
            st.manifest.save(&self.root)?;
            journal.clear()?;
            Ok(())
        };
        stage(st)?;
        Ok(gid)
    }

    /// Tombstones a graph this shard owns. Returns the owning shard in
    /// `Err` position semantics: `Ok(None)` = removed here, `Ok(Some(s))`
    /// = refused, shard `s` owns it (the caller reports the owner).
    pub fn remove(&self, req: &RemoveRequest) -> Result<Option<u32>> {
        let mut st = self.state.write();
        let st = &mut *st;
        let gid = GraphId(req.graph);
        match st.manifest.shard_of(gid) {
            None => Err(ServerError::BadRequest(format!(
                "graph {} is not in the shard map",
                req.graph
            ))),
            Some(s) if s != self.shard => Ok(Some(s)),
            Some(_) => {
                st.index
                    .remove_graph(gid, st.db.effective_vocab_size() as u64)
                    .map_err(|source| tale_shard::ShardError::Shard {
                        shard: self.shard,
                        source,
                    })?;
                self.cache.evict_graph(gid);
                Ok(None)
            }
        }
    }

    /// Compacts this shard: rebuilds its postings from the live (not
    /// tombstoned) graphs into a temp directory, swaps it in with atomic
    /// renames, reopens, and re-applies the tombstone markers (the dead
    /// graphs still hold ids in the shared database). Returns
    /// `(live_graphs, tombstones_whose_postings_were_dropped)`.
    pub fn fold(&self, _req: &FoldRequest) -> Result<(u64, u64)> {
        let mut st = self.state.write();
        let st = &mut *st;
        let owned = st.manifest.graphs_of(self.shard);
        let (live, dead): (Vec<GraphId>, Vec<GraphId>) =
            owned.into_iter().partition(|&g| !st.index.is_removed(g));
        let config = NhIndexConfig {
            sbit: st.index.scheme().sbit,
            buffer_frames: self.cfg.buffer_frames,
            parallel_build: true,
            bloom_hashes: st.index.scheme().hashes,
            use_edge_labels: st.index.edge_labels(),
            io_workers: self.cfg.io_workers,
            prefetch_pages: self.cfg.prefetch_pages,
        };
        let shard_dir = ShardManifest::shard_dir(&self.root, self.shard);
        let tmp = shard_dir.with_extension("fold-tmp");
        let old = shard_dir.with_extension("fold-old");
        for leftover in [&tmp, &old] {
            if leftover.exists() {
                std::fs::remove_dir_all(leftover).map_err(tale_shard::ShardError::from)?;
            }
        }
        let built = NhIndex::build_subset(&tmp, &st.db, &config, &live).map_err(|source| {
            let _ = std::fs::remove_dir_all(&tmp);
            tale_shard::ShardError::Shard {
                shard: self.shard,
                source,
            }
        })?;
        drop(built); // close the freshly built files before the swap
                     // Swap: old dir aside, new dir in. The open index's fds keep
                     // working across the rename (same inodes); it is replaced below.
        std::fs::rename(&shard_dir, &old).map_err(tale_shard::ShardError::from)?;
        std::fs::rename(&tmp, &shard_dir).map_err(tale_shard::ShardError::from)?;
        let (mut index, _recovery) = NhIndex::open_with_recovery_io(
            &shard_dir,
            self.cfg.buffer_frames,
            self.cfg.io_workers,
            self.cfg.prefetch_pages,
        )
        .map_err(|source| tale_shard::ShardError::Shard {
            shard: self.shard,
            source,
        })?;
        // Re-apply tombstone markers: their postings are gone, but the
        // ids remain dead in the shared database (MVCC fold semantics —
        // repeated folds keep reporting them until ids are compacted).
        let vocab = st.db.effective_vocab_size() as u64;
        for gid in &dead {
            index
                .remove_graph(*gid, vocab)
                .map_err(|source| tale_shard::ShardError::Shard {
                    shard: self.shard,
                    source,
                })?;
        }
        st.index = index; // drops the pre-fold index, closing old fds
        std::fs::remove_dir_all(&old).map_err(tale_shard::ShardError::from)?;
        // The rebuilt index restarts its generation counter, which could
        // collide with keys cached under the old counter — drop them all.
        self.cache.clear();
        Ok((live.len() as u64, dead.len() as u64))
    }
}

/// Flattens the engine's batch statistics into the wire form.
fn exec_stats_of(batch: &BatchStats) -> WireExecStats {
    let mut s = WireExecStats {
        probes: batch.probes_issued,
        shards_pruned: batch.shards_pruned,
        wall_secs: batch.stages.total_secs,
        ..WireExecStats::default()
    };
    for q in &batch.per_query {
        s.keys_scanned += q.keys_scanned;
        s.postings_fetched += q.postings_fetched;
        s.postings_filtered += q.postings_filtered;
        s.rows_examined += q.rows_examined;
        s.candidates += q.candidates;
        s.matches += q.matches as u64;
        s.cache_hits += q.cache_hit as u64;
    }
    s
}
