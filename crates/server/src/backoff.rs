//! Decorrelated-jitter backoff and the tiny PRNG behind it.
//!
//! Deterministic exponential backoff synchronizes clients: after a
//! worker restart, every frontend that lost a connection re-dials on
//! the same schedule and the worker takes the whole thundering herd at
//! once. Jitter decorrelates them. The policy here is the classic
//! "decorrelated jitter": each delay is drawn uniformly from
//! `[base, prev * 3]` and capped, which spreads retries while still
//! backing off exponentially in expectation.
//!
//! The PRNG is a self-contained xorshift64* — statistical quality is
//! irrelevant for sleep times, and keeping it local avoids promoting
//! the dev-only `rand` crate into a library dependency. Seeding goes
//! through [`std::collections::hash_map::RandomState`], the standard
//! library's per-process random source.

use std::hash::{BuildHasher, Hasher};
use std::time::{Duration, Instant};

/// A tiny xorshift64* generator for backoff jitter and chaos draws.
#[derive(Debug, Clone)]
pub struct Jitter(u64);

impl Default for Jitter {
    fn default() -> Self {
        Self::new()
    }
}

impl Jitter {
    /// A generator seeded from the process's random hasher keys.
    pub fn new() -> Jitter {
        let seed = std::collections::hash_map::RandomState::new()
            .build_hasher()
            .finish();
        Jitter::from_seed(seed)
    }

    /// A generator with a fixed seed (deterministic tests and the chaos
    /// harness's reproducible fault schedules).
    pub fn from_seed(seed: u64) -> Jitter {
        Jitter(seed | 1) // xorshift state must be nonzero
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `[lo, hi]` (inclusive). `lo > hi` clamps to `lo`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.next_u64() % (hi - lo + 1)
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 <= p
    }

    /// Next decorrelated-jitter delay: uniform in `[base, prev * 3]`,
    /// capped at `cap`.
    pub fn decorrelated(&mut self, base: Duration, prev: Duration, cap: Duration) -> Duration {
        let base_us = base.as_micros().max(1) as u64;
        let hi_us = (prev.as_micros() as u64).saturating_mul(3).max(base_us);
        let drawn = Duration::from_micros(self.range(base_us, hi_us));
        drawn.min(cap)
    }
}

/// Sleeps for `delay`, truncated so the sleep never runs past
/// `deadline`. Returns `false` — without sleeping — when the deadline
/// has already passed, so retry loops stop burning budget the moment
/// it's gone.
pub fn sleep_capped(delay: Duration, deadline: Option<Instant>) -> bool {
    let delay = match deadline {
        Some(d) => {
            let now = Instant::now();
            if now >= d {
                return false;
            }
            delay.min(d - now)
        }
        None => delay,
    };
    std::thread::sleep(delay);
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decorrelated_stays_in_bounds() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(200);
        let mut j = Jitter::from_seed(42);
        let mut prev = base;
        for _ in 0..1000 {
            let d = j.decorrelated(base, prev, cap);
            assert!(d >= base.min(cap), "below base: {d:?}");
            assert!(d <= cap, "above cap: {d:?}");
            prev = d;
        }
    }

    #[test]
    fn draws_vary() {
        let mut j = Jitter::from_seed(7);
        let a: Vec<u64> = (0..8).map(|_| j.range(0, 1000)).collect();
        assert!(a.windows(2).any(|w| w[0] != w[1]), "constant draws: {a:?}");
        // fixed seed → reproducible
        let mut k = Jitter::from_seed(7);
        let b: Vec<u64> = (0..8).map(|_| k.range(0, 1000)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn expired_deadline_refuses_to_sleep() {
        let past = Instant::now() - Duration::from_millis(1);
        assert!(!sleep_capped(Duration::from_secs(5), Some(past)));
        assert!(sleep_capped(Duration::from_micros(10), None));
    }
}
