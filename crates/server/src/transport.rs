//! The [`ShardTransport`] seam: how the frontend reaches one shard.
//!
//! [`LocalTransport`] dispatches into a [`crate::engine::ShardEngine`] in-process
//! through the exact worker code path ([`crate::worker::Service`]) — the
//! N=1/loopback case. [`RemoteTransport`] speaks the wire protocol to a
//! `tale-server shard` worker over persistent pooled `TcpStream`s: each
//! new connection is verified with a `Hello` handshake (protocol
//! version, shard identity, vocabulary fingerprint) before it serves
//! work, dead connections are re-dialed with exponential backoff, and a
//! failure mid-request surfaces as a typed error the frontend converts
//! to `ShardError::Transport` — the whole batch fails deterministically,
//! never a partial merge.

use crate::backoff::{sleep_capped, Jitter};
use crate::counters::ServerCounters;
use crate::wire::{self, HelloRequest, Request, Response};
use crate::worker::Service;
use crate::{Result, ServerError};
use parking_lot::Mutex;
use std::io::BufWriter;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the frontend reaches one shard. `call` is synchronous; the
/// frontend scatters calls across shards on its own threads.
pub trait ShardTransport: Send + Sync {
    /// The shard this transport serves.
    fn shard(&self) -> u32;
    /// Round-trips one request. Implementations must either return the
    /// peer's response (including typed error responses) or fail with a
    /// transport-level [`ServerError`]. `deadline` bounds everything the
    /// transport does on the caller's behalf — dial backoff, socket
    /// waits, retries, hedges; `None` means the implementation's own
    /// idle timeouts are the only bound.
    fn call(&self, req: &Request, deadline: Option<Instant>) -> Result<Response>;
    /// Human-oriented endpoint description (for error messages).
    fn describe(&self) -> String;
    /// Pins the vocabulary fingerprint the peer(s) must report on every
    /// future handshake. Default no-op: in-process transports share the
    /// frontend's address space and can't disagree with themselves.
    fn pin_fingerprint(&self, _fp: u64) {}
    /// Per-replica breaker health, when this transport fronts a replica
    /// group ([`crate::replica::ReplicaSet`]). `None` = not replicated.
    fn replica_health(&self) -> Option<Vec<wire::ReplicaHealthInfo>> {
        None
    }
    /// Routes fault-handling counters (retries, failovers, hedges) to
    /// the serving process's [`ServerCounters`]. Default no-op for
    /// transports that never retry.
    fn attach_counters(&self, _counters: &Arc<ServerCounters>) {}
}

/// In-process transport: the frontend and the "worker" share an address
/// space. Same dispatch code as a TCP worker, minus the socket.
pub struct LocalTransport {
    ctx: crate::worker::ServerContext,
    shard: u32,
}

impl LocalTransport {
    /// Wraps `engine` (and its gate/counters) as a transport.
    pub fn new(ctx: crate::worker::ServerContext) -> LocalTransport {
        let shard = ctx.engine.shard();
        LocalTransport { ctx, shard }
    }
}

impl ShardTransport for LocalTransport {
    fn shard(&self) -> u32 {
        self.shard
    }
    fn call(&self, req: &Request, _deadline: Option<Instant>) -> Result<Response> {
        // The engine's own deadline handling sees `req.deadline_ms`;
        // there is no transport wait to bound in-process.
        Ok(self.ctx.handle(req, Instant::now()))
    }
    fn describe(&self) -> String {
        format!("local shard {}", self.shard)
    }
}

/// Remote transport tuning.
#[derive(Debug, Clone, Copy)]
pub struct RemoteConfig {
    /// Dial attempts before a connect error surfaces.
    pub connect_attempts: u32,
    /// Base retry/reconnect backoff. Actual delays are
    /// decorrelated-jitter draws from `[backoff, prev * 3]` so a fleet
    /// of frontends doesn't re-dial a restarted worker in lockstep.
    pub backoff: Duration,
    /// Ceiling on any single backoff sleep.
    pub backoff_cap: Duration,
    /// Idle connections kept pooled per transport.
    pub pool_size: usize,
    /// Round-trip retries for idempotent requests on a dead pooled
    /// connection (mutations are never resent after a send).
    pub retries: u32,
    /// Socket read/write timeout when the request carries no deadline;
    /// with a deadline, the effective timeout is the remaining budget
    /// (capped by this). `None` = block forever — only sensible on a
    /// trusted loopback.
    pub io_timeout: Option<Duration>,
}

impl Default for RemoteConfig {
    fn default() -> Self {
        RemoteConfig {
            connect_attempts: 5,
            backoff: Duration::from_millis(20),
            backoff_cap: Duration::from_millis(500),
            pool_size: 4,
            retries: 2,
            io_timeout: Some(Duration::from_secs(5)),
        }
    }
}

struct Conn {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
}

/// TCP transport to one `tale-server shard` worker, with a persistent
/// connection pool and handshake verification.
pub struct RemoteTransport {
    addr: SocketAddr,
    shard: u32,
    cfg: RemoteConfig,
    /// Vocabulary fingerprint every worker must report (all shards serve
    /// slices of the same database). `None` = accept and record.
    expected_fingerprint: Mutex<Option<u64>>,
    idle: Mutex<Vec<Conn>>,
    jitter: Mutex<Jitter>,
    counters: Mutex<Option<Arc<ServerCounters>>>,
}

impl RemoteTransport {
    /// Creates a transport for shard `shard` at `addr`. Dials lazily —
    /// the first `call` (or [`RemoteTransport::handshake`]) connects.
    pub fn new(addr: SocketAddr, shard: u32, cfg: RemoteConfig) -> Arc<RemoteTransport> {
        Arc::new(RemoteTransport {
            addr,
            shard,
            cfg,
            expected_fingerprint: Mutex::new(None),
            idle: Mutex::new(Vec::new()),
            jitter: Mutex::new(Jitter::new()),
            counters: Mutex::new(None),
        })
    }

    /// Dials and verifies one connection, returning the worker's hello.
    /// Useful at frontend startup to fail fast on a misconfigured shard
    /// list.
    pub fn handshake(&self) -> Result<wire::HelloResponse> {
        let mut conn = self.dial(None)?;
        self.arm_io_timeout(&conn, None)?;
        let hello = self.verify(&mut conn)?;
        self.check_in(conn);
        Ok(hello)
    }

    /// Pins the vocabulary fingerprint this worker must report (checked
    /// on every new connection's handshake).
    pub fn expect_fingerprint(&self, fp: u64) {
        *self.expected_fingerprint.lock() = Some(fp);
    }

    /// Dials with decorrelated-jitter backoff between attempts. Total
    /// reconnect wait is capped by `deadline`: once the request's budget
    /// is spent, the dial loop stops instead of sleeping past it.
    fn dial(&self, deadline: Option<Instant>) -> Result<Conn> {
        let mut delay = self.cfg.backoff;
        let mut last: Option<std::io::Error> = None;
        for attempt in 0..self.cfg.connect_attempts.max(1) {
            if attempt > 0 {
                delay =
                    self.jitter
                        .lock()
                        .decorrelated(self.cfg.backoff, delay, self.cfg.backoff_cap);
                if !sleep_capped(delay, deadline) {
                    break; // deadline spent mid-backoff
                }
            }
            match TcpStream::connect(self.addr) {
                Ok(stream) => {
                    stream.set_nodelay(true).ok();
                    let writer = stream.try_clone()?;
                    return Ok(Conn {
                        reader: stream,
                        writer: BufWriter::new(writer),
                    });
                }
                Err(e) => last = Some(e),
            }
        }
        Err(ServerError::Io(last.unwrap_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "request deadline spent before a connection could be dialed",
            )
        })))
    }

    /// Runs the hello handshake on a fresh connection and verifies the
    /// peer is the worker this transport expects.
    fn verify(&self, conn: &mut Conn) -> Result<wire::HelloResponse> {
        let hello = Request::Hello(HelloRequest {
            protocol: wire::PROTOCOL_VERSION,
        });
        let resp = roundtrip(conn, &hello)?;
        let h = match resp {
            Response::Hello(h) => h,
            Response::Error(e) => return Err(ServerError::from_error_response(&e)),
            _ => {
                return Err(ServerError::Handshake(
                    "peer answered hello with a non-hello response".into(),
                ))
            }
        };
        if h.protocol != wire::PROTOCOL_VERSION {
            return Err(ServerError::Handshake(format!(
                "protocol skew: worker v{}, frontend v{}",
                h.protocol,
                wire::PROTOCOL_VERSION
            )));
        }
        if h.shard != self.shard {
            return Err(ServerError::Handshake(format!(
                "{} serves shard {}, expected shard {}",
                self.addr, h.shard, self.shard
            )));
        }
        let mut expected = self.expected_fingerprint.lock();
        match *expected {
            Some(fp) if fp != h.vocab_fingerprint => {
                return Err(ServerError::Handshake(format!(
                    "vocabulary fingerprint mismatch at {}: worker {:#018x}, expected {:#018x}",
                    self.addr, h.vocab_fingerprint, fp
                )));
            }
            Some(_) => {}
            None => *expected = Some(h.vocab_fingerprint),
        }
        Ok(h)
    }

    fn check_out(&self, deadline: Option<Instant>) -> Result<Conn> {
        if let Some(conn) = self.idle.lock().pop() {
            return Ok(conn);
        }
        let mut conn = self.dial(deadline)?;
        // Timeout armed before the handshake too: a peer that accepts
        // and then black-holes must not hang the verify read.
        self.arm_io_timeout(&conn, deadline)?;
        self.verify(&mut conn)?;
        Ok(conn)
    }

    /// Bounds the next socket waits: the remaining deadline budget,
    /// capped by the configured idle timeout. A request with no deadline
    /// gets the idle timeout alone.
    fn arm_io_timeout(&self, conn: &Conn, deadline: Option<Instant>) -> Result<()> {
        let remaining = deadline.map(|d| d.saturating_duration_since(Instant::now()));
        if remaining == Some(Duration::ZERO) {
            return Err(ServerError::DeadlineExceeded);
        }
        let effective = match (remaining, self.cfg.io_timeout) {
            (Some(r), Some(idle)) => Some(r.min(idle)),
            (Some(r), None) => Some(r),
            (None, idle) => idle,
        };
        // A zero Duration means "no timeout" to the socket API; the
        // ZERO check above already refused that case.
        conn.reader.set_read_timeout(effective)?;
        conn.reader.set_write_timeout(effective)?;
        Ok(())
    }

    fn check_in(&self, conn: Conn) {
        let mut idle = self.idle.lock();
        if idle.len() < self.cfg.pool_size {
            idle.push(conn);
        }
    }
}

fn roundtrip(conn: &mut Conn, req: &Request) -> Result<Response> {
    wire::write_request(&mut conn.writer, req)?;
    match wire::read_response(&mut conn.reader)? {
        Some((resp, _)) => Ok(resp),
        None => Err(ServerError::Wire(wire::WireError::Truncated)),
    }
}

/// Requests that are safe to resend after a connection died mid-flight.
/// Mutations are **never** resent: a worker may have applied one whose
/// acknowledgement was lost, and resending would apply it twice.
pub(crate) fn idempotent(req: &Request) -> bool {
    !matches!(
        req,
        Request::Insert(_) | Request::Remove(_) | Request::Fold(_)
    )
}

impl ShardTransport for RemoteTransport {
    fn shard(&self) -> u32 {
        self.shard
    }

    fn call(&self, req: &Request, deadline: Option<Instant>) -> Result<Response> {
        let retries = if idempotent(req) { self.cfg.retries } else { 0 };
        let mut delay = self.cfg.backoff;
        let mut attempt = 0;
        loop {
            // A connection that fails mid-request is dropped, not pooled:
            // its stream state is unknowable.
            let result = self.check_out(deadline).and_then(|mut conn| {
                self.arm_io_timeout(&conn, deadline)?;
                match roundtrip(&mut conn, req) {
                    Ok(resp) => {
                        self.check_in(conn);
                        Ok(resp)
                    }
                    Err(e) => Err(e),
                }
            });
            match result {
                Ok(resp) => return Ok(resp),
                Err(e) => {
                    // Handshake refusals and typed remote errors are
                    // answers, not transport flakes — never retried.
                    let transient = matches!(e, ServerError::Io(_) | ServerError::Wire(_));
                    if !transient || attempt >= retries {
                        return Err(e);
                    }
                    attempt += 1;
                    if let Some(c) = self.counters.lock().as_ref() {
                        c.retries.fetch_add(1, Ordering::Relaxed);
                    }
                    delay = self.jitter.lock().decorrelated(
                        self.cfg.backoff,
                        delay,
                        self.cfg.backoff_cap,
                    );
                    if !sleep_capped(delay, deadline) {
                        return Err(e); // budget spent; surface the last failure
                    }
                }
            }
        }
    }

    fn describe(&self) -> String {
        format!("shard {} at {}", self.shard, self.addr)
    }

    fn pin_fingerprint(&self, fp: u64) {
        self.expect_fingerprint(fp);
    }

    fn attach_counters(&self, counters: &Arc<ServerCounters>) {
        *self.counters.lock() = Some(Arc::clone(counters));
    }
}
