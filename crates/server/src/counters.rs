//! Server observability counters.
//!
//! One [`ServerCounters`] instance lives for the life of a serving
//! process (worker or frontend); connection handlers bump it with
//! relaxed atomics. The `stats` endpoint returns a
//! [`ServerStatsSnapshot`], which also lands in `BENCH_serve.json` and
//! is what `tale-cli server-stats` pretty-prints.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Live, lock-free server counters.
#[derive(Debug)]
pub struct ServerCounters {
    started: Instant,
    /// Connections accepted over the process lifetime.
    pub conns_accepted: AtomicU64,
    /// Connections currently open.
    pub conns_active: AtomicU64,
    /// Connections refused because the connection budget was full.
    pub conns_shed: AtomicU64,
    /// Requests shed by the admission gate (`Overloaded` responses).
    pub requests_shed: AtomicU64,
    /// Requests refused because their deadline expired pre-execution.
    pub requests_deadline_exceeded: AtomicU64,
    /// Requests currently executing (admitted, not yet replied).
    pub requests_inflight: AtomicU64,
    /// Frames a connection handler is currently decoding/serving/writing
    /// — the gauge graceful drain waits on (`ServerHandle::drain`).
    pub requests_serving: AtomicU64,
    /// Requests currently waiting at the admission gate.
    pub requests_queued: AtomicU64,
    /// Highest simultaneous in-flight count observed.
    pub inflight_hwm: AtomicU64,
    /// Highest admission-queue depth observed.
    pub queue_depth_hwm: AtomicU64,
    /// Bytes read off sockets (frames in).
    pub bytes_in: AtomicU64,
    /// Bytes written to sockets (frames out).
    pub bytes_out: AtomicU64,
    /// Per-endpoint request counts.
    pub hello: AtomicU64,
    /// `query` endpoint requests.
    pub query: AtomicU64,
    /// `insert` endpoint requests.
    pub insert: AtomicU64,
    /// `remove` endpoint requests.
    pub remove: AtomicU64,
    /// `fold` endpoint requests.
    pub fold: AtomicU64,
    /// `stats` endpoint requests.
    pub stats: AtomicU64,
    /// `health` endpoint requests.
    pub health: AtomicU64,
    /// `explain` endpoint requests.
    pub explain: AtomicU64,
    /// Idempotent requests resent after a transient transport failure
    /// (same replica or the next one — every extra attempt counts).
    pub retries: AtomicU64,
    /// Hedged probes fired at a second replica because the first
    /// response was slower than the hedge trigger.
    pub hedges_fired: AtomicU64,
    /// Hedged probes whose answer arrived before the original's.
    pub hedges_won: AtomicU64,
    /// Requests answered by a different replica after the first-choice
    /// replica failed at the transport layer.
    pub failovers: AtomicU64,
    /// Transport-layer failures observed against individual replicas
    /// (each feeds that replica's circuit breaker).
    pub replica_failures: AtomicU64,
    /// Circuit-breaker transitions into the open state.
    pub breaker_opened: AtomicU64,
    /// `allow_partial` responses served with a non-empty `degraded`
    /// shard list — explicit partial answers, never silent ones.
    pub responses_degraded: AtomicU64,
}

impl Default for ServerCounters {
    fn default() -> Self {
        Self::new()
    }
}

/// Bumps `hwm` to at least `observed` (relaxed CAS loop).
fn raise_hwm(hwm: &AtomicU64, observed: u64) {
    let mut cur = hwm.load(Ordering::Relaxed);
    while observed > cur {
        match hwm.compare_exchange_weak(cur, observed, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(now) => cur = now,
        }
    }
}

impl ServerCounters {
    /// Fresh counters; the uptime clock starts now.
    pub fn new() -> Self {
        ServerCounters {
            started: Instant::now(),
            conns_accepted: AtomicU64::new(0),
            conns_active: AtomicU64::new(0),
            conns_shed: AtomicU64::new(0),
            requests_shed: AtomicU64::new(0),
            requests_deadline_exceeded: AtomicU64::new(0),
            requests_inflight: AtomicU64::new(0),
            requests_serving: AtomicU64::new(0),
            requests_queued: AtomicU64::new(0),
            inflight_hwm: AtomicU64::new(0),
            queue_depth_hwm: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            hello: AtomicU64::new(0),
            query: AtomicU64::new(0),
            insert: AtomicU64::new(0),
            remove: AtomicU64::new(0),
            fold: AtomicU64::new(0),
            stats: AtomicU64::new(0),
            health: AtomicU64::new(0),
            explain: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            hedges_fired: AtomicU64::new(0),
            hedges_won: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            replica_failures: AtomicU64::new(0),
            breaker_opened: AtomicU64::new(0),
            responses_degraded: AtomicU64::new(0),
        }
    }

    /// Seconds since the counters were created.
    pub fn uptime_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Records one request hitting `endpoint` (a [`crate::wire::Request::endpoint`] name).
    pub fn count_endpoint(&self, endpoint: &str) {
        let slot = match endpoint {
            "hello" => &self.hello,
            "query" => &self.query,
            "insert" => &self.insert,
            "remove" => &self.remove,
            "fold" => &self.fold,
            "stats" => &self.stats,
            "health" => &self.health,
            "explain" => &self.explain,
            _ => return,
        };
        slot.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks a request admitted into execution, maintaining the
    /// in-flight high-water mark.
    pub fn enter_inflight(&self) {
        let now = self.requests_inflight.fetch_add(1, Ordering::Relaxed) + 1;
        raise_hwm(&self.inflight_hwm, now);
    }

    /// Marks an admitted request finished.
    pub fn exit_inflight(&self) {
        self.requests_inflight.fetch_sub(1, Ordering::Relaxed);
    }

    /// Marks a request queued at the admission gate, maintaining the
    /// queue-depth high-water mark.
    pub fn enter_queue(&self) {
        let now = self.requests_queued.fetch_add(1, Ordering::Relaxed) + 1;
        raise_hwm(&self.queue_depth_hwm, now);
    }

    /// Marks a queued request dequeued (admitted or shed).
    pub fn exit_queue(&self) {
        self.requests_queued.fetch_sub(1, Ordering::Relaxed);
    }

    /// Point-in-time copy of every counter.
    pub fn snapshot(&self) -> ServerStatsSnapshot {
        let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);
        ServerStatsSnapshot {
            uptime_secs: self.uptime_secs(),
            conns_accepted: ld(&self.conns_accepted),
            conns_active: ld(&self.conns_active),
            conns_shed: ld(&self.conns_shed),
            requests_shed: ld(&self.requests_shed),
            requests_deadline_exceeded: ld(&self.requests_deadline_exceeded),
            requests_inflight: ld(&self.requests_inflight),
            requests_serving: ld(&self.requests_serving),
            requests_queued: ld(&self.requests_queued),
            inflight_hwm: ld(&self.inflight_hwm),
            queue_depth_hwm: ld(&self.queue_depth_hwm),
            bytes_in: ld(&self.bytes_in),
            bytes_out: ld(&self.bytes_out),
            requests_hello: ld(&self.hello),
            requests_query: ld(&self.query),
            requests_insert: ld(&self.insert),
            requests_remove: ld(&self.remove),
            requests_fold: ld(&self.fold),
            requests_stats: ld(&self.stats),
            requests_health: ld(&self.health),
            requests_explain: ld(&self.explain),
            retries: ld(&self.retries),
            hedges_fired: ld(&self.hedges_fired),
            hedges_won: ld(&self.hedges_won),
            failovers: ld(&self.failovers),
            replica_failures: ld(&self.replica_failures),
            breaker_opened: ld(&self.breaker_opened),
            responses_degraded: ld(&self.responses_degraded),
        }
    }
}

/// Serializable point-in-time view of [`ServerCounters`] — the payload
/// of the `stats` endpoint and the `server` block of `BENCH_serve.json`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ServerStatsSnapshot {
    /// Seconds the server has been up.
    pub uptime_secs: f64,
    /// Connections accepted over the process lifetime.
    pub conns_accepted: u64,
    /// Connections currently open.
    pub conns_active: u64,
    /// Connections refused at the connection budget.
    pub conns_shed: u64,
    /// Requests shed by admission control.
    pub requests_shed: u64,
    /// Requests refused for an expired deadline.
    pub requests_deadline_exceeded: u64,
    /// Requests executing right now.
    pub requests_inflight: u64,
    /// Frames being decoded/served/written by connection handlers right
    /// now (the gauge graceful drain waits on).
    #[serde(default)]
    pub requests_serving: u64,
    /// Requests waiting at the admission gate right now.
    pub requests_queued: u64,
    /// In-flight high-water mark.
    pub inflight_hwm: u64,
    /// Admission-queue depth high-water mark.
    pub queue_depth_hwm: u64,
    /// Socket bytes read.
    pub bytes_in: u64,
    /// Socket bytes written.
    pub bytes_out: u64,
    /// `hello` requests served.
    pub requests_hello: u64,
    /// `query` requests served.
    pub requests_query: u64,
    /// `insert` requests served.
    pub requests_insert: u64,
    /// `remove` requests served.
    pub requests_remove: u64,
    /// `fold` requests served.
    pub requests_fold: u64,
    /// `stats` requests served.
    pub requests_stats: u64,
    /// `health` requests served.
    pub requests_health: u64,
    /// `explain` requests served.
    pub requests_explain: u64,
    /// Idempotent request resends after transient transport failures.
    #[serde(default)]
    pub retries: u64,
    /// Hedged second-replica probes fired.
    #[serde(default)]
    pub hedges_fired: u64,
    /// Hedged probes that answered first.
    #[serde(default)]
    pub hedges_won: u64,
    /// Requests answered via failover to another replica.
    #[serde(default)]
    pub failovers: u64,
    /// Per-replica transport failures observed.
    #[serde(default)]
    pub replica_failures: u64,
    /// Circuit-breaker open transitions.
    #[serde(default)]
    pub breaker_opened: u64,
    /// Explicit degraded (partial) responses served.
    #[serde(default)]
    pub responses_degraded: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hwm_tracks_peak() {
        let c = ServerCounters::new();
        c.enter_inflight();
        c.enter_inflight();
        c.exit_inflight();
        c.enter_inflight();
        let s = c.snapshot();
        assert_eq!(s.requests_inflight, 2);
        assert_eq!(s.inflight_hwm, 2);
    }

    #[test]
    fn snapshot_roundtrips_as_json() {
        let c = ServerCounters::new();
        c.count_endpoint("query");
        c.count_endpoint("query");
        c.count_endpoint("health");
        let snap = c.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: ServerStatsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.requests_query, 2);
        assert_eq!(back.requests_health, 1);
    }
}
