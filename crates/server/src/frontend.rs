//! The scatter/gather frontend: one [`ShardTransport`] per shard,
//! admission control in front, deterministic merge behind.
//!
//! A client batch is admitted through the frontend's [`AdmissionGate`]
//! (bounded in-flight, bounded queue, explicit `Overloaded` shedding),
//! then scattered: the *same* wire batch goes to every shard worker with
//! the remaining deadline budget attached, each worker runs the complete
//! engine pipeline on its shard (the N=1 case of `exec::run_batch`) and
//! returns ranked, top-K-truncated partials. The gather concatenates
//! per-shard partials and re-ranks them with the engine's own comparator
//! (`exec::rank_matches`) — a total order over disjoint per-shard graph
//! sets, so the merged output is bit-identical to in-process sharded
//! execution.
//!
//! Failure is deterministic: if **any** shard's transport fails, the
//! whole batch fails with `ShardError::Transport{shard, source}` — the
//! frontend never returns a partial merge. (A typed `Overloaded` or
//! `deadline_exceeded` from a worker likewise fails the batch with that
//! same typed error, so the client can distinguish shed from broken.)
//!
//! The one exception is **opt-in**: a request with `allow_partial:
//! true` tolerates shards whose transports are exhausted (every replica
//! down) by answering from the shards that responded and naming the
//! missing ones in the response's `degraded` list — an explicit partial
//! answer, never a silent one. Worker-typed refusals (`overloaded`,
//! `deadline_exceeded`) still fail the batch even under `allow_partial`:
//! those workers are alive and shedding, and masking a shed as a
//! partial answer would hide backpressure from the client.
//!
//! Mutations (`insert`/`remove`/`fold`) are forwarded only in
//! single-shard deployments, where the one worker is the sole writer of
//! the database root. In multi-shard deployments they are refused with
//! `unsupported` — distributed mutation needs a coordination protocol
//! this crate does not yet speak (see DESIGN.md §15).

use crate::admission::{
    deadline_from_ms, remaining_ms, AdmissionGate, AdmissionOutcome, GateConfig,
};
use crate::counters::ServerCounters;
use crate::transport::ShardTransport;
use crate::wire::{
    self, HealthResponse, HelloResponse, QueryBatchRequest, QueryBatchResponse, Request, Response,
    StatsResponse, WireExecStats, WireMatch, WireMatches,
};
use crate::worker::Service;
use crate::{Result, ServerError};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;
use tale::engine::exec;
use tale::QueryMatch;
use tale_shard::ShardError;

/// Frontend sizing.
#[derive(Debug, Clone, Copy, Default)]
pub struct FrontendConfig {
    /// Admission gate limits for client batches.
    pub gate: GateConfig,
    /// Threads used to scatter one batch across shards (0 = one per
    /// shard, capped at the core count).
    pub scatter_threads: usize,
}

/// The scatter/gather frontend. Implements [`Service`], so it can sit
/// behind the same TCP serve loop as a shard worker
/// ([`crate::worker::serve`]) or be driven in-process.
pub struct Frontend {
    transports: Vec<Arc<dyn ShardTransport>>,
    gate: Arc<AdmissionGate>,
    counters: Arc<ServerCounters>,
    cfg: FrontendConfig,
    graphs: u64,
    vocab_fingerprint: u64,
}

impl Frontend {
    /// Builds a frontend over `transports` (index = shard ordinal) and
    /// verifies each one with a handshake round-trip: protocol version,
    /// shard identity (transport `i` must serve shard `i`), a shard
    /// count matching the transport list, and one shared vocabulary
    /// fingerprint across all workers. Fails fast on any mismatch.
    pub fn new(transports: Vec<Arc<dyn ShardTransport>>, cfg: FrontendConfig) -> Result<Frontend> {
        Frontend::with_counters(transports, cfg, Arc::new(ServerCounters::new()))
    }

    /// [`Frontend::new`] with caller-provided counters, so the
    /// fault-handling counters the transports bump (retries, hedges,
    /// failovers, breaker transitions) land in the same snapshot the
    /// frontend's `stats` endpoint serves.
    pub fn with_counters(
        transports: Vec<Arc<dyn ShardTransport>>,
        cfg: FrontendConfig,
        counters: Arc<ServerCounters>,
    ) -> Result<Frontend> {
        if transports.is_empty() {
            return Err(ServerError::BadRequest(
                "frontend needs at least one shard".into(),
            ));
        }
        for t in &transports {
            t.attach_counters(&counters);
        }
        let hello = Request::Hello(wire::HelloRequest {
            protocol: wire::PROTOCOL_VERSION,
        });
        let mut graphs = 0u64;
        let mut fingerprint: Option<u64> = None;
        for (i, t) in transports.iter().enumerate() {
            let h = match t.call(&hello, None)? {
                Response::Hello(h) => h,
                Response::Error(e) => return Err(ServerError::from_error_response(&e)),
                _ => {
                    return Err(ServerError::Handshake(format!(
                        "{}: non-hello answer to hello",
                        t.describe()
                    )))
                }
            };
            if t.shard() != i as u32 || h.shard != i as u32 {
                return Err(ServerError::Handshake(format!(
                    "{} answers as shard {}, expected shard {i}",
                    t.describe(),
                    h.shard
                )));
            }
            if h.shard_count as usize != transports.len() {
                return Err(ServerError::Handshake(format!(
                    "{} belongs to a {}-shard layout, frontend has {} transports",
                    t.describe(),
                    h.shard_count,
                    transports.len()
                )));
            }
            match fingerprint {
                None => fingerprint = Some(h.vocab_fingerprint),
                Some(fp) if fp != h.vocab_fingerprint => {
                    return Err(ServerError::Handshake(format!(
                        "{} vocabulary fingerprint {:#018x} differs from shard 0's {:#018x}",
                        t.describe(),
                        h.vocab_fingerprint,
                        fp
                    )));
                }
                Some(_) => {}
            }
            // Workers report the shared database's graph count; all agree.
            graphs = h.graphs;
        }
        // Pin the agreed fingerprint everywhere, so a replica that was
        // unreachable at startup is still verified when it comes back.
        if let Some(fp) = fingerprint {
            for t in &transports {
                t.pin_fingerprint(fp);
            }
        }
        Ok(Frontend {
            transports,
            gate: AdmissionGate::new(cfg.gate),
            counters,
            cfg,
            graphs,
            vocab_fingerprint: fingerprint.unwrap_or(0),
        })
    }

    /// Number of shards behind this frontend.
    pub fn shard_count(&self) -> usize {
        self.transports.len()
    }

    /// This frontend's counters.
    pub fn counters(&self) -> &Arc<ServerCounters> {
        &self.counters
    }

    /// Runs one client batch through admission control and the
    /// scatter/gather, with the deadline budget counting from
    /// `received`. This is the typed core of the `query` endpoint: a
    /// shard failure comes back as
    /// `ServerError::Shard(ShardError::Transport { shard, .. })`, a shed
    /// as `ServerError::Overloaded`, an expired budget as
    /// `ServerError::DeadlineExceeded`.
    pub fn query_batch(
        &self,
        req: &QueryBatchRequest,
        received: Instant,
    ) -> Result<QueryBatchResponse> {
        let deadline = deadline_from_ms(received, req.deadline_ms);
        if let Some(d) = deadline {
            if Instant::now() >= d {
                self.counters
                    .requests_deadline_exceeded
                    .fetch_add(1, Ordering::Relaxed);
                return Err(ServerError::DeadlineExceeded);
            }
        }
        let _permit = match self.gate.admit(deadline, &self.counters) {
            AdmissionOutcome::Admitted(p) => p,
            AdmissionOutcome::Overloaded(m) => return Err(ServerError::Overloaded(m)),
            AdmissionOutcome::DeadlineExceeded => return Err(ServerError::DeadlineExceeded),
        };
        self.scatter_gather(req, received)
    }

    /// Scatters `req` to every shard and merges the partials. Fails the
    /// whole batch on any shard failure — never a partial merge — with
    /// the `allow_partial` exception documented at module level:
    /// transport-exhausted shards may be dropped *explicitly*, named in
    /// the response's `degraded` list.
    fn scatter_gather(
        &self,
        req: &QueryBatchRequest,
        received: Instant,
    ) -> Result<QueryBatchResponse> {
        let t0 = Instant::now();
        let deadline = deadline_from_ms(received, req.deadline_ms);
        let nshards = self.transports.len();
        let threads = if self.cfg.scatter_threads == 0 {
            nshards.min(tale_par::effective_threads(0))
        } else {
            self.cfg.scatter_threads
        };
        // One forwarded request per shard, deadline budget recomputed at
        // scatter time so workers see the time actually remaining. A
        // worker serves exactly its shard, so `allow_partial` is a
        // frontend-only concern and is not forwarded.
        let forwarded = Request::QueryBatch(QueryBatchRequest {
            queries: req.queries.clone(),
            options: req.options.clone(),
            deadline_ms: remaining_ms(deadline),
            allow_partial: false,
        });
        let answers: Vec<Result<Response>> = tale_par::parallel_map(threads, nshards, |i| {
            self.transports[i].call(&forwarded, deadline)
        });

        // Deterministic failure: scan in shard order, surface the first
        // failure; worker-typed errors keep their type across the hop.
        // Under `allow_partial`, a transport-exhausted shard (`Err` —
        // every replica down) degrades instead; a *worker-typed* error
        // is an answer from a live worker and still fails the batch.
        let mut partials: Vec<QueryBatchResponse> = Vec::with_capacity(nshards);
        let mut degraded: Vec<u32> = Vec::new();
        let mut first_transport_err: Option<ServerError> = None;
        for (i, ans) in answers.into_iter().enumerate() {
            match ans {
                Ok(Response::QueryBatch(p)) => partials.push(p),
                Ok(Response::Error(e)) => {
                    let typed = ServerError::from_error_response(&e);
                    return Err(match typed {
                        ServerError::Overloaded(_) | ServerError::DeadlineExceeded => typed,
                        other => transport_error(i as u32, other),
                    });
                }
                Ok(_) => {
                    return Err(transport_error(
                        i as u32,
                        ServerError::Handshake(format!(
                            "{}: non-batch answer to a batch",
                            self.transports[i].describe()
                        )),
                    ))
                }
                Err(e) => {
                    if req.allow_partial {
                        degraded.push(i as u32);
                        if first_transport_err.is_none() {
                            first_transport_err = Some(transport_error(i as u32, e));
                        }
                    } else {
                        return Err(transport_error(i as u32, e));
                    }
                }
            }
        }
        if partials.is_empty() {
            // Every shard exhausted: there is nothing to answer from,
            // partial or otherwise. Fail, even under allow_partial.
            return Err(first_transport_err.unwrap_or_else(|| {
                transport_error(0, ServerError::BadRequest("no shards".into()))
            }));
        }
        if !degraded.is_empty() {
            self.counters
                .responses_degraded
                .fetch_add(1, Ordering::Relaxed);
        }

        // Gather: per query, concatenate per-shard partials and re-rank
        // with the engine's comparator. Shards hold disjoint graph sets,
        // so this reproduces the in-process merge bit-for-bit (over the
        // shards that answered).
        let top_k = req.options.top_k.map(|k| k as usize);
        let nqueries = req.queries.len();
        let mut results = Vec::with_capacity(nqueries);
        for q in 0..nqueries {
            let mut all: Vec<QueryMatch> = Vec::new();
            for p in &partials {
                let shard_result = p.results.get(q).ok_or_else(|| {
                    transport_error(
                        0,
                        ServerError::Handshake(format!(
                            "a worker answered {} result lists for {nqueries} queries",
                            p.results.len()
                        )),
                    )
                })?;
                all.extend(shard_result.matches.iter().map(WireMatch::to_match));
            }
            let ranked = exec::rank_matches(all, top_k);
            results.push(WireMatches {
                matches: ranked.iter().map(WireMatch::from_match).collect(),
            });
        }

        let mut stats = WireExecStats::default();
        for p in &partials {
            stats.probes += p.stats.probes;
            stats.keys_scanned += p.stats.keys_scanned;
            stats.postings_fetched += p.stats.postings_fetched;
            stats.postings_filtered += p.stats.postings_filtered;
            stats.rows_examined += p.stats.rows_examined;
            stats.candidates += p.stats.candidates;
            stats.matches += p.stats.matches;
            stats.cache_hits += p.stats.cache_hits;
            stats.shards_pruned += p.stats.shards_pruned;
        }
        stats.wall_secs = t0.elapsed().as_secs_f64();
        Ok(QueryBatchResponse {
            results,
            stats,
            degraded,
        })
    }

    /// Forwards a mutation in a single-shard deployment; refuses it with
    /// `unsupported` behind multiple shards.
    fn forward_mutation(&self, req: &Request) -> Response {
        if self.transports.len() != 1 {
            return Response::Error(wire::ErrorResponse {
                code: wire::codes::UNSUPPORTED.to_owned(),
                message: format!(
                    "mutations through the frontend need a single-shard deployment \
                     (this one has {} shards); mutate via the owning worker or rebuild",
                    self.transports.len()
                ),
            });
        }
        match self.transports[0].call(req, None) {
            Ok(resp) => resp,
            Err(e) => Response::Error(transport_error(0, e).to_error_response()),
        }
    }
}

/// Wraps a per-shard failure in the shard seam's typed transport error.
fn transport_error(shard: u32, source: ServerError) -> ServerError {
    ServerError::Shard(ShardError::Transport {
        shard,
        source: Box::new(source),
    })
}

impl Service for Frontend {
    fn handle(&self, req: &Request, received: Instant) -> Response {
        self.counters.count_endpoint(req.endpoint());
        match req {
            Request::Hello(h) => {
                if h.protocol != wire::PROTOCOL_VERSION {
                    return Response::Error(
                        ServerError::Handshake(format!(
                            "protocol skew: client v{}, server v{}",
                            h.protocol,
                            wire::PROTOCOL_VERSION
                        ))
                        .to_error_response(),
                    );
                }
                Response::Hello(HelloResponse {
                    protocol: wire::PROTOCOL_VERSION,
                    shard: u32::MAX,
                    shard_count: self.transports.len() as u32,
                    graphs: self.graphs,
                    vocab_fingerprint: self.vocab_fingerprint,
                })
            }
            Request::QueryBatch(q) => match self.query_batch(q, received) {
                Ok(resp) => Response::QueryBatch(resp),
                Err(e) => Response::Error(e.to_error_response()),
            },
            Request::Insert(_) | Request::Remove(_) | Request::Fold(_) => {
                self.forward_mutation(req)
            }
            Request::Stats(_) => Response::Stats(StatsResponse {
                server: self.counters.snapshot(),
            }),
            Request::Health(_) => {
                // Aggregate per-replica breaker states from every
                // transport that fronts a replica group.
                let mut replicas = Vec::new();
                for t in &self.transports {
                    if let Some(mut infos) = t.replica_health() {
                        replicas.append(&mut infos);
                    }
                }
                Response::Health(HealthResponse {
                    ok: true,
                    uptime_secs: self.counters.uptime_secs(),
                    inflight: self.counters.requests_inflight.load(Ordering::Relaxed),
                    queued: self.gate.queued() as u64,
                    replicas,
                })
            }
            Request::Explain(_) => {
                // Per-shard plans, labeled, in shard order.
                let mut rendered = String::new();
                for (i, t) in self.transports.iter().enumerate() {
                    rendered.push_str(&format!("== shard {i} ==\n"));
                    match t.call(req, None) {
                        Ok(Response::Explain(e)) => rendered.push_str(&e.rendered),
                        Ok(Response::Error(e)) => {
                            return Response::Error(e);
                        }
                        Ok(_) => {
                            return Response::Error(
                                transport_error(
                                    i as u32,
                                    ServerError::Handshake("non-explain answer".into()),
                                )
                                .to_error_response(),
                            )
                        }
                        Err(e) => {
                            return Response::Error(
                                transport_error(i as u32, e).to_error_response(),
                            )
                        }
                    }
                    if !rendered.ends_with('\n') {
                        rendered.push('\n');
                    }
                }
                Response::Explain(wire::ExplainResponse { rendered })
            }
        }
    }

    fn counters(&self) -> &Arc<ServerCounters> {
        &self.counters
    }
}
