//! The wire protocol: versioned, length-prefixed framing over a byte
//! stream, with JSON message payloads.
//!
//! ## Framing
//!
//! Every frame is
//!
//! ```text
//! [magic u32 BE = "TALE"] [version u16 BE] [kind u16 BE] [len u32 BE]
//! [crc32 u32 BE] [payload: len bytes]
//! ```
//!
//! The magic + version header is checked on **every** frame, so a peer
//! speaking a different protocol revision (or not speaking TALE at all)
//! is refused with a clean [`WireError`] instead of a hang, a panic, or a
//! misparse. `len` is capped at [`MAX_FRAME_LEN`]; a header announcing
//! more is rejected before any allocation. A stream that ends mid-frame
//! surfaces as [`WireError::Truncated`]. The `crc32` covers the payload:
//! a flipped bit anywhere in transit — even one that would still parse as
//! valid JSON with a *different* score — is refused as
//! [`WireError::Corrupt`] instead of being served as a wrong answer. The
//! chaos harness (`crate::chaos`) depends on this: its corrupt-one-byte
//! fault must always classify as a typed error, never a silent
//! divergence.
//!
//! `kind` says how to parse the payload: [`KIND_REQUEST`] frames carry a
//! [`Request`], [`KIND_RESPONSE`] frames a [`Response`] (both externally
//! tagged JSON enums). Unknown kinds are refused.
//!
//! ## Bit-exactness
//!
//! Scores and match qualities cross the wire as IEEE-754 **bit patterns**
//! (`f64::to_bits`), never as decimal text, so a remote scatter/gather
//! merges exactly the same `f64` values an in-process run would have —
//! the bit-identity oracle (`ShardedTaleDatabase` vs frontend + workers)
//! depends on it.
//!
//! ## Graphs by label name
//!
//! Graphs cross the wire with **label names**, not vocabulary ids
//! ([`WireGraph`]): every endpoint maps names into its own database
//! vocabulary on receipt, with unknown names mapped to fresh
//! never-matching sentinel ids (the same semantics `tale-cli` uses for
//! query files). This keeps the protocol independent of any particular
//! host's interning order.

use crate::{Result, ServerError};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use tale_graph::labels::{EdgeLabel, NodeLabel};
use tale_graph::{Graph, GraphDb};

/// `"TALE"` in big-endian ASCII — the first four bytes of every frame.
pub const MAGIC: u32 = 0x5441_4C45;

/// Protocol revision. Bumped on any incompatible change to the framing
/// or the message schema; peers with a different version refuse each
/// other at the first frame. v2 added the payload CRC to the frame
/// header (and the replica/degraded message fields).
pub const PROTOCOL_VERSION: u16 = 2;

/// Hard cap on a frame's payload length (64 MiB). A header announcing
/// more is treated as garbage, not an allocation request.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// Frame kind: payload parses as a [`Request`].
pub const KIND_REQUEST: u16 = 1;
/// Frame kind: payload parses as a [`Response`].
pub const KIND_RESPONSE: u16 = 2;

/// Fixed frame header size in bytes. The CRC sits in the last four so
/// the magic/version/kind/len offsets are unchanged from v1 — a v1 peer
/// still gets a clean `VersionSkew`, not garbage.
pub const HEADER_LEN: usize = 16;

/// Framing-layer failures. Every variant is a clean, typed refusal —
/// malformed input never hangs or panics the reader.
#[derive(Debug)]
pub enum WireError {
    /// Underlying stream failure.
    Io(std::io::Error),
    /// First four bytes were not the TALE magic.
    BadMagic(u32),
    /// The peer speaks a different protocol revision.
    VersionSkew {
        /// Version the peer announced.
        got: u16,
        /// Version this endpoint speaks ([`PROTOCOL_VERSION`]).
        want: u16,
    },
    /// Unknown frame kind.
    BadKind(u16),
    /// Announced payload length exceeds [`MAX_FRAME_LEN`].
    Oversize(u32),
    /// The stream ended mid-frame.
    Truncated,
    /// The payload failed its header checksum: bytes were damaged in
    /// transit. Refused before any parse attempt.
    Corrupt {
        /// CRC the header announced.
        expected: u32,
        /// CRC of the bytes actually received.
        got: u32,
    },
    /// Payload was not valid JSON for the announced kind.
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "io: {e}"),
            WireError::BadMagic(got) => write!(f, "bad magic {got:#010x} (not a TALE peer)"),
            WireError::VersionSkew { got, want } => {
                write!(
                    f,
                    "protocol version skew: peer speaks v{got}, this end v{want}"
                )
            }
            WireError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::Oversize(len) => {
                write!(f, "frame length {len} exceeds cap {MAX_FRAME_LEN}")
            }
            WireError::Truncated => write!(f, "stream ended mid-frame"),
            WireError::Corrupt { expected, got } => {
                write!(
                    f,
                    "payload checksum mismatch: header says {expected:#010x}, bytes hash to {got:#010x}"
                )
            }
            WireError::Malformed(m) => write!(f, "malformed payload: {m}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Writes one frame; returns the total bytes written (header + payload).
pub fn write_frame(
    w: &mut impl Write,
    kind: u16,
    payload: &[u8],
) -> std::result::Result<usize, WireError> {
    if payload.len() as u64 > MAX_FRAME_LEN as u64 {
        return Err(WireError::Oversize(payload.len() as u32));
    }
    let mut header = [0u8; HEADER_LEN];
    header[0..4].copy_from_slice(&MAGIC.to_be_bytes());
    header[4..6].copy_from_slice(&PROTOCOL_VERSION.to_be_bytes());
    header[6..8].copy_from_slice(&kind.to_be_bytes());
    header[8..12].copy_from_slice(&(payload.len() as u32).to_be_bytes());
    header[12..16].copy_from_slice(&tale_storage::wal::crc32(payload).to_be_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(HEADER_LEN + payload.len())
}

/// Reads one frame. Returns `Ok(None)` on a clean EOF *before any header
/// byte* (the peer closed between frames); EOF anywhere inside a frame is
/// [`WireError::Truncated`]. On success returns `(kind, payload,
/// bytes_read)`.
pub fn read_frame(
    r: &mut impl Read,
) -> std::result::Result<Option<(u16, Vec<u8>, usize)>, WireError> {
    let mut header = [0u8; HEADER_LEN];
    let mut filled = 0usize;
    while filled < HEADER_LEN {
        let n = r.read(&mut header[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None); // clean close between frames
            }
            return Err(WireError::Truncated);
        }
        filled += n;
    }
    let magic = u32::from_be_bytes(header[0..4].try_into().expect("4 bytes"));
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = u16::from_be_bytes(header[4..6].try_into().expect("2 bytes"));
    if version != PROTOCOL_VERSION {
        return Err(WireError::VersionSkew {
            got: version,
            want: PROTOCOL_VERSION,
        });
    }
    let kind = u16::from_be_bytes(header[6..8].try_into().expect("2 bytes"));
    if kind != KIND_REQUEST && kind != KIND_RESPONSE {
        return Err(WireError::BadKind(kind));
    }
    let len = u32::from_be_bytes(header[8..12].try_into().expect("4 bytes"));
    if len > MAX_FRAME_LEN {
        return Err(WireError::Oversize(len));
    }
    let crc = u32::from_be_bytes(header[12..16].try_into().expect("4 bytes"));
    let mut payload = vec![0u8; len as usize];
    let mut got = 0usize;
    while got < payload.len() {
        let n = r.read(&mut payload[got..])?;
        if n == 0 {
            return Err(WireError::Truncated);
        }
        got += n;
    }
    let actual = tale_storage::wal::crc32(&payload);
    if actual != crc {
        return Err(WireError::Corrupt {
            expected: crc,
            got: actual,
        });
    }
    Ok(Some((kind, payload, HEADER_LEN + len as usize)))
}

/// Serializes and writes a [`Request`] frame; returns bytes written.
pub fn write_request(w: &mut impl Write, req: &Request) -> std::result::Result<usize, WireError> {
    let json = serde_json::to_string(req).map_err(|e| WireError::Malformed(e.to_string()))?;
    write_frame(w, KIND_REQUEST, json.as_bytes())
}

/// Serializes and writes a [`Response`] frame; returns bytes written.
pub fn write_response(
    w: &mut impl Write,
    resp: &Response,
) -> std::result::Result<usize, WireError> {
    let json = serde_json::to_string(resp).map_err(|e| WireError::Malformed(e.to_string()))?;
    write_frame(w, KIND_RESPONSE, json.as_bytes())
}

fn parse_payload<T: Deserialize>(payload: &[u8]) -> std::result::Result<T, WireError> {
    let text =
        std::str::from_utf8(payload).map_err(|_| WireError::Malformed("not UTF-8".into()))?;
    serde_json::from_str(text).map_err(|e| WireError::Malformed(e.to_string()))
}

/// Reads one frame and parses it as a [`Request`]. `Ok(None)` = clean
/// close. A [`Response`] frame here is a protocol violation.
pub fn read_request(r: &mut impl Read) -> std::result::Result<Option<(Request, usize)>, WireError> {
    match read_frame(r)? {
        None => Ok(None),
        Some((KIND_REQUEST, payload, n)) => Ok(Some((parse_payload(&payload)?, n))),
        Some((kind, _, _)) => Err(WireError::BadKind(kind)),
    }
}

/// Reads one frame and parses it as a [`Response`]. `Ok(None)` = clean
/// close. A [`Request`] frame here is a protocol violation.
pub fn read_response(
    r: &mut impl Read,
) -> std::result::Result<Option<(Response, usize)>, WireError> {
    match read_frame(r)? {
        None => Ok(None),
        Some((KIND_RESPONSE, payload, n)) => Ok(Some((parse_payload(&payload)?, n))),
        Some((kind, _, _)) => Err(WireError::BadKind(kind)),
    }
}

// ---------------------------------------------------------------------------
// Graphs and options over the wire.
// ---------------------------------------------------------------------------

/// A graph encoded with label *names* instead of vocabulary ids, so it
/// can cross between hosts that interned labels in different orders.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireGraph {
    /// Whether the graph is directed.
    pub directed: bool,
    /// One label name per node; node id = position.
    pub node_labels: Vec<String>,
    /// Edges as `(u, v)` node-index pairs.
    pub edges: Vec<(u32, u32)>,
    /// Edge label names aligned with `edges` (`None` = unlabeled).
    pub edge_labels: Vec<Option<String>>,
}

impl WireGraph {
    /// Encodes `g`, resolving its label ids through `db`'s vocabularies.
    pub fn from_graph(db: &GraphDb, g: &Graph) -> WireGraph {
        let node_labels = g
            .nodes()
            .map(|n| db.node_vocab().name(g.label(n).0).unwrap_or("?").to_owned())
            .collect();
        let mut edges = Vec::with_capacity(g.edge_count());
        let mut edge_labels = Vec::with_capacity(g.edge_count());
        for (u, v, l) in g.edges() {
            edges.push((u.0, v.0));
            edge_labels.push(l.and_then(|l| db.edge_vocab().name(l.0)).map(str::to_owned));
        }
        WireGraph {
            directed: g.is_directed(),
            node_labels,
            edges,
            edge_labels,
        }
    }

    /// Decodes into `db`'s vocabulary for **querying**: unknown label
    /// names get fresh sentinel ids past the end of the vocabulary, one
    /// per occurrence, so they can never match anything — exactly the
    /// semantics `tale-cli` gives query files with unseen labels.
    pub fn to_query_graph(&self, db: &GraphDb) -> Result<Graph> {
        let mut g = Graph::new(if self.directed {
            tale_graph::graph::Direction::Directed
        } else {
            tale_graph::graph::Direction::Undirected
        });
        let mut next_unknown = db.node_vocab().len() as u32;
        for name in &self.node_labels {
            let id = db.node_vocab().get(name).unwrap_or_else(|| {
                let id = next_unknown;
                next_unknown += 1;
                id
            });
            g.add_node(NodeLabel(id));
        }
        let mut next_unknown_edge = db.edge_vocab().len() as u32;
        self.add_edges(&mut g, |name| {
            db.edge_vocab().get(name).unwrap_or_else(|| {
                let id = next_unknown_edge;
                next_unknown_edge += 1;
                id
            })
        })?;
        Ok(g)
    }

    /// Decodes for **insertion**, interning every label name into `db`'s
    /// vocabularies (append-only, like [`GraphDb::intern_node_label`]).
    pub fn to_inserted_graph(&self, db: &mut GraphDb) -> Result<Graph> {
        let mut g = Graph::new(if self.directed {
            tale_graph::graph::Direction::Directed
        } else {
            tale_graph::graph::Direction::Undirected
        });
        for name in &self.node_labels {
            let l = db.intern_node_label(name);
            g.add_node(l);
        }
        // Intern first (needs &mut db), then wire the edges up.
        let labels: Vec<Option<EdgeLabel>> = self
            .edge_labels
            .iter()
            .map(|l| l.as_ref().map(|name| db.intern_edge_label(name)))
            .collect();
        for (i, &(u, v)) in self.edges.iter().enumerate() {
            let (u, v) = self.check_edge(&g, u, v)?;
            match labels.get(i).copied().flatten() {
                Some(l) => g.add_edge_labeled(u, v, l),
                None => g.add_edge(u, v),
            }
            .map_err(|e| ServerError::BadRequest(format!("edge {i}: {e}")))?;
        }
        Ok(g)
    }

    fn check_edge(
        &self,
        g: &Graph,
        u: u32,
        v: u32,
    ) -> Result<(tale_graph::NodeId, tale_graph::NodeId)> {
        let n = g.node_count() as u32;
        if u >= n || v >= n {
            return Err(ServerError::BadRequest(format!(
                "edge ({u}, {v}) out of range for {n} nodes"
            )));
        }
        Ok((tale_graph::NodeId(u), tale_graph::NodeId(v)))
    }

    fn add_edges(&self, g: &mut Graph, mut edge_label: impl FnMut(&str) -> u32) -> Result<()> {
        if self.edge_labels.len() != self.edges.len() && !self.edge_labels.is_empty() {
            return Err(ServerError::BadRequest(format!(
                "{} edges but {} edge labels",
                self.edges.len(),
                self.edge_labels.len()
            )));
        }
        for (i, &(u, v)) in self.edges.iter().enumerate() {
            let (u, v) = self.check_edge(g, u, v)?;
            match self.edge_labels.get(i).and_then(Option::as_ref) {
                Some(name) => g.add_edge_labeled(u, v, EdgeLabel(edge_label(name))),
                None => g.add_edge(u, v),
            }
            .map_err(|e| ServerError::BadRequest(format!("edge {i}: {e}")))?;
        }
        Ok(())
    }
}

/// [`tale::QueryOptions`] flattened into wire-safe fields. Floats stay
/// `f64` (the JSON layer prints shortest-round-trip decimals, which
/// re-parse to the same bits for finite values); enums and the
/// similarity model travel as their stable names.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireOptions {
    /// Approximation ratio ρ.
    pub rho: f64,
    /// Important-node fraction.
    pub p_imp: f64,
    /// Importance measure: `degree|closeness|betweenness|eigenvector`
    /// or `random:SEED`.
    pub importance: String,
    /// Extension radius in hops.
    pub hops: u8,
    /// Greedy anchor assignment instead of Hungarian.
    pub greedy_anchors: bool,
    /// Require matched edges to carry equal labels.
    pub match_edge_labels: bool,
    /// Keep only the best K matches.
    pub top_k: Option<u64>,
    /// Worker threads (`0` = one per core).
    pub threads: u64,
    /// Consult the per-shard result caches.
    pub use_cache: bool,
    /// Similarity model name: `quality|nodes-edges|ctree`.
    pub similarity: String,
    /// Plan mode name: `fixed|cost`.
    pub plan: String,
}

impl WireOptions {
    /// Encodes in-process options.
    pub fn from_options(opts: &tale::QueryOptions) -> WireOptions {
        use tale::ImportanceMeasure as M;
        WireOptions {
            rho: opts.rho,
            p_imp: opts.p_imp,
            importance: match opts.importance {
                M::Degree => "degree".into(),
                M::Closeness => "closeness".into(),
                M::Betweenness => "betweenness".into(),
                M::Eigenvector => "eigenvector".into(),
                M::Random(seed) => format!("random:{seed}"),
            },
            hops: opts.hops,
            greedy_anchors: opts.greedy_anchors,
            match_edge_labels: opts.match_edge_labels,
            top_k: opts.top_k.map(|k| k as u64),
            threads: opts.threads as u64,
            use_cache: opts.use_cache,
            similarity: opts.similarity.name().to_owned(),
            plan: opts.plan.name().to_owned(),
        }
    }

    /// Decodes into runnable options; unknown names are a
    /// [`ServerError::BadRequest`].
    pub fn to_options(&self) -> Result<tale::QueryOptions> {
        use std::sync::Arc;
        use tale::ImportanceMeasure as M;
        let importance = match self.importance.as_str() {
            "degree" => M::Degree,
            "closeness" => M::Closeness,
            "betweenness" => M::Betweenness,
            "eigenvector" => M::Eigenvector,
            other => match other.strip_prefix("random:").and_then(|s| s.parse().ok()) {
                Some(seed) => M::Random(seed),
                None => {
                    return Err(ServerError::BadRequest(format!(
                        "unknown importance measure {other:?}"
                    )))
                }
            },
        };
        let similarity: Arc<dyn tale::SimilarityModel> = match self.similarity.as_str() {
            "quality-sum" | "quality" => Arc::new(tale::QualitySum),
            "matched-nodes+edges" | "nodes-edges" => Arc::new(tale::MatchedNodesEdges),
            "ctree-style" | "ctree" => Arc::new(tale::CTreeStyle),
            other => {
                return Err(ServerError::BadRequest(format!(
                    "unknown similarity model {other:?}"
                )))
            }
        };
        let plan = match self.plan.as_str() {
            "fixed" => tale::PlanMode::Fixed,
            "cost" => tale::PlanMode::Cost,
            other => {
                return Err(ServerError::BadRequest(format!(
                    "unknown plan mode {other:?}"
                )))
            }
        };
        Ok(tale::QueryOptions {
            rho: self.rho,
            p_imp: self.p_imp,
            importance,
            hops: self.hops,
            greedy_anchors: self.greedy_anchors,
            match_edge_labels: self.match_edge_labels,
            top_k: self.top_k.map(|k| k as usize),
            threads: self.threads as usize,
            use_cache: self.use_cache,
            similarity,
            plan,
        })
    }
}

// ---------------------------------------------------------------------------
// Results over the wire.
// ---------------------------------------------------------------------------

/// One committed node match, qualities as IEEE-754 bits.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WirePair {
    /// Query node index.
    pub q: u32,
    /// Database node index.
    pub t: u32,
    /// `f64::to_bits` of the node-match quality.
    pub quality_bits: u64,
}

/// One ranked match, score as IEEE-754 bits so the frontend merge sees
/// exactly the f64 the worker ranked with.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireMatch {
    /// Matched database graph id.
    pub graph: u32,
    /// Name of the matched graph.
    pub graph_name: String,
    /// `f64::to_bits` of the similarity score.
    pub score_bits: u64,
    /// Matched node count.
    pub matched_nodes: u64,
    /// Preserved query-edge count.
    pub matched_edges: u64,
    /// The node mapping.
    pub pairs: Vec<WirePair>,
}

impl WireMatch {
    /// Encodes an engine match.
    pub fn from_match(m: &tale::QueryMatch) -> WireMatch {
        WireMatch {
            graph: m.graph.0,
            graph_name: m.graph_name.clone(),
            score_bits: m.score.to_bits(),
            matched_nodes: m.matched_nodes as u64,
            matched_edges: m.matched_edges as u64,
            pairs: m
                .m
                .pairs
                .iter()
                .map(|p| WirePair {
                    q: p.query.0,
                    t: p.target.0,
                    quality_bits: p.quality.to_bits(),
                })
                .collect(),
        }
    }

    /// Decodes back into the engine's result type, bit-exactly.
    pub fn to_match(&self) -> tale::QueryMatch {
        tale::QueryMatch {
            graph: tale_graph::GraphId(self.graph),
            graph_name: self.graph_name.clone(),
            score: f64::from_bits(self.score_bits),
            matched_nodes: self.matched_nodes as usize,
            matched_edges: self.matched_edges as usize,
            m: tale_matching::grow::GraphMatch {
                pairs: self
                    .pairs
                    .iter()
                    .map(|p| tale_matching::grow::MatchPair {
                        query: tale_graph::NodeId(p.q),
                        target: tale_graph::NodeId(p.t),
                        quality: f64::from_bits(p.quality_bits),
                    })
                    .collect(),
            },
        }
    }
}

/// One query's ranked matches.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireMatches {
    /// Ranked matches, best first.
    pub matches: Vec<WireMatch>,
}

/// Per-request execution counters a worker reports back with its
/// partials (summed into the frontend's per-shard attribution).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WireExecStats {
    /// Disk probes issued.
    pub probes: u64,
    /// B+-tree keys scanned.
    pub keys_scanned: u64,
    /// Posting lists fetched.
    pub postings_fetched: u64,
    /// Postings skipped by the label-pair pre-filter. `serde(default)`
    /// keeps the frame decodable against workers serialized before the
    /// counter existed.
    #[serde(default)]
    pub postings_filtered: u64,
    /// Posting rows examined.
    pub rows_examined: u64,
    /// Candidate (query node, db node) pairs scored.
    pub candidates: u64,
    /// Matches returned (pre-merge).
    pub matches: u64,
    /// Queries answered wholly from this worker's result cache.
    pub cache_hits: u64,
    /// Shards pruned by the worker's own planner (its one shard).
    pub shards_pruned: u64,
    /// Wall clock of the worker-side batch, seconds.
    pub wall_secs: f64,
}

// ---------------------------------------------------------------------------
// Requests.
// ---------------------------------------------------------------------------

/// Connection handshake. Sent first on every new connection; the reply
/// describes the serving shard so a frontend can refuse a mismatched
/// worker before issuing work.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HelloRequest {
    /// Client's protocol version (also in every frame header; carried in
    /// the body too so the mismatch error can be a proper response).
    pub protocol: u16,
}

/// The batch query API over the wire.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryBatchRequest {
    /// Queries, label names resolved at the receiving end.
    pub queries: Vec<WireGraph>,
    /// Execution options.
    pub options: WireOptions,
    /// Milliseconds the client is still willing to wait, from the moment
    /// the request is decoded. Propagated (minus elapsed time) from
    /// frontend to workers; a request whose budget is exhausted before
    /// execution starts is refused with `deadline_exceeded`.
    pub deadline_ms: Option<u64>,
    /// Opt-in graceful degradation: when `true`, a frontend whose
    /// replicas for some shard are all unreachable answers from the
    /// shards it *can* reach and lists the missing shards in
    /// [`QueryBatchResponse::degraded`] — explicitly, never silently.
    /// The default (`false`) keeps the fail-closed contract: any
    /// unreachable shard fails the whole batch with a typed error.
    #[serde(default)]
    pub allow_partial: bool,
}

/// Insert a graph into the serving shard.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InsertRequest {
    /// Name for the new graph.
    pub name: String,
    /// The graph, labels by name (interned on receipt).
    pub graph: WireGraph,
}

/// Tombstone a graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RemoveRequest {
    /// Graph id to remove.
    pub graph: u32,
}

/// Compact the serving shard: rebuild its index from the live (not
/// tombstoned) graphs, dropping dead postings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FoldRequest {
    /// Reserved; must be `true` (guards against empty-bodied callers).
    pub confirm: bool,
}

/// Fetch server + engine counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatsRequest {
    /// Reset nothing; reserved for a future `reset: bool`.
    pub reserved: bool,
}

/// Liveness probe.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HealthRequest {
    /// Reserved.
    pub reserved: bool,
}

/// Render the plan the engine would choose for one query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExplainRequest {
    /// The query.
    pub query: WireGraph,
    /// Options the plan should assume.
    pub options: WireOptions,
}

/// Every request the protocol carries (externally tagged JSON).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Request {
    /// Handshake.
    Hello(HelloRequest),
    /// Batch query.
    QueryBatch(QueryBatchRequest),
    /// Graph insert.
    Insert(InsertRequest),
    /// Graph removal.
    Remove(RemoveRequest),
    /// Shard compaction.
    Fold(FoldRequest),
    /// Counter snapshot.
    Stats(StatsRequest),
    /// Liveness.
    Health(HealthRequest),
    /// Plan rendering.
    Explain(ExplainRequest),
}

impl Request {
    /// Short endpoint name for per-endpoint request counters.
    pub fn endpoint(&self) -> &'static str {
        match self {
            Request::Hello(_) => "hello",
            Request::QueryBatch(_) => "query",
            Request::Insert(_) => "insert",
            Request::Remove(_) => "remove",
            Request::Fold(_) => "fold",
            Request::Stats(_) => "stats",
            Request::Health(_) => "health",
            Request::Explain(_) => "explain",
        }
    }
}

// ---------------------------------------------------------------------------
// Responses.
// ---------------------------------------------------------------------------

/// Handshake reply.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HelloResponse {
    /// Server protocol version.
    pub protocol: u16,
    /// Shard this endpoint serves (`u32::MAX` for a frontend).
    pub shard: u32,
    /// Total shards in the layout this endpoint belongs to.
    pub shard_count: u32,
    /// Graphs in the server's database.
    pub graphs: u64,
    /// FNV-64 fingerprint of the server's label vocabulary — two
    /// endpoints serving the same corpus must agree.
    pub vocab_fingerprint: u64,
}

/// Batch query reply: per-query ranked partials plus execution counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryBatchResponse {
    /// One entry per request query, aligned by position.
    pub results: Vec<WireMatches>,
    /// Worker/frontend execution counters for this request.
    pub stats: WireExecStats,
    /// Shards whose results are **missing** from this answer because
    /// every replica was unreachable and the request opted into
    /// [`QueryBatchRequest::allow_partial`]. Empty on any complete
    /// answer; a non-empty list is the explicit "this is partial"
    /// marker — a client that did not opt in never sees one.
    #[serde(default)]
    pub degraded: Vec<u32>,
}

/// Mutation reply.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MutateResponse {
    /// Whether the mutation was applied here.
    pub applied: bool,
    /// For a refused `Remove`: the shard that actually owns the graph.
    pub owner: Option<u32>,
    /// For `Insert`: the id assigned to the new graph.
    pub graph: Option<u32>,
    /// For `Fold`: live graphs rebuilt into the new index.
    pub folded_graphs: Option<u64>,
    /// For `Fold`: tombstones dropped by the rebuild.
    pub dropped_tombstones: Option<u64>,
}

/// Counter snapshot reply (see [`crate::counters::ServerStatsSnapshot`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatsResponse {
    /// The server's counters.
    pub server: crate::counters::ServerStatsSnapshot,
}

/// One replica's health as seen by a frontend's circuit breakers
/// (embedded in [`HealthResponse::replicas`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplicaHealthInfo {
    /// Shard this replica serves.
    pub shard: u32,
    /// Replica ordinal within its shard's group (0 = primary).
    pub replica: u32,
    /// Transport description (address for a remote, `local:N` in-proc).
    pub address: String,
    /// Breaker state: `closed`, `open`, or `half-open`.
    pub state: String,
    /// Consecutive failures feeding the breaker.
    pub consecutive_failures: u64,
    /// Requests this replica has served successfully.
    pub successes: u64,
    /// Requests this replica has failed at the transport layer.
    pub failures: u64,
}

/// Liveness reply.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HealthResponse {
    /// Always `true` from a serving process.
    pub ok: bool,
    /// Seconds since the server started.
    pub uptime_secs: f64,
    /// Requests currently executing.
    pub inflight: u64,
    /// Requests currently queued at the admission gate.
    pub queued: u64,
    /// Per-replica breaker states, present when the answering endpoint
    /// is a frontend with replica groups (empty from a plain worker).
    #[serde(default)]
    pub replicas: Vec<ReplicaHealthInfo>,
}

/// Plan-rendering reply.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExplainResponse {
    /// `PlanReport::render` text.
    pub rendered: String,
}

/// Machine-readable error codes (the `code` field of [`ErrorResponse`]).
pub mod codes {
    /// Admission control shed the request; retry later.
    pub const OVERLOADED: &str = "overloaded";
    /// The request's deadline expired before execution.
    pub const DEADLINE_EXCEEDED: &str = "deadline_exceeded";
    /// The request was malformed or semantically invalid.
    pub const BAD_REQUEST: &str = "bad_request";
    /// This endpoint cannot serve the request (e.g. a mutation sent to a
    /// multi-shard frontend, or a remove for a graph another shard owns).
    pub const UNSUPPORTED: &str = "unsupported";
    /// Execution failed server-side.
    pub const INTERNAL: &str = "internal";
}

/// Typed failure reply. Load shedding is **always** one of these with
/// [`codes::OVERLOADED`] — never a silent drop or a closed socket.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ErrorResponse {
    /// One of [`codes`].
    pub code: String,
    /// Human-readable detail.
    pub message: String,
}

/// Every response the protocol carries (externally tagged JSON).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Response {
    /// Handshake reply.
    Hello(HelloResponse),
    /// Batch query reply.
    QueryBatch(QueryBatchResponse),
    /// Mutation reply.
    Mutate(MutateResponse),
    /// Counter snapshot.
    Stats(StatsResponse),
    /// Liveness reply.
    Health(HealthResponse),
    /// Plan rendering.
    Explain(ExplainResponse),
    /// Typed failure.
    Error(ErrorResponse),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        let n = write_frame(&mut buf, KIND_REQUEST, b"{}").unwrap();
        assert_eq!(n, buf.len());
        let (kind, payload, m) = read_frame(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!((kind, payload.as_slice(), m), (KIND_REQUEST, &b"{}"[..], n));
        // clean EOF between frames
        assert!(read_frame(&mut [].as_slice()).unwrap().is_none());
    }

    #[test]
    fn header_refusals() {
        // wrong magic
        let mut bad = Vec::new();
        write_frame(&mut bad, KIND_REQUEST, b"x").unwrap();
        bad[0] = 0x00;
        assert!(matches!(
            read_frame(&mut bad.as_slice()),
            Err(WireError::BadMagic(_))
        ));
        // version skew
        let mut skew = Vec::new();
        write_frame(&mut skew, KIND_REQUEST, b"x").unwrap();
        skew[5] = PROTOCOL_VERSION as u8 + 1;
        assert!(matches!(
            read_frame(&mut skew.as_slice()),
            Err(WireError::VersionSkew { .. })
        ));
        // oversize
        let mut big = Vec::new();
        write_frame(&mut big, KIND_REQUEST, b"x").unwrap();
        big[8..12].copy_from_slice(&(MAX_FRAME_LEN + 1).to_be_bytes());
        assert!(matches!(
            read_frame(&mut big.as_slice()),
            Err(WireError::Oversize(_))
        ));
        // truncation inside the payload
        let mut cut = Vec::new();
        write_frame(&mut cut, KIND_REQUEST, b"hello").unwrap();
        cut.truncate(cut.len() - 2);
        assert!(matches!(
            read_frame(&mut cut.as_slice()),
            Err(WireError::Truncated)
        ));
    }

    #[test]
    fn corrupt_payload_is_refused() {
        // Every single-byte flip — payload or the CRC field itself —
        // must be a typed Corrupt refusal, never a parse of damaged
        // bytes. `{"k":3}` would still be valid JSON with the 3 flipped
        // to a 7; the checksum is what catches that class.
        let mut good = Vec::new();
        write_frame(&mut good, KIND_REQUEST, br#"{"k":3}"#).unwrap();
        for i in 12..good.len() {
            for bit in [0x01u8, 0x80] {
                let mut bad = good.clone();
                bad[i] ^= bit;
                assert!(
                    matches!(
                        read_frame(&mut bad.as_slice()),
                        Err(WireError::Corrupt { .. })
                    ),
                    "flip at byte {i} was not refused"
                );
            }
        }
        // the pristine frame still reads
        let (_, payload, _) = read_frame(&mut good.as_slice()).unwrap().unwrap();
        assert_eq!(payload, br#"{"k":3}"#);
    }

    #[test]
    fn score_bits_roundtrip() {
        for v in [0.0f64, -0.0, 1.5, f64::MIN_POSITIVE, 1.0 / 3.0, 1e300] {
            let m = WireMatch {
                graph: 7,
                graph_name: "g".into(),
                score_bits: v.to_bits(),
                matched_nodes: 1,
                matched_edges: 0,
                pairs: vec![],
            };
            let json = serde_json::to_string(&m).unwrap();
            let back: WireMatch = serde_json::from_str(&json).unwrap();
            assert_eq!(back.to_match().score.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn options_roundtrip() {
        let opts = tale::QueryOptions::default()
            .with_top_k(5)
            .with_threads(3)
            .with_plan(tale::PlanMode::Fixed);
        let wire = WireOptions::from_options(&opts);
        let json = serde_json::to_string(&wire).unwrap();
        let back: WireOptions = serde_json::from_str(&json).unwrap();
        let decoded = back.to_options().unwrap();
        assert_eq!(decoded.rho.to_bits(), opts.rho.to_bits());
        assert_eq!(decoded.p_imp.to_bits(), opts.p_imp.to_bits());
        assert_eq!(decoded.top_k, Some(5));
        assert_eq!(decoded.threads, 3);
        assert_eq!(decoded.plan, tale::PlanMode::Fixed);
        assert_eq!(decoded.similarity.name(), opts.similarity.name());
        // the engine's cache/options fingerprint must agree across hosts
        assert_eq!(
            tale::options_fingerprint(&decoded),
            tale::options_fingerprint(&opts)
        );
    }
}
