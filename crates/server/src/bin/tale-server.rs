//! `tale-server` — serve an NH-indexed graph database over TCP.
//!
//! ```text
//! tale-server shard --dir <index-dir> --shard N [--addr HOST:PORT]
//!             [--frames N] [--io-workers N] [--prefetch N]
//!             [--max-connections N] [--max-inflight N] [--max-queue N]
//!             [--drain-ms N]
//! tale-server frontend --shards SHARD,SHARD,... [--addr HOST:PORT]
//!             [--max-inflight N] [--max-queue N] [--drain-ms N]
//!             [--retries N] [--hedge-ms N] [--breaker-failures N]
//!             [--breaker-cooldown-ms N] [--probe-ms N]
//! ```
//!
//! A **shard worker** serves one `shard-NNN/` of a database built with
//! `tale-cli build --shards N`: `--dir` is the database root (the
//! directory holding `graphs.json` and `shards.json`), `--shard` the
//! ordinal to serve. A **frontend** fans client batches out to the
//! listed workers — one `SHARD` entry per shard, in shard order — and
//! merges their partials bit-identically to in-process execution.
//!
//! Each `SHARD` entry is one address, or a `|`-separated **replica
//! group** (`a1:port|a2:port`) of workers all serving the same shard
//! directory: the frontend verifies their fingerprints agree, fails
//! over on transport errors, retries idempotent requests with jittered
//! backoff, hedges slow requests at the observed p95, and circuit-
//! breaks dead replicas (probed in the background until they recover).
//!
//! Both commands drain gracefully on SIGTERM/ctrl-c: stop accepting,
//! finish requests already read (bounded by `--drain-ms`, default
//! 5000), then exit 0.
//!
//! Both print the bound address on the first stdout line (`listening
//! HOST:PORT`) so scripts can pass `--addr 127.0.0.1:0` and read the
//! chosen port. See DESIGN.md §15–§16 and the README's "Running as a
//! service" for a loopback quick-start.

use std::net::SocketAddr;
use std::path::Path;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tale_server::admission::GateConfig;
use tale_server::engine::{EngineConfig, ShardEngine};
use tale_server::replica::{ReplicaConfig, ReplicaSet};
use tale_server::transport::{RemoteConfig, RemoteTransport, ShardTransport};
use tale_server::worker::{serve, serve_shard, ServerHandle, WorkerConfig};
use tale_server::{Frontend, FrontendConfig};

const USAGE: &str = "usage:
  tale-server shard --dir <index-dir> --shard N [--addr HOST:PORT]
              [--frames N] [--io-workers N] [--prefetch N]
              [--max-connections N] [--max-inflight N] [--max-queue N]
              [--drain-ms N]
  tale-server frontend --shards SHARD,... [--addr HOST:PORT]
              [--max-inflight N] [--max-queue N] [--drain-ms N]
              [--retries N] [--hedge-ms N] [--breaker-failures N]
              [--breaker-cooldown-ms N] [--probe-ms N]
  (each SHARD is HOST:PORT or a replica group HOST:PORT|HOST:PORT|...)";

/// Set by the SIGINT/SIGTERM handler; the serve loops poll it.
static STOP: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    STOP.store(true, Ordering::SeqCst);
}

/// Installs the drain-on-signal handler for SIGINT (2) and SIGTERM
/// (15). Raw `signal(2)` keeps this free of any FFI crate; storing to a
/// static `AtomicBool` is async-signal-safe.
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    let handler = on_signal as extern "C" fn(i32) as usize;
    unsafe {
        signal(2, handler); // SIGINT
        signal(15, handler); // SIGTERM
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("shard") => cmd_shard(&args[1..]),
        Some("frontend") => cmd_frontend(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tale-server: {e}");
            ExitCode::FAILURE
        }
    }
}

fn flags_of(args: &[String]) -> Result<Vec<(&str, &str)>, String> {
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let name = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("unexpected argument {:?}\n{USAGE}", args[i]))?;
        let v = args
            .get(i + 1)
            .ok_or_else(|| format!("flag --{name} needs a value"))?;
        flags.push((name, v.as_str()));
        i += 2;
    }
    Ok(flags)
}

fn parse<T: std::str::FromStr>(name: &str, v: &str) -> Result<T, String> {
    v.parse()
        .map_err(|_| format!("bad value {v:?} for --{name}"))
}

fn gate_of(
    max_inflight: Option<usize>,
    max_queue: Option<usize>,
    default: GateConfig,
) -> GateConfig {
    let max_inflight = max_inflight.unwrap_or(default.max_inflight);
    GateConfig {
        max_inflight,
        max_queue: max_queue.unwrap_or(max_inflight * 2),
    }
}

/// Serves until a signal arrives, then drains within `drain` and exits
/// 0 (with a note on stderr when stragglers had to be cut off).
fn run_until_signal(mut handle: ServerHandle, drain: Duration) {
    install_signal_handlers();
    while !STOP.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("draining (up to {} ms)...", drain.as_millis());
    if handle.drain(drain) {
        eprintln!("drained clean");
    } else {
        eprintln!("drain deadline hit; severed remaining connections");
    }
}

fn cmd_shard(args: &[String]) -> Result<(), String> {
    let mut dir: Option<String> = None;
    let mut shard: Option<u32> = None;
    let mut addr: SocketAddr = "127.0.0.1:7411".parse().expect("literal addr");
    let mut engine_cfg = EngineConfig::default();
    let mut max_connections = WorkerConfig::default().max_connections;
    let mut max_inflight = None;
    let mut max_queue = None;
    let mut drain_ms: u64 = 5000;
    for (name, v) in flags_of(args)? {
        match name {
            "dir" => dir = Some(v.to_owned()),
            "shard" => shard = Some(parse(name, v)?),
            "addr" => addr = parse(name, v)?,
            "frames" => engine_cfg.buffer_frames = parse(name, v)?,
            "io-workers" => engine_cfg.io_workers = parse(name, v)?,
            "prefetch" => engine_cfg.prefetch_pages = parse(name, v)?,
            "max-connections" => max_connections = parse(name, v)?,
            "max-inflight" => max_inflight = Some(parse(name, v)?),
            "max-queue" => max_queue = Some(parse(name, v)?),
            "drain-ms" => drain_ms = parse(name, v)?,
            other => return Err(format!("unknown flag --{other}\n{USAGE}")),
        }
    }
    let dir = dir.ok_or_else(|| format!("shard needs --dir\n{USAGE}"))?;
    let shard = shard.ok_or_else(|| format!("shard needs --shard\n{USAGE}"))?;
    let io_workers = engine_cfg.io_workers;
    let engine = ShardEngine::open(Path::new(&dir), shard, engine_cfg)
        .map_err(|e| format!("opening shard {shard} of {dir}: {e}"))?;
    let cfg = WorkerConfig {
        max_connections,
        gate: gate_of(
            max_inflight,
            max_queue,
            GateConfig::for_io_workers(io_workers),
        ),
    };
    let handle =
        serve_shard(Arc::new(engine), addr, cfg).map_err(|e| format!("binding {addr}: {e}"))?;
    println!("listening {}", handle.addr());
    eprintln!(
        "serving shard {shard} of {dir} ({} in flight, {} queued, {} connections)",
        cfg.gate.max_inflight, cfg.gate.max_queue, cfg.max_connections
    );
    run_until_signal(handle, Duration::from_millis(drain_ms));
    Ok(())
}

fn cmd_frontend(args: &[String]) -> Result<(), String> {
    let mut shards: Option<String> = None;
    let mut addr: SocketAddr = "127.0.0.1:7410".parse().expect("literal addr");
    let mut max_inflight = None;
    let mut max_queue = None;
    let mut drain_ms: u64 = 5000;
    let mut replica_cfg = ReplicaConfig::default();
    for (name, v) in flags_of(args)? {
        match name {
            "shards" => shards = Some(v.to_owned()),
            "addr" => addr = parse(name, v)?,
            "max-inflight" => max_inflight = Some(parse(name, v)?),
            "max-queue" => max_queue = Some(parse(name, v)?),
            "drain-ms" => drain_ms = parse(name, v)?,
            "retries" => replica_cfg.retries = parse(name, v)?,
            "hedge-ms" => {
                // 0 = p95-driven (the default); otherwise a fixed trigger.
                let ms: u64 = parse(name, v)?;
                replica_cfg.hedge_after = (ms > 0).then(|| Duration::from_millis(ms));
            }
            "breaker-failures" => replica_cfg.failure_threshold = parse(name, v)?,
            "breaker-cooldown-ms" => {
                replica_cfg.open_cooldown = Duration::from_millis(parse(name, v)?)
            }
            "probe-ms" => replica_cfg.probe_interval = Duration::from_millis(parse(name, v)?),
            other => return Err(format!("unknown flag --{other}\n{USAGE}")),
        }
    }
    let shards = shards.ok_or_else(|| format!("frontend needs --shards\n{USAGE}"))?;
    let mut transports: Vec<Arc<dyn ShardTransport>> = Vec::new();
    let mut replica_total = 0usize;
    for (i, group) in shards.split(',').enumerate() {
        let mut members: Vec<Arc<dyn ShardTransport>> = Vec::new();
        for part in group.split('|') {
            let worker_addr: SocketAddr = part
                .trim()
                .parse()
                .map_err(|_| format!("bad shard address {part:?}"))?;
            members.push(RemoteTransport::new(
                worker_addr,
                i as u32,
                RemoteConfig::default(),
            ));
        }
        if members.is_empty() {
            return Err(format!("shard {i} has no addresses"));
        }
        replica_total += members.len();
        if members.len() == 1 {
            transports.push(members.pop().expect("one member"));
        } else {
            transports.push(ReplicaSet::new(i as u32, members, replica_cfg));
        }
    }
    let cfg = FrontendConfig {
        gate: gate_of(max_inflight, max_queue, GateConfig::default()),
        ..FrontendConfig::default()
    };
    let nshards = transports.len();
    let frontend =
        Frontend::new(transports, cfg).map_err(|e| format!("connecting to workers: {e}"))?;
    let handle = serve(Arc::new(frontend), addr, WorkerConfig::default())
        .map_err(|e| format!("binding {addr}: {e}"))?;
    println!("listening {}", handle.addr());
    eprintln!(
        "frontend over {nshards} shard(s), {replica_total} replica(s) \
         ({} in flight, {} queued)",
        cfg.gate.max_inflight, cfg.gate.max_queue
    );
    run_until_signal(handle, Duration::from_millis(drain_ms));
    Ok(())
}
