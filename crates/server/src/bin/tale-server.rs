//! `tale-server` — serve an NH-indexed graph database over TCP.
//!
//! ```text
//! tale-server shard --dir <index-dir> --shard N [--addr HOST:PORT]
//!             [--frames N] [--io-workers N] [--prefetch N]
//!             [--max-connections N] [--max-inflight N] [--max-queue N]
//! tale-server frontend --shards HOST:PORT,HOST:PORT,... [--addr HOST:PORT]
//!             [--max-inflight N] [--max-queue N]
//! ```
//!
//! A **shard worker** serves one `shard-NNN/` of a database built with
//! `tale-cli build --shards N`: `--dir` is the database root (the
//! directory holding `graphs.json` and `shards.json`), `--shard` the
//! ordinal to serve. A **frontend** fans client batches out to the
//! listed workers — one address per shard, in shard order — and merges
//! their partials bit-identically to in-process execution.
//!
//! Both print the bound address on the first stdout line (`listening
//! HOST:PORT`) so scripts can pass `--addr 127.0.0.1:0` and read the
//! chosen port. See DESIGN.md §15 and the README's "Running as a
//! service" for a loopback quick-start.

use std::net::SocketAddr;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use tale_server::admission::GateConfig;
use tale_server::engine::{EngineConfig, ShardEngine};
use tale_server::transport::{RemoteConfig, RemoteTransport, ShardTransport};
use tale_server::worker::{serve, serve_shard, WorkerConfig};
use tale_server::{Frontend, FrontendConfig};

const USAGE: &str = "usage:
  tale-server shard --dir <index-dir> --shard N [--addr HOST:PORT]
              [--frames N] [--io-workers N] [--prefetch N]
              [--max-connections N] [--max-inflight N] [--max-queue N]
  tale-server frontend --shards HOST:PORT,... [--addr HOST:PORT]
              [--max-inflight N] [--max-queue N]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("shard") => cmd_shard(&args[1..]),
        Some("frontend") => cmd_frontend(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tale-server: {e}");
            ExitCode::FAILURE
        }
    }
}

fn flags_of(args: &[String]) -> Result<Vec<(&str, &str)>, String> {
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let name = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("unexpected argument {:?}\n{USAGE}", args[i]))?;
        let v = args
            .get(i + 1)
            .ok_or_else(|| format!("flag --{name} needs a value"))?;
        flags.push((name, v.as_str()));
        i += 2;
    }
    Ok(flags)
}

fn parse<T: std::str::FromStr>(name: &str, v: &str) -> Result<T, String> {
    v.parse()
        .map_err(|_| format!("bad value {v:?} for --{name}"))
}

fn gate_of(
    max_inflight: Option<usize>,
    max_queue: Option<usize>,
    default: GateConfig,
) -> GateConfig {
    let max_inflight = max_inflight.unwrap_or(default.max_inflight);
    GateConfig {
        max_inflight,
        max_queue: max_queue.unwrap_or(max_inflight * 2),
    }
}

fn cmd_shard(args: &[String]) -> Result<(), String> {
    let mut dir: Option<String> = None;
    let mut shard: Option<u32> = None;
    let mut addr: SocketAddr = "127.0.0.1:7411".parse().expect("literal addr");
    let mut engine_cfg = EngineConfig::default();
    let mut max_connections = WorkerConfig::default().max_connections;
    let mut max_inflight = None;
    let mut max_queue = None;
    for (name, v) in flags_of(args)? {
        match name {
            "dir" => dir = Some(v.to_owned()),
            "shard" => shard = Some(parse(name, v)?),
            "addr" => addr = parse(name, v)?,
            "frames" => engine_cfg.buffer_frames = parse(name, v)?,
            "io-workers" => engine_cfg.io_workers = parse(name, v)?,
            "prefetch" => engine_cfg.prefetch_pages = parse(name, v)?,
            "max-connections" => max_connections = parse(name, v)?,
            "max-inflight" => max_inflight = Some(parse(name, v)?),
            "max-queue" => max_queue = Some(parse(name, v)?),
            other => return Err(format!("unknown flag --{other}\n{USAGE}")),
        }
    }
    let dir = dir.ok_or_else(|| format!("shard needs --dir\n{USAGE}"))?;
    let shard = shard.ok_or_else(|| format!("shard needs --shard\n{USAGE}"))?;
    let io_workers = engine_cfg.io_workers;
    let engine = ShardEngine::open(Path::new(&dir), shard, engine_cfg)
        .map_err(|e| format!("opening shard {shard} of {dir}: {e}"))?;
    let cfg = WorkerConfig {
        max_connections,
        gate: gate_of(
            max_inflight,
            max_queue,
            GateConfig::for_io_workers(io_workers),
        ),
    };
    let mut handle =
        serve_shard(Arc::new(engine), addr, cfg).map_err(|e| format!("binding {addr}: {e}"))?;
    println!("listening {}", handle.addr());
    eprintln!(
        "serving shard {shard} of {dir} ({} in flight, {} queued, {} connections)",
        cfg.gate.max_inflight, cfg.gate.max_queue, cfg.max_connections
    );
    handle.wait();
    Ok(())
}

fn cmd_frontend(args: &[String]) -> Result<(), String> {
    let mut shards: Option<String> = None;
    let mut addr: SocketAddr = "127.0.0.1:7410".parse().expect("literal addr");
    let mut max_inflight = None;
    let mut max_queue = None;
    for (name, v) in flags_of(args)? {
        match name {
            "shards" => shards = Some(v.to_owned()),
            "addr" => addr = parse(name, v)?,
            "max-inflight" => max_inflight = Some(parse(name, v)?),
            "max-queue" => max_queue = Some(parse(name, v)?),
            other => return Err(format!("unknown flag --{other}\n{USAGE}")),
        }
    }
    let shards = shards.ok_or_else(|| format!("frontend needs --shards\n{USAGE}"))?;
    let mut transports: Vec<Arc<dyn ShardTransport>> = Vec::new();
    for (i, part) in shards.split(',').enumerate() {
        let worker_addr: SocketAddr = part
            .trim()
            .parse()
            .map_err(|_| format!("bad shard address {part:?}"))?;
        transports.push(RemoteTransport::new(
            worker_addr,
            i as u32,
            RemoteConfig::default(),
        ));
    }
    let cfg = FrontendConfig {
        gate: gate_of(max_inflight, max_queue, GateConfig::default()),
        ..FrontendConfig::default()
    };
    let nshards = transports.len();
    let frontend =
        Frontend::new(transports, cfg).map_err(|e| format!("connecting to workers: {e}"))?;
    let mut handle = serve(Arc::new(frontend), addr, WorkerConfig::default())
        .map_err(|e| format!("binding {addr}: {e}"))?;
    println!("listening {}", handle.addr());
    eprintln!(
        "frontend over {nshards} shard(s) ({} in flight, {} queued)",
        cfg.gate.max_inflight, cfg.gate.max_queue
    );
    handle.wait();
    Ok(())
}
