//! `tale-cli` — build, inspect and query NH-indexed graph databases from
//! the command line.
//!
//! ```text
//! tale-cli build <graphs.(txt|json)> <index-dir> [--sbit N] [--frames N]
//!          [--shards N] [--policy hash|size-balanced|label-clustered]
//! tale-cli add   <index-dir> <graphs.(txt|json)>
//! tale-cli stats <index-dir> [--json]
//! tale-cli explain <index-dir> <query.(txt|json)> [--plan fixed|cost] [--json]
//! tale-cli query <index-dir> <query.(txt|json)> [--rho F] [--pimp F]
//!          [--top-k N] [--importance degree|closeness|betweenness|eigenvector|random]
//!          [--hops N] [--similarity quality|nodes-edges|ctree] [--threads N]
//!          [--plan fixed|cost] [--explain] [--format text|json] [--stats]
//!          [--no-cache] [--pool-pages N]
//! tale-cli verify <index-dir>
//! tale-cli recover <index-dir>
//! tale-cli server-stats <host:port> [--json]
//! tale-cli health <host:port> [--json]
//! ```
//!
//! Every command that opens an existing index accepts `--pool-pages N`
//! (buffer-pool frames per index page file) — shrink it to run queries
//! against an index much larger than memory; answers are identical at
//! every setting.
//!
//! Graph files use the line-oriented text format of `tale_graph::io`
//! (`graph <name>` / `v <label>` / `e <u> <v> [label]`) or the JSON dump.
//! Queries take the *first* graph in the file; its label names are mapped
//! into the database vocabulary (unknown labels simply never match).
//!
//! `build --shards N` writes the partitioned layout (`shards.json` +
//! `shard-NNN/` directories, see `tale_shard`); every other command
//! detects the layout from the manifest and works on both. Sharded query
//! results are bit-identical to the single-index answer.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use tale::{
    CTreeStyle, ImportanceMeasure, MatchedNodesEdges, PlanMode, QualitySum, QueryMatch,
    QueryOptions, QueryStats, ShardStats, TaleDatabase, TaleParams,
};
use tale_graph::labels::NodeLabel;
use tale_graph::{Graph, GraphDb, GraphId, NodeId};
use tale_nhindex::{
    IndexReader, IndexStatistics, NeighborArrayScheme, NodeCandidate, ProbeStats, QuerySignature,
};
use tale_server::wire;
use tale_shard::{policy_by_name, ShardManifest, ShardedTaleDatabase};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("build") => cmd_build(&args[1..]),
        Some("add") => cmd_add(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("explain") => cmd_explain(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("recover") => cmd_recover(&args[1..]),
        Some("generations") => cmd_generations(&args[1..]),
        Some("fold") => cmd_fold(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("server-stats") => cmd_server_stats(&args[1..]),
        Some("health") => cmd_health(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            eprint!("{}", USAGE);
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tale-cli: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  tale-cli build <graphs.(txt|json)> <index-dir> [--sbit N] [--frames N]
           [--shards N] [--policy hash|size-balanced|label-clustered]
  tale-cli add   <index-dir> <graphs.(txt|json)> [--pool-pages N]
  tale-cli stats <index-dir> [--json] [--pool-pages N]
  tale-cli explain <index-dir> <query.(txt|json)> [--rho F] [--pimp F]
           [--top-k N] [--similarity MODEL] [--plan fixed|cost] [--json]
           [--pool-pages N]
  tale-cli verify <index-dir> [--pool-pages N]
  tale-cli recover <index-dir> [--pool-pages N]
  tale-cli generations <index-dir> [--pool-pages N]
  tale-cli fold <index-dir> [--pool-pages N]
  tale-cli query <index-dir> <query.(txt|json)> [--rho F] [--pimp F]
           [--top-k N] [--importance MEASURE] [--hops N] [--similarity MODEL]
           [--threads N] [--plan fixed|cost] [--explain] [--format text|json]
           [--stats] [--no-cache] [--pool-pages N]
  tale-cli server-stats <host:port> [--json]
  tale-cli health <host:port> [--json]

measures: degree (default) | closeness | betweenness | eigenvector | random
models:   quality (default) | nodes-edges | ctree
threads:  0 = one per core (default); 1 = serial; N = worker cap
shards:   partition the index across N independent NH-Index shards;
          queries scatter/gather and return bit-identical results
plan:     cost (default) plans from per-index statistics — selectivity-
          ordered probes, readahead budgets, provably-safe shard pruning;
          fixed runs the baseline pipeline. Results are bit-identical.
explain:  (query) also print the chosen plan tree with cost annotations;
          the explain subcommand prints the plan without executing
stats:    print per-stage engine statistics (probe traffic, pool fetch
          taxonomy, per-shard traffic and skew, stage wall clock); with
          --format json, wraps the output as
          {\"matches\": [...], \"stats\": {...}, \"shards\": [...]}
          (the stats subcommand prints index statistics instead:
          vocabulary skew, posting-size percentiles, staleness; --json
          dumps the full per-shard statistics)
no-cache: bypass the query-result cache for this run
pool-pages: buffer-pool frames per index page file (8 KiB each); small
          values exercise the larger-than-RAM read path. Results are
          identical at every setting — only latency changes.
generations: show the generational index's on-disk generations, pinned
          readers, unfolded delta size and tombstone count
fold:     build the in-memory delta + tombstones into a fresh on-disk
          generation and atomically flip to it (readers never block)
server-stats: fetch a running tale-server's counters (worker or
          frontend) over the wire and pretty-print them; --json dumps
          the raw snapshot
health:   fetch a running tale-server's health view — liveness, load,
          and (on a frontend with replica groups) every replica's
          circuit-breaker state; --json dumps the raw response
";

/// A database handle that is either a single-index [`TaleDatabase`] or a
/// [`ShardedTaleDatabase`], detected from the `shards.json` manifest.
/// Every subcommand works on both.
enum AnyDb {
    Single(TaleDatabase),
    Sharded(ShardedTaleDatabase),
}

/// A borrowed-or-shared view of the graph store: the generational
/// database hands out an `Arc` snapshot (readers never block its
/// writers), the sharded one a plain reference. `Deref` makes both read
/// like `&GraphDb`.
enum DbRef<'a> {
    Shared(Arc<GraphDb>),
    Borrowed(&'a GraphDb),
}

impl std::ops::Deref for DbRef<'_> {
    type Target = GraphDb;
    fn deref(&self) -> &GraphDb {
        match self {
            DbRef::Shared(a) => a,
            DbRef::Borrowed(r) => r,
        }
    }
}

/// Probes each reader with one signature and merges (hits are disjoint
/// across readers; counters sum).
fn probe_readers(
    readers: &[&dyn IndexReader],
    sig: &QuerySignature,
    rho: f64,
) -> Result<(Vec<NodeCandidate>, ProbeStats), String> {
    let mut hits = Vec::new();
    let mut total = ProbeStats::default();
    for r in readers {
        let mut res = r
            .probe_batch(std::slice::from_ref(sig), rho, 1)
            .map_err(|e| e.to_string())?;
        let (h, st) = res.remove(0);
        hits.extend(h);
        total.keys_scanned += st.keys_scanned;
        total.postings_fetched += st.postings_fetched;
        total.postings_filtered += st.postings_filtered;
        total.rows_examined += st.rows_examined;
        total.rows_returned += st.rows_returned;
    }
    Ok((hits, total))
}

impl AnyDb {
    fn open(dir: &Path, buffer_frames: usize) -> Result<Self, String> {
        if ShardManifest::exists(dir) {
            ShardedTaleDatabase::open(dir, buffer_frames)
                .map(AnyDb::Sharded)
                .map_err(|e| e.to_string())
        } else {
            TaleDatabase::open(dir, buffer_frames)
                .map(AnyDb::Single)
                .map_err(|e| e.to_string())
        }
    }

    fn db(&self) -> DbRef<'_> {
        match self {
            AnyDb::Single(t) => DbRef::Shared(t.db()),
            AnyDb::Sharded(t) => DbRef::Borrowed(t.db()),
        }
    }

    fn index_size_bytes(&self) -> u64 {
        match self {
            AnyDb::Single(t) => t.index_size_bytes(),
            AnyDb::Sharded(t) => t.index_size_bytes(),
        }
    }

    fn key_count(&self) -> u64 {
        match self {
            AnyDb::Single(t) => t.index().key_count(),
            AnyDb::Sharded(t) => t.index().key_count(),
        }
    }

    fn node_count(&self) -> u64 {
        match self {
            AnyDb::Single(t) => t.index().node_count(),
            AnyDb::Sharded(t) => t.index().node_count(),
        }
    }

    fn scheme(&self) -> NeighborArrayScheme {
        match self {
            AnyDb::Single(t) => t.index().scheme(),
            // all shards share one scheme (derived from the full
            // database vocabulary at build time)
            AnyDb::Sharded(t) => t.index().shards()[0].scheme(),
        }
    }

    fn signature(
        &self,
        g: &Graph,
        node: NodeId,
        label_of: &dyn Fn(NodeId) -> u32,
    ) -> QuerySignature {
        match self {
            AnyDb::Single(t) => t.index().signature(g, node, label_of),
            AnyDb::Sharded(t) => t.index().shards()[0].signature(g, node, label_of),
        }
    }

    /// Probes every reader and merges. For the generational database the
    /// readers are a pinned snapshot's base generation plus its delta
    /// overlay; for the sharded one, every shard. Hits are disjoint
    /// across readers; counters sum.
    fn probe_with_stats(
        &self,
        sig: &QuerySignature,
        rho: f64,
    ) -> Result<(Vec<NodeCandidate>, ProbeStats), String> {
        match self {
            AnyDb::Single(t) => {
                let snap = t.index().snapshot();
                let base = snap.base_reader();
                let delta = snap.delta_reader();
                probe_readers(&[&base, &delta], sig, rho)
            }
            AnyDb::Sharded(t) => {
                let readers: Vec<&dyn IndexReader> = t
                    .index()
                    .shards()
                    .iter()
                    .map(|s| s as &dyn IndexReader)
                    .collect();
                probe_readers(&readers, sig, rho)
            }
        }
    }

    /// The cost-based plan report for one query, without executing it.
    fn explain(&self, query: &Graph, opts: &QueryOptions) -> tale::PlanReport {
        match self {
            AnyDb::Single(t) => t.explain(query, opts),
            AnyDb::Sharded(t) => t.explain(query, opts),
        }
    }

    /// Live per-unit index statistics: one entry per shard for the
    /// sharded layout; the pinned base generation plus the delta overlay
    /// for the generational one. `None` marks a unit whose index predates
    /// the statistics file (the planner falls back to fixed behavior
    /// there).
    fn statistics_units(&self) -> Vec<(String, Option<Arc<IndexStatistics>>)> {
        match self {
            AnyDb::Single(t) => {
                let snap = t.index().snapshot();
                vec![
                    (
                        format!("g{}", t.index().current_generation()),
                        snap.base_reader().statistics(),
                    ),
                    ("delta".to_owned(), snap.delta_reader().statistics()),
                ]
            }
            AnyDb::Sharded(t) => t
                .index()
                .shards()
                .iter()
                .enumerate()
                .map(|(s, idx)| (format!("shard {s}"), idx.statistics()))
                .collect(),
        }
    }

    fn insert_graph(&mut self, name: String, g: Graph) -> Result<GraphId, String> {
        match self {
            AnyDb::Single(t) => t.insert_graph(name, g).map_err(|e| e.to_string()),
            AnyDb::Sharded(t) => t.insert_graph(name, g).map_err(|e| e.to_string()),
        }
    }

    fn intern_node_label(&mut self, name: &str) -> NodeLabel {
        match self {
            AnyDb::Single(t) => t.intern_node_label(name),
            AnyDb::Sharded(t) => t.intern_node_label(name),
        }
    }

    /// One query through the engine, returning its per-query stats plus
    /// the per-shard breakdown and skew from the batch layer.
    #[allow(clippy::type_complexity)]
    fn query_with_stats(
        &self,
        query: &Graph,
        opts: &QueryOptions,
    ) -> Result<(Vec<QueryMatch>, QueryStats, Vec<ShardStats>, f64), String> {
        let (mut outputs, mut batch) = match self {
            AnyDb::Single(t) => t.query_batch_with_stats(&[query], opts),
            AnyDb::Sharded(t) => {
                return t
                    .query_batch_with_stats(&[query], opts)
                    .map(|(mut o, mut b)| {
                        let skew = b.shard_skew();
                        (o.remove(0), b.per_query.remove(0), b.shards, skew)
                    })
                    .map_err(|e| e.to_string())
            }
        }
        .map_err(|e| e.to_string())?;
        let skew = batch.shard_skew();
        Ok((
            outputs.remove(0),
            batch.per_query.remove(0),
            batch.shards,
            skew,
        ))
    }
}

/// Positional arguments and `--flag value` pairs.
type ParsedArgs<'a> = (Vec<&'a str>, Vec<(&'a str, &'a str)>);

/// Flags that take no value; they parse as `(name, "")`.
const BOOL_FLAGS: &[&str] = &["stats", "no-cache", "json", "explain"];

/// Pulls `--flag value` pairs (and bare boolean flags) out of an argument
/// list; returns (positional, flags).
fn split_args(args: &[String]) -> Result<ParsedArgs<'_>, String> {
    let mut pos = Vec::new();
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if let Some(name) = a.strip_prefix("--") {
            if BOOL_FLAGS.contains(&name) {
                flags.push((name, ""));
                i += 1;
                continue;
            }
            let v = args
                .get(i + 1)
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            flags.push((name, v.as_str()));
            i += 2;
        } else {
            pos.push(a);
            i += 1;
        }
    }
    Ok((pos, flags))
}

fn parse<T: std::str::FromStr>(name: &str, v: &str) -> Result<T, String> {
    v.parse()
        .map_err(|_| format!("bad value {v:?} for --{name}"))
}

/// Parses flags for a command whose only option is `--pool-pages N`
/// (buffer-pool frames per index page file), rejecting anything else.
fn pool_pages_only(flags: &[(&str, &str)], default: usize) -> Result<usize, String> {
    let mut pages = default;
    for (name, v) in flags {
        match *name {
            "pool-pages" => pages = parse(name, v)?,
            other => return Err(format!("unknown flag --{other}")),
        }
    }
    if pages == 0 {
        return Err("--pool-pages must be >= 1".into());
    }
    Ok(pages)
}

fn load_db(path: &Path) -> Result<GraphDb, String> {
    let is_json = path.extension().is_some_and(|e| e == "json");
    let result = if is_json {
        tale_graph::io::load_json(path)
    } else {
        std::fs::File::open(path)
            .map_err(tale_graph::GraphError::from)
            .and_then(tale_graph::io::read_text)
    };
    result.map_err(|e| format!("loading {}: {e}", path.display()))
}

fn cmd_build(args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_args(args)?;
    let [input, dir] = pos.as_slice() else {
        return Err(format!("build needs <graphs> <index-dir>\n{USAGE}"));
    };
    let mut params = TaleParams::default();
    let mut shards: Option<usize> = None;
    let mut policy_name = "hash";
    for (name, v) in flags {
        match name {
            "sbit" => params.sbit = parse(name, v)?,
            "frames" => params.buffer_frames = parse(name, v)?,
            "shards" => {
                let n: usize = parse(name, v)?;
                if n == 0 {
                    return Err("--shards must be >= 1".into());
                }
                shards = Some(n);
            }
            "policy" => policy_name = v,
            other => return Err(format!("unknown flag --{other}")),
        }
    }
    let policy =
        policy_by_name(policy_name).ok_or_else(|| format!("unknown policy {policy_name:?}"))?;
    let db = load_db(Path::new(input))?;
    let (graphs, nodes, edges) = (db.len(), db.total_nodes(), db.total_edges());
    let start = std::time::Instant::now();
    if let Some(nshards) = shards {
        let (tale, build) = ShardedTaleDatabase::build_with_stats(
            db,
            Path::new(dir),
            &params,
            nshards,
            policy.as_ref(),
        )
        .map_err(|e| e.to_string())?;
        println!(
            "indexed {graphs} graphs ({nodes} nodes, {edges} edges) in {:.2}s \
             across {nshards} shards ({policy_name} placement, build skew {:.2})",
            start.elapsed().as_secs_f64(),
            build.skew()
        );
        for (s, (&g, &n)) in build
            .graphs_per_shard
            .iter()
            .zip(&build.nodes_per_shard)
            .enumerate()
        {
            println!(
                "  shard {s:>3}: {g} graphs, {n} nodes, built in {:.3}s",
                build.per_shard_secs[s]
            );
        }
        println!(
            "index: {} keys, {} bytes at {dir}",
            tale.index().key_count(),
            tale.index_size_bytes()
        );
    } else {
        let tale = TaleDatabase::build(db, Path::new(dir), &params).map_err(|e| e.to_string())?;
        println!(
            "indexed {graphs} graphs ({nodes} nodes, {edges} edges) in {:.2}s",
            start.elapsed().as_secs_f64()
        );
        println!(
            "index: {} distinct keys, {} bytes at {dir}",
            tale.index().key_count(),
            tale.index_size_bytes()
        );
    }
    Ok(())
}

fn cmd_add(args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_args(args)?;
    let [dir, input] = pos.as_slice() else {
        return Err(format!("add needs <index-dir> <graphs>\n{USAGE}"));
    };
    let pool_pages = pool_pages_only(&flags, 4096)?;
    let mut tale = AnyDb::open(Path::new(dir), pool_pages)?;
    let incoming = load_db(Path::new(input))?;
    let mut added = 0;
    for (gid, name, src) in incoming.iter() {
        let _ = gid;
        // remap labels by name, interning new ones into the live vocabulary
        let mut g = Graph::new(src.direction());
        for n in src.nodes() {
            let label_name = incoming
                .node_vocab()
                .name(src.label(n).0)
                .unwrap_or("?")
                .to_owned();
            let l = tale.intern_node_label(&label_name);
            g.add_node(l);
        }
        for (u, v, _) in src.edges() {
            g.add_edge(u, v).map_err(|e| e.to_string())?;
        }
        tale.insert_graph(name.to_owned(), g)?;
        added += 1;
    }
    println!(
        "added {added} graphs; index now covers {} graphs / {} nodes",
        tale.db().len(),
        tale.node_count()
    );
    Ok(())
}

/// Fraction of a unit's indexed nodes carrying its most frequent label —
/// 1/|labels| for a uniform vocabulary, → 1.0 for a clustered shard.
fn vocab_skew(st: &IndexStatistics) -> f64 {
    let top = st.labels.iter().map(|l| l.nodes).max().unwrap_or(0);
    if st.node_count == 0 {
        0.0
    } else {
        top as f64 / st.node_count as f64
    }
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_args(args)?;
    let [dir] = pos.as_slice() else {
        return Err(format!("stats needs <index-dir>\n{USAGE}"));
    };
    let mut pool_pages = 1024usize;
    let mut json = false;
    for (name, v) in flags {
        match name {
            "pool-pages" => pool_pages = parse(name, v)?,
            "json" => json = true,
            other => return Err(format!("unknown flag --{other}")),
        }
    }
    let tale = AnyDb::open(Path::new(dir), pool_pages)?;
    let units = tale.statistics_units();
    if json {
        #[derive(serde::Serialize)]
        struct UnitDump {
            name: String,
            stats: Option<IndexStatistics>,
        }
        #[derive(serde::Serialize)]
        struct StatsDump {
            graphs: usize,
            nodes: usize,
            edges: usize,
            node_labels: usize,
            index_keys: u64,
            index_bytes: u64,
            shard_count: Option<u32>,
            policy: Option<String>,
            units: Vec<UnitDump>,
        }
        let (shard_count, policy) = match &tale {
            AnyDb::Sharded(t) => {
                let m = t.index().manifest();
                (Some(m.shard_count), Some(m.policy.clone()))
            }
            AnyDb::Single(_) => (None, None),
        };
        let dump = StatsDump {
            graphs: tale.db().len(),
            nodes: tale.db().total_nodes(),
            edges: tale.db().total_edges(),
            node_labels: tale.db().node_vocab().len(),
            index_keys: tale.key_count(),
            index_bytes: tale.index_size_bytes(),
            shard_count,
            policy,
            units: units
                .iter()
                .map(|(name, st)| UnitDump {
                    name: name.clone(),
                    stats: st.as_deref().cloned(),
                })
                .collect(),
        };
        println!(
            "{}",
            serde_json::to_string_pretty(&dump).map_err(|e| e.to_string())?
        );
        return Ok(());
    }
    println!("graphs           : {}", tale.db().len());
    println!("total nodes      : {}", tale.db().total_nodes());
    println!("total edges      : {}", tale.db().total_edges());
    println!("node labels |Σv| : {}", tale.db().node_vocab().len());
    println!(
        "group labels     : {}",
        if tale.db().has_groups() { "yes" } else { "no" }
    );
    println!("index keys       : {}", tale.key_count());
    println!("index bytes      : {}", tale.index_size_bytes());
    if let AnyDb::Sharded(t) = &tale {
        let m = t.index().manifest();
        println!(
            "shards           : {} ({} placement)",
            m.shard_count, m.policy
        );
        for s in 0..m.shard_count {
            let idx = &t.index().shards()[s as usize];
            println!(
                "  shard {s:>3}: {} graphs, {} indexed nodes, {} keys, {} bytes",
                m.graphs_of(s).len(),
                idx.node_count(),
                idx.key_count(),
                idx.size_bytes()
            );
        }
    }
    let s = tale.scheme();
    println!(
        "neighbor arrays  : Sbit={} ({})",
        s.sbit,
        if s.deterministic {
            "deterministic"
        } else {
            "Bloom"
        }
    );
    // Per-unit planner statistics (nh.stats.json): vocabulary skew,
    // posting-row percentiles, and staleness (inserts merged since the
    // last exact rebuild). A `-` row means that unit predates the
    // statistics file; the planner treats it as unplannable.
    println!("planner statistics:");
    println!("  unit      graphs   nodes  labels  skew   post p50/p90/p99  maxdeg  stale");
    for (name, st) in &units {
        match st.as_deref() {
            Some(st) => println!(
                "  {:<8} {:>7} {:>7}  {:>6}  {:>4.2}  {:>6}/{:>3}/{:>3}  {:>6}  {:>5}",
                name,
                st.graph_count,
                st.node_count,
                st.labels.len(),
                vocab_skew(st),
                st.posting_rows.p50,
                st.posting_rows.p90,
                st.posting_rows.p99,
                st.max_degree,
                st.stale_inserts
            ),
            None => println!(
                "  {name:<8}       -       -       -     -        -/  -/  -       -      -"
            ),
        }
    }
    for (id, name, g) in tale.db().iter() {
        let _ = id;
        let st = tale_graph::stats::stats(g);
        println!(
            "  {name}: {} nodes, {} edges, max degree {}, clustering {:.3}",
            st.nodes, st.edges, st.max_degree, st.clustering
        );
    }
    Ok(())
}

/// Parses a `--similarity` value.
fn parse_similarity(v: &str) -> Result<Arc<dyn tale::SimilarityModel>, String> {
    match v {
        "quality" => Ok(Arc::new(QualitySum)),
        "nodes-edges" => Ok(Arc::new(MatchedNodesEdges)),
        "ctree" => Ok(Arc::new(CTreeStyle)),
        other => Err(format!("unknown similarity {other:?}")),
    }
}

/// Parses a `--plan` value.
fn parse_plan_mode(v: &str) -> Result<PlanMode, String> {
    match v {
        "fixed" => Ok(PlanMode::Fixed),
        "cost" => Ok(PlanMode::Cost),
        other => Err(format!("unknown plan mode {other:?} (fixed|cost)")),
    }
}

/// Prints the plan tree the engine would execute for one query — probe
/// order with selectivity estimates, readahead budget, and per-shard
/// feasibility / score bounds — without running it.
fn cmd_explain(args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_args(args)?;
    let [dir, query_path] = pos.as_slice() else {
        return Err(format!("explain needs <index-dir> <query>\n{USAGE}"));
    };
    let mut opts = QueryOptions::default();
    let mut json = false;
    let mut pool_pages = 4096usize;
    for (name, v) in flags {
        match name {
            "rho" => opts.rho = parse(name, v)?,
            "pimp" => opts.p_imp = parse(name, v)?,
            "top-k" => opts.top_k = Some(parse(name, v)?),
            "plan" => opts.plan = parse_plan_mode(v)?,
            "json" => json = true,
            "pool-pages" => pool_pages = parse(name, v)?,
            "similarity" => opts.similarity = parse_similarity(v)?,
            other => return Err(format!("unknown flag --{other}")),
        }
    }
    let tale = AnyDb::open(Path::new(dir), pool_pages)?;
    let qdb = load_db(&PathBuf::from(query_path))?;
    if qdb.is_empty() {
        return Err("query file holds no graphs".into());
    }
    let query = remap_query(&qdb, &tale.db());
    let report = tale.explain(&query, &opts);
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
    } else {
        print!("{}", report.render());
    }
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_args(args)?;
    let [dir, query_path] = pos.as_slice() else {
        return Err(format!("query needs <index-dir> <query>\n{USAGE}"));
    };
    let mut opts = QueryOptions::default();
    let mut json = false;
    let mut want_stats = false;
    let mut want_explain = false;
    let mut pool_pages = 4096usize;
    for (name, v) in flags {
        match name {
            "stats" => want_stats = true,
            "explain" => want_explain = true,
            "pool-pages" => pool_pages = parse(name, v)?,
            "no-cache" => opts.use_cache = false,
            "format" => {
                json = match v {
                    "json" => true,
                    "text" => false,
                    other => return Err(format!("unknown format {other:?}")),
                }
            }
            "rho" => opts.rho = parse(name, v)?,
            "pimp" => opts.p_imp = parse(name, v)?,
            "top-k" => opts.top_k = Some(parse(name, v)?),
            "hops" => opts.hops = parse(name, v)?,
            "threads" => opts.threads = parse(name, v)?,
            "plan" => opts.plan = parse_plan_mode(v)?,
            "importance" => {
                opts.importance = match v {
                    "degree" => ImportanceMeasure::Degree,
                    "closeness" => ImportanceMeasure::Closeness,
                    "betweenness" => ImportanceMeasure::Betweenness,
                    "eigenvector" => ImportanceMeasure::Eigenvector,
                    "random" => ImportanceMeasure::Random(0),
                    other => return Err(format!("unknown importance {other:?}")),
                }
            }
            "similarity" => opts.similarity = parse_similarity(v)?,
            other => return Err(format!("unknown flag --{other}")),
        }
    }

    let tale = AnyDb::open(Path::new(dir), pool_pages)?;
    let qdb = load_db(&PathBuf::from(query_path))?;
    if qdb.is_empty() {
        return Err("query file holds no graphs".into());
    }
    let query = remap_query(&qdb, &tale.db());
    let plan_report = want_explain.then(|| tale.explain(&query, &opts));

    let start = std::time::Instant::now();
    let (results, stats, shard_stats, skew) = tale.query_with_stats(&query, &opts)?;
    let secs = start.elapsed().as_secs_f64();
    if json {
        #[derive(serde::Serialize)]
        struct WithStats {
            plan: Option<tale::PlanReport>,
            matches: Vec<tale::QueryMatch>,
            stats: Option<tale::QueryStats>,
            shards: Vec<ShardStats>,
            shard_skew: f64,
        }
        let out = if want_stats || want_explain {
            serde_json::to_string_pretty(&WithStats {
                plan: plan_report,
                matches: results,
                stats: want_stats.then_some(stats),
                shards: if want_stats { shard_stats } else { Vec::new() },
                shard_skew: skew,
            })
        } else {
            serde_json::to_string_pretty(&results)
        }
        .map_err(|e| e.to_string())?;
        println!("{out}");
        return Ok(());
    }
    if let Some(report) = &plan_report {
        print!("{}", report.render());
        println!();
    }
    println!(
        "query: {} nodes, {} edges → {} matches in {:.3}s (ρ={}, Pimp={})",
        query.node_count(),
        query.edge_count(),
        results.len(),
        secs,
        opts.rho,
        opts.p_imp
    );
    for (rank, m) in results.iter().enumerate() {
        println!(
            "#{:<3} {:24} score {:>8.3}  nodes {:>4}  edges {:>4}",
            rank + 1,
            m.graph_name,
            m.score,
            m.matched_nodes,
            m.matched_edges
        );
    }
    if want_stats {
        println!();
        print_query_stats(&stats);
        if shard_stats.len() > 1 {
            println!("per-shard (skew {skew:.2}):");
            println!("  shard  probes  keys  postings  rows  cands  matches  wall(s)");
            for s in &shard_stats {
                println!(
                    "  {:>5}  {:>6}  {:>4}  {:>8}  {:>4}  {:>5}  {:>7}  {:.4}",
                    s.shard,
                    s.probes,
                    s.keys_scanned,
                    s.postings_fetched,
                    s.rows_examined,
                    s.candidates,
                    s.matches,
                    s.wall_secs
                );
            }
        }
    }
    Ok(())
}

fn print_query_stats(s: &tale::QueryStats) {
    println!("engine stats:");
    if s.cache_hit {
        println!("  result cache     : HIT (index untouched)");
    } else {
        println!("  result cache     : miss");
        println!("  important nodes  : {}", s.important_nodes);
        println!(
            "  index probes     : {} ({} shared)",
            s.probes, s.probes_shared
        );
        println!("  keys scanned     : {}", s.keys_scanned);
        println!("  postings fetched : {}", s.postings_fetched);
        println!("  postings filtered: {}", s.postings_filtered);
        println!("  rows examined    : {}", s.rows_examined);
        println!(
            "  candidates       : {} nodes across {} graphs",
            s.candidates, s.candidate_graphs
        );
        println!(
            "  planner          : est {} rows, {} shard(s) pruned{}",
            s.est_rows,
            s.shards_pruned,
            if s.probes_reordered {
                ", probes reordered"
            } else {
                ""
            }
        );
    }
    println!(
        "  pool hit rate    : {:.1}% ({} hits / {} coalesced / {} misses / {} prefetched)",
        100.0 * s.pool.hit_rate(),
        s.pool.hits,
        s.pool.coalesced,
        s.pool.misses,
        s.pool.prefetched
    );
    println!(
        "  stages (s)       : plan {:.4} | probe {:.4} | match {:.4} | rank {:.4} | total {:.4}",
        s.stages.plan_secs,
        s.stages.probe_secs,
        s.stages.match_secs,
        s.stages.rank_secs,
        s.stages.total_secs
    );
}

/// Deep integrity check: reads every page of every index file (checksums
/// verify on each read), walks the B+-tree checking key ordering and
/// structure, and decodes every posting — per shard when sharded. Any
/// corruption exits nonzero with a per-shard report.
fn cmd_verify(args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_args(args)?;
    let [dir] = pos.as_slice() else {
        return Err(format!("verify needs <index-dir>\n{USAGE}"));
    };
    let pool_pages = pool_pages_only(&flags, 256)?;
    let tale = AnyDb::open(Path::new(dir), pool_pages)?;
    // consistency: index node count equals database node count minus
    // tombstoned graphs' nodes (we can't see tombstones here, so ≤)
    let db_nodes = tale.db().total_nodes() as u64;
    let idx_nodes = tale.node_count();
    if idx_nodes > db_nodes {
        return Err(format!(
            "index claims {idx_nodes} nodes but the database holds {db_nodes}"
        ));
    }
    // labeled per-shard reports; the single index reports as one shard
    let reports: Vec<(String, tale_nhindex::IntegrityReport)> = match &tale {
        AnyDb::Single(t) => vec![(
            "index".to_owned(),
            t.index().verify().map_err(|e| e.to_string())?,
        )],
        AnyDb::Sharded(t) => t
            .index()
            .verify()
            .map_err(|e| e.to_string())?
            .into_iter()
            .enumerate()
            .map(|(s, r)| (format!("shard {s}"), r))
            .collect(),
    };
    let mut corrupt = 0usize;
    for (who, r) in &reports {
        let status = if r.is_ok() { "ok" } else { "CORRUPT" };
        println!(
            "{who}: {status} — {} btree pages, {} blob pages, {} keys, \
             {} postings, {} rows",
            r.btree_pages, r.blob_pages, r.keys, r.postings, r.posting_rows
        );
        for e in &r.errors {
            println!("  error: {e}");
        }
        if !r.is_ok() {
            corrupt += 1;
        }
    }
    if corrupt > 0 {
        return Err(format!(
            "{corrupt} of {} index(es) corrupt; do not serve this directory",
            reports.len()
        ));
    }
    // probe sweep on top of the physical walk: one representative
    // signature per graph, against every shard when sharded
    let mut probed = 0u64;
    for (gid, _, g) in tale.db().iter() {
        if let Some(n) = g.nodes().next() {
            let sig = tale.signature(g, n, &|x| tale.db().effective_label(gid, x));
            tale.probe_with_stats(&sig, 1.0)
                .map_err(|e| format!("probe failed for graph {}: {e}", gid.0))?;
            probed += 1;
        }
    }
    println!(
        "ok: {} graphs, {} indexed nodes, {} distinct keys, {} bytes; \
         {probed} probe paths verified",
        tale.db().len(),
        idx_nodes,
        tale.key_count(),
        tale.index_size_bytes()
    );
    Ok(())
}

/// Explicit crash recovery: opens the directory, repairing any mutation a
/// crash cut short (WAL rollback, `graphs.json` restore, manifest
/// roll-forward), and reports what was done. Opening with any other
/// subcommand performs the same repairs silently; this one shows them.
fn cmd_recover(args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_args(args)?;
    let [dir] = pos.as_slice() else {
        return Err(format!("recover needs <index-dir>\n{USAGE}"));
    };
    let pool_pages = pool_pages_only(&flags, 256)?;
    let dir = Path::new(dir);
    let print_report = |who: &str, r: &tale_nhindex::RecoveryReport| {
        if !r.wal_present {
            println!("{who}: clean (no WAL tail)");
        } else if r.rolled_back {
            println!(
                "{who}: rolled back in-flight mutation ({} pages restored, {} bytes truncated)",
                r.pages_restored, r.bytes_truncated
            );
        } else if r.committed {
            println!("{who}: last mutation had committed; WAL tail discarded");
        } else {
            println!("{who}: empty WAL tail discarded");
        }
    };
    if ShardManifest::exists(dir) {
        let (_, rec) =
            ShardedTaleDatabase::open_with_recovery(dir, pool_pages).map_err(|e| e.to_string())?;
        if rec.journal_present {
            println!("mutation journal: present");
            if rec.db_rolled_back {
                println!("  graphs.json restored from pre-mutation backup");
            }
            if rec.manifest_rolled_forward {
                println!("  shards.json rolled forward to the committed insert");
            }
        } else {
            println!("mutation journal: none");
        }
        for (s, r) in rec.shards.iter().enumerate() {
            print_report(&format!("shard {s}"), r);
        }
    } else {
        let (_, rec) =
            TaleDatabase::open_with_recovery(dir, pool_pages).map_err(|e| e.to_string())?;
        println!(
            "mutation journal: {}{}",
            if rec.journal_present {
                "present"
            } else {
                "none"
            },
            if rec.db_rolled_back {
                " (graphs.json restored from pre-mutation backup)"
            } else {
                ""
            }
        );
        print_report("index", &rec.index);
    }
    println!("recovered; the directory is safe to serve");
    Ok(())
}

/// Shows the generational index's MVCC state: on-disk generations with
/// their reader pin counts, the logical mutation counter, the unfolded
/// delta size and the tombstone set.
fn cmd_generations(args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_args(args)?;
    let [dir] = pos.as_slice() else {
        return Err(format!("generations needs <index-dir>\n{USAGE}"));
    };
    let pool_pages = pool_pages_only(&flags, 256)?;
    let tale = AnyDb::open(Path::new(dir), pool_pages)?;
    let AnyDb::Single(t) = &tale else {
        return Err("a sharded database mutates its shards in place and has no \
                    generational index; see `stats` for per-shard state"
            .into());
    };
    let index = t.index();
    let snap = index.snapshot();
    println!("logical mutations : {}", index.logical_generation());
    println!("current generation: g{}", index.current_generation());
    println!(
        "delta overlay     : {} unfolded insert(s)",
        snap.delta_graphs()
    );
    println!(
        "tombstones        : {} removed graph(s)",
        snap.removed_count()
    );
    println!("on-disk generations:");
    for g in index.generations() {
        println!(
            "  g{:<4} pins {:>3}{}",
            g.number,
            g.pins,
            if g.current { "  (current)" } else { "" }
        );
    }
    if snap.delta_graphs() > 0 || snap.removed_count() > 0 {
        println!("run `tale-cli fold` to build these into a fresh generation");
    }
    Ok(())
}

/// Folds the in-memory delta and tombstone set into a new on-disk
/// generation and atomically flips to it. Concurrent readers keep their
/// pinned generation; the old one is deleted when its last pin drops.
fn cmd_fold(args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_args(args)?;
    let [dir] = pos.as_slice() else {
        return Err(format!("fold needs <index-dir>\n{USAGE}"));
    };
    let pool_pages = pool_pages_only(&flags, 256)?;
    let tale = AnyDb::open(Path::new(dir), pool_pages)?;
    let AnyDb::Single(t) = &tale else {
        return Err("fold applies to the generational single-index layout only".into());
    };
    let start = std::time::Instant::now();
    let report = t.fold().map_err(|e| e.to_string())?;
    println!(
        "folded {} insert(s) and {} removal(s) into g{} in {:.2}s",
        report.folded_inserts,
        report.folded_removes,
        report.new_generation,
        start.elapsed().as_secs_f64()
    );
    Ok(())
}

fn cmd_server_stats(args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_args(args)?;
    let [addr] = pos.as_slice() else {
        return Err(format!("server-stats needs <host:port>\n{USAGE}"));
    };
    let mut json = false;
    for (name, _) in &flags {
        match *name {
            "json" => json = true,
            other => return Err(format!("unknown flag --{other}\n{USAGE}")),
        }
    }
    let addr: std::net::SocketAddr = addr
        .parse()
        .map_err(|_| format!("bad server address {addr:?}"))?;
    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .ok();
    wire::write_request(
        &mut stream,
        &wire::Request::Stats(wire::StatsRequest { reserved: false }),
    )
    .map_err(|e| format!("sending stats request: {e}"))?;
    let s = match wire::read_response(&mut stream) {
        Ok(Some((wire::Response::Stats(s), _))) => s.server,
        Ok(Some((wire::Response::Error(e), _))) => {
            return Err(format!("server error [{}]: {}", e.code, e.message))
        }
        Ok(other) => return Err(format!("unexpected answer: {other:?}")),
        Err(e) => return Err(format!("reading stats response: {e}")),
    };
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&s).map_err(|e| e.to_string())?
        );
        return Ok(());
    }
    println!("server {addr} (up {:.1}s)", s.uptime_secs);
    println!("connections:");
    println!("  accepted             {:>12}", s.conns_accepted);
    println!("  active               {:>12}", s.conns_active);
    println!("  shed (budget full)   {:>12}", s.conns_shed);
    println!("admission:");
    println!("  requests shed        {:>12}", s.requests_shed);
    println!(
        "  deadline exceeded    {:>12}",
        s.requests_deadline_exceeded
    );
    println!("  in flight now        {:>12}", s.requests_inflight);
    println!("  queued now           {:>12}", s.requests_queued);
    println!("  in-flight high-water {:>12}", s.inflight_hwm);
    println!("  queue-depth high-water {:>10}", s.queue_depth_hwm);
    println!("fault handling:");
    println!("  retries              {:>12}", s.retries);
    println!("  hedges fired         {:>12}", s.hedges_fired);
    println!("  hedges won           {:>12}", s.hedges_won);
    println!("  failovers            {:>12}", s.failovers);
    println!("  replica failures     {:>12}", s.replica_failures);
    println!("  breaker opened       {:>12}", s.breaker_opened);
    println!("  responses degraded   {:>12}", s.responses_degraded);
    println!("traffic:");
    println!("  bytes in             {:>12}", s.bytes_in);
    println!("  bytes out            {:>12}", s.bytes_out);
    println!("requests by endpoint:");
    for (name, n) in [
        ("hello", s.requests_hello),
        ("query", s.requests_query),
        ("insert", s.requests_insert),
        ("remove", s.requests_remove),
        ("fold", s.requests_fold),
        ("stats", s.requests_stats),
        ("health", s.requests_health),
        ("explain", s.requests_explain),
    ] {
        println!("  {name:<8} {:>12}", n);
    }
    Ok(())
}

fn cmd_health(args: &[String]) -> Result<(), String> {
    let (pos, flags) = split_args(args)?;
    let [addr] = pos.as_slice() else {
        return Err(format!("health needs <host:port>\n{USAGE}"));
    };
    let mut json = false;
    for (name, _) in &flags {
        match *name {
            "json" => json = true,
            other => return Err(format!("unknown flag --{other}\n{USAGE}")),
        }
    }
    let addr: std::net::SocketAddr = addr
        .parse()
        .map_err(|_| format!("bad server address {addr:?}"))?;
    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .ok();
    wire::write_request(
        &mut stream,
        &wire::Request::Health(wire::HealthRequest { reserved: false }),
    )
    .map_err(|e| format!("sending health request: {e}"))?;
    let h = match wire::read_response(&mut stream) {
        Ok(Some((wire::Response::Health(h), _))) => h,
        Ok(Some((wire::Response::Error(e), _))) => {
            return Err(format!("server error [{}]: {}", e.code, e.message))
        }
        Ok(other) => return Err(format!("unexpected answer: {other:?}")),
        Err(e) => return Err(format!("reading health response: {e}")),
    };
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&h).map_err(|e| e.to_string())?
        );
        return Ok(());
    }
    println!(
        "server {addr}: {} (up {:.1}s, {} in flight, {} queued)",
        if h.ok { "ok" } else { "not ok" },
        h.uptime_secs,
        h.inflight,
        h.queued
    );
    if h.replicas.is_empty() {
        println!("replicas: none (no replica groups behind this server)");
        return Ok(());
    }
    println!(
        "{:>5} {:>7}  {:<10} {:>10} {:>10} {:>13}  address",
        "shard", "replica", "breaker", "successes", "failures", "consec.fails"
    );
    for r in &h.replicas {
        println!(
            "{:>5} {:>7}  {:<10} {:>10} {:>10} {:>13}  {}",
            r.shard, r.replica, r.state, r.successes, r.failures, r.consecutive_failures, r.address
        );
    }
    Ok(())
}

/// Rebuilds the query graph with the *database's* label ids (matched by
/// name). Labels the database has never seen get fresh ids past its
/// vocabulary, so they can never match — the right semantics for a filter.
fn remap_query(qdb: &GraphDb, target: &GraphDb) -> Graph {
    let src = qdb.graph(tale_graph::GraphId(0));
    let mut out = Graph::new(src.direction());
    let mut next_unknown = target.node_vocab().len() as u32;
    for n in src.nodes() {
        let name = qdb.node_vocab().name(src.label(n).0).unwrap_or("?");
        let id = target.node_vocab().get(name).unwrap_or_else(|| {
            let id = next_unknown;
            next_unknown += 1;
            id
        });
        out.add_node(NodeLabel(id));
    }
    for (u, v, _) in src.edges() {
        out.add_edge(u, v).expect("copying a simple graph");
    }
    out
}
