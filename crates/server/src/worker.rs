//! The shard worker: a TCP serve loop around one [`ShardEngine`].
//!
//! One handler thread per connection, with a **bounded connection
//! budget**: a connection arriving past the budget is accepted, told
//! `overloaded` explicitly, and closed — never silently dropped on an
//! unbounded accept queue. Each handler reads framed requests, pushes
//! heavy work (query/mutate) through the worker's own
//! [`AdmissionGate`], and writes framed responses. Per-request
//! deadlines (propagated by the frontend) bound both the wait at the
//! gate and admission itself — a request whose budget expired before a
//! permit freed is refused with `deadline_exceeded`.
//!
//! The dispatch function [`handle_request`] is shared verbatim with
//! [`crate::transport::LocalTransport`], so the in-process transport is
//! the same code path as a worker minus the socket.

use crate::admission::{deadline_from_ms, AdmissionGate, AdmissionOutcome, GateConfig};
use crate::counters::ServerCounters;
use crate::engine::ShardEngine;
use crate::wire::{
    self, HealthResponse, HelloResponse, MutateResponse, QueryBatchResponse, Request, Response,
    StatsResponse,
};
use crate::{Result, ServerError};
use parking_lot::Mutex;
use std::io::BufWriter;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Worker serve-loop sizing.
#[derive(Debug, Clone, Copy)]
pub struct WorkerConfig {
    /// Simultaneous connections served; arrivals past this get an
    /// explicit `overloaded` response and a close.
    pub max_connections: usize,
    /// Admission gate limits for heavy requests on this worker.
    pub gate: GateConfig,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            max_connections: 64,
            gate: GateConfig::default(),
        }
    }
}

/// Anything that can answer protocol requests. The TCP serve loop
/// ([`serve`]) is generic over this, so the shard worker and the
/// frontend share one loop; [`crate::transport::LocalTransport`]
/// dispatches into the same trait without a socket.
pub trait Service: Send + Sync {
    /// Answers one request. `received` is when it was decoded; deadline
    /// budgets count from there. Must always return a response —
    /// failures map to typed error responses, never a dropped request.
    fn handle(&self, req: &Request, received: Instant) -> Response;
    /// The service's observability counters (byte counters are bumped
    /// by the serve loop).
    fn counters(&self) -> &Arc<ServerCounters>;
}

/// Everything a shard worker's connection handler needs; shared with
/// the local transport so both paths dispatch identically.
pub struct ServerContext {
    /// The engine serving this shard.
    pub engine: Arc<ShardEngine>,
    /// Admission gate for heavy requests.
    pub gate: Arc<AdmissionGate>,
    /// Observability counters.
    pub counters: Arc<ServerCounters>,
}

impl Service for ServerContext {
    fn handle(&self, req: &Request, received: Instant) -> Response {
        handle_request(self, req, received)
    }
    fn counters(&self) -> &Arc<ServerCounters> {
        &self.counters
    }
}

/// Dispatches one request to the engine, applying admission control and
/// deadline checks for heavy endpoints. `received` is when the request
/// was decoded — the deadline budget counts from there. Always returns
/// a response; failures map to typed error responses.
pub fn handle_request(ctx: &ServerContext, req: &Request, received: Instant) -> Response {
    ctx.counters.count_endpoint(req.endpoint());
    match req {
        Request::Hello(h) => {
            if h.protocol != wire::PROTOCOL_VERSION {
                return error_of(&ServerError::Handshake(format!(
                    "protocol skew: client v{}, server v{}",
                    h.protocol,
                    wire::PROTOCOL_VERSION
                )));
            }
            Response::Hello(HelloResponse {
                protocol: wire::PROTOCOL_VERSION,
                shard: ctx.engine.shard(),
                shard_count: ctx.engine.shard_count(),
                graphs: ctx.engine.graphs(),
                vocab_fingerprint: ctx.engine.vocab_fingerprint(),
            })
        }
        Request::QueryBatch(q) => {
            let deadline = deadline_from_ms(received, q.deadline_ms);
            let _permit = match admit(ctx, deadline) {
                Ok(p) => p,
                Err(resp) => return *resp,
            };
            match ctx.engine.query_batch(q) {
                Ok((results, stats)) => Response::QueryBatch(QueryBatchResponse {
                    results,
                    stats,
                    degraded: Vec::new(),
                }),
                Err(e) => error_of(&e),
            }
        }
        Request::Insert(i) => {
            let _permit = match admit(ctx, None) {
                Ok(p) => p,
                Err(resp) => return *resp,
            };
            match ctx.engine.insert(i) {
                Ok(gid) => Response::Mutate(MutateResponse {
                    applied: true,
                    owner: Some(ctx.engine.shard()),
                    graph: Some(gid.0),
                    folded_graphs: None,
                    dropped_tombstones: None,
                }),
                Err(e) => error_of(&e),
            }
        }
        Request::Remove(r) => {
            let _permit = match admit(ctx, None) {
                Ok(p) => p,
                Err(resp) => return *resp,
            };
            match ctx.engine.remove(r) {
                Ok(None) => Response::Mutate(MutateResponse {
                    applied: true,
                    owner: Some(ctx.engine.shard()),
                    graph: Some(r.graph),
                    folded_graphs: None,
                    dropped_tombstones: None,
                }),
                Ok(Some(owner)) => Response::Mutate(MutateResponse {
                    applied: false,
                    owner: Some(owner),
                    graph: Some(r.graph),
                    folded_graphs: None,
                    dropped_tombstones: None,
                }),
                Err(e) => error_of(&e),
            }
        }
        Request::Fold(f) => {
            if !f.confirm {
                return error_of(&ServerError::BadRequest(
                    "fold requires confirm: true".into(),
                ));
            }
            let _permit = match admit(ctx, None) {
                Ok(p) => p,
                Err(resp) => return *resp,
            };
            match ctx.engine.fold(f) {
                Ok((live, dropped)) => Response::Mutate(MutateResponse {
                    applied: true,
                    owner: Some(ctx.engine.shard()),
                    graph: None,
                    folded_graphs: Some(live),
                    dropped_tombstones: Some(dropped),
                }),
                Err(e) => error_of(&e),
            }
        }
        Request::Stats(_) => Response::Stats(StatsResponse {
            server: ctx.counters.snapshot(),
        }),
        Request::Health(_) => Response::Health(HealthResponse {
            ok: true,
            uptime_secs: ctx.counters.uptime_secs(),
            inflight: ctx.counters.requests_inflight.load(Ordering::Relaxed),
            queued: ctx.gate.queued() as u64,
            replicas: Vec::new(),
        }),
        Request::Explain(e) => match ctx.engine.explain(e) {
            Ok(rendered) => Response::Explain(wire::ExplainResponse { rendered }),
            Err(err) => error_of(&err),
        },
    }
}

fn error_of(e: &ServerError) -> Response {
    Response::Error(e.to_error_response())
}

fn admit(
    ctx: &ServerContext,
    deadline: Option<Instant>,
) -> std::result::Result<crate::admission::Permit, Box<Response>> {
    if let Some(d) = deadline {
        if Instant::now() >= d {
            ctx.counters
                .requests_deadline_exceeded
                .fetch_add(1, Ordering::Relaxed);
            return Err(Box::new(error_of(&ServerError::DeadlineExceeded)));
        }
    }
    match ctx.gate.admit(deadline, &ctx.counters) {
        AdmissionOutcome::Admitted(p) => Ok(p),
        AdmissionOutcome::Overloaded(m) => Err(Box::new(error_of(&ServerError::Overloaded(m)))),
        AdmissionOutcome::DeadlineExceeded => {
            Err(Box::new(error_of(&ServerError::DeadlineExceeded)))
        }
    }
}

/// A running serve loop. Dropping the handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<(u64, TcpStream)>>>,
    counters: Arc<ServerCounters>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// This server's counters.
    pub fn counters(&self) -> &Arc<ServerCounters> {
        &self.counters
    }

    /// Blocks until the serve loop exits (it doesn't, short of
    /// [`ServerHandle::shutdown`] from another thread or a listener
    /// error) — what the `tale-server` binary's main thread does.
    pub fn wait(&mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Stops accepting, severs every live connection (peers see a reset
    /// or EOF — how a worker death looks from the frontend), and joins
    /// the accept thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        for (_, c) in self.conns.lock().drain(..) {
            let _ = c.shutdown(std::net::Shutdown::Both);
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }

    /// Graceful drain: stop accepting new connections, let every
    /// request the server has already read finish and flush its
    /// response, then sever what's left (idle connections, and — past
    /// `limit` — stragglers). Returns `true` if all in-flight work
    /// completed within the drain deadline.
    ///
    /// "Accepted request" means a frame the server fully read: those
    /// are never dropped by a clean drain. Bytes a client sent after
    /// the drain began may be answered or may see a closed connection —
    /// exactly what a crashed worker would look like, which the
    /// client-side retry/failover layer already handles.
    pub fn drain(&mut self, limit: std::time::Duration) -> bool {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr); // unblock accept
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let gone = Instant::now() + limit;
        let mut clean = false;
        while Instant::now() < gone {
            if self.counters.requests_serving.load(Ordering::SeqCst) == 0 {
                // Settle check: catch a frame decoded between the load
                // and the sever below.
                std::thread::sleep(std::time::Duration::from_millis(2));
                if self.counters.requests_serving.load(Ordering::SeqCst) == 0 {
                    clean = true;
                    break;
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        for (_, c) in self.conns.lock().drain(..) {
            let _ = c.shutdown(std::net::Shutdown::Both);
        }
        clean
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Builds the worker service for `engine` and serves it on `addr` until
/// the handle is shut down.
pub fn serve_shard(
    engine: Arc<ShardEngine>,
    addr: SocketAddr,
    cfg: WorkerConfig,
) -> Result<ServerHandle> {
    let ctx = Arc::new(ServerContext {
        engine,
        gate: AdmissionGate::new(cfg.gate),
        counters: Arc::new(ServerCounters::new()),
    });
    serve(ctx, addr, cfg)
}

/// Binds `addr` and serves `service` until the handle is shut down.
/// Handler threads are detached; [`ServerHandle::shutdown`] severs
/// their sockets, which ends their read loops.
pub fn serve(
    service: Arc<dyn Service>,
    addr: SocketAddr,
    cfg: WorkerConfig,
) -> Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    let counters = Arc::clone(service.counters());
    let shutdown = Arc::new(AtomicBool::new(false));
    let conns: Arc<Mutex<Vec<(u64, TcpStream)>>> = Arc::new(Mutex::new(Vec::new()));

    let accept = {
        let counters = Arc::clone(&counters);
        let shutdown = Arc::clone(&shutdown);
        let conns = Arc::clone(&conns);
        std::thread::spawn(move || {
            let mut next_conn_id = 0u64;
            for stream in listener.incoming() {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let mut stream = match stream {
                    Ok(s) => s,
                    Err(_) => continue,
                };
                counters.conns_accepted.fetch_add(1, Ordering::Relaxed);
                let active = counters.conns_active.load(Ordering::Relaxed);
                if active >= cfg.max_connections as u64 {
                    // Explicit refusal, never a silent drop.
                    counters.conns_shed.fetch_add(1, Ordering::Relaxed);
                    let resp = Response::Error(wire::ErrorResponse {
                        code: wire::codes::OVERLOADED.to_owned(),
                        message: format!("connection budget full ({} active)", cfg.max_connections),
                    });
                    let _ = wire::write_response(&mut stream, &resp);
                    continue;
                }
                counters.conns_active.fetch_add(1, Ordering::Relaxed);
                // Register a duplicate handle so shutdown can sever the
                // connection; the handler deregisters it when it ends,
                // so the list holds only live sockets.
                let conn_id = next_conn_id;
                next_conn_id += 1;
                if let Ok(dup) = stream.try_clone() {
                    conns.lock().push((conn_id, dup));
                }
                let service = Arc::clone(&service);
                let counters_done = Arc::clone(&counters);
                let conns_done = Arc::clone(&conns);
                std::thread::spawn(move || {
                    serve_connection(service.as_ref(), stream);
                    conns_done.lock().retain(|(id, _)| *id != conn_id);
                    counters_done.conns_active.fetch_sub(1, Ordering::Relaxed);
                });
            }
        })
    };

    Ok(ServerHandle {
        addr: bound,
        shutdown,
        accept_thread: Some(accept),
        conns,
        counters,
    })
}

/// Reads framed requests off one connection until it closes or a frame
/// is malformed; malformed frames get a typed error response before the
/// close (best effort), never a hang.
fn serve_connection(service: &dyn Service, stream: TcpStream) {
    let mut reader = stream;
    let writer = match reader.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut writer = BufWriter::new(writer);
    loop {
        match wire::read_request(&mut reader) {
            Ok(None) => return,
            Ok(Some((req, nbytes))) => {
                let received = Instant::now();
                let counters = service.counters();
                // Serving gauge: covers dispatch + response write, so
                // graceful drain can wait for accepted requests to
                // finish flushing before severing sockets.
                counters.requests_serving.fetch_add(1, Ordering::SeqCst);
                counters
                    .bytes_in
                    .fetch_add(nbytes as u64, Ordering::Relaxed);
                let resp = service.handle(&req, received);
                let wrote = wire::write_response(&mut writer, &resp);
                counters.requests_serving.fetch_sub(1, Ordering::SeqCst);
                match wrote {
                    Ok(out) => {
                        counters.bytes_out.fetch_add(out as u64, Ordering::Relaxed);
                    }
                    Err(_) => return, // peer gone mid-write
                }
            }
            Err(e) => {
                let resp = Response::Error(wire::ErrorResponse {
                    code: wire::codes::BAD_REQUEST.to_owned(),
                    message: format!("frame error: {e}"),
                });
                let _ = wire::write_response(&mut writer, &resp);
                return;
            }
        }
    }
}
