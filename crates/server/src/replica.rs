//! Replica groups: failover, bounded retries, hedging, and per-replica
//! circuit breaking over the [`ShardTransport`] seam.
//!
//! A [`ReplicaSet`] fronts N transports that all serve the **same**
//! shard (verified at handshake: every reachable replica must report
//! the same shard identity and vocabulary fingerprint, and the first
//! agreed fingerprint is pinned on all of them). To the frontend it is
//! just another [`ShardTransport`]; everything below is masking policy:
//!
//! * **Circuit breaking.** Each replica carries a closed → open →
//!   half-open breaker fed by per-request outcomes: a transport-level
//!   failure (`Io`/`Wire`/`Handshake`) counts against it, a served
//!   response — including a typed error like `overloaded` — counts for
//!   it, because an overloaded replica is alive. After
//!   `failure_threshold` consecutive failures the breaker opens and the
//!   replica is skipped; after `open_cooldown` it becomes half-open and
//!   one trial request decides. A background prober health-checks
//!   non-closed replicas so recovery is noticed even on an idle system.
//! * **Failover + retry.** Idempotent requests (queries, stats,
//!   explain — see `transport::idempotent`) get up to
//!   `retries` extra attempts across the available replicas, with
//!   decorrelated-jitter backoff between attempts, all bounded by the
//!   request deadline. Mutations go to the primary (replica 0) exactly
//!   once — a lost acknowledgement must not become a double apply.
//! * **Hedging.** When a first response is slower than the hedge
//!   trigger (the observed success p95, or a fixed `hedge_after`), a
//!   second probe fires at the next available replica and the first
//!   answer wins. The loser is discarded when it lands — its outcome
//!   still feeds its replica's breaker, but never the client response.
//!
//! Every masked fault shows up in [`ServerCounters`]
//! (`retries`/`hedges_fired`/`hedges_won`/`failovers`/
//! `replica_failures`/`breaker_opened`), so "it worked" and "it worked
//! because failover saved it" are distinguishable in `tale-cli
//! server-stats`.

use crate::backoff::{sleep_capped, Jitter};
use crate::counters::ServerCounters;
use crate::transport::{idempotent, ShardTransport};
use crate::wire::{self, ReplicaHealthInfo, Request, Response};
use crate::{Result, ServerError};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Replica-group policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct ReplicaConfig {
    /// Consecutive transport failures that open a replica's breaker.
    pub failure_threshold: u32,
    /// How long an open breaker rests before allowing a half-open trial.
    pub open_cooldown: Duration,
    /// Background health-probe period for non-closed replicas
    /// (`Duration::ZERO` disables the prober — deterministic tests).
    pub probe_interval: Duration,
    /// Extra attempts (beyond the first) for idempotent requests.
    pub retries: u32,
    /// Base decorrelated-jitter backoff between attempts.
    pub backoff: Duration,
    /// Ceiling on any single backoff sleep.
    pub backoff_cap: Duration,
    /// Fixed hedge trigger; `None` derives it from the observed success
    /// p95 once `hedge_min_samples` latencies have been seen.
    pub hedge_after: Option<Duration>,
    /// Success samples required before p95-driven hedging arms.
    pub hedge_min_samples: usize,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            failure_threshold: 3,
            open_cooldown: Duration::from_millis(500),
            probe_interval: Duration::from_millis(250),
            retries: 3,
            backoff: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(200),
            hedge_after: None,
            hedge_min_samples: 20,
        }
    }
}

/// Breaker position; `opened_at` on the state struct remembers when an
/// open breaker started its cooldown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerCore {
    Closed,
    Open,
    HalfOpen,
}

struct Breaker {
    core: BreakerCore,
    /// Instant the breaker last opened.
    opened_at: Option<Instant>,
    consecutive_failures: u32,
}

/// One replica: its transport plus breaker state and outcome counts.
struct Replica {
    transport: Arc<dyn ShardTransport>,
    breaker: Mutex<Breaker>,
    successes: AtomicU64,
    failures: AtomicU64,
}

impl Replica {
    fn new(transport: Arc<dyn ShardTransport>) -> Arc<Replica> {
        Arc::new(Replica {
            transport,
            breaker: Mutex::new(Breaker {
                core: BreakerCore::Closed,
                opened_at: None,
                consecutive_failures: 0,
            }),
            successes: AtomicU64::new(0),
            failures: AtomicU64::new(0),
        })
    }

    /// Whether this replica may serve a request right now. An open
    /// breaker whose cooldown has elapsed transitions to half-open here
    /// (and answers `true`: the caller's request is the trial).
    fn available(&self, cooldown: Duration) -> bool {
        let mut b = self.breaker.lock();
        match b.core {
            BreakerCore::Closed | BreakerCore::HalfOpen => true,
            BreakerCore::Open => {
                let rested = b.opened_at.map(|t| t.elapsed() >= cooldown).unwrap_or(true);
                if rested {
                    b.core = BreakerCore::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    fn state_name(&self) -> &'static str {
        match self.breaker.lock().core {
            BreakerCore::Closed => "closed",
            BreakerCore::Open => "open",
            BreakerCore::HalfOpen => "half-open",
        }
    }

    /// Served a response (typed errors included): close the breaker.
    fn on_success(&self) {
        self.successes.fetch_add(1, Ordering::Relaxed);
        let mut b = self.breaker.lock();
        b.core = BreakerCore::Closed;
        b.consecutive_failures = 0;
    }

    /// Transport-level failure: count it, open the breaker at the
    /// threshold (a half-open trial failure re-opens immediately).
    fn on_failure(&self, threshold: u32, counters: Option<&Arc<ServerCounters>>) {
        self.failures.fetch_add(1, Ordering::Relaxed);
        if let Some(c) = counters {
            c.replica_failures.fetch_add(1, Ordering::Relaxed);
        }
        let mut b = self.breaker.lock();
        b.consecutive_failures = b.consecutive_failures.saturating_add(1);
        let trip = matches!(b.core, BreakerCore::HalfOpen)
            || (b.consecutive_failures >= threshold.max(1) && b.core != BreakerCore::Open);
        if trip {
            b.core = BreakerCore::Open;
            b.opened_at = Some(Instant::now());
            if let Some(c) = counters {
                c.breaker_opened.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// N transports serving one shard, masked behind a single
/// [`ShardTransport`].
pub struct ReplicaSet {
    shard: u32,
    replicas: Vec<Arc<Replica>>,
    cfg: ReplicaConfig,
    counters: Mutex<Option<Arc<ServerCounters>>>,
    /// Recent success latencies (ring of 128) feeding the p95 hedge
    /// trigger.
    latencies: Arc<Mutex<VecDeque<Duration>>>,
    jitter: Mutex<Jitter>,
    stop: Arc<AtomicBool>,
    prober: Mutex<Option<std::thread::JoinHandle<()>>>,
}

const LATENCY_RING: usize = 128;

impl ReplicaSet {
    /// Builds a replica set for `shard`. Panics on an empty transport
    /// list (a shard with zero replicas cannot be served at all).
    /// Spawns the background prober unless `probe_interval` is zero.
    pub fn new(
        shard: u32,
        transports: Vec<Arc<dyn ShardTransport>>,
        cfg: ReplicaConfig,
    ) -> Arc<ReplicaSet> {
        assert!(!transports.is_empty(), "a shard needs at least one replica");
        let set = Arc::new(ReplicaSet {
            shard,
            replicas: transports.into_iter().map(Replica::new).collect(),
            cfg,
            counters: Mutex::new(None),
            latencies: Arc::new(Mutex::new(VecDeque::with_capacity(LATENCY_RING))),
            jitter: Mutex::new(Jitter::new()),
            stop: Arc::new(AtomicBool::new(false)),
            prober: Mutex::new(None),
        });
        if cfg.probe_interval > Duration::ZERO && set.replicas.len() > 1 {
            let handle = spawn_prober(&set);
            *set.prober.lock() = Some(handle);
        }
        set
    }

    /// Number of replicas in the group.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    fn counters_ref(&self) -> Option<Arc<ServerCounters>> {
        self.counters.lock().clone()
    }

    fn bump(&self, pick: impl Fn(&ServerCounters) -> &AtomicU64) {
        if let Some(c) = self.counters_ref() {
            pick(&c).fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Replica indices in preference order: available ones first
    /// (primary before secondaries), then — only if *none* is
    /// available — every replica as a last resort, so a fleet whose
    /// breakers all opened still probes for recovery instead of
    /// refusing without trying.
    fn pick_order(&self) -> Vec<usize> {
        let avail: Vec<usize> = (0..self.replicas.len())
            .filter(|&i| self.replicas[i].available(self.cfg.open_cooldown))
            .collect();
        if avail.is_empty() {
            (0..self.replicas.len()).collect()
        } else {
            avail
        }
    }

    /// The hedge trigger: fixed if configured, else the p95 of recent
    /// success latencies once enough samples exist, else disarmed.
    fn hedge_trigger(&self) -> Option<Duration> {
        if let Some(d) = self.cfg.hedge_after {
            return Some(d);
        }
        let ring = self.latencies.lock();
        if ring.len() < self.cfg.hedge_min_samples.max(2) {
            return None;
        }
        let mut v: Vec<Duration> = ring.iter().copied().collect();
        v.sort_unstable();
        let idx = (v.len() * 95).div_ceil(100).saturating_sub(1);
        Some(v[idx.min(v.len() - 1)])
    }

    /// Broadcast handshake: every reachable replica must agree on shard
    /// identity and vocabulary fingerprint; the agreed fingerprint is
    /// pinned on all replicas (so one that was down at startup is still
    /// verified when it comes back). Unreachable replicas feed their
    /// breakers but don't fail the handshake unless *all* are down.
    fn handshake_all(&self, req: &Request, deadline: Option<Instant>) -> Result<Response> {
        let counters = self.counters_ref();
        let mut hellos: Vec<(usize, wire::HelloResponse)> = Vec::new();
        let mut first_err: Option<ServerError> = None;
        for (i, r) in self.replicas.iter().enumerate() {
            match r.transport.call(req, deadline) {
                Ok(Response::Hello(h)) => {
                    r.on_success();
                    hellos.push((i, h));
                }
                Ok(Response::Error(e)) => {
                    // The peer answered — alive but refusing (e.g.
                    // protocol skew). That's a handshake verdict, not a
                    // transport flake.
                    r.on_success();
                    return Err(ServerError::from_error_response(&e));
                }
                Ok(_) => {
                    return Err(ServerError::Handshake(format!(
                        "{}: non-hello answer to hello",
                        r.transport.describe()
                    )))
                }
                Err(e) => {
                    r.on_failure(self.cfg.failure_threshold, counters.as_ref());
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        let (i0, h0) = match hellos.first() {
            Some((i, h)) => (*i, h.clone()),
            None => {
                return Err(first_err.unwrap_or_else(|| {
                    ServerError::Handshake(format!("shard {}: no replica reachable", self.shard))
                }))
            }
        };
        for (i, h) in &hellos[1..] {
            if h.shard != h0.shard
                || h.shard_count != h0.shard_count
                || h.vocab_fingerprint != h0.vocab_fingerprint
            {
                return Err(ServerError::Handshake(format!(
                    "shard {} replica disagreement: {} reports (shard {}, {} shards, vocab {:#018x}) \
                     but {} reports (shard {}, {} shards, vocab {:#018x})",
                    self.shard,
                    self.replicas[i0].transport.describe(),
                    h0.shard,
                    h0.shard_count,
                    h0.vocab_fingerprint,
                    self.replicas[*i].transport.describe(),
                    h.shard,
                    h.shard_count,
                    h.vocab_fingerprint
                )));
            }
        }
        for r in &self.replicas {
            r.transport.pin_fingerprint(h0.vocab_fingerprint);
        }
        Ok(Response::Hello(h0))
    }

    /// One attempt: primary replica of `order`, hedged with the next
    /// one if the trigger fires first. Returns the winning replica's
    /// index and result.
    fn race(
        &self,
        order: &[usize],
        req: &Request,
        deadline: Option<Instant>,
    ) -> (usize, Result<Response>) {
        let trigger = self.hedge_trigger();
        if order.len() < 2 || trigger.is_none() {
            let idx = order[0];
            return (idx, self.call_recorded(idx, req, deadline));
        }
        let trigger = trigger.expect("checked above");
        let (tx, rx) = mpsc::channel();
        self.spawn_call(order[0], req, deadline, tx.clone());
        match recv_capped(&rx, Some(trigger), deadline) {
            Some((idx, result)) => (idx, result),
            None => {
                // First response is slow: fire the hedge, first answer
                // wins, and if the faster one failed, wait for the
                // slower one too — an error must not outrace a success.
                self.bump(|c| &c.hedges_fired);
                self.spawn_call(order[1], req, deadline, tx);
                let mut last: Option<(usize, Result<Response>)> = None;
                for _ in 0..2 {
                    match recv_capped(&rx, None, deadline) {
                        Some((idx, Ok(resp))) => {
                            if idx == order[1] {
                                self.bump(|c| &c.hedges_won);
                            }
                            return (idx, Ok(resp));
                        }
                        Some((idx, Err(e))) => last = Some((idx, Err(e))),
                        None => break, // deadline spent waiting
                    }
                }
                last.unwrap_or((
                    order[0],
                    Err(ServerError::Io(std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "deadline spent waiting for replica responses",
                    ))),
                ))
            }
        }
    }

    /// Calls replica `idx` inline, recording the outcome against its
    /// breaker and the latency ring.
    fn call_recorded(
        &self,
        idx: usize,
        req: &Request,
        deadline: Option<Instant>,
    ) -> Result<Response> {
        call_and_record(
            &self.replicas[idx],
            req,
            deadline,
            self.cfg.failure_threshold,
            self.counters_ref(),
            &self.latencies,
        )
    }

    /// Calls replica `idx` on a detached thread, reporting through
    /// `tx`. A losing hedge keeps running here until its transport
    /// finishes — its outcome still feeds the breaker, its response is
    /// discarded by the closed channel.
    fn spawn_call(
        &self,
        idx: usize,
        req: &Request,
        deadline: Option<Instant>,
        tx: mpsc::Sender<(usize, Result<Response>)>,
    ) {
        let replica = Arc::clone(&self.replicas[idx]);
        let req = req.clone();
        let threshold = self.cfg.failure_threshold;
        let counters = self.counters_ref();
        let latencies = Arc::clone(&self.latencies);
        std::thread::spawn(move || {
            let result = call_and_record(&replica, &req, deadline, threshold, counters, &latencies);
            let _ = tx.send((idx, result));
        });
    }
}

/// The per-call outcome recording shared by inline and hedged paths.
fn call_and_record(
    replica: &Arc<Replica>,
    req: &Request,
    deadline: Option<Instant>,
    threshold: u32,
    counters: Option<Arc<ServerCounters>>,
    latencies: &Arc<Mutex<VecDeque<Duration>>>,
) -> Result<Response> {
    let t0 = Instant::now();
    let result = replica.transport.call(req, deadline);
    match &result {
        Ok(_) => {
            replica.on_success();
            let mut ring = latencies.lock();
            if ring.len() == LATENCY_RING {
                ring.pop_front();
            }
            ring.push_back(t0.elapsed());
        }
        // Typed refusals that crossed the wire are answers from a live
        // replica: the breaker must not open for them.
        Err(
            ServerError::Overloaded(_)
            | ServerError::DeadlineExceeded
            | ServerError::BadRequest(_)
            | ServerError::Remote { .. },
        ) => replica.on_success(),
        Err(_) => replica.on_failure(threshold, counters.as_ref()),
    }
    result
}

/// Receives one result, bounded by an optional trigger timeout and the
/// request deadline. `None` = the bound expired with nothing received.
fn recv_capped(
    rx: &mpsc::Receiver<(usize, Result<Response>)>,
    trigger: Option<Duration>,
    deadline: Option<Instant>,
) -> Option<(usize, Result<Response>)> {
    let now = Instant::now();
    let budget = deadline.map(|d| d.saturating_duration_since(now));
    let wait = match (trigger, budget) {
        (Some(t), Some(b)) => t.min(b),
        (Some(t), None) => t,
        (None, Some(b)) => b,
        // No trigger and no deadline: wait for the call's own io
        // timeout to surface an answer.
        (None, None) => return rx.recv().ok(),
    };
    // A small grace on the deadline path: the underlying socket timeout
    // fires at the same instant, so give its error a moment to arrive
    // instead of racing it.
    let wait = wait + Duration::from_millis(50);
    rx.recv_timeout(wait).ok()
}

fn spawn_prober(set: &Arc<ReplicaSet>) -> std::thread::JoinHandle<()> {
    let replicas: Vec<Arc<Replica>> = set.replicas.iter().map(Arc::clone).collect();
    let stop = Arc::clone(&set.stop);
    let cfg = set.cfg;
    let counters_slot = Arc::new(Mutex::new(None::<Arc<ServerCounters>>));
    // The prober reads the counter slot lazily so counters attached
    // after spawn still get breaker transitions.
    let set_weak = Arc::downgrade(set);
    std::thread::spawn(move || {
        let probe = Request::Health(wire::HealthRequest { reserved: false });
        while !stop.load(Ordering::SeqCst) {
            // Interruptible sleep: react to shutdown within ~25ms.
            let mut slept = Duration::ZERO;
            while slept < cfg.probe_interval && !stop.load(Ordering::SeqCst) {
                let step = Duration::from_millis(25).min(cfg.probe_interval - slept);
                std::thread::sleep(step);
                slept += step;
            }
            if stop.load(Ordering::SeqCst) {
                break;
            }
            {
                let mut slot = counters_slot.lock();
                if slot.is_none() {
                    if let Some(set) = set_weak.upgrade() {
                        *slot = set.counters.lock().clone();
                    }
                }
            }
            let counters = counters_slot.lock().clone();
            for r in &replicas {
                if r.state_name() == "closed" {
                    continue;
                }
                let deadline =
                    Some(Instant::now() + cfg.probe_interval.max(Duration::from_millis(100)));
                match r.transport.call(&probe, deadline) {
                    Ok(_) => r.on_success(),
                    Err(
                        ServerError::Overloaded(_)
                        | ServerError::DeadlineExceeded
                        | ServerError::BadRequest(_)
                        | ServerError::Remote { .. },
                    ) => r.on_success(),
                    Err(_) => r.on_failure(cfg.failure_threshold, counters.as_ref()),
                }
            }
        }
    })
}

impl Drop for ReplicaSet {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.prober.lock().take() {
            let _ = h.join();
        }
    }
}

impl ShardTransport for ReplicaSet {
    fn shard(&self) -> u32 {
        self.shard
    }

    fn call(&self, req: &Request, deadline: Option<Instant>) -> Result<Response> {
        if matches!(req, Request::Hello(_)) {
            return self.handshake_all(req, deadline);
        }
        if !idempotent(req) {
            // Mutations: primary only, exactly once. Failing over a
            // mutation whose ack was lost could apply it twice.
            return self.call_recorded(0, req, deadline);
        }
        let max_attempts = self.cfg.retries.saturating_add(1).max(1);
        let mut delay = self.cfg.backoff;
        let mut saw_failure = false;
        let mut skipped_primary = false;
        let mut last_err: Option<ServerError> = None;
        for attempt in 0..max_attempts {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    break;
                }
            }
            if attempt > 0 {
                self.bump(|c| &c.retries);
                delay =
                    self.jitter
                        .lock()
                        .decorrelated(self.cfg.backoff, delay, self.cfg.backoff_cap);
                if !sleep_capped(delay, deadline) {
                    break;
                }
            }
            let order = self.pick_order();
            // Rotate the start replica with the attempt so a retry
            // lands somewhere else first when there is somewhere else.
            let start = attempt as usize % order.len();
            let order: Vec<usize> = order[start..]
                .iter()
                .chain(order[..start].iter())
                .copied()
                .collect();
            if order[0] != 0 {
                skipped_primary = true;
            }
            let (_, result) = self.race(&order, req, deadline);
            match result {
                Ok(resp) => {
                    if saw_failure || skipped_primary {
                        self.bump(|c| &c.failovers);
                    }
                    return Ok(resp);
                }
                Err(
                    e @ (ServerError::Overloaded(_)
                    | ServerError::DeadlineExceeded
                    | ServerError::BadRequest(_)
                    | ServerError::Remote { .. }),
                ) => {
                    // A typed answer from a live replica: retrying
                    // another replica of the same shard would give the
                    // same verdict (same data) or mask a shed the
                    // client must see. Surface it.
                    return Err(e);
                }
                Err(e) => {
                    saw_failure = true;
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.unwrap_or_else(|| {
            ServerError::Io(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "request deadline spent before any replica attempt",
            ))
        }))
    }

    fn describe(&self) -> String {
        let names: Vec<String> = self
            .replicas
            .iter()
            .map(|r| r.transport.describe())
            .collect();
        format!("shard {} replica group [{}]", self.shard, names.join(", "))
    }

    fn pin_fingerprint(&self, fp: u64) {
        for r in &self.replicas {
            r.transport.pin_fingerprint(fp);
        }
    }

    fn replica_health(&self) -> Option<Vec<ReplicaHealthInfo>> {
        Some(
            self.replicas
                .iter()
                .enumerate()
                .map(|(i, r)| ReplicaHealthInfo {
                    shard: self.shard,
                    replica: i as u32,
                    address: r.transport.describe(),
                    state: r.state_name().to_owned(),
                    consecutive_failures: u64::from(r.breaker.lock().consecutive_failures),
                    successes: r.successes.load(Ordering::Relaxed),
                    failures: r.failures.load(Ordering::Relaxed),
                })
                .collect(),
        )
    }

    fn attach_counters(&self, counters: &Arc<ServerCounters>) {
        *self.counters.lock() = Some(Arc::clone(counters));
        for r in &self.replicas {
            r.transport.attach_counters(counters);
        }
    }
}
