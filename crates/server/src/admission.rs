//! Admission control: a bounded in-flight gate with a bounded wait
//! queue and explicit load shedding.
//!
//! The state machine a request walks through:
//!
//! ```text
//!            arrive
//!              │
//!        inflight < max? ──yes──► EXECUTE (holds a Permit)
//!              │no
//!        queued < max_queue? ──no──► SHED (Overloaded response)
//!              │yes
//!            WAIT (condvar, bounded by the request deadline)
//!              │
//!       permit freed before deadline? ──no──► DEADLINE_EXCEEDED
//!              │yes
//!           EXECUTE
//! ```
//!
//! Shedding is always an explicit typed refusal — the caller turns
//! [`AdmissionOutcome::Overloaded`] into a wire `Overloaded` response —
//! never a silent drop or an unbounded queue. `max_inflight` is sized
//! against the I/O pool feeding the index (see
//! [`GateConfig::for_io_workers`]): admitting more concurrent batches
//! than the pool has workers only grows queueing *inside* the engine,
//! where the wait can't be bounded or shed.

use crate::counters::ServerCounters;
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Gate sizing.
#[derive(Debug, Clone, Copy)]
pub struct GateConfig {
    /// Requests allowed to execute simultaneously.
    pub max_inflight: usize,
    /// Requests allowed to wait for a permit; arrivals beyond this shed.
    pub max_queue: usize,
}

impl GateConfig {
    /// Sizes the gate against the index's I/O pool: as many concurrent
    /// batches as there are I/O workers (min 2 so a slow batch can't
    /// serialize the server), and a wait queue twice as deep.
    pub fn for_io_workers(io_workers: usize) -> GateConfig {
        let max_inflight = io_workers.max(2);
        GateConfig {
            max_inflight,
            max_queue: max_inflight * 2,
        }
    }
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig::for_io_workers(4)
    }
}

#[derive(Debug, Default)]
struct GateState {
    inflight: usize,
    queued: usize,
}

/// The gate. Clone-cheap via `Arc` at the call sites that need it.
pub struct AdmissionGate {
    cfg: GateConfig,
    state: Mutex<GateState>,
    freed: Condvar,
}

/// What happened to an arrival.
pub enum AdmissionOutcome {
    /// Admitted; the permit returns its slot on drop.
    Admitted(Permit),
    /// Shed: queue full. The message names the limits for the client.
    Overloaded(String),
    /// The request's deadline expired while waiting for a permit.
    DeadlineExceeded,
}

/// RAII execution slot. Dropping it frees the slot and wakes one waiter.
pub struct Permit {
    gate: Arc<AdmissionGate>,
    counters: Arc<ServerCounters>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        let mut st = self.gate.state.lock();
        st.inflight -= 1;
        self.gate.freed.notify_one();
        drop(st);
        self.counters.exit_inflight();
    }
}

impl AdmissionGate {
    /// Builds a gate with the given limits.
    pub fn new(cfg: GateConfig) -> Arc<AdmissionGate> {
        Arc::new(AdmissionGate {
            cfg,
            state: Mutex::new(GateState::default()),
            freed: Condvar::new(),
        })
    }

    /// The configured limits.
    pub fn config(&self) -> GateConfig {
        self.cfg
    }

    /// Current queue depth (for health reporting).
    pub fn queued(&self) -> usize {
        self.state.lock().queued
    }

    /// Tries to admit a request, waiting at most until `deadline` (or
    /// indefinitely if `None`) when the gate is full but the queue has
    /// room. Updates shed/queue/inflight counters on `counters`.
    pub fn admit(
        self: &Arc<Self>,
        deadline: Option<Instant>,
        counters: &Arc<ServerCounters>,
    ) -> AdmissionOutcome {
        let mut st = self.state.lock();
        if st.inflight < self.cfg.max_inflight {
            st.inflight += 1;
            drop(st);
            counters.enter_inflight();
            return AdmissionOutcome::Admitted(Permit {
                gate: Arc::clone(self),
                counters: Arc::clone(counters),
            });
        }
        if st.queued >= self.cfg.max_queue {
            drop(st);
            counters
                .requests_shed
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return AdmissionOutcome::Overloaded(format!(
                "{} in flight, {} queued (limits: {} in flight, {} queued)",
                self.cfg.max_inflight,
                self.cfg.max_queue,
                self.cfg.max_inflight,
                self.cfg.max_queue
            ));
        }
        st.queued += 1;
        counters.enter_queue();
        let admitted = loop {
            if st.inflight < self.cfg.max_inflight {
                break true;
            }
            match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        break false;
                    }
                    if self.freed.wait_for(&mut st, d - now).timed_out()
                        && st.inflight >= self.cfg.max_inflight
                    {
                        break false;
                    }
                }
                None => self.freed.wait(&mut st),
            }
        };
        st.queued -= 1;
        if admitted {
            st.inflight += 1;
        } else {
            // Someone else may still be waiting on a slot we were
            // notified about but couldn't use in time.
            self.freed.notify_one();
        }
        drop(st);
        counters.exit_queue();
        if admitted {
            counters.enter_inflight();
            AdmissionOutcome::Admitted(Permit {
                gate: Arc::clone(self),
                counters: Arc::clone(counters),
            })
        } else {
            counters
                .requests_deadline_exceeded
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            AdmissionOutcome::DeadlineExceeded
        }
    }
}

/// Remaining time budget, as an absolute deadline, from a wire
/// `deadline_ms` field decoded at `received`.
pub fn deadline_from_ms(received: Instant, deadline_ms: Option<u64>) -> Option<Instant> {
    deadline_ms.map(|ms| received + Duration::from_millis(ms))
}

/// Converts an absolute deadline back into a forwardable `deadline_ms`
/// budget. `Some(0)` means "already expired" — the receiver will refuse.
pub fn remaining_ms(deadline: Option<Instant>) -> Option<u64> {
    deadline.map(|d| {
        let now = Instant::now();
        if d <= now {
            0
        } else {
            (d - now).as_millis() as u64
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters() -> Arc<ServerCounters> {
        Arc::new(ServerCounters::new())
    }

    #[test]
    fn admits_up_to_max_then_sheds_past_queue() {
        let gate = AdmissionGate::new(GateConfig {
            max_inflight: 2,
            max_queue: 0,
        });
        let c = counters();
        let p1 = match gate.admit(None, &c) {
            AdmissionOutcome::Admitted(p) => p,
            _ => panic!("expected admit"),
        };
        let _p2 = match gate.admit(None, &c) {
            AdmissionOutcome::Admitted(p) => p,
            _ => panic!("expected admit"),
        };
        // full + zero queue ⇒ immediate shed
        assert!(matches!(
            gate.admit(Some(Instant::now()), &c),
            AdmissionOutcome::Overloaded(_)
        ));
        assert_eq!(c.snapshot().requests_shed, 1);
        drop(p1);
        assert!(matches!(
            gate.admit(None, &c),
            AdmissionOutcome::Admitted(_)
        ));
    }

    #[test]
    fn queued_request_times_out_at_deadline() {
        let gate = AdmissionGate::new(GateConfig {
            max_inflight: 1,
            max_queue: 4,
        });
        let c = counters();
        let _held = match gate.admit(None, &c) {
            AdmissionOutcome::Admitted(p) => p,
            _ => panic!("expected admit"),
        };
        let t0 = Instant::now();
        let out = gate.admit(Some(t0 + Duration::from_millis(30)), &c);
        assert!(matches!(out, AdmissionOutcome::DeadlineExceeded));
        assert!(t0.elapsed() >= Duration::from_millis(25));
        assert_eq!(c.snapshot().requests_deadline_exceeded, 1);
        assert_eq!(c.snapshot().queue_depth_hwm, 1);
    }

    /// A deadline that expires while the request is *queued* is a
    /// deadline failure, not an overload: the queue had room, the time
    /// ran out. The shed counter must not move.
    #[test]
    fn deadline_expiry_in_queue_is_not_counted_as_shed() {
        let gate = AdmissionGate::new(GateConfig {
            max_inflight: 1,
            max_queue: 4,
        });
        let c = counters();
        let _held = match gate.admit(None, &c) {
            AdmissionOutcome::Admitted(p) => p,
            _ => panic!("expected admit"),
        };
        let out = gate.admit(Some(Instant::now() + Duration::from_millis(20)), &c);
        assert!(matches!(out, AdmissionOutcome::DeadlineExceeded));
        let snap = c.snapshot();
        assert_eq!(snap.requests_deadline_exceeded, 1);
        assert_eq!(snap.requests_shed, 0, "a queue timeout is not an overload");
        assert_eq!(gate.queued(), 0, "the dead waiter left the queue");
    }

    /// Queue-full and wait-timeout refusals land in different counters:
    /// `requests_shed` for arrivals the queue had no room for,
    /// `requests_deadline_exceeded` for waiters whose budget ran out.
    #[test]
    fn shed_and_deadline_counters_attribute_correctly() {
        let gate = AdmissionGate::new(GateConfig {
            max_inflight: 1,
            max_queue: 1,
        });
        let c = counters();
        let _held = match gate.admit(None, &c) {
            AdmissionOutcome::Admitted(p) => p,
            _ => panic!("expected admit"),
        };
        // One waiter occupies the queue slot...
        let gate2 = Arc::clone(&gate);
        let c2 = Arc::clone(&c);
        let waiter = std::thread::spawn(move || {
            gate2.admit(Some(Instant::now() + Duration::from_millis(60)), &c2)
        });
        while gate.queued() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // ...so this arrival finds the queue full: shed, immediately.
        assert!(matches!(
            gate.admit(Some(Instant::now() + Duration::from_secs(5)), &c),
            AdmissionOutcome::Overloaded(_)
        ));
        // The queued waiter then times out: deadline, not shed.
        assert!(matches!(
            waiter.join().unwrap(),
            AdmissionOutcome::DeadlineExceeded
        ));
        let snap = c.snapshot();
        assert_eq!(snap.requests_shed, 1);
        assert_eq!(snap.requests_deadline_exceeded, 1);
    }

    /// A zero-budget request against a full gate is refused as
    /// `DeadlineExceeded` without blocking — the gate never sleeps on a
    /// deadline that is already in the past.
    #[test]
    fn zero_deadline_is_refused_without_waiting() {
        let gate = AdmissionGate::new(GateConfig {
            max_inflight: 1,
            max_queue: 4,
        });
        let c = counters();
        let _held = match gate.admit(None, &c) {
            AdmissionOutcome::Admitted(p) => p,
            _ => panic!("expected admit"),
        };
        let t0 = Instant::now();
        let out = gate.admit(Some(t0), &c);
        assert!(matches!(out, AdmissionOutcome::DeadlineExceeded));
        assert!(
            t0.elapsed() < Duration::from_millis(50),
            "an expired deadline must not queue-wait"
        );
        assert_eq!(c.snapshot().requests_deadline_exceeded, 1);
        // With a free slot, a zero deadline still admits: the budget
        // check belongs to the caller, the gate only bounds the wait.
        drop(_held);
        assert!(matches!(
            gate.admit(Some(Instant::now()), &c),
            AdmissionOutcome::Admitted(_)
        ));
    }

    #[test]
    fn queued_request_admitted_when_slot_frees() {
        let gate = AdmissionGate::new(GateConfig {
            max_inflight: 1,
            max_queue: 4,
        });
        let c = counters();
        let held = match gate.admit(None, &c) {
            AdmissionOutcome::Admitted(p) => p,
            _ => panic!("expected admit"),
        };
        let gate2 = Arc::clone(&gate);
        let c2 = Arc::clone(&c);
        let waiter = std::thread::spawn(move || {
            matches!(
                gate2.admit(Some(Instant::now() + Duration::from_secs(5)), &c2),
                AdmissionOutcome::Admitted(_)
            )
        });
        std::thread::sleep(Duration::from_millis(20));
        drop(held);
        assert!(waiter.join().unwrap());
    }
}
