//! End-to-end tests of the `tale-cli` binary (build → stats → query).

use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_tale-cli");

const DB_TXT: &str = "\
graph complexA
v kinase
v ligase
v channel
e 0 1
e 1 2
e 0 2

graph loner
v kinase
v channel
e 0 1
";

const QUERY_TXT: &str = "\
graph q
v kinase
v ligase
v channel
e 0 1
e 1 2
";

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(BIN)
        .args(args)
        .output()
        .expect("spawn tale-cli");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn build_stats_query_roundtrip() {
    let dir = tempfile::tempdir().unwrap();
    let db_path = dir.path().join("db.txt");
    let q_path = dir.path().join("q.txt");
    let idx = dir.path().join("index");
    std::fs::write(&db_path, DB_TXT).unwrap();
    std::fs::write(&q_path, QUERY_TXT).unwrap();

    let (ok, stdout, stderr) = run(&[
        "build",
        db_path.to_str().unwrap(),
        idx.to_str().unwrap(),
        "--sbit",
        "32",
    ]);
    assert!(ok, "build failed: {stderr}");
    assert!(stdout.contains("indexed 2 graphs"), "{stdout}");

    let (ok, stdout, _) = run(&["stats", idx.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("graphs           : 2"), "{stdout}");
    assert!(stdout.contains("Sbit=32"), "{stdout}");

    let (ok, stdout, stderr) = run(&[
        "query",
        idx.to_str().unwrap(),
        q_path.to_str().unwrap(),
        "--rho",
        "0.5",
        "--pimp",
        "1.0",
        "--similarity",
        "ctree",
    ]);
    assert!(ok, "query failed: {stderr}");
    assert!(stdout.contains("complexA"), "{stdout}");
    // full self-match of the triangle
    assert!(stdout.contains("nodes    3"), "{stdout}");
}

#[test]
fn add_extends_an_existing_index() {
    let dir = tempfile::tempdir().unwrap();
    let db_path = dir.path().join("db.txt");
    let more_path = dir.path().join("more.txt");
    let q_path = dir.path().join("q.txt");
    let idx = dir.path().join("index");
    std::fs::write(&db_path, DB_TXT).unwrap();
    std::fs::write(
        &more_path,
        "graph complexB\nv kinase\nv ligase\nv channel\ne 0 1\ne 1 2\ne 0 2\n",
    )
    .unwrap();
    std::fs::write(&q_path, QUERY_TXT).unwrap();
    let (ok, _, _) = run(&["build", db_path.to_str().unwrap(), idx.to_str().unwrap()]);
    assert!(ok);
    let (ok, stdout, stderr) = run(&["add", idx.to_str().unwrap(), more_path.to_str().unwrap()]);
    assert!(ok, "add failed: {stderr}");
    assert!(stdout.contains("added 1 graphs"), "{stdout}");
    let (ok, stdout, _) = run(&[
        "query",
        idx.to_str().unwrap(),
        q_path.to_str().unwrap(),
        "--rho",
        "0.0",
        "--pimp",
        "1.0",
    ]);
    assert!(ok);
    assert!(stdout.contains("complexB"), "{stdout}");
}

#[test]
fn query_with_unknown_labels_matches_nothing() {
    let dir = tempfile::tempdir().unwrap();
    let db_path = dir.path().join("db.txt");
    let q_path = dir.path().join("q.txt");
    let idx = dir.path().join("index");
    std::fs::write(&db_path, DB_TXT).unwrap();
    std::fs::write(&q_path, "graph q\nv martian\nv venusian\ne 0 1\n").unwrap();
    let (ok, _, _) = run(&["build", db_path.to_str().unwrap(), idx.to_str().unwrap()]);
    assert!(ok);
    let (ok, stdout, _) = run(&["query", idx.to_str().unwrap(), q_path.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("0 matches"), "{stdout}");
}

#[test]
fn explain_reports_probe_stats() {
    let dir = tempfile::tempdir().unwrap();
    let db_path = dir.path().join("db.txt");
    let q_path = dir.path().join("q.txt");
    let idx = dir.path().join("index");
    std::fs::write(&db_path, DB_TXT).unwrap();
    std::fs::write(&q_path, QUERY_TXT).unwrap();
    let (ok, _, _) = run(&["build", db_path.to_str().unwrap(), idx.to_str().unwrap()]);
    assert!(ok);
    let (ok, stdout, stderr) = run(&[
        "explain",
        idx.to_str().unwrap(),
        q_path.to_str().unwrap(),
        "--pimp",
        "1.0",
    ]);
    assert!(ok, "explain failed: {stderr}");
    assert!(stdout.contains("plan mode=cost"), "{stdout}");
    assert!(stdout.contains("probe [node="), "{stdout}");
    assert!(stdout.contains("est_rows="), "{stdout}");
}

#[test]
fn json_output_and_verify() {
    let dir = tempfile::tempdir().unwrap();
    let db_path = dir.path().join("db.txt");
    let q_path = dir.path().join("q.txt");
    let idx = dir.path().join("index");
    std::fs::write(&db_path, DB_TXT).unwrap();
    std::fs::write(&q_path, QUERY_TXT).unwrap();
    let (ok, _, _) = run(&["build", db_path.to_str().unwrap(), idx.to_str().unwrap()]);
    assert!(ok);
    let (ok, stdout, stderr) = run(&[
        "query",
        idx.to_str().unwrap(),
        q_path.to_str().unwrap(),
        "--pimp",
        "1.0",
        "--format",
        "json",
    ]);
    assert!(ok, "json query failed: {stderr}");
    // valid JSON array with the expected fields
    assert!(stdout.trim_start().starts_with('['), "{stdout}");
    assert!(stdout.contains("\"graph_name\""), "{stdout}");
    assert!(stdout.contains("\"matched_nodes\""), "{stdout}");
    assert!(stdout.contains("complexA"), "{stdout}");

    let (ok, stdout, stderr) = run(&["verify", idx.to_str().unwrap()]);
    assert!(ok, "verify failed: {stderr}");
    assert!(stdout.contains("index: ok"), "{stdout}");
    assert!(stdout.contains("ok:"), "{stdout}");

    // verify must fail loudly on corruption (the generational layout
    // keeps a fresh build's index under gens/g0)
    let blob = idx.join("gens").join("g0").join("nh.blobs");
    let mut bytes = std::fs::read(&blob).unwrap();
    for b in bytes.iter_mut().take(64) {
        *b ^= 0xFF;
    }
    std::fs::write(&blob, &bytes).unwrap();
    let (ok, stdout, stderr) = run(&["verify", idx.to_str().unwrap()]);
    assert!(!ok, "verify accepted a corrupted index");
    assert!(stdout.contains("CORRUPT"), "{stdout}");
    assert!(stderr.contains("corrupt"), "{stderr}");
}

#[test]
fn generations_inspects_and_fold_flips_to_a_new_generation() {
    let dir = tempfile::tempdir().unwrap();
    let db_path = dir.path().join("db.txt");
    let more_path = dir.path().join("more.txt");
    let q_path = dir.path().join("q.txt");
    let idx = dir.path().join("index");
    std::fs::write(&db_path, DB_TXT).unwrap();
    std::fs::write(
        &more_path,
        "graph complexB\nv kinase\nv ligase\nv channel\ne 0 1\ne 1 2\ne 0 2\n",
    )
    .unwrap();
    std::fs::write(&q_path, QUERY_TXT).unwrap();
    let (ok, _, _) = run(&["build", db_path.to_str().unwrap(), idx.to_str().unwrap()]);
    assert!(ok);

    let (ok, stdout, stderr) = run(&["generations", idx.to_str().unwrap()]);
    assert!(ok, "generations failed: {stderr}");
    assert!(stdout.contains("current generation: g0"), "{stdout}");
    assert!(stdout.contains("0 unfolded insert(s)"), "{stdout}");

    // an insert lands in the delta overlay, not a new generation
    let (ok, _, stderr) = run(&["add", idx.to_str().unwrap(), more_path.to_str().unwrap()]);
    assert!(ok, "add failed: {stderr}");
    let (ok, stdout, _) = run(&["generations", idx.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("current generation: g0"), "{stdout}");
    assert!(stdout.contains("1 unfolded insert(s)"), "{stdout}");
    assert!(stdout.contains("run `tale-cli fold`"), "{stdout}");

    // fold builds g1 and flips to it
    let (ok, stdout, stderr) = run(&["fold", idx.to_str().unwrap()]);
    assert!(ok, "fold failed: {stderr}");
    assert!(stdout.contains("folded 1 insert(s)"), "{stdout}");
    assert!(stdout.contains("into g1"), "{stdout}");
    let (ok, stdout, _) = run(&["generations", idx.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("current generation: g1"), "{stdout}");
    assert!(stdout.contains("0 unfolded insert(s)"), "{stdout}");

    // the folded index still answers, including the folded insert
    let (ok, stdout, _) = run(&[
        "query",
        idx.to_str().unwrap(),
        q_path.to_str().unwrap(),
        "--rho",
        "0.0",
        "--pimp",
        "1.0",
    ]);
    assert!(ok);
    assert!(stdout.contains("complexB"), "{stdout}");

    // sharded layouts mutate in place and have no generations
    let sharded = dir.path().join("sharded");
    let (ok, _, _) = run(&[
        "build",
        db_path.to_str().unwrap(),
        sharded.to_str().unwrap(),
        "--shards",
        "2",
    ]);
    assert!(ok);
    let (ok, _, stderr) = run(&["generations", sharded.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("no generational index"), "{stderr}");
}

#[test]
fn recover_runs_on_single_and_sharded_layouts() {
    let dir = tempfile::tempdir().unwrap();
    let db_path = dir.path().join("db.txt");
    let single = dir.path().join("single");
    let sharded = dir.path().join("sharded");
    std::fs::write(&db_path, DB_TXT).unwrap();
    let (ok, _, _) = run(&["build", db_path.to_str().unwrap(), single.to_str().unwrap()]);
    assert!(ok);
    let (ok, _, _) = run(&[
        "build",
        db_path.to_str().unwrap(),
        sharded.to_str().unwrap(),
        "--shards",
        "2",
    ]);
    assert!(ok);

    let (ok, stdout, stderr) = run(&["recover", single.to_str().unwrap()]);
    assert!(ok, "recover failed: {stderr}");
    assert!(stdout.contains("mutation journal: none"), "{stdout}");
    assert!(stdout.contains("safe to serve"), "{stdout}");

    let (ok, stdout, stderr) = run(&["recover", sharded.to_str().unwrap()]);
    assert!(ok, "sharded recover failed: {stderr}");
    assert!(stdout.contains("shard 0"), "{stdout}");
    assert!(stdout.contains("shard 1"), "{stdout}");
    assert!(stdout.contains("safe to serve"), "{stdout}");
}

#[test]
fn bad_usage_reports_errors() {
    let (ok, _, stderr) = run(&["build"]);
    assert!(!ok);
    assert!(stderr.contains("build needs"), "{stderr}");

    let (ok, _, stderr) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"), "{stderr}");

    let (ok, _, stderr) = run(&["stats", "/nonexistent/idx"]);
    assert!(!ok);
    assert!(!stderr.is_empty());

    let (ok, _, _) = run(&["help"]);
    assert!(ok);
}

#[test]
fn sharded_build_roundtrip_matches_single_index() {
    let dir = tempfile::tempdir().unwrap();
    let db_path = dir.path().join("db.txt");
    let q_path = dir.path().join("q.txt");
    let single = dir.path().join("single");
    let sharded = dir.path().join("sharded");
    std::fs::write(&db_path, DB_TXT).unwrap();
    std::fs::write(&q_path, QUERY_TXT).unwrap();

    let (ok, _, stderr) = run(&["build", db_path.to_str().unwrap(), single.to_str().unwrap()]);
    assert!(ok, "single build failed: {stderr}");
    let (ok, stdout, stderr) = run(&[
        "build",
        db_path.to_str().unwrap(),
        sharded.to_str().unwrap(),
        "--shards",
        "2",
        "--policy",
        "size-balanced",
    ]);
    assert!(ok, "sharded build failed: {stderr}");
    assert!(stdout.contains("across 2 shards"), "{stdout}");
    assert!(sharded.join("shards.json").is_file());

    // stats knows about the shard layout
    let (ok, stdout, _) = run(&["stats", sharded.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("shards           : 2"), "{stdout}");
    assert!(stdout.contains("shard   0:"), "{stdout}");

    // identical query answers, bit for bit, through the JSON output
    let query = |idx: &std::path::Path| {
        let (ok, stdout, stderr) = run(&[
            "query",
            idx.to_str().unwrap(),
            q_path.to_str().unwrap(),
            "--rho",
            "0.5",
            "--pimp",
            "1.0",
            "--format",
            "json",
        ]);
        assert!(ok, "query failed: {stderr}");
        stdout
    };
    assert_eq!(query(&single), query(&sharded));

    // verify sweeps every shard
    let (ok, stdout, stderr) = run(&["verify", sharded.to_str().unwrap()]);
    assert!(ok, "verify failed: {stderr}");
    assert!(stdout.contains("shard 0: ok"), "{stdout}");
    assert!(stdout.contains("shard 1: ok"), "{stdout}");

    // explain renders one plan subtree per shard
    let (ok, stdout, stderr) = run(&[
        "explain",
        sharded.to_str().unwrap(),
        q_path.to_str().unwrap(),
        "--pimp",
        "1.0",
    ]);
    assert!(ok, "explain failed: {stderr}");
    assert!(stdout.contains("scatter [shards=2"), "{stdout}");
    assert!(stdout.contains("shard [shard=0"), "{stdout}");
    assert!(stdout.contains("shard [shard=1"), "{stdout}");

    // add routes through the placement policy and stays queryable
    let more_path = dir.path().join("more.txt");
    std::fs::write(
        &more_path,
        "graph complexB\nv kinase\nv ligase\nv channel\ne 0 1\ne 1 2\ne 0 2\n",
    )
    .unwrap();
    let (ok, stdout, stderr) = run(&[
        "add",
        sharded.to_str().unwrap(),
        more_path.to_str().unwrap(),
    ]);
    assert!(ok, "add failed: {stderr}");
    assert!(stdout.contains("added 1 graphs"), "{stdout}");
    let (ok, stdout, _) = run(&[
        "query",
        sharded.to_str().unwrap(),
        q_path.to_str().unwrap(),
        "--rho",
        "0.0",
        "--pimp",
        "1.0",
    ]);
    assert!(ok);
    assert!(stdout.contains("complexB"), "{stdout}");
}

#[test]
fn sharded_query_stats_report_per_shard_traffic() {
    let dir = tempfile::tempdir().unwrap();
    let db_path = dir.path().join("db.txt");
    let q_path = dir.path().join("q.txt");
    let idx = dir.path().join("index");
    std::fs::write(&db_path, DB_TXT).unwrap();
    std::fs::write(&q_path, QUERY_TXT).unwrap();
    let (ok, _, stderr) = run(&[
        "build",
        db_path.to_str().unwrap(),
        idx.to_str().unwrap(),
        "--shards",
        "2",
    ]);
    assert!(ok, "{stderr}");
    let (ok, stdout, stderr) = run(&[
        "query",
        idx.to_str().unwrap(),
        q_path.to_str().unwrap(),
        "--pimp",
        "1.0",
        "--stats",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("per-shard (skew"), "{stdout}");
    // one line per shard in the table
    assert!(stdout.contains("engine stats:"), "{stdout}");

    let (ok, stdout, stderr) = run(&[
        "query",
        idx.to_str().unwrap(),
        q_path.to_str().unwrap(),
        "--pimp",
        "1.0",
        "--stats",
        "--format",
        "json",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("\"shards\""), "{stdout}");
    assert!(stdout.contains("\"shard_skew\""), "{stdout}");
}

#[test]
fn sharded_flag_validation() {
    let dir = tempfile::tempdir().unwrap();
    let db_path = dir.path().join("db.txt");
    std::fs::write(&db_path, DB_TXT).unwrap();
    let idx = dir.path().join("index");
    let (ok, _, stderr) = run(&[
        "build",
        db_path.to_str().unwrap(),
        idx.to_str().unwrap(),
        "--shards",
        "0",
    ]);
    assert!(!ok);
    assert!(stderr.contains("--shards must be >= 1"), "{stderr}");

    let (ok, _, stderr) = run(&[
        "build",
        db_path.to_str().unwrap(),
        idx.to_str().unwrap(),
        "--shards",
        "2",
        "--policy",
        "astrology",
    ]);
    assert!(!ok);
    assert!(stderr.contains("unknown policy"), "{stderr}");
}

#[test]
fn flag_validation() {
    let dir = tempfile::tempdir().unwrap();
    let db_path = dir.path().join("db.txt");
    std::fs::write(&db_path, DB_TXT).unwrap();
    let idx = dir.path().join("index");
    let (ok, _, stderr) = run(&[
        "build",
        db_path.to_str().unwrap(),
        idx.to_str().unwrap(),
        "--sbit",
        "not-a-number",
    ]);
    assert!(!ok);
    assert!(stderr.contains("bad value"), "{stderr}");

    let (ok, _, stderr) = run(&[
        "build",
        db_path.to_str().unwrap(),
        idx.to_str().unwrap(),
        "--wat",
        "1",
    ]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag"), "{stderr}");
}
