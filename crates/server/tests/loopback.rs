//! End-to-end contract of the serving layer, over real loopback TCP:
//!
//! * **Bit identity** — a batch run through frontend + shard workers
//!   (each a separate TCP server) returns exactly the ranked answers the
//!   in-process [`ShardedTaleDatabase`] produces, across shard counts,
//!   thread counts, and plan modes — including through a second TCP hop
//!   (raw client socket → frontend server → workers).
//! * **Worker death** — killing a worker mid-deployment fails the whole
//!   batch with the typed `ShardError::Transport { shard, .. }` (never a
//!   partial merge), and the frontend recovers on its own — reconnect
//!   with backoff — once the worker is back on the same address.
//! * **Saturation** — past the admission gate's limits, requests are
//!   shed with an explicit `Overloaded`, visible in the shed counter.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::net::SocketAddr;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tale::{PlanMode, QueryMatch, QueryOptions, TaleParams};
use tale_graph::generate::{gnm, mutate, MutationRates};
use tale_graph::{Graph, GraphDb};
use tale_server::engine::{EngineConfig, ShardEngine};
use tale_server::transport::{RemoteConfig, RemoteTransport, ShardTransport};
use tale_server::wire::{
    self, HelloResponse, QueryBatchRequest, QueryBatchResponse, Request, Response, WireExecStats,
    WireGraph, WireMatch, WireOptions, PROTOCOL_VERSION,
};
use tale_server::worker::{serve, serve_shard, ServerHandle, WorkerConfig};
use tale_server::{Frontend, FrontendConfig, GateConfig, ServerError};
use tale_shard::{HashPolicy, ShardError, ShardedTaleDatabase};

const LABELS: u32 = 6;

fn corpus(seed: u64, n_graphs: usize) -> (GraphDb, Vec<Graph>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut db = GraphDb::new();
    for i in 0..LABELS {
        db.intern_node_label(&format!("L{i}"));
    }
    let mut originals = Vec::new();
    for i in 0..n_graphs {
        let g = gnm(&mut rng, 30, 60, LABELS);
        let (noisy, _) = mutate(&mut rng, &g, &MutationRates::mild(), LABELS);
        db.insert(format!("g{i}"), noisy);
        originals.push(g);
    }
    (db, originals)
}

fn assert_bit_identical(a: &[Vec<QueryMatch>], b: &[Vec<QueryMatch>], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: batch size");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.len(), y.len(), "{ctx}: result count for query {i}");
        for (m, n) in x.iter().zip(y) {
            assert_eq!(m.graph, n.graph, "{ctx}: graph order for query {i}");
            assert_eq!(m.graph_name, n.graph_name, "{ctx}: query {i}");
            assert_eq!(
                m.score.to_bits(),
                n.score.to_bits(),
                "{ctx}: score bits for query {i} graph {:?}",
                m.graph
            );
            assert_eq!(m.matched_nodes, n.matched_nodes, "{ctx}: query {i}");
            assert_eq!(m.matched_edges, n.matched_edges, "{ctx}: query {i}");
            assert_eq!(m.m.pairs, n.m.pairs, "{ctx}: pair list for query {i}");
        }
    }
}

/// One TCP server per shard of the database at `dir`, on ephemeral ports.
fn start_workers(dir: &Path, nshards: usize) -> Vec<ServerHandle> {
    (0..nshards)
        .map(|s| {
            let engine = ShardEngine::open(dir, s as u32, EngineConfig::default()).unwrap();
            serve_shard(
                Arc::new(engine),
                "127.0.0.1:0".parse().unwrap(),
                WorkerConfig::default(),
            )
            .unwrap()
        })
        .collect()
}

fn frontend_over(handles: &[ServerHandle]) -> Frontend {
    let transports: Vec<Arc<dyn ShardTransport>> = handles
        .iter()
        .enumerate()
        .map(|(i, h)| {
            RemoteTransport::new(h.addr(), i as u32, RemoteConfig::default())
                as Arc<dyn ShardTransport>
        })
        .collect();
    Frontend::new(transports, FrontendConfig::default()).unwrap()
}

fn wire_batch(db: &GraphDb, queries: &[Graph], opts: &QueryOptions) -> QueryBatchRequest {
    QueryBatchRequest {
        queries: queries
            .iter()
            .map(|g| WireGraph::from_graph(db, g))
            .collect(),
        options: WireOptions::from_options(opts),
        deadline_ms: None,
        allow_partial: false,
    }
}

fn decode(resp: &QueryBatchResponse) -> Vec<Vec<QueryMatch>> {
    resp.results
        .iter()
        .map(|wm| wm.matches.iter().map(WireMatch::to_match).collect())
        .collect()
}

/// The tentpole oracle: frontend + workers over loopback TCP vs the
/// in-process sharded database, across shards × threads × plan modes.
/// Also drives one batch per shard count through a *served* frontend via
/// a raw client socket, covering the full two-hop path.
#[test]
fn remote_execution_is_bit_identical_to_in_process() {
    let (db, originals) = corpus(91, 6);
    let params = TaleParams::default();
    let queries: Vec<&Graph> = originals.iter().collect();

    for &nshards in &[1usize, 2, 4] {
        let dir = tempfile::tempdir().unwrap();
        let sharded =
            ShardedTaleDatabase::build(db.clone(), dir.path(), &params, nshards, &HashPolicy)
                .unwrap();
        let handles = start_workers(dir.path(), nshards);
        let frontend = Arc::new(frontend_over(&handles));

        for &threads in &[0usize, 4] {
            for plan in [PlanMode::Fixed, PlanMode::Cost] {
                let ctx = format!("shards={nshards} threads={threads} plan={plan:?}");
                let opts = QueryOptions {
                    rho: 0.25,
                    p_imp: 0.25,
                    threads,
                    plan,
                    ..QueryOptions::default()
                }
                .with_cache(false);
                let expected = sharded.query_batch(&queries, &opts).unwrap();
                let req = wire_batch(&db, &originals, &opts);
                let resp = frontend.query_batch(&req, Instant::now()).unwrap();
                assert_bit_identical(&expected, &decode(&resp), &ctx);
            }
        }

        // Full client path: raw socket -> served frontend -> workers.
        let served = serve(
            Arc::clone(&frontend) as Arc<dyn tale_server::worker::Service>,
            "127.0.0.1:0".parse().unwrap(),
            WorkerConfig::default(),
        )
        .unwrap();
        let opts = QueryOptions {
            rho: 0.25,
            p_imp: 0.25,
            ..QueryOptions::default()
        }
        .with_cache(false);
        let expected = sharded.query_batch(&queries, &opts).unwrap();
        let mut client = std::net::TcpStream::connect(served.addr()).unwrap();
        wire::write_request(
            &mut client,
            &Request::QueryBatch(wire_batch(&db, &originals, &opts)),
        )
        .unwrap();
        match wire::read_response(&mut client).unwrap() {
            Some((Response::QueryBatch(resp), _)) => assert_bit_identical(
                &expected,
                &decode(&resp),
                &format!("shards={nshards} via client socket"),
            ),
            other => panic!("expected a batch response, got {other:?}"),
        }
    }
}

/// Restarts a worker for `shard` on the exact address it died on,
/// retrying the bind while the kernel clears the dead incarnation's
/// lingering sockets.
fn restart_worker(dir: &Path, shard: u32, addr: SocketAddr) -> ServerHandle {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let engine = ShardEngine::open(dir, shard, EngineConfig::default()).unwrap();
        match serve_shard(Arc::new(engine), addr, WorkerConfig::default()) {
            Ok(h) => return h,
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("could not rebind {addr}: {e}"),
        }
    }
}

/// Worker death fails the whole batch with the typed transport error —
/// naming the dead shard, never a partial merge — and the frontend's
/// reconnect-with-backoff recovers once the worker is back.
#[test]
fn worker_death_is_typed_and_reconnect_recovers() {
    let (db, originals) = corpus(7, 4);
    let params = TaleParams::default();
    let queries: Vec<&Graph> = originals.iter().collect();
    let dir = tempfile::tempdir().unwrap();
    let sharded =
        ShardedTaleDatabase::build(db.clone(), dir.path(), &params, 2, &HashPolicy).unwrap();
    let mut handles = start_workers(dir.path(), 2);
    let frontend = frontend_over(&handles);

    let opts = QueryOptions {
        rho: 0.25,
        p_imp: 0.25,
        ..QueryOptions::default()
    }
    .with_cache(false);
    let expected = sharded.query_batch(&queries, &opts).unwrap();
    let req = wire_batch(&db, &originals, &opts);

    // Healthy round first.
    let resp = frontend.query_batch(&req, Instant::now()).unwrap();
    assert_bit_identical(&expected, &decode(&resp), "before worker death");

    // Kill shard 1's worker: listener down, live connections severed.
    let dead_addr = handles[1].addr();
    handles[1].shutdown();
    match frontend.query_batch(&req, Instant::now()) {
        Err(ServerError::Shard(ShardError::Transport { shard, .. })) => {
            assert_eq!(shard, 1, "the error names the dead shard")
        }
        other => panic!("expected a shard-1 transport error, got {other:?}"),
    }

    // Revive the worker on the same address; the very next batch must
    // succeed through the transport's own redial, bit-identically.
    handles[1] = restart_worker(dir.path(), 1, dead_addr);
    let resp = frontend.query_batch(&req, Instant::now()).unwrap();
    assert_bit_identical(&expected, &decode(&resp), "after worker revival");
}

/// A transport that answers hello correctly and then takes `delay` per
/// batch — long enough for concurrent arrivals to pile up at the gate.
struct SlowTransport {
    delay: Duration,
}

impl ShardTransport for SlowTransport {
    fn shard(&self) -> u32 {
        0
    }
    fn call(&self, req: &Request, _deadline: Option<Instant>) -> tale_server::Result<Response> {
        match req {
            Request::Hello(_) => Ok(Response::Hello(HelloResponse {
                protocol: PROTOCOL_VERSION,
                shard: 0,
                shard_count: 1,
                graphs: 0,
                vocab_fingerprint: 42,
            })),
            _ => {
                std::thread::sleep(self.delay);
                Ok(Response::QueryBatch(QueryBatchResponse {
                    results: Vec::new(),
                    stats: WireExecStats::default(),
                    degraded: Vec::new(),
                }))
            }
        }
    }
    fn describe(&self) -> String {
        "slow stub".into()
    }
}

/// Saturating the admission gate sheds with an explicit `Overloaded` —
/// every refused request gets the typed answer and is counted; nothing
/// is silently dropped.
#[test]
fn saturation_sheds_with_explicit_overloaded() {
    let frontend = Arc::new(
        Frontend::new(
            vec![Arc::new(SlowTransport {
                delay: Duration::from_millis(150),
            }) as Arc<dyn ShardTransport>],
            FrontendConfig {
                gate: GateConfig {
                    max_inflight: 1,
                    max_queue: 0,
                },
                ..FrontendConfig::default()
            },
        )
        .unwrap(),
    );
    let req = QueryBatchRequest {
        queries: Vec::new(),
        options: WireOptions::from_options(&QueryOptions::default()),
        deadline_ms: None,
        allow_partial: false,
    };

    const CLIENTS: usize = 8;
    let outcomes: Vec<_> = std::thread::scope(|s| {
        let threads: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let frontend = Arc::clone(&frontend);
                let req = req.clone();
                s.spawn(move || frontend.query_batch(&req, Instant::now()))
            })
            .collect();
        threads.into_iter().map(|t| t.join().unwrap()).collect()
    });

    let ok = outcomes.iter().filter(|r| r.is_ok()).count();
    let shed = outcomes
        .iter()
        .filter(|r| matches!(r, Err(ServerError::Overloaded(_))))
        .count();
    assert_eq!(
        ok + shed,
        CLIENTS,
        "every request is either served or explicitly shed: {outcomes:?}"
    );
    assert!(ok >= 1, "at least the first arrival is served");
    assert!(shed >= 1, "past the gate, arrivals shed explicitly");
    let snap = frontend.counters().snapshot();
    assert_eq!(snap.requests_shed, shed as u64, "every shed is counted");
}
