//! Chaos sweep: the serving stack under injected faults.
//!
//! The contract under test, end to end: a client behind the
//! fault-tolerance layer (retries, failover, hedging, circuit breakers)
//! either gets an answer **bit-identical** to in-process execution, a
//! **typed** error, or — only when it opted in — an explicit `degraded`
//! marker naming the missing shards. Never a silently wrong or silently
//! partial answer, no matter what the network does.
//!
//! Faults come from two injectors: [`ChaosProxy`] damages real TCP byte
//! streams (refused connections, black holes, delays, connections
//! killed mid-frame, truncated and bit-flipped responses), and
//! [`FaultyTransport`] fails calls deterministically in-process for the
//! breaker/failover/mutation unit contracts.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tale::{QueryMatch, QueryOptions, TaleParams};
use tale_graph::generate::{gnm, mutate, MutationRates};
use tale_graph::{Graph, GraphDb};
use tale_server::admission::{AdmissionGate, GateConfig};
use tale_server::engine::{EngineConfig, ShardEngine};
use tale_server::transport::{LocalTransport, RemoteConfig, RemoteTransport, ShardTransport};
use tale_server::wire::{
    self, InsertRequest, QueryBatchRequest, QueryBatchResponse, Request, Response, WireExecStats,
    WireGraph, WireMatch, WireOptions,
};
use tale_server::worker::{serve, serve_shard, ServerContext, ServerHandle, Service, WorkerConfig};
use tale_server::{
    ChaosProxy, Fault, FaultyTransport, Frontend, FrontendConfig, ReplicaConfig, ReplicaSet,
    ServerCounters, ServerError, WireError,
};
use tale_shard::{HashPolicy, ShardError, ShardedTaleDatabase};

const LABELS: u32 = 6;

fn corpus(seed: u64, n_graphs: usize) -> (GraphDb, Vec<Graph>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut db = GraphDb::new();
    for i in 0..LABELS {
        db.intern_node_label(&format!("L{i}"));
    }
    let mut originals = Vec::new();
    for i in 0..n_graphs {
        let g = gnm(&mut rng, 30, 60, LABELS);
        let (noisy, _) = mutate(&mut rng, &g, &MutationRates::mild(), LABELS);
        db.insert(format!("g{i}"), noisy);
        originals.push(g);
    }
    (db, originals)
}

fn test_options() -> QueryOptions {
    QueryOptions {
        rho: 0.25,
        p_imp: 0.25,
        ..QueryOptions::default()
    }
    .with_cache(false)
}

fn wire_batch(
    db: &GraphDb,
    queries: &[Graph],
    opts: &QueryOptions,
    deadline_ms: Option<u64>,
    allow_partial: bool,
) -> QueryBatchRequest {
    QueryBatchRequest {
        queries: queries
            .iter()
            .map(|g| WireGraph::from_graph(db, g))
            .collect(),
        options: WireOptions::from_options(opts),
        deadline_ms,
        allow_partial,
    }
}

fn decode(resp: &QueryBatchResponse) -> Vec<Vec<QueryMatch>> {
    resp.results
        .iter()
        .map(|wm| wm.matches.iter().map(WireMatch::to_match).collect())
        .collect()
}

fn assert_bit_identical(a: &[Vec<QueryMatch>], b: &[Vec<QueryMatch>], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: batch size");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.len(), y.len(), "{ctx}: result count for query {i}");
        for (m, n) in x.iter().zip(y) {
            assert_eq!(m.graph, n.graph, "{ctx}: graph order for query {i}");
            assert_eq!(
                m.score.to_bits(),
                n.score.to_bits(),
                "{ctx}: score bits for query {i} graph {:?}",
                m.graph
            );
            assert_eq!(m.m.pairs, n.m.pairs, "{ctx}: pair list for query {i}");
        }
    }
}

/// Builds a 1-shard database in `dir` and returns the in-process
/// reference answers for the whole workload.
fn build_single_shard(
    db: &GraphDb,
    originals: &[Graph],
    dir: &Path,
    opts: &QueryOptions,
) -> Vec<Vec<QueryMatch>> {
    let queries: Vec<&Graph> = originals.iter().collect();
    let sharded =
        ShardedTaleDatabase::build(db.clone(), dir, &TaleParams::default(), 1, &HashPolicy)
            .unwrap();
    sharded.query_batch(&queries, opts).unwrap()
}

fn start_worker(dir: &Path, shard: u32) -> ServerHandle {
    let engine = ShardEngine::open(dir, shard, EngineConfig::default()).unwrap();
    serve_shard(
        Arc::new(engine),
        "127.0.0.1:0".parse().unwrap(),
        WorkerConfig::default(),
    )
    .unwrap()
}

fn local_transport(dir: &Path, shard: u32) -> Arc<dyn ShardTransport> {
    let engine = ShardEngine::open(dir, shard, EngineConfig::default()).unwrap();
    Arc::new(LocalTransport::new(ServerContext {
        engine: Arc::new(engine),
        gate: AdmissionGate::new(GateConfig::default()),
        counters: Arc::new(ServerCounters::new()),
    }))
}

/// Transport tuning for chaos runs: tight io timeout so black holes
/// resolve in test time, a few retries to mask severed connections.
fn chaos_remote_cfg(retries: u32) -> RemoteConfig {
    RemoteConfig {
        connect_attempts: 3,
        backoff: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(40),
        retries,
        io_timeout: Some(Duration::from_millis(250)),
        ..RemoteConfig::default()
    }
}

/// No background prober, no hedging: every breaker transition in these
/// tests comes from a request the test itself issued.
fn deterministic_replica_cfg() -> ReplicaConfig {
    ReplicaConfig {
        probe_interval: Duration::ZERO,
        retries: 3,
        backoff: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(20),
        hedge_after: None,
        ..ReplicaConfig::default()
    }
}

/// The scripted sweep: every fault in the palette, injected into the
/// first connection a fresh transport makes, with retries enabled. The
/// client must come out with either the bit-identical answer (the fault
/// was masked by a retry on a clean connection) or a typed error —
/// never a wrong or partial answer.
#[test]
fn fault_sweep_masks_or_types_every_failure() {
    let (db, originals) = corpus(21, 5);
    let opts = test_options();
    let dir = tempfile::tempdir().unwrap();
    let expected = build_single_shard(&db, &originals, dir.path(), &opts);
    let worker = start_worker(dir.path(), 0);

    let faults = [
        Fault::Refuse,
        Fault::BlackHole,
        Fault::Delay(Duration::from_millis(40)),
        Fault::KillAfterRequestBytes(24),
        Fault::TruncateResponseAfter(24),
        // Offset 600 lands inside the (multi-KiB) query response
        // payload, past the ~100-byte hello exchange.
        Fault::CorruptResponseByte(600),
    ];
    for fault in faults {
        let ctx = format!("{fault:?}");
        let proxy = ChaosProxy::new(worker.addr()).unwrap();
        proxy.enqueue(fault);
        let transport = RemoteTransport::new(proxy.addr(), 0, chaos_remote_cfg(3));
        let req = Request::QueryBatch(wire_batch(&db, &originals, &opts, Some(5000), false));
        let deadline = Some(Instant::now() + Duration::from_secs(5));
        match transport.call(&req, deadline) {
            Ok(Response::QueryBatch(resp)) => {
                assert_bit_identical(&expected, &decode(&resp), &ctx);
                assert!(resp.degraded.is_empty(), "{ctx}: degraded without opt-in");
            }
            // A typed error is an acceptable outcome; a wrong answer is
            // not, and would have surfaced as Ok above.
            Err(e) => eprintln!("{ctx}: typed error {e}"),
            Ok(other) => panic!("{ctx}: non-batch answer {other:?}"),
        }
        assert!(
            proxy.faults_injected() >= 1,
            "{ctx}: the scripted fault was never drawn"
        );
    }
}

/// A flipped response bit must die at the frame CRC with the typed
/// `Corrupt` refusal — with retries disabled so the refusal itself is
/// visible instead of being masked by a clean reconnect.
#[test]
fn corrupted_response_dies_at_the_crc() {
    let (db, originals) = corpus(22, 5);
    let opts = test_options();
    let dir = tempfile::tempdir().unwrap();
    let _expected = build_single_shard(&db, &originals, dir.path(), &opts);
    let worker = start_worker(dir.path(), 0);

    let proxy = ChaosProxy::new(worker.addr()).unwrap();
    proxy.enqueue(Fault::CorruptResponseByte(600));
    let transport = RemoteTransport::new(proxy.addr(), 0, chaos_remote_cfg(0));
    let req = Request::QueryBatch(wire_batch(&db, &originals, &opts, Some(5000), false));
    match transport.call(&req, Some(Instant::now() + Duration::from_secs(5))) {
        Err(ServerError::Wire(WireError::Corrupt { expected, got })) => {
            assert_ne!(expected, got, "corrupt CRCs must differ");
        }
        other => panic!("expected a CRC refusal, got {other:?}"),
    }
}

/// The acceptance scenario: two replicas serve the same shard, the
/// primary is killed while batches are in flight, and the client sees
/// zero errors — every batch still comes back bit-identical, with the
/// failover visible in the counters instead of the answers.
#[test]
fn killed_replica_mid_batch_fails_over_with_zero_errors() {
    let (db, originals) = corpus(23, 4);
    let opts = test_options();
    let dir = tempfile::tempdir().unwrap();
    let expected = build_single_shard(&db, &originals, dir.path(), &opts);
    let mut primary = start_worker(dir.path(), 0);
    let secondary = start_worker(dir.path(), 0);

    let members: Vec<Arc<dyn ShardTransport>> = vec![
        RemoteTransport::new(primary.addr(), 0, chaos_remote_cfg(0)),
        RemoteTransport::new(secondary.addr(), 0, chaos_remote_cfg(0)),
    ];
    let set = ReplicaSet::new(0, members, deterministic_replica_cfg());
    let counters = Arc::new(ServerCounters::new());
    let frontend = Arc::new(
        Frontend::with_counters(
            vec![set as Arc<dyn ShardTransport>],
            FrontendConfig::default(),
            Arc::clone(&counters),
        )
        .unwrap(),
    );

    let req = wire_batch(&db, &originals, &opts, Some(10_000), false);
    let resp = frontend.query_batch(&req, Instant::now()).unwrap();
    assert_bit_identical(&expected, &decode(&resp), "before the kill");

    // Batches stream from a client thread while the primary dies.
    let client = {
        let frontend = Arc::clone(&frontend);
        let req = req.clone();
        std::thread::spawn(move || {
            let until = Instant::now() + Duration::from_millis(600);
            let mut answers = Vec::new();
            while Instant::now() < until {
                answers.push(frontend.query_batch(&req, Instant::now()));
            }
            answers
        })
    };
    std::thread::sleep(Duration::from_millis(100));
    primary.shutdown();
    let answers = client.join().unwrap();

    assert!(!answers.is_empty());
    for (i, ans) in answers.iter().enumerate() {
        match ans {
            Ok(resp) => assert_bit_identical(&expected, &decode(resp), &format!("batch {i}")),
            Err(e) => panic!("client-visible error on batch {i}: {e}"),
        }
    }
    let snap = counters.snapshot();
    assert!(snap.failovers >= 1, "failover never engaged: {snap:?}");
    assert!(
        snap.replica_failures >= 1,
        "the dead replica's failures went uncounted"
    );
}

/// A transport that answers correctly, slowly.
struct Laggy {
    inner: Arc<dyn ShardTransport>,
    delay: Duration,
}

impl ShardTransport for Laggy {
    fn shard(&self) -> u32 {
        self.inner.shard()
    }
    fn call(&self, req: &Request, deadline: Option<Instant>) -> tale_server::Result<Response> {
        std::thread::sleep(self.delay);
        self.inner.call(req, deadline)
    }
    fn describe(&self) -> String {
        format!("laggy({})", self.inner.describe())
    }
}

/// With a fixed hedge trigger, a slow primary loses the race to the
/// hedged probe on the second replica: the fast answer wins, the client
/// never waits out the laggard, and both hedge counters move.
#[test]
fn hedged_request_wins_on_a_slow_replica() {
    let (db, originals) = corpus(24, 3);
    let opts = test_options();
    let dir = tempfile::tempdir().unwrap();
    let expected = build_single_shard(&db, &originals, dir.path(), &opts);

    let slow: Arc<dyn ShardTransport> = Arc::new(Laggy {
        inner: local_transport(dir.path(), 0),
        delay: Duration::from_millis(300),
    });
    let fast = local_transport(dir.path(), 0);
    let cfg = ReplicaConfig {
        hedge_after: Some(Duration::from_millis(25)),
        ..deterministic_replica_cfg()
    };
    let set = ReplicaSet::new(0, vec![slow, fast], cfg);
    let counters = Arc::new(ServerCounters::new());
    set.attach_counters(&counters);

    let req = Request::QueryBatch(wire_batch(&db, &originals, &opts, None, false));
    let t0 = Instant::now();
    match set.call(&req, Some(Instant::now() + Duration::from_secs(5))) {
        Ok(Response::QueryBatch(resp)) => {
            assert_bit_identical(&expected, &decode(&resp), "hedged answer")
        }
        other => panic!("expected a batch answer, got {other:?}"),
    }
    assert!(
        t0.elapsed() < Duration::from_millis(290),
        "the client waited out the slow replica instead of hedging"
    );
    let snap = counters.snapshot();
    assert!(snap.hedges_fired >= 1, "hedge never fired: {snap:?}");
    assert!(snap.hedges_won >= 1, "hedge never won: {snap:?}");
}

/// Breaker lifecycle against a dead replica: consecutive failures open
/// it, requests stop landing on it, and after the cooldown one
/// half-open trial against the revived replica closes it again.
#[test]
fn breaker_opens_after_threshold_and_recovers_half_open() {
    let (db, originals) = corpus(25, 3);
    let opts = test_options();
    let dir = tempfile::tempdir().unwrap();
    let expected = build_single_shard(&db, &originals, dir.path(), &opts);

    let flaky = FaultyTransport::new(local_transport(dir.path(), 0));
    let healthy = local_transport(dir.path(), 0);
    let cfg = ReplicaConfig {
        failure_threshold: 2,
        open_cooldown: Duration::from_millis(50),
        ..deterministic_replica_cfg()
    };
    let set = ReplicaSet::new(
        0,
        vec![Arc::clone(&flaky) as Arc<dyn ShardTransport>, healthy],
        cfg,
    );
    let counters = Arc::new(ServerCounters::new());
    set.attach_counters(&counters);
    flaky.set_dead(true);

    let req = Request::QueryBatch(wire_batch(&db, &originals, &opts, None, false));
    for i in 0..3 {
        match set.call(&req, Some(Instant::now() + Duration::from_secs(5))) {
            Ok(Response::QueryBatch(resp)) => {
                assert_bit_identical(&expected, &decode(&resp), &format!("round {i}"))
            }
            other => panic!("round {i}: expected a batch answer, got {other:?}"),
        }
    }
    let health = set.replica_health().unwrap();
    assert_eq!(
        health[0].state, "open",
        "dead replica's breaker: {health:?}"
    );
    assert_eq!(health[1].state, "closed");
    let snap = counters.snapshot();
    assert!(snap.breaker_opened >= 1, "breaker never opened: {snap:?}");
    assert!(snap.failovers >= 1, "failover went uncounted: {snap:?}");
    assert!(snap.retries >= 1, "retries went uncounted: {snap:?}");

    // Revive; after the cooldown the next request is the half-open
    // trial and its success closes the breaker.
    flaky.set_dead(false);
    std::thread::sleep(Duration::from_millis(60));
    match set.call(&req, Some(Instant::now() + Duration::from_secs(5))) {
        Ok(Response::QueryBatch(resp)) => {
            assert_bit_identical(&expected, &decode(&resp), "after revival")
        }
        other => panic!("expected a batch answer, got {other:?}"),
    }
    let health = set.replica_health().unwrap();
    assert_eq!(health[0].state, "closed", "revived replica: {health:?}");
}

/// Mutations are never retried or failed over: a dead primary fails the
/// mutation with a typed error after exactly one attempt, and the
/// healthy secondary never sees it — a lost acknowledgement must not
/// become a double apply.
#[test]
fn mutations_go_to_the_primary_exactly_once() {
    let (db, _) = corpus(26, 3);
    let dir = tempfile::tempdir().unwrap();
    drop(
        ShardedTaleDatabase::build(
            db.clone(),
            dir.path(),
            &TaleParams::default(),
            1,
            &HashPolicy,
        )
        .unwrap(),
    );

    let primary = FaultyTransport::new(local_transport(dir.path(), 0));
    let secondary = FaultyTransport::new(local_transport(dir.path(), 0));
    let set = ReplicaSet::new(
        0,
        vec![
            Arc::clone(&primary) as Arc<dyn ShardTransport>,
            Arc::clone(&secondary) as Arc<dyn ShardTransport>,
        ],
        deterministic_replica_cfg(),
    );
    primary.set_dead(true);

    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let g = gnm(&mut rng, 8, 12, LABELS);
    let insert = Request::Insert(InsertRequest {
        name: "chaos-insert".into(),
        graph: WireGraph::from_graph(&db, &g),
    });
    match set.call(&insert, Some(Instant::now() + Duration::from_secs(5))) {
        Err(ServerError::Io(_)) => {}
        other => panic!("expected the primary's failure to surface, got {other:?}"),
    }
    assert_eq!(primary.calls(), 1, "mutations get exactly one attempt");
    assert_eq!(
        secondary.calls(),
        0,
        "a mutation must never fail over to another replica"
    );
}

/// `allow_partial` is the only road to a partial answer, and it is an
/// explicit one: the default fails closed with the typed transport
/// error, opting in yields the surviving shards' merge plus a
/// `degraded` list naming the missing shard — and when every shard is
/// gone there is nothing to degrade *to*, so even the opt-in fails.
#[test]
fn allow_partial_degrades_explicitly_and_default_fails_closed() {
    let (db, originals) = corpus(27, 6);
    let opts = test_options();
    let queries: Vec<&Graph> = originals.iter().collect();
    let dir = tempfile::tempdir().unwrap();
    let sharded = ShardedTaleDatabase::build(
        db.clone(),
        dir.path(),
        &TaleParams::default(),
        2,
        &HashPolicy,
    )
    .unwrap();
    let expected = sharded.query_batch(&queries, &opts).unwrap();

    let t0 = FaultyTransport::new(local_transport(dir.path(), 0));
    let t1 = FaultyTransport::new(local_transport(dir.path(), 1));
    let counters = Arc::new(ServerCounters::new());
    let frontend = Frontend::with_counters(
        vec![
            Arc::clone(&t0) as Arc<dyn ShardTransport>,
            Arc::clone(&t1) as Arc<dyn ShardTransport>,
        ],
        FrontendConfig::default(),
        Arc::clone(&counters),
    )
    .unwrap();

    // Healthy: full merge, nothing degraded, even with the opt-in set.
    let req = wire_batch(&db, &originals, &opts, None, true);
    let resp = frontend.query_batch(&req, Instant::now()).unwrap();
    assert_bit_identical(&expected, &decode(&resp), "healthy with opt-in");
    assert!(resp.degraded.is_empty());

    // Shard 1 exhausted. Default: the whole batch fails, typed.
    t1.set_dead(true);
    let strict = wire_batch(&db, &originals, &opts, None, false);
    match frontend.query_batch(&strict, Instant::now()) {
        Err(ServerError::Shard(ShardError::Transport { shard, .. })) => assert_eq!(shard, 1),
        other => panic!("expected a shard-1 transport error, got {other:?}"),
    }

    // Opt-in: the shard-0 partials come back, shard 1 is named.
    let resp = frontend.query_batch(&req, Instant::now()).unwrap();
    assert_eq!(resp.degraded, vec![1], "the missing shard is named");
    let shard0_only = match t0.call(&Request::QueryBatch(strict.clone()), None) {
        Ok(Response::QueryBatch(p)) => decode(&p),
        other => panic!("shard 0 reference call failed: {other:?}"),
    };
    assert_bit_identical(&shard0_only, &decode(&resp), "degraded answer = shard 0's");
    assert!(counters.snapshot().responses_degraded >= 1);

    // Every shard exhausted: nothing to answer from, opt-in or not.
    t0.set_dead(true);
    match frontend.query_batch(&req, Instant::now()) {
        Err(ServerError::Shard(ShardError::Transport { .. })) => {}
        other => panic!("all-shards-down must fail even with opt-in, got {other:?}"),
    }

    // Recovery is symmetric: revive both, full merge again.
    t0.set_dead(false);
    t1.set_dead(false);
    let resp = frontend.query_batch(&req, Instant::now()).unwrap();
    assert_bit_identical(&expected, &decode(&resp), "after revival");
    assert!(resp.degraded.is_empty());
}

/// A service whose handling takes a fixed, visible amount of time — so
/// the drain test can deterministically catch a request in flight.
struct SlowService {
    counters: Arc<ServerCounters>,
    delay: Duration,
}

impl Service for SlowService {
    fn handle(&self, _req: &Request, _received: Instant) -> Response {
        std::thread::sleep(self.delay);
        Response::QueryBatch(QueryBatchResponse {
            results: Vec::new(),
            stats: WireExecStats::default(),
            degraded: Vec::new(),
        })
    }
    fn counters(&self) -> &Arc<ServerCounters> {
        &self.counters
    }
}

/// Graceful drain never drops an accepted request: a request already
/// being served when the drain begins still gets its full response, and
/// the drain reports clean.
#[test]
fn draining_worker_finishes_accepted_requests() {
    let counters = Arc::new(ServerCounters::new());
    let service = Arc::new(SlowService {
        counters: Arc::clone(&counters),
        delay: Duration::from_millis(300),
    });
    let mut handle = serve(
        service as Arc<dyn Service>,
        "127.0.0.1:0".parse().unwrap(),
        WorkerConfig::default(),
    )
    .unwrap();
    let addr = handle.addr();

    let client = std::thread::spawn(move || {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let req = Request::QueryBatch(QueryBatchRequest {
            queries: Vec::new(),
            options: WireOptions::from_options(&QueryOptions::default()),
            deadline_ms: None,
            allow_partial: false,
        });
        wire::write_request(&mut stream, &req).unwrap();
        wire::read_response(&mut stream)
    });

    // Wait until the request is provably in flight, then drain.
    let seen = Instant::now() + Duration::from_secs(5);
    while counters.requests_serving.load(Ordering::SeqCst) == 0 {
        assert!(Instant::now() < seen, "the request never started serving");
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(
        handle.drain(Duration::from_secs(5)),
        "drain should finish clean once the in-flight request completes"
    );

    match client.join().unwrap() {
        Ok(Some((Response::QueryBatch(_), _))) => {}
        other => panic!("the accepted request was dropped by the drain: {other:?}"),
    }
}
