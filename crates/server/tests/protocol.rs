//! Protocol-layer contract tests: framing survives arbitrary payloads,
//! and every malformed input — wrong magic, version skew, truncation,
//! garbage — is refused with a clean typed error (over a live socket:
//! an explicit error response, then a close), never a hang or a panic.

use proptest::prelude::*;
use std::io::Write;
use std::net::TcpStream;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;
use tale::TaleParams;
use tale_graph::GraphDb;
use tale_server::engine::{EngineConfig, ShardEngine};
use tale_server::wire::{
    self, read_frame, write_frame, HelloRequest, QueryBatchRequest, Request, Response, WireError,
    WireGraph, WireOptions, KIND_REQUEST, MAX_FRAME_LEN, PROTOCOL_VERSION,
};
use tale_server::worker::{serve_shard, ServerHandle, WorkerConfig};
use tale_shard::{HashPolicy, ShardedTaleDatabase};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Frames round-trip any payload byte-for-byte.
    #[test]
    fn frame_roundtrips_arbitrary_payloads(payload in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let mut buf = Vec::new();
        let wrote = write_frame(&mut buf, KIND_REQUEST, &payload).unwrap();
        prop_assert_eq!(wrote, buf.len());
        let (kind, got, read) = read_frame(&mut buf.as_slice()).unwrap().unwrap();
        prop_assert_eq!(kind, KIND_REQUEST);
        prop_assert_eq!(got, payload);
        prop_assert_eq!(read, wrote);
    }

    /// A frame cut anywhere — inside the header or the payload — reads
    /// back as a clean `Truncated`, never a hang or a bogus success.
    #[test]
    fn any_truncation_is_a_clean_error(len in 1usize..600, cut in 0usize..612) {
        let payload = vec![0xA5u8; len];
        let mut buf = Vec::new();
        write_frame(&mut buf, KIND_REQUEST, &payload).unwrap();
        let cut = cut.min(buf.len().saturating_sub(1));
        buf.truncate(cut);
        match read_frame(&mut buf.as_slice()) {
            Ok(None) => prop_assert_eq!(cut, 0, "clean EOF is only legal before any byte"),
            Err(WireError::Truncated) => prop_assert!(cut > 0),
            other => prop_assert!(false, "unexpected outcome {:?}", other.map(|_| "frame")),
        }
    }
}

/// Empty and multi-MiB payloads round-trip (the explicit size corners
/// the proptest distribution rarely reaches).
#[test]
fn frame_roundtrips_zero_and_multi_mib_payloads() {
    for size in [0usize, 1, 1024 * 1024 + 1, 3 * 1024 * 1024] {
        let payload: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
        let mut buf = Vec::new();
        write_frame(&mut buf, KIND_REQUEST, &payload).unwrap();
        let (_, got, _) = read_frame(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(got.len(), size);
        assert_eq!(got, payload, "size {size}");
    }
    // The cap is enforced on write too.
    let too_big = vec![0u8; MAX_FRAME_LEN as usize + 1];
    assert!(matches!(
        write_frame(&mut Vec::new(), KIND_REQUEST, &too_big),
        Err(WireError::Oversize(_))
    ));
}

// ---------------------------------------------------------------------------
// Live-socket refusals against a real worker.
// ---------------------------------------------------------------------------

fn tiny_worker(dir: &Path) -> ServerHandle {
    let mut db = GraphDb::new();
    let a = db.intern_node_label("A");
    let b = db.intern_node_label("B");
    let mut g = tale_graph::Graph::new(tale_graph::Direction::Undirected);
    let n0 = g.add_node(a);
    let n1 = g.add_node(b);
    g.add_edge(n0, n1).unwrap();
    db.insert("g0", g);
    drop(ShardedTaleDatabase::build(db, dir, &TaleParams::default(), 1, &HashPolicy).unwrap());
    let engine = ShardEngine::open(dir, 0, EngineConfig::default()).unwrap();
    serve_shard(
        Arc::new(engine),
        "127.0.0.1:0".parse().unwrap(),
        WorkerConfig::default(),
    )
    .unwrap()
}

fn expect_error_code(stream: &mut TcpStream, want: &str, ctx: &str) {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    match wire::read_response(stream) {
        Ok(Some((Response::Error(e), _))) => {
            assert_eq!(
                e.code, want,
                "{ctx}: unexpected code, message {:?}",
                e.message
            )
        }
        other => panic!("{ctx}: expected an error response, got {other:?}"),
    }
}

/// A version-skewed hello is refused with an explicit error response —
/// the server does not hang, parse the frame, or silently close.
#[test]
fn version_skew_is_refused_with_an_explicit_error() {
    let dir = tempfile::tempdir().unwrap();
    let handle = tiny_worker(dir.path());
    let mut stream = TcpStream::connect(handle.addr()).unwrap();

    // A well-formed hello frame, with the version field bumped.
    let mut buf = Vec::new();
    let req = Request::Hello(HelloRequest {
        protocol: PROTOCOL_VERSION + 1,
    });
    wire::write_request(&mut buf, &req).unwrap();
    buf[5] = (PROTOCOL_VERSION + 1) as u8;
    stream.write_all(&buf).unwrap();
    stream.flush().unwrap();
    expect_error_code(&mut stream, wire::codes::BAD_REQUEST, "frame version skew");

    // A fresh connection with correct framing but a skewed body is also
    // refused (belt and braces: the body check yields a typed response).
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    wire::write_request(&mut stream, &req).unwrap();
    expect_error_code(&mut stream, wire::codes::INTERNAL, "handshake body skew");
}

/// Garbage bytes get an explicit error response and a close.
#[test]
fn garbage_frames_are_refused_cleanly() {
    let dir = tempfile::tempdir().unwrap();
    let handle = tiny_worker(dir.path());

    // Not even a TALE magic.
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    expect_error_code(&mut stream, wire::codes::BAD_REQUEST, "bad magic");

    // Valid header, payload that is not JSON.
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    let mut buf = Vec::new();
    write_frame(&mut buf, KIND_REQUEST, b"\xff\xfe not json").unwrap();
    stream.write_all(&buf).unwrap();
    expect_error_code(&mut stream, wire::codes::BAD_REQUEST, "non-JSON payload");

    // Oversize length announcement: refused before any allocation.
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    let mut header = Vec::new();
    write_frame(&mut header, KIND_REQUEST, b"x").unwrap();
    header[8..12].copy_from_slice(&(MAX_FRAME_LEN + 7).to_be_bytes());
    stream.write_all(&header[..wire::HEADER_LEN]).unwrap();
    expect_error_code(&mut stream, wire::codes::BAD_REQUEST, "oversize header");

    // The server is still healthy after all that abuse.
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    wire::write_request(
        &mut stream,
        &Request::Hello(HelloRequest {
            protocol: PROTOCOL_VERSION,
        }),
    )
    .unwrap();
    match wire::read_response(&mut stream).unwrap() {
        Some((Response::Hello(h), _)) => assert_eq!(h.shard, 0),
        other => panic!("expected hello, got {other:?}"),
    }
}

/// A request whose deadline budget is already exhausted is refused with
/// `deadline_exceeded` — it never reaches the engine.
#[test]
fn exhausted_deadline_is_refused() {
    let dir = tempfile::tempdir().unwrap();
    let handle = tiny_worker(dir.path());
    let mut stream = TcpStream::connect(handle.addr()).unwrap();

    let query = WireGraph {
        directed: false,
        node_labels: vec!["A".into(), "B".into()],
        edges: vec![(0, 1)],
        edge_labels: vec![None],
    };
    let req = Request::QueryBatch(QueryBatchRequest {
        queries: vec![query],
        options: WireOptions::from_options(&tale::QueryOptions::default()),
        deadline_ms: Some(0),
        allow_partial: false,
    });
    wire::write_request(&mut stream, &req).unwrap();
    expect_error_code(
        &mut stream,
        wire::codes::DEADLINE_EXCEEDED,
        "zero deadline budget",
    );
}
