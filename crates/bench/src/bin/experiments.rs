//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! experiments [alg1|probe|table1|table2|table3|fig5|fig6|fig789|ablation|speedup|shard|serve|chaos|plan|cold|mvcc|all] [--threads N]
//! ```
//!
//! Scaling: set `TALE_SCALE` (0.001..1.0, default 0.12) to size the
//! synthetic datasets; 1.0 reproduces the paper's full dataset sizes
//! (hours of compute). `TALE_SEED` changes the generator seed.
//! Output is GitHub-flavored markdown, ready for EXPERIMENTS.md.

use tale_bench::experiments::ablation::{paper_measures, run_ablation};
use tale_bench::experiments::alg1::run_alg1;
use tale_bench::experiments::chaos::run_chaos;
use tale_bench::experiments::cold::run_cold;
use tale_bench::experiments::fig5::run_fig5;
use tale_bench::experiments::fig789::{default_sizes, run_fig789};
use tale_bench::experiments::kegg::run_kegg;
use tale_bench::experiments::mvcc::run_mvcc;
use tale_bench::experiments::pimp::{default_fractions, run_pimp};
use tale_bench::experiments::plan::run_plan;
use tale_bench::experiments::probe::run_probe;
use tale_bench::experiments::saga::run_saga;
use tale_bench::experiments::serve::run_serve;
use tale_bench::experiments::shard::run_shard;
use tale_bench::experiments::speedup::{run_batch_speedup, run_speedup};
use tale_bench::experiments::table1::run_table1;
use tale_bench::experiments::table2::run_table2;
use tale_bench::experiments::table3::run_table3_fig6;
use tale_bench::Scale;

fn seed() -> u64 {
    std::env::var("TALE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20080407) // ICDE 2008
}

fn main() {
    let cmd = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let scale = Scale::from_env(0.12);
    eprintln!(
        "# running '{cmd}' at TALE_SCALE={} (seed {})",
        scale.0,
        seed()
    );
    match cmd.as_str() {
        "alg1" => alg1(),
        "table1" => table1(scale),
        "table2" => table2(scale),
        "table3" | "fig6" => table3_fig6(scale),
        "fig5" => fig5(scale),
        "fig789" | "fig7" | "fig8" | "fig9" => fig789(scale),
        "ablation" => ablation(scale),
        "saga" => saga(scale),
        "kegg" => kegg(scale),
        "pimp" => pimp(scale),
        "speedup" => {
            speedup(scale);
            shard(scale);
            probe(scale);
        }
        "probe" => probe(scale),
        "shard" => shard(scale),
        "serve" => serve_exp(scale),
        "chaos" => chaos_exp(scale),
        "plan" => plan(scale),
        "cold" => cold(scale),
        "mvcc" => mvcc(scale),
        "crash" => crash(),
        "all" => {
            alg1();
            probe(scale);
            table1(scale);
            table2(scale);
            table3_fig6(scale);
            fig5(scale);
            fig789(scale);
            ablation(scale);
            saga(scale);
            kegg(scale);
            pimp(scale);
            speedup(scale);
            shard(scale);
            serve_exp(scale);
            chaos_exp(scale);
            plan(scale);
            cold(scale);
            mvcc(scale);
        }
        other => {
            eprintln!("unknown experiment {other:?}");
            eprintln!("usage: experiments [alg1|probe|table1|table2|table3|fig5|fig6|fig789|ablation|saga|kegg|pimp|speedup|shard|serve|chaos|plan|cold|mvcc|crash|all] [--threads N]");
            std::process::exit(2);
        }
    }
}

/// `--threads N` from argv (default 4): the parallel side of the
/// serial-vs-parallel comparison.
fn threads_arg() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

/// `--json PATH` from argv: where to write the machine-readable speedup
/// report (`None` = don't).
fn json_arg() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn speedup(scale: Scale) {
    let threads = threads_arg();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("\n## E-SPEED — serial vs parallel query path\n");
    println!("same workload shapes as Table 2/3 and Fig. 5; serial = 1 thread,");
    println!(
        "parallel = {threads} threads (`--threads N` to change); results checked bit-identical."
    );
    println!("wall-clock speedup is capped by available cores ({cores} here);");
    println!("expect >=1.5x at 4 threads on a 4-core machine, ~1x on 1 core\n");
    println!(
        "| workload | graphs | queries | cores | serial (s) | parallel (s) | speedup | identical |"
    );
    println!("|---|---|---|---|---|---|---|---|");
    let parallel_rows = run_speedup(seed(), scale, threads, 4);
    for r in &parallel_rows {
        println!(
            "| {} | {} | {} | {} | {:.3} | {:.3} | {:.2}x | {} |",
            r.workload,
            r.graphs,
            r.queries,
            r.cores,
            r.serial_secs,
            r.parallel_secs,
            r.speedup(),
            if r.identical { "yes" } else { "NO" }
        );
    }

    println!("\n## E-BATCH — query_batch vs sequential queries\n");
    println!("Table 2-style workload of repeated query patterns; both passes run");
    println!("at {threads} threads with the result cache off, so the ratio isolates");
    println!("the batch engine's probe sharing and barrier-free fan-out. The warm");
    println!("row re-runs with the cache on: every query hits, zero disk probes.\n");
    let b = run_batch_speedup(seed(), scale, threads, 20);
    println!("| pass | queries | unique | disk probes | wall (s) | identical |");
    println!("|---|---|---|---|---|---|");
    println!(
        "| sequential | {} | {} | {} | {:.3} | — |",
        b.queries, b.queries, b.sequential_probes, b.sequential_secs
    );
    println!(
        "| batch | {} | {} | {} | {:.3} | {} |",
        b.queries,
        b.unique_queries,
        b.batch_probes_issued,
        b.batch_secs,
        if b.identical { "yes" } else { "NO" }
    );
    println!(
        "| warm cache | {} | 0 | {} | {:.3} | {} |",
        b.queries,
        b.warm_probes,
        b.warm_secs,
        if b.identical { "yes" } else { "NO" }
    );
    println!(
        "\nbatch speedup: {:.2}x; cache hits on warm pass: {}/{}",
        b.speedup, b.warm_cache_hits, b.queries
    );

    if let Some(path) = json_arg() {
        #[derive(serde::Serialize)]
        struct SpeedupReport {
            schema_version: u32,
            seed: u64,
            scale: f64,
            threads: usize,
            cores: usize,
            parallel: Vec<tale_bench::experiments::speedup::SpeedupRow>,
            batch: tale_bench::experiments::speedup::BatchSpeedupRow,
        }
        let report = SpeedupReport {
            schema_version: 2,
            seed: seed(),
            scale: scale.0,
            threads,
            cores,
            parallel: parallel_rows,
            batch: b,
        };
        write_json(&path, &report, "speedup report");
    }
}

/// Serializes `report` to `path` atomically (temp file + fsync + rename,
/// so an interrupted run never leaves a torn report), exiting non-zero on
/// failure (both report writers share the BENCH JSON contract checked by
/// CI).
fn write_json<T: serde::Serialize>(path: &str, report: &T, what: &str) {
    match serde_json::to_string_pretty(report) {
        Ok(s) => {
            let bytes = s + "\n";
            if let Err(e) =
                tale_storage::atomic::write_atomic(std::path::Path::new(path), bytes.as_bytes())
            {
                eprintln!("writing {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("# wrote {path}");
        }
        Err(e) => {
            eprintln!("serializing {what}: {e}");
            std::process::exit(1);
        }
    }
}

/// `--shard-json PATH` from argv: where to write `BENCH_shard.json`
/// (`None` = don't).
fn shard_json_arg() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--shard-json")
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn shard(scale: Scale) {
    let threads = threads_arg();
    println!("\n## E-SHARD — partitioned index build + scatter/gather queries\n");
    println!("Table 2-style PIN corpus, hash placement; each shard bulk-loads its");
    println!("own B+-tree concurrently, then the scatter/gather executor answers");
    println!("the same query workload. Results are checked bit-identical to the");
    println!("single-index path at every shard count. Build speedup is capped by");
    println!("available cores; expect >=1.5x at 4 shards on a 4-core machine,");
    println!("~1x on 1 core.\n");
    let r = run_shard(seed(), scale, threads, &[1, 2, 4]);
    println!(
        "db: {} graphs; {} queries; {} cores; single-index build {:.3}s\n",
        r.graphs, r.queries, r.cores, r.single_build_secs
    );
    println!(
        "| shards | build (s) | slowest shard (s) | build skew | build speedup | query (s) | query skew | identical |"
    );
    println!("|---|---|---|---|---|---|---|---|");
    for row in &r.rows {
        println!(
            "| {} | {:.3} | {:.3} | {:.2} | {:.2}x | {:.3} | {:.2} | {} |",
            row.shards,
            row.build_secs,
            row.max_shard_build_secs,
            row.build_skew,
            row.build_speedup,
            row.query_secs,
            row.query_shard_skew,
            if row.identical { "yes" } else { "NO" }
        );
    }
    if let Some(path) = shard_json_arg() {
        write_json(&path, &r, "shard report");
    }
}

/// `--serve-json PATH` from argv: where to write `BENCH_serve.json`
/// (`None` = don't).
fn serve_json_arg() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--serve-json")
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// `--qps F` / `--requests N` from argv: the offered load for E-SERVE.
fn load_args() -> (f64, usize) {
    let args: Vec<String> = std::env::args().collect();
    let qps = args
        .iter()
        .position(|a| a == "--qps")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(25.0);
    let requests = args
        .iter()
        .position(|a| a == "--requests")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);
    (qps, requests)
}

fn serve_exp(scale: Scale) {
    let (qps, requests) = load_args();
    println!("\n## E-SERVE — the networked service under open-loop Poisson load\n");
    println!("real loopback deployment: one tale-server worker per shard plus a");
    println!("scatter/gather frontend, all over the versioned TCP wire protocol.");
    println!("Arrivals are open-loop Poisson (`--qps F`, `--requests N`), so");
    println!("queueing shows up in the latency tail instead of throttling the");
    println!("generator. Served answers are checked bit-identical to the");
    println!("in-process sharded database; sheds are explicit `overloaded`");
    println!("refusals, never silent drops.\n");
    let r = run_serve(seed(), scale, 2, qps, requests);
    println!(
        "db: {} graphs on {} shards; {} distinct queries; {} cores\n",
        r.graphs, r.shards, r.queries, r.cores
    );
    println!("| offered qps | achieved qps | ok | shed | failed | p50 (ms) | p99 (ms) | max (ms) | identical |");
    println!("|---|---|---|---|---|---|---|---|---|");
    println!(
        "| {:.1} | {:.1} | {} | {} | {} | {:.2} | {:.2} | {:.2} | {} |",
        r.target_qps,
        r.achieved_qps,
        r.ok,
        r.shed,
        r.failed,
        r.p50_ms,
        r.p99_ms,
        r.max_ms,
        if r.identical { "yes" } else { "NO" }
    );
    println!(
        "\nfrontend: {} conns accepted, {} requests shed, queue HWM {}, {} B in / {} B out",
        r.frontend.conns_accepted,
        r.frontend.requests_shed,
        r.frontend.queue_depth_hwm,
        r.frontend.bytes_in,
        r.frontend.bytes_out
    );
    for (i, w) in r.workers.iter().enumerate() {
        println!(
            "worker {i}: {} queries, inflight HWM {}, {} B in / {} B out",
            w.requests_query, w.inflight_hwm, w.bytes_in, w.bytes_out
        );
    }
    if let Some(path) = serve_json_arg() {
        write_json(&path, &r, "serve report");
    }
}

/// `--chaos-json PATH` from argv: where to write `BENCH_chaos.json`
/// (`None` = don't).
fn chaos_json_arg() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--chaos-json")
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// `--fault-rate F` / `--requests N` from argv: the injected weather
/// and the load for E-CHAOS.
fn chaos_args() -> (f64, usize) {
    let args: Vec<String> = std::env::args().collect();
    let rate = args
        .iter()
        .position(|a| a == "--fault-rate")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.05);
    let requests = args
        .iter()
        .position(|a| a == "--requests")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(400);
    (rate, requests)
}

fn chaos_exp(scale: Scale) {
    let (rate, requests) = chaos_args();
    println!("\n## E-CHAOS — availability under injected network faults\n");
    println!("same loopback deployment as E-SERVE but with two replica workers per");
    println!(
        "shard, every replica behind a TCP chaos proxy that faults {:.0}% of",
        rate * 100.0
    );
    println!("connections (refuse / black-hole / delay / kill mid-frame / truncate /");
    println!("corrupt; `--fault-rate F`, `--requests N`). Transports pool nothing, so");
    println!("the rate is per call. The replica sets must mask every fault by retry,");
    println!("failover, or hedging: surviving answers are checked bit-identical to");
    println!("the in-process database, failures must be typed errors, and a wrong");
    println!("answer counts as worse than an error.\n");
    let r = run_chaos(seed(), scale, 2, 2, rate, requests);
    println!(
        "db: {} graphs on {} shards x {} replicas; {} distinct queries\n",
        r.graphs, r.shards, r.replicas_per_shard, r.queries
    );
    println!("| fault rate | requests | ok | typed errors | unclassified | wrong | availability | p50 (ms) | p99 (ms) | max (ms) | identical |");
    println!("|---|---|---|---|---|---|---|---|---|---|---|");
    let typed: usize = r.errors.iter().map(|e| e.count).sum();
    println!(
        "| {:.1}% | {} | {} | {} | {} | {} | {:.2}% | {:.2} | {:.2} | {:.2} | {} |",
        r.fault_rate * 100.0,
        r.requests,
        r.ok,
        typed,
        r.unclassified,
        r.wrong_answers,
        r.availability * 100.0,
        r.p50_ms,
        r.p99_ms,
        r.max_ms,
        if r.identical { "yes" } else { "NO" }
    );
    println!(
        "\nweather: {} faults injected over {} proxied connections",
        r.faults_injected, r.proxy_connections
    );
    println!(
        "masking: {} retries, {} hedges fired ({} won), {} failovers, {} replica failures, {} breaker opens",
        r.frontend.retries,
        r.frontend.hedges_fired,
        r.frontend.hedges_won,
        r.frontend.failovers,
        r.frontend.replica_failures,
        r.frontend.breaker_opened
    );
    for e in &r.errors {
        println!("typed `{}`: {}", e.code, e.count);
    }
    if let Some(path) = chaos_json_arg() {
        write_json(&path, &r, "chaos report");
    }
}

/// `--plan-json PATH` from argv: where to write `BENCH_plan.json`
/// (`None` = don't).
fn plan_json_arg() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--plan-json")
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn plan(scale: Scale) {
    let threads = threads_arg();
    println!("\n## E-PLAN — cost-based planning vs the fixed pipeline\n");
    println!("skewed corpus of label domains with private vocabularies, 4 shards");
    println!("under label-clustered placement; the same top-K workload runs twice");
    println!("with the result cache off — fixed pipeline vs cost-based plans");
    println!("(selectivity-ordered probes, readahead budgets, provably-safe shard");
    println!("pruning). Answers are checked bit-identical; only traffic may change.\n");
    let r = run_plan(seed(), scale, threads, 4);
    println!(
        "db: {} graphs in {} domains; {} queries; top-{}; {} shards; {} threads; {} cores\n",
        r.graphs, r.domains, r.queries, r.top_k, r.shards, r.threads, r.cores
    );
    println!(
        "| pass | probes | keys | postings | rows | shards pruned | reordered | wall (s) | identical |"
    );
    println!("|---|---|---|---|---|---|---|---|---|");
    for row in [&r.fixed, &r.cost] {
        println!(
            "| {} | {} | {} | {} | {} | {} | {} | {:.3} | {} |",
            row.mode,
            row.probes_issued,
            row.keys_scanned,
            row.postings_fetched,
            row.rows_examined,
            row.shards_pruned,
            row.probes_reordered,
            row.wall_secs,
            if r.identical { "yes" } else { "NO" }
        );
    }
    println!(
        "\nprobe traffic: {} → {} ({:.1}% saved); {} (query, shard) executions pruned",
        r.fixed.probes_issued,
        r.cost.probes_issued,
        if r.fixed.probes_issued == 0 {
            0.0
        } else {
            100.0 * (r.fixed.probes_issued - r.cost.probes_issued) as f64
                / r.fixed.probes_issued as f64
        },
        r.cost.shards_pruned
    );
    if let Some(path) = plan_json_arg() {
        write_json(&path, &r, "plan report");
    }
}

/// `--cold-json PATH` from argv: where to write `BENCH_cold.json`
/// (`None` = don't).
fn cold_json_arg() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--cold-json")
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// `--read-latency-us N` from argv (default 8000 — a classic HDD seek):
/// the simulated per-read device latency the E-COLD sweep applies to
/// every measured cell.
fn read_latency_arg() -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--read-latency-us")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(8000)
}

fn cold(scale: Scale) {
    let latency_us = read_latency_arg();
    println!("\n## E-COLD — larger-than-RAM read path under shrinking buffer pools\n");
    println!("wide PIN corpus (256 small graphs); each cell reopens the on-disk");
    println!("index cold (empty pools, result cache off) and runs the whole query");
    println!("workload as one batch. Reads carry a simulated {latency_us}µs device");
    println!("latency (`--read-latency-us N`, default a classic HDD seek) so");
    println!("tempfile-backed page-cache hits don't hide the I/O cost being");
    println!("measured. Answers are checked bit-identical to an unbounded-pool");
    println!("serial reference at every pool size — the threaded speedup comes");
    println!("from overlapping I/O waits, so it holds on 1 core.\n");
    let r = run_cold(seed(), scale, latency_us);
    println!(
        "db: {} graphs; {} queries; index {:.2} MB = {} pages; {} cores\n",
        r.graphs,
        r.queries,
        r.index_bytes as f64 / 1e6,
        r.index_pages,
        r.cores
    );
    println!(
        "| pool | frames | threads | layout | cold batch (s) | hits | coalesced | misses | prefetched | issued | used | identical |"
    );
    println!("|---|---|---|---|---|---|---|---|---|---|---|---|");
    for c in &r.rows {
        println!(
            "| {:.0}% | {} | {} | {} | {:.3} | {} | {} | {} | {} | {} | {} | {} |",
            c.pool_frac * 100.0,
            c.pool_pages,
            c.threads,
            if c.sharded { "4 shards" } else { "single" },
            c.query_secs,
            c.pool_hits,
            c.pool_coalesced,
            c.pool_misses,
            c.pool_prefetched,
            c.prefetch_issued,
            c.prefetch_used,
            if c.identical { "yes" } else { "NO" }
        );
    }
    println!(
        "\ncold 4-thread speedup at the 10% pool: {:.2}x (wall-clock ratio of the",
        r.speedup_4t_at_10pct
    );
    println!("1-thread and 4-thread cells; >1 means reads genuinely overlapped)");
    if let Some(path) = cold_json_arg() {
        write_json(&path, &r, "cold report");
    }
}

/// `--mvcc-json PATH` from argv: where to write `BENCH_mvcc.json`
/// (`None` = don't).
fn mvcc_json_arg() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--mvcc-json")
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn mvcc(scale: Scale) {
    let threads = threads_arg();
    println!("\n## E-MVCC — query latency during a background fold\n");
    println!("Table 2-style PIN corpus with a delta overlay of unfolded inserts;");
    println!("one pass measures per-query latency on a quiet system, the next");
    println!("measures it while the index folds the delta into a new on-disk");
    println!("generation in the background. `fold wall` is the stall an");
    println!("exclusive-lock design would impose on every query in its window;");
    println!("with MVCC generations the worst query should pay a small fraction");
    println!("of it. Answers are checked bit-identical throughout (a fold");
    println!("changes representation, never contents).\n");
    let r = run_mvcc(seed(), scale, threads);
    println!(
        "db: {} graphs + {} delta; {} queries/pass; {} threads; {} cores\n",
        r.graphs, r.delta_graphs, r.queries, r.threads, r.cores
    );
    println!("| phase | queries | p50 (ms) | p99 (ms) | max (ms) | identical |");
    println!("|---|---|---|---|---|---|");
    println!(
        "| quiet system | {} | {:.3} | {:.3} | - | yes |",
        r.queries, r.baseline_p50_ms, r.baseline_p99_ms
    );
    println!(
        "| during fold | {} | {:.3} | {:.3} | {:.3} | {} |",
        r.queries_during_fold,
        r.during_p50_ms,
        r.during_p99_ms,
        r.during_max_ms,
        if r.identical { "yes" } else { "NO" }
    );
    println!(
        "\nfold wall: {:.3}s; the worst during-fold query paid {:.1}% of the",
        r.fold_secs,
        r.worst_query_vs_stall * 100.0
    );
    println!("stall an exclusive-lock fold would have imposed on it");
    if let Some(path) = mvcc_json_arg() {
        write_json(&path, &r, "mvcc report");
    }
}

/// E-CRASH: fails every gated I/O operation of every durable mutation in
/// turn and checks recovery lands bit-identically on the pre- or post-op
/// state. Needs the fault-injection shim (`--features failpoints`).
#[cfg(feature = "failpoints")]
fn crash() {
    println!("\n## E-CRASH — crash-safety torture sweep\n");
    println!("every gated I/O operation of every durable mutation is failed in");
    println!("turn; the reopened index must answer queries bit-identically to the");
    println!("pre-mutation or post-mutation state — never anything in between\n");
    println!("| mutation | fault points | rolled back | committed | bit-identical |");
    println!("|---|---|---|---|---|");
    let rows = tale_bench::experiments::crash::run_crash();
    let mut failed = false;
    for r in &rows {
        println!(
            "| {} | {} | {} | {} | {} |",
            r.mutation,
            r.fault_points,
            r.rolled_back,
            r.committed,
            if r.identical { "yes" } else { "NO" }
        );
        failed |= !r.identical;
    }
    if failed {
        eprintln!("\ncrash sweep found a corrupted-but-served state");
        std::process::exit(1);
    }
}

#[cfg(not(feature = "failpoints"))]
fn crash() {
    eprintln!("the crash harness drives the storage fault-injection shim;");
    eprintln!(
        "rebuild with: cargo run -p tale-bench --features failpoints --bin experiments -- crash"
    );
    std::process::exit(2);
}

/// `--probe-json PATH` from argv: where to write `BENCH_probe.json`
/// (`None` = don't).
fn probe_json_arg() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--probe-json")
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn probe(scale: Scale) {
    println!("\n## E-PROBE — SIMD probe kernel + label-pair pre-filter\n");
    println!("kernel grid: Algorithm 1 on random bitmaps, every available kernel");
    println!("vs the naive per-row scan, every timed query first checked identical");
    println!("across all of them. Filter: every node of a skewed domain corpus");
    println!("probes itself back at each rho, once with the label-pair pre-filter");
    println!("on (the default) and once off; skips happen before any blob fetch");
    println!("and may change traffic, never answers.\n");
    let r = run_probe(seed(), scale);
    println!(
        "kernels: {} (active: {}); all identical to oracle: {}\n",
        r.kernels.join(", "),
        r.active_kernel,
        if r.kernels_identical { "yes" } else { "NO" }
    );
    println!("| bitmap rows | kernel | probe (ns) | naive (ns) | speedup |");
    println!("|---|---|---|---|---|");
    for k in &r.kernel_rows {
        println!(
            "| {} | {} | {:.0} | {:.0} | {:.1}x |",
            k.rows, k.kernel, k.ns, k.naive_ns, k.speedup_vs_naive
        );
    }
    match r.simd_vs_scalar {
        Some(s) => println!(
            "\nat 32768 rows: SIMD beats scalar {s:.2}x, bit-sliced beats naive {:.1}x",
            r.bitsliced_vs_naive
        ),
        None => println!(
            "\nno SIMD kernel on this host; bit-sliced beats naive {:.1}x",
            r.bitsliced_vs_naive
        ),
    }
    println!(
        "\nfilter corpus: {} graphs in {} domains; {} signatures x rho {:?}\n",
        r.graphs, r.domains, r.queries, r.rhos
    );
    println!(
        "| pass | keys | postings fetched | postings filtered | rows | wall (s) | identical |"
    );
    println!("|---|---|---|---|---|---|---|");
    for row in [&r.filter_on, &r.filter_off] {
        println!(
            "| filter {} | {} | {} | {} | {} | {:.3} | {} |",
            if row.filter { "on " } else { "off" },
            row.keys_scanned,
            row.postings_fetched,
            row.postings_filtered,
            row.rows_examined,
            row.wall_secs,
            if r.identical { "yes" } else { "NO" }
        );
    }
    println!(
        "\nskip fraction: {:.1}% of surviving-key postings never fetched",
        r.skip_fraction * 100.0
    );
    if let Some(path) = probe_json_arg() {
        write_json(&path, &r, "probe report");
    }
}

fn alg1() {
    println!("\n## E-ALG1 — Algorithm 1 vs naive bitmap probe (§IV-D)\n");
    println!("paper: speedup 2x (16 rows) rising past 12x (32768 rows)\n");
    println!("| bitmap rows | bit-sliced (ns) | naive (ns) | speedup |");
    println!("|---|---|---|---|");
    for r in run_alg1(seed(), 50) {
        println!(
            "| {} | {:.0} | {:.0} | {:.1}x |",
            r.rows, r.bitsliced_ns, r.naive_ns, r.speedup
        );
    }
}

fn table1(scale: Scale) {
    println!("\n## E-T1 — Table I: PIN sizes\n");
    let (rows, _) = run_table1(seed(), scale);
    println!("| species | paper nodes | paper edges | generated nodes | generated edges |");
    println!("|---|---|---|---|---|");
    for r in rows {
        println!(
            "| {} | {} | {} | {} | {} |",
            r.species, r.paper_nodes, r.paper_edges, r.nodes, r.edges
        );
    }
    if scale.0 < 1.0 {
        println!(
            "\n(scaled by {}; run with TALE_SCALE=1.0 for paper sizes)",
            scale.0
        );
    }
}

fn table2(scale: Scale) {
    println!("\n## E-T2 — Table II: effectiveness for comparing PINs\n");
    println!("paper: TALE 6 hits/3.2% in 0.3s vs Graemlin 0 hits in 910s (rat);");
    println!("TALE 42 hits/13.6% in 0.8s vs Graemlin 18 hits/5.0% in 16305.5s (mouse)\n");
    let (_, pins) = run_table1(seed(), scale);
    let (rows, index_secs) = run_table2(&pins, scale);
    println!("index build on species db: {index_secs:.2}s (paper: ~1s for human PIN)\n");
    println!("| pair | method | KEGGs hit | evaluated | coverage | time (s) |");
    println!("|---|---|---|---|---|---|");
    for r in rows {
        println!(
            "| {} | {} | {} | {} | {:.1}% | {:.3} |",
            r.pair,
            r.method,
            r.kegg_hits,
            r.evaluated,
            r.coverage * 100.0,
            r.seconds
        );
    }
}

fn table3_fig6(scale: Scale) {
    let r = run_table3_fig6(seed(), scale);
    println!("\n## E-T3 — Table III: BIND sub-datasets D1–D4\n");
    println!("paper: 1.4/2.9/4.5/5.7 MB indexes built in 13.2/31.1/50.4/62.7s (near-linear)\n");
    println!("| dataset | graphs | avg nodes | avg edges | index size | build time (s) |");
    println!("|---|---|---|---|---|---|");
    for t in &r.table3 {
        println!(
            "| {} | {} | {:.1} | {:.1} | {:.2} MB | {:.2} |",
            t.dataset,
            t.graphs,
            t.avg_nodes,
            t.avg_edges,
            t.index_bytes as f64 / 1e6,
            t.build_secs
        );
    }
    println!("\n## E-F6 — Figure 6: query time on D1–D4\n");
    println!("paper: all queries ≤ ~0.7s, near-linear growth with db size\n");
    println!("| query | nodes | edges | D1 (s) | D2 (s) | D3 (s) | D4 (s) | results on D4 |");
    println!("|---|---|---|---|---|---|---|---|");
    for q in 1..=10 {
        let cells: Vec<_> = r.fig6.iter().filter(|c| c.query == q).collect();
        if cells.is_empty() {
            continue;
        }
        let by_ds = |d: usize| {
            cells
                .iter()
                .find(|c| c.dataset == d)
                .map(|c| format!("{:.3}", c.seconds))
                .unwrap_or_else(|| "-".into())
        };
        let last = cells.iter().find(|c| c.dataset == 3);
        println!(
            "| Q{} | {} | {} | {} | {} | {} | {} | {} |",
            q,
            cells[0].query_nodes,
            cells[0].query_edges,
            by_ds(0),
            by_ds(1),
            by_ds(2),
            by_ds(3),
            last.map(|c| c.results).unwrap_or(0)
        );
    }
}

fn fig5(scale: Scale) {
    println!("\n## E-F5 — Figure 5: precision/recall, TALE vs C-Tree (ASTRAL)\n");
    println!("paper: both precise until recall ≈0.6, plateau ≈0.8; TALE ~2x faster");
    println!("(34.8s vs 61.9s avg per 20 queries)\n");
    let r = run_fig5(seed(), scale, 20);
    println!(
        "db: {} graphs; {} queries; avg query time TALE {:.3}s vs C-Tree {:.3}s\n",
        r.graphs, r.queries, r.tale_secs, r.ctree_secs
    );
    println!("| k | TALE precision | TALE recall | C-Tree precision | C-Tree recall |");
    println!("|---|---|---|---|---|");
    for (t, c) in r.tale_curve.iter().zip(r.ctree_curve.iter()) {
        println!(
            "| {} | {:.3} | {:.3} | {:.3} | {:.3} |",
            t.k, t.precision, t.recall, c.precision, c.recall
        );
    }
}

fn fig789(scale: Scale) {
    println!("\n## E-F7/F8/F9 — Figures 7–9: ASTRAL scalability\n");
    println!("paper: build time and index size grow steadily/linearly; query time scales nicely\n");
    let sizes = default_sizes(scale);
    let rows = run_fig789(seed(), &sizes, 20);
    println!("| graphs | build time (s) [Fig7] | index size (MB) [Fig8] | avg query (s) [Fig9] |");
    println!("|---|---|---|---|");
    for r in rows {
        println!(
            "| {} | {:.2} | {:.2} | {:.3} |",
            r.graphs,
            r.build_secs,
            r.index_bytes as f64 / 1e6,
            r.query_secs
        );
    }
}

fn saga(scale: Scale) {
    println!("\n## E-SAGA — §II: SAGA vs TALE across query sizes\n");
    println!("paper: \"SAGA is very efficient for small graph queries, [but]");
    println!("computationally expensive when applied to large graphs\"\n");
    let rows = run_saga(seed(), scale, &[15, 40, 100, 250, 600]);
    println!("| query nodes | query fragments | SAGA (s) | TALE (s) |");
    println!("|---|---|---|---|");
    for r in rows {
        println!(
            "| {} | {} | {:.3} | {:.3} |",
            r.query_nodes, r.query_fragments, r.saga_secs, r.tale_secs
        );
    }
}

fn kegg(scale: Scale) {
    println!("\n## E-KEGG — §VI-A: the third dataset (KEGG pathways)\n");
    println!("paper: \"results … similar to the other two datasets\" (omitted there)\n");
    let r = run_kegg(seed(), scale, 20);
    println!(
        "db: {} directed pathway graphs; index {:.2} MB built in {:.2}s; avg query {:.3}s\n",
        r.graphs,
        r.index_bytes as f64 / 1e6,
        r.build_secs,
        r.query_secs
    );
    println!("| k | precision | recall |");
    println!("|---|---|---|");
    for p in &r.curve {
        println!("| {} | {:.3} | {:.3} |", p.k, p.precision, p.recall);
    }
}

fn pimp(scale: Scale) {
    println!("\n## E-PIMP — Pimp sensitivity (extended-paper parameter study)\n");
    println!("paper: Pimp fixed at 15% for BIND; choice deferred to extended version\n");
    let (_, pins) = run_table1(seed(), scale);
    let rows = run_pimp(&pins, scale, &default_fractions());
    println!("| Pimp | matched nodes | matched edges | time (s) |");
    println!("|---|---|---|---|");
    for r in rows {
        println!(
            "| {:.0}% | {} | {} | {:.3} |",
            r.p_imp * 100.0,
            r.matched_nodes,
            r.matched_edges,
            r.seconds
        );
    }
}

fn ablation(scale: Scale) {
    println!("\n## E-ABL — §VI-D: TALE vs TALE-Random (mouse vs human)\n");
    println!("paper: 106/61/42/13.6% (degree) vs 85/24/8/5.8% (random)\n");
    let (_, pins) = run_table1(seed(), scale);
    let rows = run_ablation(&pins, scale, &paper_measures());
    println!("| importance | matched nodes | matched edges | KEGGs hit | coverage | time (s) |");
    println!("|---|---|---|---|---|---|");
    for r in rows {
        println!(
            "| {} | {} | {} | {} | {:.1}% | {:.3} |",
            r.measure,
            r.matched_nodes,
            r.matched_edges,
            r.kegg_hits,
            r.coverage * 100.0,
            r.seconds
        );
    }
}
