//! E-CHAOS — availability under injected network faults.
//!
//! Stands up the same loopback deployment as E-SERVE but with **two
//! replica workers per shard**, every replica reached through its own
//! [`ChaosProxy`] drawing a random fault (refuse, black-hole, delay,
//! kill-after-bytes, truncate mid-frame, corrupt) on a seeded fraction
//! of connections. The remote transports run with an empty connection
//! pool, so every shard call dials a fresh connection and therefore
//! draws from the fault plan at the configured rate — the rate is
//! effectively per request, not per long-lived socket.
//!
//! The fault-tolerance layer under test is the [`ReplicaSet`]: bounded
//! retries with decorrelated-jitter backoff, failover to the sibling
//! replica, hedged requests on the slow tail (black holes and delays),
//! and per-replica circuit breakers. The report is judged on three
//! axes: **availability** (fraction of requests answered with results),
//! **integrity** (every surviving answer bit-identical to the
//! in-process sharded database — a wrong answer is worse than an
//! error), and **classification** (every failure a typed error code —
//! anything else is a bug, not weather).

use crate::Scale;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tale::{QueryMatch, QueryOptions, TaleParams};
use tale_datasets::pin::PinCorpus;
use tale_graph::Graph;
use tale_server::chaos::ChaosProxy;
use tale_server::counters::ServerStatsSnapshot;
use tale_server::engine::{EngineConfig, ShardEngine};
use tale_server::transport::{RemoteConfig, RemoteTransport, ShardTransport};
use tale_server::wire::{
    self, QueryBatchRequest, Request, Response, StatsRequest, WireGraph, WireMatch, WireOptions,
};
use tale_server::worker::{serve, serve_shard, ServerHandle, Service, WorkerConfig};
use tale_server::{Frontend, FrontendConfig, ReplicaConfig, ReplicaSet};
use tale_shard::{HashPolicy, ShardedTaleDatabase};

/// Schema version stamped into `BENCH_chaos.json`.
pub const CHAOS_REPORT_SCHEMA_VERSION: u32 = 1;

/// Count of one typed error code observed during the load.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ErrorCount {
    /// The wire error code (`overloaded`, `deadline_exceeded`, ...).
    pub code: String,
    /// Requests that ended with it.
    pub count: usize,
}

/// The full E-CHAOS report (serialized to `BENCH_chaos.json`).
#[derive(Debug, Clone, serde::Serialize)]
pub struct ChaosReport {
    /// Report format version ([`CHAOS_REPORT_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Generator seed (also seeds every proxy's fault plan).
    pub seed: u64,
    /// Dataset scale factor.
    pub scale: f64,
    /// Graphs in the corpus.
    pub graphs: usize,
    /// Shards in the deployment.
    pub shards: usize,
    /// Replica workers per shard.
    pub replicas_per_shard: usize,
    /// Distinct queries in the workload (requests cycle through them).
    pub queries: usize,
    /// Fraction of connections each proxy faults.
    pub fault_rate: f64,
    /// Requests dispatched.
    pub requests: usize,
    /// Requests answered with results.
    pub ok: usize,
    /// Requests refused with a typed error code, by code.
    pub errors: Vec<ErrorCount>,
    /// Requests that failed any other way (client-side transport error,
    /// unexpected response shape). Nonzero = bug, not weather.
    pub unclassified: usize,
    /// Surviving answers that were NOT bit-identical to the in-process
    /// reference, or carried a degraded marker the client never opted
    /// into. Nonzero = bug.
    pub wrong_answers: usize,
    /// `ok / requests`.
    pub availability: f64,
    /// Median latency over answered requests, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Worst latency, milliseconds.
    pub max_ms: f64,
    /// Whether the clean-network identity anchor AND every surviving
    /// chaos answer were bit-identical to the in-process database.
    pub identical: bool,
    /// Connections the proxies accepted, total.
    pub proxy_connections: u64,
    /// Faults the proxies actually injected, total.
    pub faults_injected: u64,
    /// Frontend counters (retries / hedges / failovers / breaker
    /// transitions land here via the attached replica sets).
    pub frontend: ServerStatsSnapshot,
}

/// One request's fate.
enum Outcome {
    /// Answered; latency + whether the answer was bit-identical and
    /// carried no degraded marker.
    Answered(Duration, bool),
    /// Refused with a typed error code.
    Typed(String),
    /// Anything else — a client-side transport failure or a response
    /// shape that is neither results nor a typed error.
    Unclassified,
}

/// Sends one single-query batch over a fresh client connection to the
/// frontend (the client↔frontend link is clean loopback; all chaos sits
/// between the frontend and the workers).
fn chaos_request(addr: SocketAddr, req: &Request, reference: &[QueryMatch]) -> Outcome {
    let t0 = Instant::now();
    let run = || -> Result<Response, wire::WireError> {
        let mut stream = TcpStream::connect(addr).map_err(wire::WireError::from)?;
        stream.set_nodelay(true).ok();
        wire::write_request(&mut stream, req)?;
        match wire::read_response(&mut stream)? {
            Some((resp, _)) => Ok(resp),
            None => Err(wire::WireError::Truncated),
        }
    };
    match run() {
        Ok(Response::QueryBatch(resp)) => {
            let answer: Vec<Vec<QueryMatch>> = resp
                .results
                .iter()
                .map(|wm| wm.matches.iter().map(WireMatch::to_match).collect())
                .collect();
            let clean = resp.degraded.is_empty()
                && super::speedup::identical(std::slice::from_ref(&reference.to_vec()), &answer);
            Outcome::Answered(t0.elapsed(), clean)
        }
        Ok(Response::Error(e)) => Outcome::Typed(e.code),
        _ => Outcome::Unclassified,
    }
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return f64::NAN;
    }
    let idx = ((p / 100.0) * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// Fetches a server's counter snapshot over the wire.
fn stats_of(addr: SocketAddr) -> ServerStatsSnapshot {
    let mut stream = TcpStream::connect(addr).expect("stats connect");
    wire::write_request(
        &mut stream,
        &Request::Stats(StatsRequest { reserved: false }),
    )
    .expect("stats request");
    match wire::read_response(&mut stream).expect("stats response") {
        Some((Response::Stats(s), _)) => s.server,
        other => panic!("expected stats, got {other:?}"),
    }
}

/// Runs E-CHAOS: builds a sharded database, serves every shard from
/// `replicas` workers behind per-replica chaos proxies, anchors the
/// served path bit-identically on a clean network, then arms every
/// proxy's random fault plan at `fault_rate` and drives `requests`
/// single-query requests, classifying every one.
pub fn run_chaos(
    seed: u64,
    scale: Scale,
    shards: usize,
    replicas: usize,
    fault_rate: f64,
    requests: usize,
) -> ChaosReport {
    let corpus = PinCorpus::generate(seed, 16, scale.0);
    let graphs = corpus.db.iter().count();
    let query_ids = corpus.queries(None);
    let queries: Vec<&Graph> = query_ids.iter().map(|&g| corpus.db.graph(g)).collect();
    let params = TaleParams::bind();
    let opts = QueryOptions::bind().with_cache(false);

    let dir = tempfile::tempdir().expect("tempdir");
    let sharded =
        ShardedTaleDatabase::build(corpus.db.clone(), dir.path(), &params, shards, &HashPolicy)
            .expect("sharded build");
    let reference = sharded.query_batch(&queries, &opts).expect("local query");

    // Deployment: `replicas` workers per shard (all serving the same
    // on-disk shard), each behind its own chaos proxy. The transports
    // keep no idle connections (`pool_size: 0`), so every call dials
    // fresh and the per-connection fault rate is a per-call fault rate.
    let mut worker_handles: Vec<ServerHandle> = Vec::new();
    let mut proxies: Vec<ChaosProxy> = Vec::new();
    let mut sets: Vec<Arc<dyn ShardTransport>> = Vec::new();
    let remote_cfg = RemoteConfig {
        connect_attempts: 1,
        backoff: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(50),
        pool_size: 0,
        retries: 0, // the ReplicaSet owns retry policy
        io_timeout: Some(Duration::from_millis(250)),
    };
    let replica_cfg = ReplicaConfig {
        failure_threshold: 3,
        open_cooldown: Duration::from_millis(200),
        probe_interval: Duration::from_millis(100),
        retries: 3,
        backoff: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(50),
        // Fixed hedge trigger well above a healthy call, well below the
        // 250ms I/O timeout a black hole costs: the hedge races the
        // sibling replica instead of waiting out the timeout.
        hedge_after: Some(Duration::from_millis(60)),
        ..ReplicaConfig::default()
    };
    for s in 0..shards {
        let mut members: Vec<Arc<dyn ShardTransport>> = Vec::new();
        for _ in 0..replicas {
            let engine = ShardEngine::open(dir.path(), s as u32, EngineConfig::default())
                .expect("open shard engine");
            let handle = serve_shard(
                Arc::new(engine),
                "127.0.0.1:0".parse().expect("literal addr"),
                WorkerConfig::default(),
            )
            .expect("serve shard");
            let proxy = ChaosProxy::new(handle.addr()).expect("chaos proxy");
            members
                .push(RemoteTransport::new(proxy.addr(), s as u32, remote_cfg)
                    as Arc<dyn ShardTransport>);
            worker_handles.push(handle);
            proxies.push(proxy);
        }
        sets.push(ReplicaSet::new(s as u32, members, replica_cfg) as Arc<dyn ShardTransport>);
    }

    let frontend =
        Arc::new(Frontend::new(sets, FrontendConfig::default()).expect("frontend handshake"));
    let front = serve(
        Arc::clone(&frontend) as Arc<dyn Service>,
        "127.0.0.1:0".parse().expect("literal addr"),
        WorkerConfig::default(),
    )
    .expect("serve frontend");
    let front_addr = front.addr();

    // Correctness anchor on the still-clean network: the whole workload
    // through the served path must match the in-process answers.
    let wire_opts = WireOptions::from_options(&opts);
    let anchor_identical = {
        let req = Request::QueryBatch(QueryBatchRequest {
            queries: queries
                .iter()
                .map(|g| WireGraph::from_graph(&corpus.db, g))
                .collect(),
            options: wire_opts.clone(),
            deadline_ms: None,
            allow_partial: false,
        });
        let mut stream = TcpStream::connect(front_addr).expect("anchor connect");
        wire::write_request(&mut stream, &req).expect("anchor request");
        match wire::read_response(&mut stream).expect("anchor response") {
            Some((Response::QueryBatch(resp), _)) => {
                let answer: Vec<Vec<QueryMatch>> = resp
                    .results
                    .iter()
                    .map(|wm| wm.matches.iter().map(WireMatch::to_match).collect())
                    .collect();
                super::speedup::identical(&reference, &answer)
            }
            other => panic!("expected a batch response, got {other:?}"),
        }
    };

    // Arm the weather: every proxy faults `fault_rate` of its
    // connections, each on its own reproducible schedule.
    for (i, p) in proxies.iter().enumerate() {
        p.set_random(
            fault_rate,
            seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
    }

    // The load: single-query requests cycling through the workload,
    // fail-closed (no allow_partial) with a generous deadline — the
    // replica sets must mask faults by retry/failover/hedge, not by
    // degrading the answer.
    let single_requests: Vec<Request> = queries
        .iter()
        .map(|g| {
            Request::QueryBatch(QueryBatchRequest {
                queries: vec![WireGraph::from_graph(&corpus.db, g)],
                options: wire_opts.clone(),
                deadline_ms: Some(8_000),
                allow_partial: false,
            })
        })
        .collect();
    let mut latencies_ms: Vec<f64> = Vec::with_capacity(requests);
    let mut errors: std::collections::BTreeMap<String, usize> = Default::default();
    let (mut unclassified, mut wrong_answers) = (0usize, 0usize);
    for i in 0..requests {
        let qi = i % single_requests.len();
        match chaos_request(front_addr, &single_requests[qi], &reference[qi]) {
            Outcome::Answered(lat, clean) => {
                latencies_ms.push(lat.as_secs_f64() * 1e3);
                if !clean {
                    wrong_answers += 1;
                }
            }
            Outcome::Typed(code) => *errors.entry(code).or_insert(0) += 1,
            Outcome::Unclassified => unclassified += 1,
        }
    }
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));

    let frontend_stats = stats_of(front_addr);
    let ok = latencies_ms.len();
    ChaosReport {
        schema_version: CHAOS_REPORT_SCHEMA_VERSION,
        seed,
        scale: scale.0,
        graphs,
        shards,
        replicas_per_shard: replicas,
        queries: queries.len(),
        fault_rate,
        requests,
        ok,
        errors: errors
            .into_iter()
            .map(|(code, count)| ErrorCount { code, count })
            .collect(),
        unclassified,
        wrong_answers,
        availability: if requests == 0 {
            1.0
        } else {
            ok as f64 / requests as f64
        },
        p50_ms: percentile(&latencies_ms, 50.0),
        p99_ms: percentile(&latencies_ms, 99.0),
        max_ms: latencies_ms.last().copied().unwrap_or(f64::NAN),
        identical: anchor_identical && wrong_answers == 0,
        proxy_connections: proxies.iter().map(|p| p.connections()).sum(),
        faults_injected: proxies.iter().map(|p| p.faults_injected()).sum(),
        frontend: frontend_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small storm at a deliberately brutal 25% fault rate: faults
    /// are actually injected, yet every surviving answer is
    /// bit-identical, every failure is typed, and the masking counters
    /// (retries at minimum) are nonzero.
    #[test]
    fn chaos_report_is_identical_and_classified() {
        let r = run_chaos(11, Scale(0.02), 2, 2, 0.25, 24);
        assert_eq!(r.schema_version, CHAOS_REPORT_SCHEMA_VERSION);
        assert!(r.identical, "a surviving answer diverged");
        assert_eq!(r.wrong_answers, 0);
        assert_eq!(r.unclassified, 0, "an unclassified failure escaped");
        let typed: usize = r.errors.iter().map(|e| e.count).sum();
        assert_eq!(r.ok + typed, 24);
        assert!(
            r.faults_injected >= 1,
            "the storm never struck ({} connections)",
            r.proxy_connections
        );
        assert!(
            r.frontend.retries >= 1,
            "faults were injected but nothing was retried"
        );
        assert!(r.availability > 0.5, "availability {}", r.availability);
    }
}
