//! E-F5 — Figure 5: precision/recall ROC of TALE vs C-Tree on the
//! ASTRAL family-retrieval task, plus mean query times.
//!
//! Paper setup: 1300 families × 10 domains, 20 queries, both methods
//! ranked under the C-Tree similarity model. Reported shape: precision
//! stays high until recall ≈ 0.6 for both, drops steeply after, recall
//! plateaus ≈ 0.8; the two methods are comparable in effectiveness but
//! TALE is ~2× faster (34.8 s vs 61.9 s for the 20 queries) despite
//! being disk-based.

use crate::{timed, Scale};
use std::sync::Arc;
use tale::{CTreeStyle, QueryOptions, TaleDatabase, TaleParams};
use tale_baselines::ctree::{CTree, CTreeConfig};
use tale_datasets::contact::{ContactDataset, ContactSpec};
use tale_datasets::metrics::{precision_recall_curve, PrPoint};

/// The Fig. 5 report: one ROC curve + total time per method.
#[derive(Debug, Clone)]
pub struct Fig5Report {
    /// Result-list sweep depth.
    pub max_k: usize,
    /// TALE's mean precision/recall curve.
    pub tale_curve: Vec<PrPoint>,
    /// C-Tree's curve.
    pub ctree_curve: Vec<PrPoint>,
    /// Mean TALE query seconds.
    pub tale_secs: f64,
    /// Mean C-Tree query seconds.
    pub ctree_secs: f64,
    /// Queries evaluated.
    pub queries: usize,
    /// Graphs in the database.
    pub graphs: usize,
}

/// Runs Fig. 5 at the given scale (1.0 = 1300 families; the default
/// experiments binary uses a smaller fraction).
pub fn run_fig5(seed: u64, scale: Scale, n_queries: usize) -> Fig5Report {
    let spec = ContactSpec::default().scaled(scale.0);
    let ds = ContactDataset::generate(seed, &spec);
    let relevant_per_family = spec.domains_per_family - 1;
    let queries = ds.pick_queries(seed ^ 0x5a, n_queries);
    let max_k = spec.domains_per_family * 2;

    // --- TALE ---
    let tale_db = TaleDatabase::build_in_temp(ds.db.clone(), &TaleParams::astral()).expect("index");
    let opts = QueryOptions::astral()
        .with_top_k(max_k)
        .with_similarity(Arc::new(CTreeStyle));
    let mut tale_flags: Vec<Vec<bool>> = Vec::new();
    let mut tale_total = 0.0;
    for &q in &queries {
        let qg = ds.db.graph(q);
        let fam = ds.family(q);
        let (res, secs) = timed(|| tale_db.query(qg, &opts).expect("query"));
        tale_total += secs;
        tale_flags.push(
            res.iter()
                .filter(|r| r.graph != q) // self-match excluded from retrieval eval
                .map(|r| ds.family(r.graph) == fam)
                .collect(),
        );
    }

    // --- C-Tree ---
    let graphs: Vec<tale_graph::Graph> = ds.db.iter().map(|(_, _, g)| g.clone()).collect();
    let ctree = CTree::build(CTreeConfig::default(), graphs);
    let mut ctree_flags: Vec<Vec<bool>> = Vec::new();
    let mut ctree_total = 0.0;
    for &q in &queries {
        let qg = ds.db.graph(q);
        let fam = ds.family(q);
        let (res, secs) = timed(|| ctree.knn(qg, max_k + 1));
        ctree_total += secs;
        ctree_flags.push(
            res.iter()
                .filter(|(idx, _)| *idx != q.idx())
                .map(|(idx, _)| ds.family_of[*idx] == fam)
                .collect(),
        );
    }

    let totals: Vec<usize> = vec![relevant_per_family; queries.len()];
    Fig5Report {
        max_k,
        tale_curve: precision_recall_curve(&tale_flags, &totals, max_k),
        ctree_curve: precision_recall_curve(&ctree_flags, &totals, max_k),
        tale_secs: tale_total / queries.len() as f64,
        ctree_secs: ctree_total / queries.len() as f64,
        queries: queries.len(),
        graphs: ds.db.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tale_retrieves_families_with_high_early_precision() {
        let r = run_fig5(5, Scale(0.02), 6); // 26 families × 10
        assert_eq!(r.queries, 6);
        assert_eq!(r.graphs, 260);
        // early precision high (the paper: high until recall ~0.6)
        let p3 = r.tale_curve[2].precision;
        assert!(p3 > 0.6, "TALE precision@3 = {p3:.2}");
        // recall grows with k
        assert!(r.tale_curve[r.max_k - 1].recall >= r.tale_curve[0].recall);
        // C-Tree curve exists and is comparable in shape
        let c3 = r.ctree_curve[2].precision;
        assert!(c3 > 0.4, "C-Tree precision@3 = {c3:.2}");
    }
}
