//! E-T2 — Table II: effectiveness for comparing PINs.
//!
//! Paper: rat and mouse PINs queried against the human PIN; TALE vs
//! Graemlin on #KEGGs hit, average KEGG coverage, and running time.
//! Reported shape: TALE finds more hits with better coverage and is
//! orders of magnitude faster (0.3 s vs 910 s; 0.8 s vs 16 305 s), and
//! "TALE only takes about 1 second to build the index on the human PIN".
//!
//! Here the Graemlin role is played by the index-free seed-and-extend
//! aligner (see `tale-baselines::aligner` docs and DESIGN.md §4); the
//! pathway metrics come from the planted conserved modules.

use crate::{timed, Scale};
use tale::{QueryOptions, TaleDatabase, TaleParams};
use tale_baselines::aligner::SeedExtendAligner;
use tale_datasets::metrics::kegg_metrics;
use tale_datasets::pin::SpeciesPins;
use tale_graph::NodeId;

/// One method × species-pair row.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// "TALE" or "seed-extend (Graemlin-like)".
    pub method: &'static str,
    /// e.g. "rat vs. human".
    pub pair: String,
    /// Pathways hit (≥3 aligned counterparts).
    pub kegg_hits: usize,
    /// Pathways evaluated.
    pub evaluated: usize,
    /// Average pathway coverage.
    pub coverage: f64,
    /// Query/alignment wall time (seconds), excluding index build.
    pub seconds: f64,
}

/// Runs Table II. Also returns the human-PIN index build time, which the
/// paper quotes alongside ("about 1 second").
pub fn run_table2(pins: &SpeciesPins, scale: Scale) -> (Vec<Table2Row>, f64) {
    let _ = scale;
    // The paper indexes the human PIN and queries the other species
    // against it ("TALE only takes about 1 second to build the index on
    // the human PIN") — so the database holds human alone, sharing the
    // full vocabulary and ortholog-group map.
    let human_only = single_species_db(&pins.db, pins.species["human"]);
    let (tale_db, index_secs) = timed(|| {
        TaleDatabase::build_in_temp(human_only, &TaleParams::bind()).expect("index build")
    });
    let human_gid_in_index = tale_graph::GraphId(0);

    let human_gid = pins.species["human"];
    let mut rows = Vec::new();
    for species in ["rat", "mouse"] {
        let gid = pins.species[species];
        let query = pins.db.graph(gid);
        let human = pins.db.graph(human_gid);
        let pair = format!("{species} vs. human");

        // --- TALE ---
        let opts = QueryOptions::bind();
        let (res, tale_secs) = timed(|| tale_db.query(query, &opts).expect("query"));
        let tale_pairs: Vec<(NodeId, NodeId)> = res
            .iter()
            .find(|r| r.graph == human_gid_in_index)
            .map(|r| r.m.pairs.iter().map(|p| (p.query, p.target)).collect())
            .unwrap_or_default();
        let k = kegg_metrics(&pins.pathways, species, "human", &tale_pairs);
        rows.push(Table2Row {
            method: "TALE",
            pair: pair.clone(),
            kegg_hits: k.hits,
            evaluated: k.evaluated,
            coverage: k.avg_coverage,
            seconds: tale_secs,
        });

        // --- Graemlin-like seed-and-extend ---
        let sp_groups = &pins.group_of_node[species];
        let hu_groups = &pins.group_of_node["human"];
        let g1 = |n: NodeId| sp_groups[n.idx()];
        let g2 = |n: NodeId| hu_groups[n.idx()];
        let aligner = SeedExtendAligner::default();
        let (al, align_secs) = timed(|| aligner.align(query, human, &g1, &g2));
        let k = kegg_metrics(&pins.pathways, species, "human", &al.pairs);
        rows.push(Table2Row {
            method: "seed-extend (Graemlin-like)",
            pair,
            kegg_hits: k.hits,
            evaluated: k.evaluated,
            coverage: k.avg_coverage,
            seconds: align_secs,
        });
    }
    (rows, index_secs)
}

/// Copies one graph into a fresh db that shares the source's vocabulary
/// and ortholog-group map, so queries authored against the full db keep
/// their label semantics.
pub(crate) fn single_species_db(
    db: &tale_graph::GraphDb,
    keep: tale_graph::GraphId,
) -> tale_graph::GraphDb {
    let mut out = tale_graph::GraphDb::new();
    for (_, name) in db.node_vocab().iter() {
        out.intern_node_label(name);
    }
    for (_, name) in db.edge_vocab().iter() {
        out.intern_edge_label(name);
    }
    out.insert(db.name(keep).to_owned(), db.graph(keep).clone());
    if let Some(groups) = db.group_map() {
        out.set_group(groups.to_vec()).expect("same vocabulary");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::table1::run_table1;

    #[test]
    fn tale_finds_conserved_pathways_and_is_fast() {
        let (_, pins) = run_table1(42, Scale(0.12));
        let (rows, index_secs) = run_table2(&pins, Scale(0.12));
        assert_eq!(rows.len(), 4);
        assert!(index_secs < 30.0);
        let tale_mouse = rows
            .iter()
            .find(|r| r.method == "TALE" && r.pair.starts_with("mouse"))
            .unwrap();
        let graemlin_mouse = rows
            .iter()
            .find(|r| r.method != "TALE" && r.pair.starts_with("mouse"))
            .unwrap();
        // shape: TALE matches the baseline's effectiveness (within 10% on
        // module recovery — the paper's mouse row has TALE clearly ahead;
        // on synthetic data the two land close) while being much faster
        assert!(
            tale_mouse.kegg_hits * 10 >= graemlin_mouse.kegg_hits * 9,
            "TALE hits {} far below baseline {}",
            tale_mouse.kegg_hits,
            graemlin_mouse.kegg_hits
        );
        assert!(tale_mouse.kegg_hits > 0, "TALE found no conserved pathways");
        assert!(
            tale_mouse.seconds < graemlin_mouse.seconds,
            "TALE {}s vs baseline {}s",
            tale_mouse.seconds,
            graemlin_mouse.seconds
        );
    }
}
