//! E-PIMP — the `Pimp` sensitivity sweep. The paper fixes `Pimp = 15%`
//! (BIND) / `25%` (ASTRAL) and defers "how to choose the Pimp value based
//! on graph properties of specific applications" to its extended version.
//! This sweep regenerates the underlying trade-off: more anchors buy
//! match quality up to a saturation point, past which they only cost
//! probe and assignment time.

use crate::{timed, Scale};
use tale::{QueryOptions, TaleDatabase, TaleParams};
use tale_datasets::pin::SpeciesPins;
use tale_graph::GraphId;

/// One `Pimp` setting's outcome on the mouse→human comparison.
#[derive(Debug, Clone)]
pub struct PimpRow {
    /// Fraction of query nodes anchored.
    pub p_imp: f64,
    /// Matched nodes in the human PIN.
    pub matched_nodes: usize,
    /// Preserved query edges.
    pub matched_edges: usize,
    /// Query seconds.
    pub seconds: f64,
}

/// Sweeps `Pimp` on the Table II mouse-vs-human setup.
pub fn run_pimp(pins: &SpeciesPins, scale: Scale, fractions: &[f64]) -> Vec<PimpRow> {
    let _ = scale;
    let human_only = crate::experiments::table2::single_species_db(&pins.db, pins.species["human"]);
    let tale_db =
        TaleDatabase::build_in_temp(human_only, &TaleParams::bind()).expect("index build");
    let mouse = pins.db.graph(pins.species["mouse"]);
    fractions
        .iter()
        .map(|&p_imp| {
            let opts = QueryOptions {
                p_imp,
                ..QueryOptions::bind()
            };
            let (res, seconds) = timed(|| tale_db.query(mouse, &opts).expect("query"));
            let hit = res.iter().find(|r| r.graph == GraphId(0));
            PimpRow {
                p_imp,
                matched_nodes: hit.map(|r| r.matched_nodes).unwrap_or(0),
                matched_edges: hit.map(|r| r.matched_edges).unwrap_or(0),
                seconds,
            }
        })
        .collect()
}

/// The sweep the harness prints.
pub fn default_fractions() -> Vec<f64> {
    vec![0.02, 0.05, 0.15, 0.30, 0.60, 1.0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::table1::run_table1;

    #[test]
    fn quality_saturates_with_anchor_fraction() {
        let (_, pins) = run_table1(46, Scale(0.12));
        let rows = run_pimp(&pins, Scale(0.12), &[0.02, 0.15, 1.0]);
        assert_eq!(rows.len(), 3);
        // more anchors never hurt structural quality much: the 15% point
        // should capture most of what 100% captures (saturation)…
        let e15 = rows[1].matched_edges as f64;
        let e100 = rows[2].matched_edges as f64;
        assert!(
            e15 >= e100 * 0.7,
            "15% anchors far below saturation: {e15} vs {e100}"
        );
        // …and 2% should be visibly below the saturated level or at least
        // not above it (tiny anchor sets can miss whole regions)
        assert!(rows[0].matched_edges <= rows[2].matched_edges + 5);
    }
}
