//! E-SERVE — the networked service under open-loop Poisson load.
//!
//! Stands up a real deployment on loopback — one `tale-server` shard
//! worker per shard, a scatter/gather frontend over remote transports,
//! all talking the versioned wire protocol over TCP — and drives it with
//! an **open-loop** load generator: request arrivals follow a Poisson
//! process at the target rate, each arrival gets its own client thread
//! and connection, and arrivals never wait for completions (so queueing
//! delay shows up in the latency tail instead of being hidden by a
//! closed loop's self-throttling).
//!
//! The report records the service-level numbers a deployment would be
//! judged on — p50/p99/max latency, achieved vs offered QPS, how many
//! requests were explicitly shed — plus the correctness anchor: the full
//! query workload run once through the served path must be bit-identical
//! to the in-process [`ShardedTaleDatabase`] answers. The server-side
//! counter blocks (frontend and every worker) are fetched over the
//! `stats` endpoint itself, so the observability path is exercised too.

use crate::Scale;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tale::{QueryMatch, QueryOptions, TaleParams};
use tale_datasets::pin::PinCorpus;
use tale_graph::{Graph, GraphDb};
use tale_server::counters::ServerStatsSnapshot;
use tale_server::engine::{EngineConfig, ShardEngine};
use tale_server::transport::{RemoteConfig, RemoteTransport, ShardTransport};
use tale_server::wire::{
    self, QueryBatchRequest, Request, Response, StatsRequest, WireGraph, WireMatch, WireOptions,
};
use tale_server::worker::{serve, serve_shard, ServerHandle, Service, WorkerConfig};
use tale_server::{Frontend, FrontendConfig};
use tale_shard::{HashPolicy, ShardedTaleDatabase};

/// Schema version stamped into `BENCH_serve.json`.
pub const SERVE_REPORT_SCHEMA_VERSION: u32 = 1;

/// The full E-SERVE report (serialized to `BENCH_serve.json`).
#[derive(Debug, Clone, serde::Serialize)]
pub struct ServeReport {
    /// Report format version ([`SERVE_REPORT_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Generator seed.
    pub seed: u64,
    /// Dataset scale factor.
    pub scale: f64,
    /// Cores the OS reports as available.
    pub cores: usize,
    /// Graphs in the corpus.
    pub graphs: usize,
    /// Shard workers in the deployment.
    pub shards: usize,
    /// Distinct queries in the workload (arrivals cycle through them).
    pub queries: usize,
    /// Offered load, requests per second.
    pub target_qps: f64,
    /// Requests the generator dispatched.
    pub requests: usize,
    /// First arrival to last completion, seconds.
    pub duration_secs: f64,
    /// Completed requests / duration.
    pub achieved_qps: f64,
    /// Requests answered with results.
    pub ok: usize,
    /// Requests explicitly shed (`overloaded` responses — admission gate
    /// or connection budget).
    pub shed: usize,
    /// Requests that failed any other way (transport errors, unexpected
    /// responses). Anything nonzero here is a bug, not load.
    pub failed: usize,
    /// Median latency over served requests, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Worst latency, milliseconds.
    pub max_ms: f64,
    /// Whether the served answers for the full workload were
    /// bit-identical to the in-process sharded database.
    pub identical: bool,
    /// Frontend counters, fetched over the `stats` endpoint.
    pub frontend: ServerStatsSnapshot,
    /// Per-worker counters, in shard order, fetched over the `stats`
    /// endpoint.
    pub workers: Vec<ServerStatsSnapshot>,
}

/// One client request over its own connection: connect, send a
/// single-query batch, read the answer. Returns `Ok(latency)` on
/// results, `Err(true)` on an explicit shed, `Err(false)` on anything
/// else.
fn one_request(addr: SocketAddr, req: &Request) -> std::result::Result<Duration, bool> {
    let t0 = Instant::now();
    let run = || -> std::result::Result<Response, wire::WireError> {
        let mut stream = TcpStream::connect(addr).map_err(wire::WireError::from)?;
        stream.set_nodelay(true).ok();
        wire::write_request(&mut stream, req)?;
        match wire::read_response(&mut stream)? {
            Some((resp, _)) => Ok(resp),
            None => Err(wire::WireError::Truncated),
        }
    };
    match run() {
        Ok(Response::QueryBatch(_)) => Ok(t0.elapsed()),
        Ok(Response::Error(e)) if e.code == wire::codes::OVERLOADED => Err(true),
        _ => Err(false),
    }
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return f64::NAN;
    }
    let idx = ((p / 100.0) * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// Fetches a server's counter snapshot over the wire.
fn stats_of(addr: SocketAddr) -> ServerStatsSnapshot {
    let mut stream = TcpStream::connect(addr).expect("stats connect");
    wire::write_request(
        &mut stream,
        &Request::Stats(StatsRequest { reserved: false }),
    )
    .expect("stats request");
    match wire::read_response(&mut stream).expect("stats response") {
        Some((Response::Stats(s), _)) => s.server,
        other => panic!("expected stats, got {other:?}"),
    }
}

fn decode(results: &[wire::WireMatches]) -> Vec<Vec<QueryMatch>> {
    results
        .iter()
        .map(|wm| wm.matches.iter().map(WireMatch::to_match).collect())
        .collect()
}

fn wire_queries(db: &GraphDb, queries: &[&Graph]) -> Vec<WireGraph> {
    queries
        .iter()
        .map(|g| WireGraph::from_graph(db, g))
        .collect()
}

/// Runs E-SERVE: builds a sharded database, serves it (one TCP worker
/// per shard + a TCP frontend), checks served answers bit-identical to
/// the in-process path, then applies `requests` arrivals of open-loop
/// Poisson load at `target_qps` and measures the latency distribution.
pub fn run_serve(
    seed: u64,
    scale: Scale,
    shards: usize,
    target_qps: f64,
    requests: usize,
) -> ServeReport {
    let corpus = PinCorpus::generate(seed, 16, scale.0);
    let graphs = corpus.db.iter().count();
    let query_ids = corpus.queries(None);
    let queries: Vec<&Graph> = query_ids.iter().map(|&g| corpus.db.graph(g)).collect();
    let params = TaleParams::bind();
    let opts = QueryOptions::bind().with_cache(false);

    // The deployment: sharded build on disk, one worker per shard, a
    // frontend over remote transports, everything on loopback TCP.
    let dir = tempfile::tempdir().expect("tempdir");
    let sharded =
        ShardedTaleDatabase::build(corpus.db.clone(), dir.path(), &params, shards, &HashPolicy)
            .expect("sharded build");
    let reference = sharded.query_batch(&queries, &opts).expect("local query");

    let worker_handles: Vec<ServerHandle> = (0..shards)
        .map(|s| {
            let engine = ShardEngine::open(dir.path(), s as u32, EngineConfig::default())
                .expect("open shard engine");
            serve_shard(
                Arc::new(engine),
                "127.0.0.1:0".parse().expect("literal addr"),
                WorkerConfig::default(),
            )
            .expect("serve shard")
        })
        .collect();
    let transports: Vec<Arc<dyn ShardTransport>> = worker_handles
        .iter()
        .enumerate()
        .map(|(i, h)| {
            RemoteTransport::new(h.addr(), i as u32, RemoteConfig::default())
                as Arc<dyn ShardTransport>
        })
        .collect();
    // Gate sized against the machine: as many concurrent batches as
    // cores (the scatter fans each one out anyway), with a queue four
    // deep per slot. Offered load beyond that sheds explicitly — the
    // report records it rather than hiding it.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let gate = tale_server::GateConfig {
        max_inflight: cores.clamp(2, 8),
        max_queue: cores.clamp(2, 8) * 4,
    };
    let frontend = Arc::new(
        Frontend::new(
            transports,
            FrontendConfig {
                gate,
                ..FrontendConfig::default()
            },
        )
        .expect("frontend handshake"),
    );
    let front = serve(
        Arc::clone(&frontend) as Arc<dyn Service>,
        "127.0.0.1:0".parse().expect("literal addr"),
        WorkerConfig::default(),
    )
    .expect("serve frontend");
    let front_addr = front.addr();

    // Correctness anchor: the whole workload through the served path.
    let wire_opts = WireOptions::from_options(&opts);
    let identical = {
        let req = Request::QueryBatch(QueryBatchRequest {
            queries: wire_queries(&corpus.db, &queries),
            options: wire_opts.clone(),
            deadline_ms: None,
            allow_partial: false,
        });
        let mut stream = TcpStream::connect(front_addr).expect("identity connect");
        wire::write_request(&mut stream, &req).expect("identity request");
        match wire::read_response(&mut stream).expect("identity response") {
            Some((Response::QueryBatch(resp), _)) => {
                super::speedup::identical(&reference, &decode(&resp.results))
            }
            other => panic!("expected a batch response, got {other:?}"),
        }
    };

    // The load: one single-query request per arrival, arrivals cycling
    // through the workload, inter-arrival gaps drawn from Exp(rate).
    let single_requests: Vec<Arc<Request>> = queries
        .iter()
        .map(|g| {
            Arc::new(Request::QueryBatch(QueryBatchRequest {
                queries: vec![WireGraph::from_graph(&corpus.db, g)],
                options: wire_opts.clone(),
                deadline_ms: None,
                allow_partial: false,
            }))
        })
        .collect();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x53_4552_5645);
    let started = Instant::now();
    let mut next_arrival = started;
    let clients: Vec<std::thread::JoinHandle<std::result::Result<Duration, bool>>> = (0..requests)
        .map(|i| {
            // Open loop: sleep to the scheduled arrival, then dispatch
            // regardless of how many requests are still in flight.
            let gap = -(1.0 - rng.gen::<f64>()).ln() / target_qps;
            now_until(next_arrival);
            next_arrival += Duration::from_secs_f64(gap);
            let req = Arc::clone(&single_requests[i % single_requests.len()]);
            std::thread::spawn(move || one_request(front_addr, &req))
        })
        .collect();

    let mut latencies_ms: Vec<f64> = Vec::with_capacity(requests);
    let (mut shed, mut failed) = (0usize, 0usize);
    for c in clients {
        match c.join().expect("client thread") {
            Ok(lat) => latencies_ms.push(lat.as_secs_f64() * 1e3),
            Err(true) => shed += 1,
            Err(false) => failed += 1,
        }
    }
    let duration_secs = started.elapsed().as_secs_f64();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));

    let frontend_stats = stats_of(front_addr);
    let worker_stats: Vec<ServerStatsSnapshot> =
        worker_handles.iter().map(|h| stats_of(h.addr())).collect();

    ServeReport {
        schema_version: SERVE_REPORT_SCHEMA_VERSION,
        seed,
        scale: scale.0,
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        graphs,
        shards,
        queries: queries.len(),
        target_qps,
        requests,
        duration_secs,
        achieved_qps: latencies_ms.len() as f64 / duration_secs,
        ok: latencies_ms.len(),
        shed,
        failed,
        p50_ms: percentile(&latencies_ms, 50.0),
        p99_ms: percentile(&latencies_ms, 99.0),
        max_ms: latencies_ms.last().copied().unwrap_or(f64::NAN),
        identical,
        frontend: frontend_stats,
        workers: worker_stats,
    }
}

/// Sleeps until `t` (no-op if already past).
fn now_until(t: Instant) {
    let now = Instant::now();
    if t > now {
        std::thread::sleep(t - now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small smoke deployment: everything served, nothing shed at
    /// gentle load, answers bit-identical, counters populated.
    #[test]
    fn serve_report_is_identical_and_complete() {
        let r = run_serve(11, Scale(0.02), 2, 20.0, 30);
        assert_eq!(r.schema_version, SERVE_REPORT_SCHEMA_VERSION);
        assert!(r.identical, "served answers diverged from in-process");
        assert_eq!(r.ok, 30, "shed={} failed={}", r.shed, r.failed);
        assert_eq!(r.shed + r.failed, 0);
        assert!(r.p50_ms.is_finite() && r.p99_ms.is_finite() && r.max_ms.is_finite());
        assert!(r.p50_ms <= r.p99_ms && r.p99_ms <= r.max_ms);
        assert!(r.achieved_qps > 0.0);
        assert_eq!(r.workers.len(), 2);
        // Each worker saw the identity batch + its share of the load +
        // one stats fetch; the frontend saw every client request.
        assert!(r.frontend.requests_query >= 31);
        for (i, w) in r.workers.iter().enumerate() {
            assert!(w.requests_query >= 1, "worker {i} served no queries");
            assert_eq!(w.requests_stats, 1, "worker {i} stats endpoint");
            assert!(
                w.bytes_in > 0 && w.bytes_out > 0,
                "worker {i} byte counters"
            );
        }
    }
}
