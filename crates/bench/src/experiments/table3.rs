//! E-T3 + E-F6 — Table III (index size/build time for the nested BIND
//! datasets D1–D4) and Fig. 6 (query time for the 10 D1 queries on each
//! dataset).
//!
//! Paper shapes: index size grows near-linearly with the database; index
//! construction time grows steadily; queries run in under a second even
//! for the largest query on D4, with near-linear growth in database size
//! and non-monotonic wiggles explained by result cardinality (Q2–Q4).

use crate::{timed, Scale};
use tale::{QueryOptions, TaleDatabase, TaleParams};
use tale_datasets::pin::PinCorpus;
use tale_graph::{GraphDb, GraphId};

/// One Table III row.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Dataset name ("D1".."D4").
    pub dataset: String,
    /// Graph count.
    pub graphs: usize,
    /// Average node count.
    pub avg_nodes: f64,
    /// Average edge count.
    pub avg_edges: f64,
    /// Index size in bytes.
    pub index_bytes: u64,
    /// Index construction seconds.
    pub build_secs: f64,
}

/// One Fig. 6 bar: query `q` on dataset `d`.
#[derive(Debug, Clone)]
pub struct Fig6Cell {
    /// Query index (Q1..Q10, ascending size).
    pub query: usize,
    /// Query size (nodes, edges).
    pub query_nodes: usize,
    /// Query edge count.
    pub query_edges: usize,
    /// Dataset index (0..4 = D1..D4).
    pub dataset: usize,
    /// Query seconds (unrestricted result count, as in the paper).
    pub seconds: f64,
    /// Number of graphs matched.
    pub results: usize,
}

/// Combined report.
#[derive(Debug, Clone)]
pub struct Table3Fig6Report {
    /// Table III rows.
    pub table3: Vec<Table3Row>,
    /// Fig. 6 cells (query-major).
    pub fig6: Vec<Fig6Cell>,
}

/// Builds the nested datasets, indexes each, times the queries.
pub fn run_table3_fig6(seed: u64, scale: Scale) -> Table3Fig6Report {
    let corpus = PinCorpus::generate(seed, 40, scale.0);
    // the paper's queries stop at 3059 nodes; scale the cap with the corpus
    let cap = ((3100.0 * scale.0) as usize).max(20);
    let queries = corpus.queries(Some(cap));

    let mut table3 = Vec::new();
    let mut fig6 = Vec::new();
    for (di, ids) in corpus.datasets.iter().enumerate() {
        // materialize this dataset as its own GraphDb (same vocabulary)
        let sub = subset_db(&corpus.db, ids);
        let n = sub.len();
        let avg_nodes = sub.total_nodes() as f64 / n as f64;
        let avg_edges = sub.total_edges() as f64 / n as f64;
        let (tale_db, build_secs) =
            timed(|| TaleDatabase::build_in_temp(sub, &TaleParams::bind()).expect("build"));
        table3.push(Table3Row {
            dataset: format!("D{}", di + 1),
            graphs: n,
            avg_nodes,
            avg_edges,
            index_bytes: tale_db.index_size_bytes(),
            build_secs,
        });
        let opts = QueryOptions::bind(); // unrestricted results
        for (qi, &qid) in queries.iter().enumerate() {
            let q = corpus.db.graph(qid);
            let (res, secs) = timed(|| tale_db.query(q, &opts).expect("query"));
            fig6.push(Fig6Cell {
                query: qi + 1,
                query_nodes: q.node_count(),
                query_edges: q.edge_count(),
                dataset: di,
                seconds: secs,
                results: res.len(),
            });
        }
    }
    Table3Fig6Report { table3, fig6 }
}

/// Copies the chosen graphs into a fresh db sharing the label names.
fn subset_db(db: &GraphDb, ids: &[GraphId]) -> GraphDb {
    let mut out = GraphDb::new();
    // re-intern the full vocabulary so label ids stay aligned
    for (_, name) in db.node_vocab().iter() {
        out.intern_node_label(name);
    }
    for &id in ids {
        out.insert(db.name(id).to_owned(), db.graph(id).clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_paper_claims() {
        let r = run_table3_fig6(3, Scale(0.04));
        assert_eq!(r.table3.len(), 4);
        // nested datasets: 10, 20, 30, 40 graphs
        let counts: Vec<usize> = r.table3.iter().map(|t| t.graphs).collect();
        assert_eq!(counts, vec![10, 20, 30, 40]);
        // near-linear index growth: D4 index is roughly 4× D1 (within 2×
        // slack for posting-granularity effects)
        let ratio = r.table3[3].index_bytes as f64 / r.table3[0].index_bytes as f64;
        assert!(
            (1.5..=10.0).contains(&ratio),
            "index growth ratio {ratio:.2}"
        );
        // every query ran on every dataset (the paper-style size cap can
        // trim the largest D1 members, so count queries dynamically)
        let n_queries = r.fig6.iter().map(|c| c.query).max().unwrap();
        assert!(n_queries >= 5, "too few queries: {n_queries}");
        assert_eq!(r.fig6.len(), n_queries * 4);
        // queries ascend in size
        let first = r.fig6.iter().find(|c| c.query == 1).unwrap();
        let last = r.fig6.iter().find(|c| c.query == n_queries).unwrap();
        assert!(first.query_nodes <= last.query_nodes);
    }
}
