//! E-KEGG — §VI-A's third dataset: "We also evaluated TALE on the
//! biological pathways from the KEGG database. The results … are similar
//! to the other two datasets and omitted in the interest of space."
//!
//! Reproduction: family-retrieval over directed KEGG-like pathway graphs
//! (the ASTRAL protocol of Fig. 5, on the third dataset): index build
//! cost, retrieval precision/recall, and query latency. The claim to
//! verify is simply that the Fig. 5-style behavior carries over —
//! high early precision, recall plateau, interactive query times.

use crate::{timed, Scale};
use std::sync::Arc;
use tale::{CTreeStyle, QueryOptions, TaleDatabase, TaleParams};
use tale_datasets::kegg::{KeggDataset, KeggSpec};
use tale_datasets::metrics::{precision_recall_curve, PrPoint};

/// The E-KEGG report.
#[derive(Debug, Clone)]
pub struct KeggExpReport {
    /// Graphs in the database.
    pub graphs: usize,
    /// Index build seconds.
    pub build_secs: f64,
    /// Index bytes on disk.
    pub index_bytes: u64,
    /// Mean precision/recall curve over the queries.
    pub curve: Vec<PrPoint>,
    /// Mean query seconds (top-2·family).
    pub query_secs: f64,
    /// Queries evaluated.
    pub queries: usize,
}

/// Runs the KEGG retrieval experiment.
pub fn run_kegg(seed: u64, scale: Scale, n_queries: usize) -> KeggExpReport {
    let spec = KeggSpec {
        families: ((150.0 * scale.0 / 0.12).round() as usize).max(5),
        ..KeggSpec::default()
    };
    let ds = KeggDataset::generate(seed, &spec);
    let (tale_db, build_secs) =
        timed(|| TaleDatabase::build_in_temp(ds.db.clone(), &TaleParams::bind()).expect("build"));
    let max_k = spec.variants_per_family * 2;
    let opts = QueryOptions::bind()
        .with_top_k(max_k)
        .with_similarity(Arc::new(CTreeStyle));
    let queries = ds.pick_queries(seed ^ 0x9e, n_queries);
    let mut flags: Vec<Vec<bool>> = Vec::new();
    let mut total = 0.0;
    for &q in &queries {
        let qg = ds.db.graph(q);
        let fam = ds.family(q);
        let (res, secs) = timed(|| tale_db.query(qg, &opts).expect("query"));
        total += secs;
        flags.push(
            res.iter()
                .filter(|r| r.graph != q)
                .map(|r| ds.family(r.graph) == fam)
                .collect(),
        );
    }
    let totals = vec![spec.variants_per_family - 1; queries.len()];
    KeggExpReport {
        graphs: ds.db.len(),
        build_secs,
        index_bytes: tale_db.index_size_bytes(),
        curve: precision_recall_curve(&flags, &totals, max_k),
        query_secs: total / queries.len().max(1) as f64,
        queries: queries.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kegg_behaves_like_the_other_datasets() {
        let r = run_kegg(11, Scale(0.04), 8);
        assert_eq!(r.queries, 8);
        assert!(r.graphs >= 40);
        // Fig. 5-style shape on the third dataset: strong early precision…
        assert!(
            r.curve[2].precision > 0.7,
            "P@3 = {:.2}",
            r.curve[2].precision
        );
        // …recall climbing toward a plateau…
        let last = r.curve.last().unwrap();
        assert!(last.recall > 0.6, "final recall {:.2}", last.recall);
        // …at interactive query cost.
        assert!(r.query_secs < 5.0, "query {:.2}s", r.query_secs);
    }
}
