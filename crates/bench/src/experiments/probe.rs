//! E-PROBE — probe-path raw speed: the SIMD bit-sliced kernel vs the
//! scalar kernel vs the naive row scan, and the label-pair pre-filter's
//! skip rate on a skewed-label corpus.
//!
//! Two claims, both checked bit-identical inside the run:
//!
//! 1. **Kernel**: on wide bitmaps the explicit-SIMD Algorithm 1 kernel
//!    beats the portable scalar kernel, and both beat the naive per-row
//!    scan. Every timed query is first verified to produce identical
//!    hits on every available kernel *and* the naive oracle.
//! 2. **Filter**: on a corpus of label domains with private
//!    vocabularies, the per-key neighboring-label summaries skip a
//!    meaningful fraction of postings before any blob fetch, with the
//!    filter-on and filter-off passes answering identically.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use tale_graph::{Graph, GraphDb, GraphId, NodeId};
use tale_nhindex::bitprobe::{available_kernels, probe_bitsliced_with, probe_naive, ProbeKernel};
use tale_nhindex::{NhIndex, NhIndexConfig, NodeCandidate};

use crate::Scale;

/// Bump when the JSON layout of [`ProbeExpReport`] changes.
pub const PROBE_REPORT_SCHEMA_VERSION: u32 = 1;

/// One (bitmap size, kernel) timing cell of the kernel microbench.
#[derive(Debug, Clone, serde::Serialize)]
pub struct KernelRow {
    /// Rows in the bitmap (database nodes sharing the key).
    pub rows: usize,
    /// Kernel name (`"avx2"`, `"scalar"`).
    pub kernel: String,
    /// Mean probe time (ns) over the query set.
    pub ns: f64,
    /// Mean naive per-row scan time (ns) on the same bitmap.
    pub naive_ns: f64,
    /// `naive / ns`.
    pub speedup_vs_naive: f64,
}

/// One filter pass (on or off) over the skewed-corpus workload.
#[derive(Debug, Clone, serde::Serialize)]
pub struct FilterPassRow {
    /// Whether the label-pair pre-filter was consulted.
    pub filter: bool,
    /// B+-tree keys the range scans visited.
    pub keys_scanned: u64,
    /// Postings decoded from the blob store.
    pub postings_fetched: u64,
    /// Postings the pre-filter skipped before any blob fetch.
    pub postings_filtered: u64,
    /// Bitmap rows the probe kernels examined.
    pub rows_examined: u64,
    /// Wall-clock for the whole pass.
    pub wall_secs: f64,
}

/// The whole E-PROBE run, serialized to `BENCH_probe.json` by CI.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ProbeExpReport {
    /// See [`PROBE_REPORT_SCHEMA_VERSION`].
    pub schema_version: u32,
    /// Generator seed.
    pub seed: u64,
    /// Workload scale used.
    pub scale: f64,
    /// Signature width of the kernel microbench bitmaps.
    pub sbit: u32,
    /// Kernels the host can run (scalar fallback first, best last).
    pub kernels: Vec<String>,
    /// The kernel the dispatcher picked for this process.
    pub active_kernel: String,
    /// Timing grid: every available kernel at every bitmap size.
    pub kernel_rows: Vec<KernelRow>,
    /// Whether every timed query produced identical hits on every
    /// kernel and the naive oracle.
    pub kernels_identical: bool,
    /// At the largest bitmap: `scalar_ns / simd_ns` (`None` when the
    /// host has no SIMD kernel).
    pub simd_vs_scalar: Option<f64>,
    /// At the largest bitmap: `naive_ns / best_kernel_ns`.
    pub bitsliced_vs_naive: f64,
    /// Graphs in the skewed filter corpus.
    pub graphs: usize,
    /// Label domains the corpus is split into.
    pub domains: usize,
    /// Probe signatures in the filter workload (each run at every rho).
    pub queries: usize,
    /// Approximation ratios each signature was probed at.
    pub rhos: Vec<f64>,
    /// The filter-on pass (the default configuration).
    pub filter_on: FilterPassRow,
    /// The filter-off pass (same workload, filter disabled).
    pub filter_off: FilterPassRow,
    /// `postings_filtered / (postings_filtered + postings_fetched)` on
    /// the filter-on pass.
    pub skip_fraction: f64,
    /// Whether the on and off passes' answers matched bit for bit.
    pub identical: bool,
}

/// Labels per domain; label 0 of each domain is its *hot* label.
const LABELS_PER_DOMAIN: usize = 5;
/// Label domains with private vocabularies (mirrors E-PLAN's corpus).
const DOMAINS: usize = 6;

/// Times one closure, returning mean ns per call over `reps` calls.
fn mean_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    let t0 = std::time::Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_nanos() as f64 / reps as f64
}

/// Runs the kernel microbench: random bitmaps of increasing size, 50
/// random queries, every available kernel vs the naive oracle.
fn kernel_bench(
    seed: u64,
    sbit: u32,
    n_queries: usize,
) -> (Vec<KernelRow>, bool, Option<f64>, f64) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5052_4f42); // "PROB"
    let sizes = [256usize, 4096, 32768];
    let queries: Vec<Vec<u64>> = (0..n_queries)
        .map(|_| super::alg1::random_query(&mut rng, sbit))
        .collect();
    let kernels = available_kernels();
    let nbmiss = 2u32;
    let mut rows_out = Vec::new();
    let mut identical = true;
    for &rows in &sizes {
        let bm = super::alg1::random_bitmap(&mut rng, rows, sbit);
        // warm up + verify: every kernel must agree with the oracle
        for q in &queries {
            let oracle = probe_naive(&bm, q, nbmiss);
            for &k in &kernels {
                let got = probe_bitsliced_with(k, &bm, q, nbmiss);
                identical &= got.rows == oracle.rows && got.misses == oracle.misses;
            }
        }
        // interleaved min-of-passes: each pass times every contender in
        // the same window, so machine-load drift can't favor whichever
        // kernel happened to run first
        const PASSES: usize = 5;
        let reps = (200_000 / rows).clamp(3, 2000);
        let mut naive_ns = f64::INFINITY;
        let mut kernel_ns = vec![f64::INFINITY; kernels.len()];
        for _ in 0..PASSES {
            let t = mean_ns(reps, || {
                for q in &queries {
                    std::hint::black_box(probe_naive(&bm, q, nbmiss));
                }
            }) / n_queries as f64;
            naive_ns = naive_ns.min(t);
            for (i, &k) in kernels.iter().enumerate() {
                let t = mean_ns(reps, || {
                    for q in &queries {
                        std::hint::black_box(probe_bitsliced_with(k, &bm, q, nbmiss));
                    }
                }) / n_queries as f64;
                kernel_ns[i] = kernel_ns[i].min(t);
            }
        }
        for (i, &k) in kernels.iter().enumerate() {
            rows_out.push(KernelRow {
                rows,
                kernel: k.name().to_owned(),
                ns: kernel_ns[i],
                naive_ns,
                speedup_vs_naive: naive_ns / kernel_ns[i],
            });
        }
    }
    let largest = sizes[sizes.len() - 1];
    let at = |k: ProbeKernel| {
        rows_out
            .iter()
            .find(|r| r.rows == largest && r.kernel == k.name())
            .map(|r| r.ns)
    };
    let scalar_ns = at(ProbeKernel::Scalar).expect("scalar kernel always available");
    // `available_kernels()` lists the scalar fallback first; the best
    // kernel is the last entry (AVX2 when the CPU has it).
    let best = *kernels.last().expect("at least the scalar kernel");
    let best_ns = at(best).expect("best kernel timed");
    let simd_vs_scalar = if best == ProbeKernel::Scalar {
        None
    } else {
        Some(scalar_ns / best_ns)
    };
    let naive_ns = rows_out
        .iter()
        .find(|r| r.rows == largest)
        .map(|r| r.naive_ns)
        .expect("largest size timed");
    (rows_out, identical, simd_vs_scalar, naive_ns / best_ns)
}

/// Draws a domain-confined label id: the hot label half the time, a
/// uniform rare one otherwise.
fn domain_label(rng: &mut ChaCha8Rng, base: u32) -> u32 {
    if rng.gen_bool(0.5) {
        base
    } else {
        base + 1 + rng.gen_range(0..LABELS_PER_DOMAIN as u32 - 1)
    }
}

/// A connected simple graph of `n` nodes over one domain's labels: a
/// ring plus a few random chords (the E-PLAN corpus shape).
fn domain_graph(rng: &mut ChaCha8Rng, base: u32, n: usize) -> Graph {
    let mut g = Graph::new_undirected();
    for _ in 0..n {
        g.add_node(tale_graph::labels::NodeLabel(domain_label(rng, base)));
    }
    let mut edges: std::collections::BTreeSet<(u32, u32)> = (1..n as u32)
        .map(|j| (j - 1, j))
        .chain(std::iter::once((0, n as u32 - 1)))
        .collect();
    while edges.len() < n + n / 3 {
        let a = rng.gen_range(0..n as u32);
        let b = rng.gen_range(0..n as u32);
        if a != b {
            edges.insert((a.min(b), a.max(b)));
        }
    }
    for (a, b) in edges {
        g.add_edge(tale_graph::NodeId(a), tale_graph::NodeId(b))
            .expect("deduplicated simple edges");
    }
    g
}

/// Runs E-PROBE: the kernel microbench plus the filter on/off
/// comparison on a skewed domain corpus.
pub fn run_probe(seed: u64, scale: Scale) -> ProbeExpReport {
    let sbit = 32u32;
    let (kernel_rows, kernels_identical, simd_vs_scalar, bitsliced_vs_naive) =
        kernel_bench(seed, sbit, 50);

    // -- filter corpus: domains with private label subspaces ------------
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x4c50_4631); // "LPF1"
    let per_domain = ((60.0 * scale.0).round() as usize).max(4);
    let mut db = GraphDb::new();
    for d in 0..DOMAINS {
        for j in 0..LABELS_PER_DOMAIN {
            db.intern_node_label(&format!("d{d}-l{j}"));
        }
    }
    for d in 0..DOMAINS {
        let base = (d * LABELS_PER_DOMAIN) as u32;
        for i in 0..per_domain {
            let n = rng.gen_range(8..16);
            db.insert(format!("d{d}g{i}"), domain_graph(&mut rng, base, n));
        }
    }
    let graphs = db.len();

    let dir = tempfile::tempdir().expect("tempdir");
    let config = NhIndexConfig {
        sbit: 64,
        buffer_frames: 256,
        ..NhIndexConfig::default()
    };
    let idx = NhIndex::build(dir.path(), &db, &config).expect("index build");

    // every database node probes back at rho 0 and 0.25 — real
    // signatures, so hits are nonzero and identity is meaningful
    let rhos = vec![0.0, 0.25];
    let mut sigs = Vec::new();
    for gi in 0..graphs {
        let gid = GraphId(gi as u32);
        let g = db.graph(gid);
        let label_of = |x: NodeId| db.effective_label(gid, x);
        for node in g.nodes() {
            sigs.push(idx.signature(g, node, &label_of));
        }
    }

    let pass = |enabled: bool| {
        idx.set_filter_enabled(enabled);
        let before = idx.counters();
        let t0 = std::time::Instant::now();
        let mut answers: Vec<Vec<NodeCandidate>> = Vec::with_capacity(sigs.len() * rhos.len());
        for sig in &sigs {
            for &rho in &rhos {
                answers.push(idx.probe(sig, rho).expect("probe"));
            }
        }
        let wall_secs = t0.elapsed().as_secs_f64();
        let d = idx.counters().since(before);
        let row = FilterPassRow {
            filter: enabled,
            keys_scanned: d.keys_scanned,
            postings_fetched: d.postings_fetched,
            postings_filtered: d.postings_filtered,
            rows_examined: d.rows_examined,
            wall_secs,
        };
        (answers, row)
    };
    let (on_answers, filter_on) = pass(true);
    let (off_answers, filter_off) = pass(false);
    idx.set_filter_enabled(true);

    let skipped = filter_on.postings_filtered;
    let seen = skipped + filter_on.postings_fetched;
    ProbeExpReport {
        schema_version: PROBE_REPORT_SCHEMA_VERSION,
        seed,
        scale: scale.0,
        sbit,
        kernels: available_kernels()
            .iter()
            .map(|k| k.name().to_owned())
            .collect(),
        active_kernel: tale_nhindex::bitprobe::active_kernel().name().to_owned(),
        kernel_rows,
        kernels_identical,
        simd_vs_scalar,
        bitsliced_vs_naive,
        graphs,
        domains: DOMAINS,
        queries: sigs.len(),
        rhos,
        filter_on,
        filter_off,
        skip_fraction: if seen == 0 {
            0.0
        } else {
            skipped as f64 / seen as f64
        },
        identical: on_answers == off_answers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The committed-artifact contract CI re-checks: kernels agree with
    /// the oracle, the filter skips a nonzero fraction of postings
    /// before any fetch, and disabling it changes traffic but never
    /// answers.
    #[test]
    fn probe_report_is_identical_and_skips() {
        let r = run_probe(7, Scale(0.02));
        assert_eq!(r.schema_version, PROBE_REPORT_SCHEMA_VERSION);
        assert!(r.kernels_identical, "a kernel diverged from the oracle");
        assert!(r.kernels.contains(&"scalar".to_owned()));
        assert!(r.identical, "filter on/off answers diverged");
        assert!(
            r.filter_on.postings_filtered > 0,
            "the pre-filter never skipped a posting: {:?}",
            r.filter_on
        );
        assert_eq!(r.filter_off.postings_filtered, 0, "{:?}", r.filter_off);
        assert!(
            r.filter_on.postings_fetched < r.filter_off.postings_fetched,
            "skips must reduce fetches ({} vs {})",
            r.filter_on.postings_fetched,
            r.filter_off.postings_fetched
        );
        assert!(r.skip_fraction > 0.0 && r.skip_fraction < 1.0);
        // rows examined shrink with the skipped postings' rows
        assert!(r.filter_on.rows_examined <= r.filter_off.rows_examined);
        // the kernel grid covers every size × every available kernel
        assert_eq!(r.kernel_rows.len(), 3 * r.kernels.len());
        // hosts with a SIMD kernel must report the simd-vs-scalar ratio
        assert_eq!(r.simd_vs_scalar.is_some(), r.kernels.len() > 1);
    }
}
