//! E-COLD — larger-than-RAM query path under a shrinking buffer pool.
//!
//! The paper's core systems claim is that the NH-Index, being
//! disk-based, is "not limited by the memory size" (§VI-B.2). This
//! harness measures what that costs and what the async read path buys
//! back: a wide PIN corpus (256 small graphs) and its query workload
//! run against buffer pools sized from 1% of the index up to the whole
//! index, each pass starting *cold* (fresh open, empty pools, result
//! cache off). Every cell's answers are checked bit-identical to an
//! unbounded-pool serial reference — pool size and thread count are
//! latency knobs only, never correctness knobs.
//!
//! Tempfile-backed indexes read from the OS page cache in microseconds,
//! which would hide the effect being measured, so each measured pass
//! wraps the read backends with a fixed per-read delay
//! ([`tale_storage::LatencyBackend`], `read_latency_us` in the report)
//! to model a device with seek latency. The headline ratio —
//! 4-thread over 1-thread cold batch wall clock at the 10% pool — then
//! isolates genuine I/O-wait overlap (demand misses overlapping across
//! worker threads plus batched posting readahead), which is why it
//! holds even on a single-core runner where compute cannot speed up.

use crate::{timed, Scale};
use std::time::Duration;
use tale::{QueryOptions, TaleDatabase, TaleParams};
use tale_datasets::pin::PinCorpus;
use tale_graph::Graph;
use tale_shard::{HashPolicy, ShardedTaleDatabase};
use tale_storage::PAGE_SIZE;

/// Schema version stamped into `BENCH_cold.json`.
pub const COLD_REPORT_SCHEMA_VERSION: u32 = 1;

/// Pool-size fractions swept by [`run_cold`] (of the total index pages).
pub const DEFAULT_POOL_FRACTIONS: &[f64] = &[0.01, 0.10, 0.25, 1.0];

/// One cold pass: a pool size × thread count × layout cell.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ColdCell {
    /// Pool size as a fraction of the index's total pages.
    pub pool_frac: f64,
    /// Buffer-pool frames per page file this cell ran with.
    pub pool_pages: usize,
    /// Query worker threads.
    pub threads: usize,
    /// Whether the index was the 4-shard scatter/gather layout.
    pub sharded: bool,
    /// Cold wall clock of one batch pass over the workload, seconds.
    pub query_secs: f64,
    /// Fetches served from resident frames.
    pub pool_hits: u64,
    /// Fetches that parked on another thread's in-flight load.
    pub pool_coalesced: u64,
    /// Fetches that performed their own synchronous disk read.
    pub pool_misses: u64,
    /// Fetches served from the async prefetch staging area.
    pub pool_prefetched: u64,
    /// Readahead jobs handed to the I/O worker pool.
    pub prefetch_issued: u64,
    /// Staged pages later consumed by a pool miss.
    pub prefetch_used: u64,
    /// Whether answers matched the unbounded-pool serial reference
    /// bit for bit.
    pub identical: bool,
}

/// The full E-COLD report (serialized to `BENCH_cold.json`).
#[derive(Debug, Clone, serde::Serialize)]
pub struct ColdReport {
    /// Report format version ([`COLD_REPORT_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Generator seed.
    pub seed: u64,
    /// Requested scale factor (`TALE_SCALE`).
    pub scale: f64,
    /// Effective corpus scale: the cold corpus runs 256 graphs at one
    /// sixth the requested scale (see [`run_cold`]).
    pub corpus_scale: f64,
    /// Cores the OS reports as available. The headline ratio measures
    /// I/O-wait overlap, so it is meaningful even when this is 1.
    pub cores: usize,
    /// Graphs in the corpus.
    pub graphs: usize,
    /// Queries in the workload.
    pub queries: usize,
    /// Total index bytes on disk (both page files).
    pub index_bytes: u64,
    /// Total index pages (the 100% pool size).
    pub index_pages: usize,
    /// Simulated per-read device latency applied to every measured
    /// cell, microseconds.
    pub read_latency_us: u64,
    /// One row per measured cell.
    pub rows: Vec<ColdCell>,
    /// Headline: 1-thread over 4-thread cold batch wall clock at the
    /// 10% pool (unsharded) — >1 means the threaded cold path
    /// genuinely overlapped reads.
    pub speedup_4t_at_10pct: f64,
}

/// Runs the E-COLD sweep: build once on disk, then for each pool size ×
/// thread count reopen cold, apply the simulated read latency, run the
/// whole query workload as one batch, and compare answers to the
/// unbounded-pool serial reference. Two extra cells repeat the 10% pool
/// under the 4-shard layout (all shards sharing one I/O worker pool).
pub fn run_cold(seed: u64, scale: Scale, read_latency_us: u64) -> ColdReport {
    // Wider, flatter corpus than the Table 2 experiments: 256 graphs at
    // one sixth the requested scale instead of 16 at full scale. Cold
    // read behavior needs an index that dwarfs the small pools and a
    // query workload wide enough to keep 4 threads busy, while each
    // individual graph stays small enough that matching compute does
    // not drown the I/O effect being measured (matching cost grows
    // superlinearly with graph size; index size only linearly).
    let corpus_scale = scale.0 / 6.0;
    let corpus = PinCorpus::generate(seed, 256, corpus_scale);
    let graphs = corpus.db.iter().count();
    let query_ids = corpus.queries(None);
    let queries: Vec<&Graph> = query_ids.iter().map(|&g| corpus.db.graph(g)).collect();
    let params = TaleParams::bind();
    let latency = Duration::from_micros(read_latency_us);

    // Build both layouts once; every measured pass reopens from disk.
    let single_dir = tempfile::tempdir().expect("tempdir");
    let built =
        TaleDatabase::build(corpus.db.clone(), single_dir.path(), &params).expect("index build");
    let index_bytes = built.index_size_bytes();
    let index_pages = (index_bytes as usize).div_ceil(PAGE_SIZE).max(1);
    drop(built);
    let shard_dir = tempfile::tempdir().expect("tempdir");
    ShardedTaleDatabase::build(corpus.db.clone(), shard_dir.path(), &params, 4, &HashPolicy)
        .expect("sharded build");

    // Reference: unbounded pool, serial, no simulated latency.
    let reference = {
        let db = TaleDatabase::open(single_dir.path(), index_pages).expect("open reference");
        let opts = QueryOptions::bind().with_cache(false).with_threads(1);
        db.query_batch(&queries, &opts).expect("reference query")
    };

    let mut rows: Vec<ColdCell> = Vec::new();
    for &frac in DEFAULT_POOL_FRACTIONS {
        let pool_pages = ((index_pages as f64 * frac) as usize).max(8);
        for &threads in &[1usize, 4] {
            let db = TaleDatabase::open(single_dir.path(), pool_pages).expect("cold open");
            db.index().simulate_read_latency(latency);
            let opts = QueryOptions::bind().with_cache(false).with_threads(threads);
            let (results, query_secs) =
                timed(|| db.query_batch(&queries, &opts).expect("cold query"));
            let pool = db.index().pool_stats();
            let pf = db.index().prefetch_stats();
            rows.push(ColdCell {
                pool_frac: frac,
                pool_pages,
                threads,
                sharded: false,
                query_secs,
                pool_hits: pool.hits,
                pool_coalesced: pool.coalesced,
                pool_misses: pool.misses,
                pool_prefetched: pool.prefetched,
                prefetch_issued: pf.issued,
                prefetch_used: pf.used,
                identical: super::speedup::identical(&reference, &results),
            });
        }
    }

    // Sharded cells: the 10% pool again, scatter/gather over 4 shards
    // that share one I/O worker pool.
    let pool_pages = ((index_pages as f64 * 0.10) as usize).max(8);
    for &threads in &[1usize, 4] {
        let db = ShardedTaleDatabase::open(shard_dir.path(), pool_pages).expect("cold open");
        for sh in db.index().shards() {
            sh.simulate_read_latency(latency);
        }
        let opts = QueryOptions::bind().with_cache(false).with_threads(threads);
        let (results, query_secs) = timed(|| db.query_batch(&queries, &opts).expect("cold query"));
        let pool = db.index().pool_stats();
        let pf = db.index().prefetch_stats();
        rows.push(ColdCell {
            pool_frac: 0.10,
            pool_pages,
            threads,
            sharded: true,
            query_secs,
            pool_hits: pool.hits,
            pool_coalesced: pool.coalesced,
            pool_misses: pool.misses,
            pool_prefetched: pool.prefetched,
            prefetch_issued: pf.issued,
            prefetch_used: pf.used,
            identical: super::speedup::identical(&reference, &results),
        });
    }

    let secs_of = |threads: usize| {
        rows.iter()
            .find(|c| !c.sharded && (c.pool_frac - 0.10).abs() < 1e-9 && c.threads == threads)
            .map(|c| c.query_secs)
            .unwrap_or(f64::NAN)
    };
    let speedup_4t_at_10pct = secs_of(1) / secs_of(4);

    ColdReport {
        schema_version: COLD_REPORT_SCHEMA_VERSION,
        seed,
        scale: scale.0,
        corpus_scale,
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        graphs,
        queries: queries.len(),
        index_bytes,
        index_pages,
        read_latency_us,
        rows,
        speedup_4t_at_10pct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sweep must never change answers, every cold cell must do real
    /// disk traffic, and the batched read path must actually engage the
    /// prefetcher on small pools.
    #[test]
    fn cold_report_is_identical_and_accounts_io() {
        let r = run_cold(45, Scale(0.12), 50);
        assert_eq!(r.schema_version, COLD_REPORT_SCHEMA_VERSION);
        assert_eq!(r.rows.len(), DEFAULT_POOL_FRACTIONS.len() * 2 + 2);
        assert!(r.index_pages > 0);
        for c in &r.rows {
            assert!(
                c.identical,
                "pool {}x{} threads {} sharded {}: answers diverged",
                c.pool_frac, c.pool_pages, c.threads, c.sharded
            );
            // a cold pass must touch disk
            assert!(
                c.pool_misses + c.pool_prefetched > 0,
                "cold cell did no disk reads: {c:?}"
            );
        }
        // the batched probe path issues readahead on constrained pools
        assert!(
            r.rows
                .iter()
                .filter(|c| c.pool_frac < 1.0)
                .any(|c| c.prefetch_issued > 0),
            "no constrained cell issued prefetches"
        );
        assert!(r.speedup_4t_at_10pct.is_finite());
    }
}
