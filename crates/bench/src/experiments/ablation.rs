//! E-ABL — §VI-D: TALE vs TALE-Random (importance-measure ablation).
//!
//! Paper: on the mouse-vs-human test, degree-centrality TALE scores
//! 106 matched nodes / 61 matched edges / 42 KEGGs hit / 13.6% coverage
//! against 85 / 24 / 8 / 5.8% for random "important" node selection.
//! The shape to reproduce: degree centrality beats random selection on
//! every measure.

use crate::{timed, Scale};
use tale::{ImportanceMeasure, QueryOptions, TaleDatabase, TaleParams};
use tale_datasets::metrics::kegg_metrics;
use tale_datasets::pin::SpeciesPins;
use tale_graph::NodeId;

/// One importance-measure row.
#[derive(Debug, Clone)]
pub struct AblationReport {
    /// Measure name.
    pub measure: String,
    /// Matched node count (best human match).
    pub matched_nodes: usize,
    /// Matched edge count.
    pub matched_edges: usize,
    /// KEGGs hit.
    pub kegg_hits: usize,
    /// Average pathway coverage.
    pub coverage: f64,
    /// Query seconds.
    pub seconds: f64,
}

/// Runs the mouse-vs-human ablation over the given importance measures.
pub fn run_ablation(
    pins: &SpeciesPins,
    scale: Scale,
    measures: &[(&str, ImportanceMeasure)],
) -> Vec<AblationReport> {
    let _ = scale;
    // Same setup as Table II: the index holds the human PIN only.
    let human_only = crate::experiments::table2::single_species_db(&pins.db, pins.species["human"]);
    let tale_db =
        TaleDatabase::build_in_temp(human_only, &TaleParams::bind()).expect("index build");
    let human_gid = tale_graph::GraphId(0);
    let mouse = pins.db.graph(pins.species["mouse"]);

    measures
        .iter()
        .map(|(name, m)| {
            let opts = QueryOptions::bind().with_importance(*m);
            let (res, seconds) = timed(|| tale_db.query(mouse, &opts).expect("query"));
            let hit = res.iter().find(|r| r.graph == human_gid);
            let pairs: Vec<(NodeId, NodeId)> = hit
                .map(|r| r.m.pairs.iter().map(|p| (p.query, p.target)).collect())
                .unwrap_or_default();
            let k = kegg_metrics(&pins.pathways, "mouse", "human", &pairs);
            AblationReport {
                measure: name.to_string(),
                matched_nodes: hit.map(|r| r.matched_nodes).unwrap_or(0),
                matched_edges: hit.map(|r| r.matched_edges).unwrap_or(0),
                kegg_hits: k.hits,
                coverage: k.avg_coverage,
                seconds,
            }
        })
        .collect()
}

/// The paper's §VI-D pair: degree vs random.
pub fn paper_measures() -> Vec<(&'static str, ImportanceMeasure)> {
    vec![
        ("degree (TALE)", ImportanceMeasure::Degree),
        ("random (TALE-Random)", ImportanceMeasure::Random(7)),
    ]
}

/// Extended panel for the centrality ablation bench.
pub fn extended_measures() -> Vec<(&'static str, ImportanceMeasure)> {
    vec![
        ("degree", ImportanceMeasure::Degree),
        ("closeness", ImportanceMeasure::Closeness),
        ("betweenness", ImportanceMeasure::Betweenness),
        ("eigenvector", ImportanceMeasure::Eigenvector),
        ("random", ImportanceMeasure::Random(7)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::table1::run_table1;

    #[test]
    fn degree_beats_random() {
        let (_, pins) = run_table1(44, Scale(0.12));
        let rows = run_ablation(&pins, Scale(0.12), &paper_measures());
        assert_eq!(rows.len(), 2);
        let degree = &rows[0];
        let random = &rows[1];
        // §VI-D shape: degree centrality beats random on edge conservation
        // and pathway recovery (node counts can tie — any anchor that
        // sticks lets growth cover the graph; what random loses is *which*
        // paralog it anchors to, i.e. structure, not volume).
        assert!(
            degree.matched_edges >= random.matched_edges,
            "edges: degree {} vs random {}",
            degree.matched_edges,
            random.matched_edges
        );
        assert!(
            degree.kegg_hits >= random.kegg_hits,
            "hits: degree {} vs random {}",
            degree.kegg_hits,
            random.kegg_hits
        );
        assert!(
            degree.coverage >= random.coverage,
            "coverage: degree {:.3} vs random {:.3}",
            degree.coverage,
            random.coverage
        );
        assert!(degree.matched_nodes > 0 && degree.kegg_hits > 0);
    }
}
