//! E-CRASH — fault-injection torture sweep over every durable mutation.
//!
//! For each mutation kind the harness first runs the mutation cleanly
//! while *counting* its gated I/O operations, then re-runs it once per
//! fault point with exactly that operation failing. Process death is
//! simulated by dropping the handle with the fault still tripped (so even
//! the buffer pool's best-effort `Drop` flush fails), the directory is
//! reopened through the recovery path, and the query output is compared
//! bit-for-bit against both the pre-mutation and the post-mutation
//! reference states. A recovery that matches neither — a
//! corrupted-but-served state — fails the row.
//!
//! Sweeps cover the single index (`insert_graph`, `remove_graph`: WAL +
//! page writes + meta rename) and the sharded database (`insert_graph`:
//! journal + `graphs.json` + shard WAL + `shards.json` manifest rewrite;
//! `remove_graph`). Only built with `--features failpoints`.

use std::path::Path;
use tale::{QueryOptions, TaleParams};
use tale_graph::{Graph, GraphDb, GraphId, NodeId};
use tale_nhindex::{NhIndex, NhIndexConfig, NodeCandidate};
use tale_shard::{HashPolicy, ShardedTaleDatabase};
use tale_storage::faults;

/// One mutation kind's sweep outcome.
#[derive(Debug, Clone, serde::Serialize)]
pub struct CrashRow {
    /// Mutation swept.
    pub mutation: String,
    /// Gated I/O operations the clean mutation performs — one simulated
    /// crash per point.
    pub fault_points: u64,
    /// Recoveries that rolled back to the pre-mutation state.
    pub rolled_back: u64,
    /// Recoveries that completed to the post-mutation state.
    pub committed: u64,
    /// Every recovery was bit-identical to pre or post and passed the
    /// deep integrity check.
    pub identical: bool,
}

/// Tiny pool so mutations overflow it and exercise eviction write-backs
/// mid-transaction.
fn cfg() -> NhIndexConfig {
    NhIndexConfig {
        sbit: 32,
        buffer_frames: 8,
        parallel_build: false,
        bloom_hashes: 1,
        use_edge_labels: false,
        ..NhIndexConfig::default()
    }
}

fn params() -> TaleParams {
    TaleParams {
        buffer_frames: 8,
        parallel_build: false,
        ..TaleParams::default()
    }
}

fn opts() -> QueryOptions {
    QueryOptions {
        p_imp: 0.5,
        ..QueryOptions::default()
    }
}

/// Six member graphs (cycles with a chord over four labels) plus one kept
/// aside as insertion fodder.
fn corpus() -> (GraphDb, Vec<Graph>, Graph) {
    let mut db = GraphDb::new();
    let labels: Vec<_> = (0..4)
        .map(|i| db.intern_node_label(&format!("L{i}")))
        .collect();
    let build = |k: usize| {
        let mut g = Graph::new_undirected();
        let n: Vec<NodeId> = (0..4 + k % 3)
            .map(|j| g.add_node(labels[(j + k) % 4]))
            .collect();
        for w in n.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        g.add_edge(n[0], n[n.len() - 1]).unwrap();
        g
    };
    let mut graphs = Vec::new();
    for k in 0..6usize {
        let g = build(k);
        db.insert(format!("g{k}"), g.clone());
        graphs.push(g);
    }
    (db, graphs, build(6))
}

fn copy_tree(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_tree(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).unwrap();
        }
    }
}

/// Probes every node of every graph — the single-index "query output"
/// whose bit-identity the sweep checks.
fn probe_matrix(idx: &NhIndex, db: &GraphDb) -> Vec<Vec<NodeCandidate>> {
    let mut out = Vec::new();
    for (gid, _, g) in db.iter() {
        for n in g.nodes() {
            let sig = idx.signature(g, n, &|x| db.effective_label(gid, x));
            let mut hits = idx.probe(&sig, 0.3).unwrap();
            hits.sort_by_key(|h| h.node);
            out.push(hits);
        }
    }
    out
}

/// Sweeps one single-index mutation over all its fault points.
fn sweep_single<F>(db: &GraphDb, pre: &Path, scratch: &Path, name: &str, mutate: F) -> CrashRow
where
    F: Fn(&mut NhIndex) -> tale_nhindex::Result<()>,
{
    let frames = cfg().buffer_frames;
    let pre_idx = NhIndex::open(pre, frames).unwrap();
    let pre_gen = pre_idx.generation();
    let pre_matrix = probe_matrix(&pre_idx, db);
    drop(pre_idx);

    let post_dir = scratch.join("post");
    copy_tree(pre, &post_dir);
    let mut post_idx = NhIndex::open(&post_dir, frames).unwrap();
    mutate(&mut post_idx).unwrap();
    let post_gen = post_idx.generation();
    let post_matrix = probe_matrix(&post_idx, db);
    drop(post_idx);

    let count_dir = scratch.join("count");
    copy_tree(pre, &count_dir);
    let mut idx = NhIndex::open(&count_dir, frames).unwrap();
    faults::arm_counting();
    mutate(&mut idx).unwrap();
    let n = faults::disarm();
    drop(idx);

    let mut row = CrashRow {
        mutation: name.to_owned(),
        fault_points: n,
        rolled_back: 0,
        committed: 0,
        identical: true,
    };
    for i in 0..n {
        let work = scratch.join(format!("fault-{i}"));
        copy_tree(pre, &work);
        let mut idx = NhIndex::open(&work, frames).unwrap();
        faults::arm(i);
        let crashed = mutate(&mut idx).is_err();
        drop(idx);
        faults::disarm();
        let Ok((idx, _)) = NhIndex::open_with_recovery(&work, frames) else {
            row.identical = false;
            continue;
        };
        let matrix = probe_matrix(&idx, db);
        let clean = idx.verify().is_ok_and(|r| r.is_ok());
        if idx.generation() == post_gen && matrix == post_matrix && clean {
            row.committed += 1;
        } else if idx.generation() == pre_gen && matrix == pre_matrix && clean && crashed {
            row.rolled_back += 1;
        } else {
            row.identical = false;
        }
        drop(idx);
        std::fs::remove_dir_all(&work).unwrap();
    }
    row
}

/// Compressed query answers over all probe graphs for the sharded sweep.
type Answers = Vec<Vec<(GraphId, u64, usize)>>;

fn answers(sharded: &ShardedTaleDatabase, queries: &[Graph]) -> Answers {
    queries
        .iter()
        .map(|q| {
            sharded
                .query(q, &opts())
                .unwrap()
                .into_iter()
                .map(|m| (m.graph, m.score.to_bits(), m.matched_nodes))
                .collect()
        })
        .collect()
}

/// Sweeps one sharded-database mutation over all its fault points.
fn sweep_sharded<F>(
    pre: &Path,
    scratch: &Path,
    queries: &[Graph],
    name: &str,
    mutate: F,
) -> CrashRow
where
    F: Fn(&mut ShardedTaleDatabase) -> tale_shard::Result<()>,
{
    let frames = params().buffer_frames;
    let pre_db = ShardedTaleDatabase::open(pre, frames).unwrap();
    let pre_answers = answers(&pre_db, queries);
    drop(pre_db);

    let post_dir = scratch.join("post");
    copy_tree(pre, &post_dir);
    let mut post = ShardedTaleDatabase::open(&post_dir, frames).unwrap();
    mutate(&mut post).unwrap();
    let post_answers = answers(&post, queries);
    drop(post);

    let count_dir = scratch.join("count");
    copy_tree(pre, &count_dir);
    let mut counted = ShardedTaleDatabase::open(&count_dir, frames).unwrap();
    faults::arm_counting();
    mutate(&mut counted).unwrap();
    let n = faults::disarm();
    drop(counted);

    let mut row = CrashRow {
        mutation: name.to_owned(),
        fault_points: n,
        rolled_back: 0,
        committed: 0,
        identical: true,
    };
    for i in 0..n {
        let work = scratch.join(format!("fault-{i}"));
        copy_tree(pre, &work);
        let mut sharded = ShardedTaleDatabase::open(&work, frames).unwrap();
        faults::arm(i);
        let crashed = mutate(&mut sharded).is_err();
        drop(sharded);
        faults::disarm();
        let Ok((recovered, _)) = ShardedTaleDatabase::open_with_recovery(&work, frames) else {
            row.identical = false;
            continue;
        };
        let got = answers(&recovered, queries);
        let clean = recovered
            .index()
            .verify()
            .is_ok_and(|rs| rs.iter().all(|r| r.is_ok()));
        if got == post_answers && clean {
            row.committed += 1;
        } else if got == pre_answers && clean && crashed {
            row.rolled_back += 1;
        } else {
            row.identical = false;
        }
        drop(recovered);
        std::fs::remove_dir_all(&work).unwrap();
    }
    row
}

/// Runs the full crash-safety sweep: single-index insert/remove, sharded
/// insert (journal + manifest rewrite) and remove. Returns one row per
/// mutation kind; `identical` must be true on every row.
pub fn run_crash() -> Vec<CrashRow> {
    let (db, graphs, fodder) = corpus();
    let mut rows = Vec::new();

    // single index over the first five graphs; g5 is single-insert fodder
    {
        let scratch = tempfile::tempdir().unwrap();
        let pre = scratch.path().join("pre");
        let initial: Vec<GraphId> = (0..5).map(GraphId).collect();
        NhIndex::build_subset(&pre, &db, &cfg(), &initial).unwrap();
        rows.push(sweep_single(
            &db,
            &pre,
            scratch.path(),
            "index insert_graph",
            |idx| idx.insert_graph(&db, GraphId(5)),
        ));
        rows.push(sweep_single(
            &db,
            &pre,
            scratch.path(),
            "index remove_graph",
            |idx| idx.remove_graph(GraphId(1), db.effective_vocab_size() as u64),
        ));
    }

    // sharded database (2 shards): insert covers the journal, the
    // graphs.json save and the manifest rewrite on top of the shard WAL
    {
        let scratch = tempfile::tempdir().unwrap();
        let pre = scratch.path().join("pre");
        let built =
            ShardedTaleDatabase::build(db.clone(), &pre, &params(), 2, &HashPolicy).unwrap();
        drop(built);
        let mut queries = graphs.clone();
        queries.push(fodder.clone());
        rows.push(sweep_sharded(
            &pre,
            scratch.path(),
            &queries,
            "sharded insert_graph (journal + manifest)",
            |s| s.insert_graph("late", fodder.clone()).map(|_| ()),
        ));
        rows.push(sweep_sharded(
            &pre,
            scratch.path(),
            &queries,
            "sharded remove_graph",
            |s| s.remove_graph(GraphId(0)),
        ));
    }
    rows
}
