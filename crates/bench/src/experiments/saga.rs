//! E-SAGA — §II's claim about the authors' earlier tool: "While SAGA is
//! very efficient for small graph queries, it is computationally expensive
//! when applied to large graphs. In contrast, TALE focuses on approximate
//! matching for large graph queries." (The full comparison lives in the
//! extended version of the paper.)
//!
//! Reproduction: sweep query size against a fixed contact-graph database;
//! measure per-query time for the SAGA-like fragment matcher vs TALE. The
//! expected crossover: SAGA wins or ties on tiny queries, then its
//! fragment enumeration/assembly cost grows superlinearly with query size
//! while TALE's stays governed by the (fixed-fraction) important-node
//! probes.

use crate::{timed, Scale};
use tale::{QueryOptions, TaleDatabase, TaleParams};
use tale_baselines::saga::FragmentIndex;
use tale_datasets::contact::{ContactDataset, ContactSpec};
use tale_graph::{Graph, NodeId};

/// One query-size point.
#[derive(Debug, Clone)]
pub struct SagaRow {
    /// Query node count.
    pub query_nodes: usize,
    /// Query fragments enumerated (SAGA's workload driver).
    pub query_fragments: usize,
    /// SAGA per-query seconds.
    pub saga_secs: f64,
    /// TALE per-query seconds.
    pub tale_secs: f64,
}

/// Extracts a connected `size`-node query from `g` by BFS from node 0.
fn bfs_subquery(g: &Graph, size: usize) -> Graph {
    let mut picked = Vec::new();
    let mut seen = vec![false; g.node_count()];
    let mut queue = std::collections::VecDeque::from([NodeId(0)]);
    seen[0] = true;
    while let Some(u) = queue.pop_front() {
        picked.push(u);
        if picked.len() >= size {
            break;
        }
        for v in g.neighbors(u) {
            if !seen[v.idx()] {
                seen[v.idx()] = true;
                queue.push_back(v);
            }
        }
    }
    g.induced_subgraph(&picked).0
}

/// Runs the sweep. `sizes` are query node counts.
pub fn run_saga(seed: u64, scale: Scale, sizes: &[usize]) -> Vec<SagaRow> {
    let spec = ContactSpec {
        families: ((60.0 * scale.0 / 0.12).round() as usize).max(4),
        domains_per_family: 10,
        mean_nodes: 186.6,
        mean_edges: 734.2,
    };
    let ds = ContactDataset::generate(seed, &spec);
    let graphs: Vec<Graph> = ds.db.iter().map(|(_, _, g)| g.clone()).collect();

    let saga = FragmentIndex::build(graphs);
    let tale_db = TaleDatabase::build_in_temp(ds.db.clone(), &TaleParams::astral()).expect("build");
    // the largest database graph supplies the sub-queries
    let big = ds
        .db
        .iter()
        .max_by_key(|(_, _, g)| g.node_count())
        .map(|(id, _, _)| id)
        .expect("non-empty db");
    let host = ds.db.graph(big);

    let mut done = std::collections::HashSet::new();
    sizes
        .iter()
        .filter(|&&size| done.insert(size.min(host.node_count())))
        .map(|&size| {
            let q = bfs_subquery(host, size.min(host.node_count()));
            let label_of = |n: NodeId| q.label(n).0;
            let query_fragments = tale_baselines::saga::fragment_count_of(&q, &label_of);
            let (_, saga_secs) = timed(|| saga.query(&q, 20));
            let opts = QueryOptions::astral().with_top_k(20);
            let (_, tale_secs) = timed(|| tale_db.query(&q, &opts).expect("query"));
            SagaRow {
                query_nodes: q.node_count(),
                query_fragments,
                saga_secs,
                tale_secs,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saga_cost_grows_faster_with_query_size() {
        let rows = run_saga(7, Scale(0.02), &[15, 60, 180]);
        assert_eq!(rows.len(), 3);
        // fragment workload grows superlinearly
        assert!(rows[2].query_fragments > 8 * rows[0].query_fragments);
        // SAGA's cost ratio from smallest to largest query outpaces TALE's
        let saga_ratio = rows[2].saga_secs / rows[0].saga_secs.max(1e-6);
        let tale_ratio = rows[2].tale_secs / rows[0].tale_secs.max(1e-6);
        assert!(
            saga_ratio > tale_ratio,
            "saga {saga_ratio:.1}x vs tale {tale_ratio:.1}x"
        );
    }
}
