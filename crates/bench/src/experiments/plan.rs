//! E-PLAN — cost-based planning vs the fixed pipeline on a skewed,
//! label-clustered corpus.
//!
//! The planner's whole contract is "same answers, less traffic": probe
//! reordering, readahead budgets, and shard pruning may only change *how*
//! the index is read, never *what* comes back. This harness builds the
//! corpus shape the planner was designed for — several label *domains*
//! with private label subspaces, placed with `LabelClusteredPolicy` so
//! each shard's vocabulary is narrow — then runs the same top-K workload
//! twice, `PlanMode::Fixed` vs `PlanMode::Cost`, with the result cache
//! off so every probe hits the index. The report records both passes'
//! probe/posting/row traffic and wall clock, the cost pass's pruned-shard
//! and reordered-probe counters, and whether the answers were
//! bit-identical (CI fails the smoke job if they are not, or if the cost
//! pass never proved a single shard prunable).
//!
//! Each query confines its labels to one domain and leads with that
//! domain's *hot* label on its highest-degree node: shards holding no
//! graph of the domain are provably infeasible (pruned), and the hot
//! probe's large row estimate pushes it behind the rare-label probes
//! (reordered).

use crate::{timed, Scale};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tale::{PlanMode, QueryOptions, TaleParams};
use tale_graph::{Graph, GraphDb};
use tale_shard::{LabelClusteredPolicy, ShardedTaleDatabase};

/// Schema version stamped into `BENCH_plan.json`.
pub const PLAN_REPORT_SCHEMA_VERSION: u32 = 1;

/// One execution pass (fixed or cost) over the whole workload.
#[derive(Debug, Clone, serde::Serialize)]
pub struct PlanPassRow {
    /// Plan mode of this pass (`fixed` / `cost`).
    pub mode: String,
    /// Disk probes issued across all shards (after signature dedup).
    pub probes_issued: u64,
    /// B+-tree keys visited across all shards.
    pub keys_scanned: u64,
    /// Postings fetched across all shards.
    pub postings_fetched: u64,
    /// Bitmap rows examined across all shards.
    pub rows_examined: u64,
    /// `(unique query, shard)` executions the planner skipped with a
    /// conservative proof (always 0 in fixed mode).
    pub shards_pruned: u64,
    /// Executed unique queries whose probes ran in cost order rather
    /// than important-node order (always 0 in fixed mode).
    pub probes_reordered: u64,
    /// Wall clock of the pass, seconds.
    pub wall_secs: f64,
}

/// The full E-PLAN report (serialized to `BENCH_plan.json`).
#[derive(Debug, Clone, serde::Serialize)]
pub struct PlanExpReport {
    /// Report format version ([`PLAN_REPORT_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Generator seed.
    pub seed: u64,
    /// Dataset scale factor.
    pub scale: f64,
    /// Cores the OS reports as available.
    pub cores: usize,
    /// Graphs in the corpus.
    pub graphs: usize,
    /// Label domains the corpus is split into.
    pub domains: usize,
    /// Queries in the workload.
    pub queries: usize,
    /// Shard count (label-clustered placement).
    pub shards: usize,
    /// Thread count handed to both passes.
    pub threads: usize,
    /// Top-K cutoff of the workload.
    pub top_k: usize,
    /// The baseline pass (`PlanMode::Fixed`).
    pub fixed: PlanPassRow,
    /// The planned pass (`PlanMode::Cost`).
    pub cost: PlanPassRow,
    /// Whether the two passes' answers matched bit for bit.
    pub identical: bool,
}

/// Labels per domain; label 0 of each domain is its *hot* label.
const LABELS_PER_DOMAIN: usize = 5;

/// Draws a domain-confined label id: the hot label half the time, a
/// uniform rare one otherwise.
fn domain_label(rng: &mut ChaCha8Rng, base: u32) -> u32 {
    if rng.gen_bool(0.5) {
        base
    } else {
        base + 1 + rng.gen_range(0..LABELS_PER_DOMAIN as u32 - 1)
    }
}

/// A connected simple graph of `n` nodes over one domain's labels: a ring
/// plus a few random chords.
fn domain_graph(rng: &mut ChaCha8Rng, base: u32, n: usize) -> Graph {
    let mut g = Graph::new_undirected();
    for _ in 0..n {
        g.add_node(tale_graph::labels::NodeLabel(domain_label(rng, base)));
    }
    let mut edges: std::collections::BTreeSet<(u32, u32)> = (1..n as u32)
        .map(|j| (j - 1, j))
        .chain(std::iter::once((0, n as u32 - 1)))
        .collect();
    while edges.len() < n + n / 3 {
        let a = rng.gen_range(0..n as u32);
        let b = rng.gen_range(0..n as u32);
        if a != b {
            edges.insert((a.min(b), a.max(b)));
        }
    }
    for (a, b) in edges {
        g.add_edge(tale_graph::NodeId(a), tale_graph::NodeId(b))
            .expect("deduplicated simple edges");
    }
    g
}

/// A query over one domain: a hot-labeled hub of degree 5 (probed first
/// by importance, estimated expensive) plus a rare-labeled hub of degree
/// 4 (estimated cheap — the cost order flips the two), over shared
/// leaves.
fn domain_query(rng: &mut ChaCha8Rng, base: u32) -> Graph {
    let mut g = Graph::new_undirected();
    let hot = g.add_node(tale_graph::labels::NodeLabel(base));
    let rare = g.add_node(tale_graph::labels::NodeLabel(
        base + 1 + rng.gen_range(0..LABELS_PER_DOMAIN as u32 - 1),
    ));
    let leaves: Vec<_> = (0..5)
        .map(|_| g.add_node(tale_graph::labels::NodeLabel(domain_label(rng, base))))
        .collect();
    for &l in &leaves[..4] {
        g.add_edge(hot, l).expect("fresh edge");
    }
    for &l in &leaves[1..4] {
        g.add_edge(rare, l).expect("fresh edge");
    }
    g.add_edge(hot, rare).expect("fresh edge");
    g.add_edge(rare, leaves[4]).expect("fresh edge");
    g
}

/// Runs the E-PLAN comparison: one skewed label-clustered corpus, one
/// top-K workload, two passes (fixed, then cost), answers checked
/// bit-identical.
pub fn run_plan(seed: u64, scale: Scale, threads: usize, nshards: usize) -> PlanExpReport {
    const DOMAINS: usize = 6;
    const TOP_K: usize = 8;
    let per_domain = ((60.0 * scale.0).round() as usize).max(4);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x504c_414e); // "PLAN"

    let mut db = GraphDb::new();
    // Intern every domain's private label subspace up front so label id =
    // domain * LABELS_PER_DOMAIN + offset.
    for d in 0..DOMAINS {
        for j in 0..LABELS_PER_DOMAIN {
            db.intern_node_label(&format!("d{d}-l{j}"));
        }
    }
    for d in 0..DOMAINS {
        let base = (d * LABELS_PER_DOMAIN) as u32;
        for i in 0..per_domain {
            let n = rng.gen_range(8..16);
            db.insert(format!("d{d}g{i}"), domain_graph(&mut rng, base, n));
        }
    }
    let graphs = db.len();

    let queries: Vec<Graph> = (0..DOMAINS * 2)
        .map(|q| domain_query(&mut rng, ((q % DOMAINS) * LABELS_PER_DOMAIN) as u32))
        .collect();
    let query_refs: Vec<&Graph> = queries.iter().collect();

    let dir = tempfile::tempdir().expect("tempdir");
    let (sharded, _build) = ShardedTaleDatabase::build_with_stats(
        db,
        dir.path(),
        &TaleParams::bind(),
        nshards,
        &LabelClusteredPolicy,
    )
    .expect("sharded build");

    let mut base_opts = QueryOptions::bind()
        .with_cache(false)
        .with_threads(threads)
        .with_top_k(TOP_K);
    // Both hubs must be probed for reordering to be observable: 7-node
    // queries at the BIND default Pimp=0.15 select a single important
    // node, so raise the fraction to two.
    base_opts.p_imp = 0.3;
    let pass = |mode: PlanMode| {
        let opts = base_opts.clone().with_plan(mode);
        let ((results, stats), wall_secs) = timed(|| {
            sharded
                .query_batch_with_stats(&query_refs, &opts)
                .expect("query pass")
        });
        let row = PlanPassRow {
            mode: mode.name().to_owned(),
            probes_issued: stats.probes_issued,
            keys_scanned: stats.shards.iter().map(|s| s.keys_scanned).sum(),
            postings_fetched: stats.shards.iter().map(|s| s.postings_fetched).sum(),
            rows_examined: stats.shards.iter().map(|s| s.rows_examined).sum(),
            shards_pruned: stats.shards_pruned,
            probes_reordered: stats.probes_reordered,
            wall_secs,
        };
        (results, row)
    };
    let (reference, fixed) = pass(PlanMode::Fixed);
    let (planned, cost) = pass(PlanMode::Cost);

    PlanExpReport {
        schema_version: PLAN_REPORT_SCHEMA_VERSION,
        seed,
        scale: scale.0,
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        graphs,
        domains: DOMAINS,
        queries: queries.len(),
        shards: nshards,
        threads,
        top_k: TOP_K,
        fixed,
        cost,
        identical: super::speedup::identical(&reference, &planned),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The planner must change traffic, not answers: bit-identical
    /// results, at least one shard provably pruned, at least one query's
    /// probes reordered, and strictly fewer probes than the fixed pass.
    #[test]
    fn planned_pass_is_identical_and_prunes() {
        let r = run_plan(44, Scale(0.02), 2, 4);
        assert_eq!(r.schema_version, PLAN_REPORT_SCHEMA_VERSION);
        assert!(r.identical, "fixed and cost answers diverged");
        assert_eq!(r.fixed.shards_pruned, 0);
        assert_eq!(r.fixed.probes_reordered, 0);
        assert!(r.cost.shards_pruned > 0, "no shard was ever pruned");
        assert!(r.cost.probes_reordered > 0, "no probe was ever reordered");
        assert!(
            r.cost.probes_issued < r.fixed.probes_issued,
            "pruning must reduce issued probes ({} vs {})",
            r.cost.probes_issued,
            r.fixed.probes_issued
        );
        assert!(r.cost.postings_fetched <= r.fixed.postings_fetched);
    }
}
