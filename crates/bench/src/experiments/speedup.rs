//! E-SPEED — serial vs. parallel query path on the paper's workloads.
//!
//! The paper's experiments (§VI) are all single-threaded; this harness
//! measures what the `QueryOptions::threads` knob buys on the same
//! workload shapes: a Table II / Table III-style multi-graph PIN corpus
//! (per-candidate-graph fan-out) and a Figure 5-style ASTRAL retrieval
//! run (probe + per-graph fan-out under the C-Tree similarity model).
//! Both modes must return bit-identical results; the row records that
//! check alongside the wall-clock numbers.

use crate::{timed, Scale};
use std::sync::Arc;
use tale::{CTreeStyle, QueryMatch, QueryOptions, TaleDatabase, TaleParams};
use tale_datasets::contact::{ContactDataset, ContactSpec};
use tale_datasets::pin::PinCorpus;
use tale_graph::Graph;

/// One workload's serial-vs-parallel comparison.
#[derive(Debug, Clone, serde::Serialize)]
pub struct SpeedupRow {
    /// Workload label, e.g. "Table 2-style PIN corpus".
    pub workload: &'static str,
    /// Graphs in the database.
    pub graphs: usize,
    /// Queries executed per timed pass.
    pub queries: usize,
    /// Thread count of the parallel pass.
    pub threads: usize,
    /// Cores the OS reports as available — the hard ceiling on any
    /// wall-clock speedup, whatever `threads` asks for.
    pub cores: usize,
    /// Wall clock of the serial pass (threads = 1), seconds.
    pub serial_secs: f64,
    /// Wall clock of the parallel pass, seconds.
    pub parallel_secs: f64,
    /// Whether the two passes returned bit-identical results.
    pub identical: bool,
}

impl SpeedupRow {
    /// serial / parallel wall-clock ratio.
    pub fn speedup(&self) -> f64 {
        self.serial_secs / self.parallel_secs
    }
}

/// Runs both workloads at the given thread count (per-query; the query
/// batch itself is executed serially so the ratio isolates the parallel
/// query path rather than batch-level concurrency). `astral_queries`
/// sizes the Fig. 5-style pass, whose cost dominates the run.
pub fn run_speedup(
    seed: u64,
    scale: Scale,
    threads: usize,
    astral_queries: usize,
) -> Vec<SpeedupRow> {
    vec![
        pin_corpus_speedup(seed, scale, threads),
        astral_speedup(seed, scale, threads, astral_queries),
    ]
}

/// Times one full pass of `queries` against `db`, best-of-`rounds`.
fn best_pass(
    db: &TaleDatabase,
    queries: &[&Graph],
    opts: &QueryOptions,
    rounds: usize,
) -> (Vec<Vec<QueryMatch>>, f64) {
    let mut best = f64::INFINITY;
    let mut results = Vec::new();
    for _ in 0..rounds {
        let (res, secs) = timed(|| {
            queries
                .iter()
                .map(|q| db.query(q, opts).expect("query"))
                .collect::<Vec<_>>()
        });
        if secs < best {
            best = secs;
        }
        results = res;
    }
    (results, best)
}

/// Pair-for-pair equality, including bit-identical scores — the
/// parallel pipeline's determinism claim, not just aggregate agreement.
pub(crate) fn identical(a: &[Vec<QueryMatch>], b: &[Vec<QueryMatch>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(ra, rb)| {
            ra.len() == rb.len()
                && ra.iter().zip(rb).all(|(x, y)| {
                    x.graph == y.graph
                        && x.matched_nodes == y.matched_nodes
                        && x.matched_edges == y.matched_edges
                        && x.score == y.score
                        && x.m.pairs == y.m.pairs
                })
        })
}

fn compare(
    workload: &'static str,
    db: &TaleDatabase,
    graphs: usize,
    queries: &[&Graph],
    opts: &QueryOptions,
    threads: usize,
) -> SpeedupRow {
    const ROUNDS: usize = 2;
    // Cache off: repeated timing rounds would otherwise hit the result
    // cache and measure a hash lookup instead of the query path.
    let opts = &opts.clone().with_cache(false);
    // Warm the buffer pool so the serial pass doesn't pay all the I/O.
    let _ = best_pass(db, queries, &opts.clone().with_threads(1), 1);
    let (serial_res, serial_secs) = best_pass(db, queries, &opts.clone().with_threads(1), ROUNDS);
    let (par_res, parallel_secs) =
        best_pass(db, queries, &opts.clone().with_threads(threads), ROUNDS);
    SpeedupRow {
        workload,
        graphs,
        queries: queries.len(),
        threads,
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        serial_secs,
        parallel_secs,
        identical: identical(&serial_res, &par_res),
    }
}

/// Table II / III-style workload: one multi-graph PIN database (shared
/// ortholog vocabulary, sizes spread like the paper's corpus), queried
/// with the BIND-tuned options. Parallelism comes from the NH-index
/// probe fan-out and the per-candidate-graph matching fan-out.
fn pin_corpus_speedup(seed: u64, scale: Scale, threads: usize) -> SpeedupRow {
    let corpus = PinCorpus::generate(seed, 16, scale.0);
    let graphs = corpus.db.iter().count();
    let query_ids = corpus.queries(None);
    let queries: Vec<&Graph> = query_ids.iter().map(|&g| corpus.db.graph(g)).collect();
    let db =
        TaleDatabase::build_in_temp(corpus.db.clone(), &TaleParams::bind()).expect("index build");
    let opts = QueryOptions::bind();
    compare(
        "Table 2-style PIN corpus",
        &db,
        graphs,
        &queries,
        &opts,
        threads,
    )
}

/// Figure 5-style workload: ASTRAL family retrieval under the C-Tree
/// similarity model, many small contact maps per database.
fn astral_speedup(seed: u64, scale: Scale, threads: usize, n_queries: usize) -> SpeedupRow {
    let spec = ContactSpec::default().scaled(scale.0);
    let ds = ContactDataset::generate(seed, &spec);
    let graphs = ds.db.iter().count();
    let query_ids = ds.pick_queries(seed ^ 0x5a, n_queries);
    let queries: Vec<&Graph> = query_ids.iter().map(|&g| ds.db.graph(g)).collect();
    let db =
        TaleDatabase::build_in_temp(ds.db.clone(), &TaleParams::astral()).expect("index build");
    let max_k = spec.domains_per_family * 2;
    let opts = QueryOptions::astral()
        .with_top_k(max_k)
        .with_similarity(Arc::new(CTreeStyle));
    compare(
        "Figure 5-style ASTRAL retrieval",
        &db,
        graphs,
        &queries,
        &opts,
        threads,
    )
}

/// Batch-vs-sequential comparison of the staged engine, plus the
/// warm-cache pass that proves a result-cache hit never touches the
/// disk index.
#[derive(Debug, Clone, serde::Serialize)]
pub struct BatchSpeedupRow {
    /// Workload label.
    pub workload: &'static str,
    /// Graphs in the database.
    pub graphs: usize,
    /// Queries in the workload (distinct patterns repeated, Table 2
    /// style).
    pub queries: usize,
    /// Distinct queries the batch actually executed.
    pub unique_queries: usize,
    /// Thread count of both passes (same knob — the comparison isolates
    /// batch amortization, not parallelism).
    pub threads: usize,
    /// Cores the OS reports as available.
    pub cores: usize,
    /// Wall clock of N individual `query` calls, seconds.
    pub sequential_secs: f64,
    /// Wall clock of one `query_batch` call over the same N, seconds.
    pub batch_secs: f64,
    /// sequential / batch wall-clock ratio.
    pub speedup: f64,
    /// Whether sequential, batch, and warm-cache passes all returned
    /// bit-identical results.
    pub identical: bool,
    /// Disk probes issued by one sequential pass (cache off).
    pub sequential_probes: u64,
    /// Signatures the batch was asked for across all queries.
    pub batch_probes_requested: u64,
    /// Distinct signatures the batch actually probed on disk.
    pub batch_probes_issued: u64,
    /// Wall clock of a second, cache-warm sequential pass, seconds.
    pub warm_secs: f64,
    /// Result-cache hits in the warm pass (should equal `queries`).
    pub warm_cache_hits: usize,
    /// Disk probes issued during the warm pass (should be 0: a cache
    /// hit returns without touching the index).
    pub warm_probes: u64,
}

/// Runs the Table 2-style batch workload: the PIN corpus's distinct
/// query patterns repeated until the workload holds at least
/// `min_queries` queries — the repeated-motif shape the batch API and
/// the result cache exist for. Both timed passes run with the cache off
/// so the ratio isolates the batch engine's amortization; the warm pass
/// then measures the cache itself.
pub fn run_batch_speedup(
    seed: u64,
    scale: Scale,
    threads: usize,
    min_queries: usize,
) -> BatchSpeedupRow {
    let corpus = PinCorpus::generate(seed, 16, scale.0);
    let graphs = corpus.db.iter().count();
    let base_ids = corpus.queries(None);
    assert!(!base_ids.is_empty(), "corpus produced no queries");
    let mut query_ids = Vec::new();
    while query_ids.len() < min_queries {
        query_ids.extend(base_ids.iter().copied());
    }
    let queries: Vec<&Graph> = query_ids.iter().map(|&g| corpus.db.graph(g)).collect();
    let db =
        TaleDatabase::build_in_temp(corpus.db.clone(), &TaleParams::bind()).expect("index build");
    let cold = QueryOptions::bind().with_threads(threads).with_cache(false);

    // Warm the buffer pool so neither pass pays all the I/O.
    let _ = db.query_batch(&queries, &cold).expect("warmup");

    const ROUNDS: usize = 2;
    // Sequential pass: N independent `query` calls. Counters are
    // snapshotted around a single pass (probe traffic is deterministic,
    // so one pass is representative).
    let c0 = db.index().counters();
    let (seq_res, first_secs) = timed(|| {
        queries
            .iter()
            .map(|q| db.query(q, &cold).expect("query"))
            .collect::<Vec<_>>()
    });
    let sequential_probes = db.index().counters().since(c0).probes;
    let mut sequential_secs = first_secs;
    for _ in 1..ROUNDS {
        let (_, secs) = best_pass(&db, &queries, &cold, 1);
        sequential_secs = sequential_secs.min(secs);
    }

    // Batch pass: one `query_batch` call over the same workload.
    let c0 = db.index().counters();
    let (batch_out, batch_first) = timed(|| db.query_batch_with_stats(&queries, &cold));
    let (batch_res, bstats) = batch_out.expect("batch query");
    let batch_probes = db.index().counters().since(c0).probes;
    debug_assert_eq!(batch_probes, bstats.probes_issued);
    let mut batch_secs = batch_first;
    for _ in 1..ROUNDS {
        let (out, secs) = timed(|| db.query_batch(&queries, &cold));
        let _ = out.expect("batch query");
        batch_secs = batch_secs.min(secs);
    }

    // Warm-cache pass: populate the result cache, then measure a second
    // sequential run. Probe counters must not move — a hit is answered
    // without touching the disk index.
    let warm = cold.clone().with_cache(true);
    let _ = db.query_batch(&queries, &warm).expect("cache fill");
    let c0 = db.index().counters();
    let (warm_out, warm_secs) = timed(|| db.query_batch_with_stats(&queries, &warm));
    let (warm_res, wstats) = warm_out.expect("warm query");
    let warm_probes = db.index().counters().since(c0).probes;

    BatchSpeedupRow {
        workload: "Table 2-style repeated PIN queries",
        graphs,
        queries: queries.len(),
        unique_queries: bstats.unique_queries,
        threads,
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        sequential_secs,
        batch_secs,
        speedup: sequential_secs / batch_secs,
        identical: identical(&seq_res, &batch_res) && identical(&seq_res, &warm_res),
        sequential_probes,
        batch_probes_requested: bstats.probes_requested,
        batch_probes_issued: bstats.probes_issued,
        warm_secs,
        warm_cache_hits: wstats.cache_hits,
        warm_probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The switch must not change answers; the ratio itself is asserted
    /// only loosely (parallel must not be a catastrophic regression)
    /// because CI machines can't promise idle cores — on a single-core
    /// runner the honest ratio is ~1x however many threads are asked for.
    #[test]
    fn parallel_pass_is_identical_and_not_pathological() {
        let rows = run_speedup(44, Scale(0.02), 2, 2);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.identical, "{}: parallel answers diverged", r.workload);
            assert!(r.queries > 0 && r.graphs > 1 && r.cores > 0);
            assert!(
                r.speedup() > 0.2,
                "{}: parallel pass pathologically slow ({}x)",
                r.workload,
                r.speedup()
            );
        }
    }

    /// Batch answers must match the sequential ones bit for bit, batch
    /// probe traffic must be strictly amortized on a repeated workload,
    /// and the warm-cache pass must never touch the disk index. The
    /// wall-clock ratio itself is only loosely bounded (shared CI cores).
    #[test]
    fn batch_pass_is_identical_amortized_and_cache_warmable() {
        let r = run_batch_speedup(44, Scale(0.02), 2, 8);
        assert!(r.identical, "batch or warm answers diverged");
        assert!(r.queries >= 8 && r.unique_queries < r.queries);
        // requested counts the deduped unique queries' signatures; the
        // sequential pass pays for every repeat on top of that
        assert!(r.batch_probes_requested <= r.sequential_probes);
        assert!(r.batch_probes_issued <= r.batch_probes_requested);
        assert!(
            r.batch_probes_issued < r.sequential_probes,
            "repeated queries must share probes ({} issued vs {} sequential)",
            r.batch_probes_issued,
            r.sequential_probes
        );
        assert_eq!(r.warm_cache_hits, r.queries);
        assert_eq!(r.warm_probes, 0, "a cache hit must not touch the index");
        assert!(
            r.speedup > 0.2,
            "batch pathologically slow ({}x)",
            r.speedup
        );
    }
}
