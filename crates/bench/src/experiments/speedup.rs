//! E-SPEED — serial vs. parallel query path on the paper's workloads.
//!
//! The paper's experiments (§VI) are all single-threaded; this harness
//! measures what the `QueryOptions::threads` knob buys on the same
//! workload shapes: a Table II / Table III-style multi-graph PIN corpus
//! (per-candidate-graph fan-out) and a Figure 5-style ASTRAL retrieval
//! run (probe + per-graph fan-out under the C-Tree similarity model).
//! Both modes must return bit-identical results; the row records that
//! check alongside the wall-clock numbers.

use crate::{timed, Scale};
use std::sync::Arc;
use tale::{CTreeStyle, QueryMatch, QueryOptions, TaleDatabase, TaleParams};
use tale_datasets::contact::{ContactDataset, ContactSpec};
use tale_datasets::pin::PinCorpus;
use tale_graph::Graph;

/// One workload's serial-vs-parallel comparison.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// Workload label, e.g. "Table 2-style PIN corpus".
    pub workload: &'static str,
    /// Graphs in the database.
    pub graphs: usize,
    /// Queries executed per timed pass.
    pub queries: usize,
    /// Thread count of the parallel pass.
    pub threads: usize,
    /// Cores the OS reports as available — the hard ceiling on any
    /// wall-clock speedup, whatever `threads` asks for.
    pub cores: usize,
    /// Wall clock of the serial pass (threads = 1), seconds.
    pub serial_secs: f64,
    /// Wall clock of the parallel pass, seconds.
    pub parallel_secs: f64,
    /// Whether the two passes returned bit-identical results.
    pub identical: bool,
}

impl SpeedupRow {
    /// serial / parallel wall-clock ratio.
    pub fn speedup(&self) -> f64 {
        self.serial_secs / self.parallel_secs
    }
}

/// Runs both workloads at the given thread count (per-query; the query
/// batch itself is executed serially so the ratio isolates the parallel
/// query path rather than batch-level concurrency). `astral_queries`
/// sizes the Fig. 5-style pass, whose cost dominates the run.
pub fn run_speedup(
    seed: u64,
    scale: Scale,
    threads: usize,
    astral_queries: usize,
) -> Vec<SpeedupRow> {
    vec![
        pin_corpus_speedup(seed, scale, threads),
        astral_speedup(seed, scale, threads, astral_queries),
    ]
}

/// Times one full pass of `queries` against `db`, best-of-`rounds`.
fn best_pass(
    db: &TaleDatabase,
    queries: &[&Graph],
    opts: &QueryOptions,
    rounds: usize,
) -> (Vec<Vec<QueryMatch>>, f64) {
    let mut best = f64::INFINITY;
    let mut results = Vec::new();
    for _ in 0..rounds {
        let (res, secs) = timed(|| {
            queries
                .iter()
                .map(|q| db.query(q, opts).expect("query"))
                .collect::<Vec<_>>()
        });
        if secs < best {
            best = secs;
        }
        results = res;
    }
    (results, best)
}

/// Pair-for-pair equality, including bit-identical scores — the
/// parallel pipeline's determinism claim, not just aggregate agreement.
fn identical(a: &[Vec<QueryMatch>], b: &[Vec<QueryMatch>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(ra, rb)| {
            ra.len() == rb.len()
                && ra.iter().zip(rb).all(|(x, y)| {
                    x.graph == y.graph
                        && x.matched_nodes == y.matched_nodes
                        && x.matched_edges == y.matched_edges
                        && x.score == y.score
                        && x.m.pairs == y.m.pairs
                })
        })
}

fn compare(
    workload: &'static str,
    db: &TaleDatabase,
    graphs: usize,
    queries: &[&Graph],
    opts: &QueryOptions,
    threads: usize,
) -> SpeedupRow {
    const ROUNDS: usize = 2;
    // Warm the buffer pool so the serial pass doesn't pay all the I/O.
    let _ = best_pass(db, queries, &opts.clone().with_threads(1), 1);
    let (serial_res, serial_secs) = best_pass(db, queries, &opts.clone().with_threads(1), ROUNDS);
    let (par_res, parallel_secs) =
        best_pass(db, queries, &opts.clone().with_threads(threads), ROUNDS);
    SpeedupRow {
        workload,
        graphs,
        queries: queries.len(),
        threads,
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        serial_secs,
        parallel_secs,
        identical: identical(&serial_res, &par_res),
    }
}

/// Table II / III-style workload: one multi-graph PIN database (shared
/// ortholog vocabulary, sizes spread like the paper's corpus), queried
/// with the BIND-tuned options. Parallelism comes from the NH-index
/// probe fan-out and the per-candidate-graph matching fan-out.
fn pin_corpus_speedup(seed: u64, scale: Scale, threads: usize) -> SpeedupRow {
    let corpus = PinCorpus::generate(seed, 16, scale.0);
    let graphs = corpus.db.iter().count();
    let query_ids = corpus.queries(None);
    let queries: Vec<&Graph> = query_ids.iter().map(|&g| corpus.db.graph(g)).collect();
    let db =
        TaleDatabase::build_in_temp(corpus.db.clone(), &TaleParams::bind()).expect("index build");
    let opts = QueryOptions::bind();
    compare(
        "Table 2-style PIN corpus",
        &db,
        graphs,
        &queries,
        &opts,
        threads,
    )
}

/// Figure 5-style workload: ASTRAL family retrieval under the C-Tree
/// similarity model, many small contact maps per database.
fn astral_speedup(seed: u64, scale: Scale, threads: usize, n_queries: usize) -> SpeedupRow {
    let spec = ContactSpec::default().scaled(scale.0);
    let ds = ContactDataset::generate(seed, &spec);
    let graphs = ds.db.iter().count();
    let query_ids = ds.pick_queries(seed ^ 0x5a, n_queries);
    let queries: Vec<&Graph> = query_ids.iter().map(|&g| ds.db.graph(g)).collect();
    let db =
        TaleDatabase::build_in_temp(ds.db.clone(), &TaleParams::astral()).expect("index build");
    let max_k = spec.domains_per_family * 2;
    let opts = QueryOptions::astral()
        .with_top_k(max_k)
        .with_similarity(Arc::new(CTreeStyle));
    compare(
        "Figure 5-style ASTRAL retrieval",
        &db,
        graphs,
        &queries,
        &opts,
        threads,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The switch must not change answers; the ratio itself is asserted
    /// only loosely (parallel must not be a catastrophic regression)
    /// because CI machines can't promise idle cores — on a single-core
    /// runner the honest ratio is ~1x however many threads are asked for.
    #[test]
    fn parallel_pass_is_identical_and_not_pathological() {
        let rows = run_speedup(44, Scale(0.02), 2, 2);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.identical, "{}: parallel answers diverged", r.workload);
            assert!(r.queries > 0 && r.graphs > 1 && r.cores > 0);
            assert!(
                r.speedup() > 0.2,
                "{}: parallel pass pathologically slow ({}x)",
                r.workload,
                r.speedup()
            );
        }
    }
}
