//! E-T1 — Table I: PINs of human, mouse and rat (node/edge counts).
//!
//! With synthetic data the table is reproduced by construction; this
//! experiment materializes the generator output and reports the actual
//! counts so EXPERIMENTS.md can show paper-vs-measured side by side.

use crate::Scale;
use tale_datasets::pin::{SpeciesPins, HUMAN, MOUSE, RAT};

/// One species row.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Species name.
    pub species: String,
    /// Paper's node count.
    pub paper_nodes: usize,
    /// Paper's edge count.
    pub paper_edges: usize,
    /// Generated node count.
    pub nodes: usize,
    /// Generated edge count.
    pub edges: usize,
}

/// Generates the mammal PINs and reports their statistics. Returns the
/// rows and the generated dataset (reused by Table II / ablation).
pub fn run_table1(seed: u64, scale: Scale) -> (Vec<Table1Row>, SpeciesPins) {
    let specs = [HUMAN, MOUSE, RAT].map(|s| tale_datasets::pin::PinSpec {
        name: s.name,
        nodes: ((s.nodes as f64 * scale.0).round() as usize).max(30),
        edges: ((s.edges as f64 * scale.0).round() as usize).max(40),
    });
    let pins = SpeciesPins::generate(seed, &specs, 60, 12);
    let rows = [HUMAN, MOUSE, RAT]
        .iter()
        .map(|paper| {
            let gid = pins.species[paper.name];
            let g = pins.db.graph(gid);
            Table1Row {
                species: paper.name.to_owned(),
                paper_nodes: paper.nodes,
                paper_edges: paper.edges,
                nodes: g.node_count(),
                edges: g.edge_count(),
            }
        })
        .collect();
    (rows, pins)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_paper_counts() {
        let (rows, _) = run_table1(1, Scale(1.0));
        for r in &rows {
            assert_eq!(r.nodes, r.paper_nodes, "{}", r.species);
            let err = (r.edges as f64 - r.paper_edges as f64).abs() / r.paper_edges as f64;
            assert!(
                err <= 0.05,
                "{} edges {} vs {}",
                r.species,
                r.edges,
                r.paper_edges
            );
        }
    }

    #[test]
    fn scaled_down_proportional() {
        let (rows, _) = run_table1(1, Scale(0.1));
        let human = &rows[0];
        assert_eq!(human.nodes, 847);
    }
}
