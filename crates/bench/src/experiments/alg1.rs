//! E-ALG1 — §IV-D's in-text simulation: Algorithm 1 (bit-sliced probe)
//! vs the naive per-row bitmap scan.
//!
//! Paper setup: "12 bitmap indexes with increasing sizes … 16 up to 32768
//! nodes. Each neighbor array … 32 bits. 50 randomly generated query
//! neighbor arrays." Reported result: speedups from 2× (smallest) to
//! more than 12× (largest).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use tale_nhindex::bitprobe::{probe_bitsliced, probe_naive, ColumnBitmap};

/// One bitmap size's timing comparison.
#[derive(Debug, Clone, Copy)]
pub struct Alg1Row {
    /// Rows in the bitmap (database nodes sharing the key).
    pub rows: usize,
    /// Mean bit-sliced probe time (ns) over the query set.
    pub bitsliced_ns: f64,
    /// Mean naive scan time (ns).
    pub naive_ns: f64,
    /// `naive / bitsliced`.
    pub speedup: f64,
}

/// Builds a random bitmap with `rows` rows × 32 bits.
pub fn random_bitmap(rng: &mut ChaCha8Rng, rows: usize, sbit: u32) -> ColumnBitmap {
    let mut bm = ColumnBitmap::new(rows, sbit);
    for r in 0..rows {
        for j in 0..sbit {
            // ~25% fill: neighbor arrays are sparse in practice
            if rng.gen_bool(0.25) {
                bm.set(r, j);
            }
        }
    }
    bm
}

/// Random 32-bit query array as words.
pub fn random_query(rng: &mut ChaCha8Rng, sbit: u32) -> Vec<u64> {
    let words = (sbit as usize).div_ceil(64);
    let mask = if sbit % 64 == 0 {
        u64::MAX
    } else {
        (1u64 << (sbit % 64)) - 1
    };
    (0..words)
        .map(|w| {
            let v: u64 = rng.gen::<u64>() & rng.gen::<u64>(); // ~25% fill
            if w == words - 1 {
                v & mask
            } else {
                v
            }
        })
        .collect()
}

/// Runs the §IV-D simulation: 12 bitmap sizes 16..32768, 50 queries each.
pub fn run_alg1(seed: u64, n_queries: usize) -> Vec<Alg1Row> {
    let sbit = 32u32;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let sizes: Vec<usize> = (4..=15).map(|p| 1usize << p).collect(); // 16..32768
    let queries: Vec<Vec<u64>> = (0..n_queries)
        .map(|_| random_query(&mut rng, sbit))
        .collect();
    let nbmiss = 2u32; // ρ·d for a typical query node

    sizes
        .into_iter()
        .map(|rows| {
            let bm = random_bitmap(&mut rng, rows, sbit);
            // warm up + verify agreement, then time
            for q in &queries {
                let a = probe_bitsliced(&bm, q, nbmiss);
                let b = probe_naive(&bm, q, nbmiss);
                assert_eq!(a.rows, b.rows, "probe implementations disagree");
            }
            let reps = (200_000 / rows).clamp(3, 2000);
            let t0 = std::time::Instant::now();
            for _ in 0..reps {
                for q in &queries {
                    std::hint::black_box(probe_bitsliced(&bm, q, nbmiss));
                }
            }
            let bitsliced_ns = t0.elapsed().as_nanos() as f64 / (reps * queries.len()) as f64;
            let t1 = std::time::Instant::now();
            for _ in 0..reps {
                for q in &queries {
                    std::hint::black_box(probe_naive(&bm, q, nbmiss));
                }
            }
            let naive_ns = t1.elapsed().as_nanos() as f64 / (reps * queries.len()) as f64;
            Alg1Row {
                rows,
                bitsliced_ns,
                naive_ns,
                speedup: naive_ns / bitsliced_ns,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_cover_paper_sizes() {
        let rows = run_alg1(1, 3);
        assert_eq!(rows.len(), 12);
        assert_eq!(rows[0].rows, 16);
        assert_eq!(rows[11].rows, 32768);
    }

    #[test]
    fn speedup_grows_with_bitmap_size() {
        let rows = run_alg1(2, 5);
        // the paper's shape: larger bitmaps favor the bit-sliced probe;
        // compare the largest against the smallest
        assert!(
            rows[11].speedup > rows[0].speedup,
            "speedup small={:.2} large={:.2}",
            rows[0].speedup,
            rows[11].speedup
        );
        // and at the top end the bit-sliced probe must win clearly
        assert!(
            rows[11].speedup > 2.0,
            "large speedup {:.2}",
            rows[11].speedup
        );
    }
}
