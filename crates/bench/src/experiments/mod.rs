//! Experiment modules, one per paper artifact. See the per-module docs
//! for the exact paper claim each one regenerates.

pub mod ablation;
pub mod alg1;
pub mod chaos;
pub mod cold;
#[cfg(feature = "failpoints")]
pub mod crash;
pub mod fig5;
pub mod fig789;
pub mod kegg;
pub mod mvcc;
pub mod pimp;
pub mod plan;
pub mod probe;
pub mod saga;
pub mod serve;
pub mod shard;
pub mod speedup;
pub mod table1;
pub mod table2;
pub mod table3;
