//! E-SHARD — partitioned NH-Index build and scatter/gather querying.
//!
//! The paper builds one NH-Index over the whole database (§V); this
//! harness measures what partitioning that index into N independent
//! shards buys on the same Table 2-style PIN corpus: build-side, each
//! shard bulk-loads its own B+-tree concurrently (the parallelism here
//! goes *beyond* `parallel_build`'s per-graph split — whole shards build
//! independently); query-side, the scatter/gather executor must return
//! results bit-identical to the single-index path at every shard count.
//! Each row records both halves plus the placement skew, and the JSON
//! report pins `cores` so the wall-clock ratios stay interpretable —
//! on a 1-core machine the honest build speedup is ~1x no matter how
//! many shards are asked for.

use crate::{timed, Scale};
use tale::{QueryOptions, TaleDatabase, TaleParams};
use tale_datasets::pin::PinCorpus;
use tale_graph::Graph;
use tale_shard::{HashPolicy, ShardedTaleDatabase};

/// Schema version stamped into `BENCH_shard.json`.
pub const SHARD_REPORT_SCHEMA_VERSION: u32 = 1;

/// One shard count's build + query measurements.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ShardRow {
    /// Shard count of this configuration.
    pub shards: usize,
    /// Wall clock of the full sharded build (all shards + manifest +
    /// graph store), best of the timing rounds, seconds.
    pub build_secs: f64,
    /// Wall clock of the slowest single shard's extract/sort/bulk-load
    /// in the measured round — the build's critical path.
    pub max_shard_build_secs: f64,
    /// Build skew: slowest shard / mean shard time (1.0 = perfectly
    /// even placement).
    pub build_skew: f64,
    /// Graphs placed on each shard, in shard order.
    pub graphs_per_shard: Vec<usize>,
    /// single-index build / sharded build wall-clock ratio.
    pub build_speedup: f64,
    /// Wall clock of one scatter/gather pass over the query workload,
    /// seconds.
    pub query_secs: f64,
    /// Query-time skew across shards (slowest / mean wall time).
    pub query_shard_skew: f64,
    /// Disk probes issued against each shard during the measured query
    /// pass, in shard order.
    pub shard_probes: Vec<u64>,
    /// Whether the sharded results matched the single-index reference
    /// bit for bit.
    pub identical: bool,
}

/// The full E-SHARD report (serialized to `BENCH_shard.json`).
#[derive(Debug, Clone, serde::Serialize)]
pub struct ShardReport {
    /// Report format version ([`SHARD_REPORT_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Generator seed.
    pub seed: u64,
    /// Dataset scale factor.
    pub scale: f64,
    /// Cores the OS reports as available — the hard ceiling on any
    /// build speedup, whatever the shard count.
    pub cores: usize,
    /// Graphs in the corpus.
    pub graphs: usize,
    /// Queries in the workload.
    pub queries: usize,
    /// Thread count handed to the query passes.
    pub threads: usize,
    /// Wall clock of the single-index baseline build, best of the
    /// timing rounds, seconds.
    pub single_build_secs: f64,
    /// One row per shard count.
    pub rows: Vec<ShardRow>,
}

/// Runs the E-SHARD comparison: a single-index baseline build + query
/// pass, then one sharded build + scatter/gather pass per entry of
/// `shard_counts`, with hash placement throughout. Results are checked
/// bit-identical against the baseline.
pub fn run_shard(seed: u64, scale: Scale, threads: usize, shard_counts: &[usize]) -> ShardReport {
    const ROUNDS: usize = 2;
    let corpus = PinCorpus::generate(seed, 16, scale.0);
    let graphs = corpus.db.iter().count();
    let query_ids = corpus.queries(None);
    let queries: Vec<&Graph> = query_ids.iter().map(|&g| corpus.db.graph(g)).collect();
    let params = TaleParams::bind();
    let opts = QueryOptions::bind().with_cache(false).with_threads(threads);

    // Baseline: the unsharded build and its answers.
    let mut single_build_secs = f64::INFINITY;
    let mut single = None;
    for _ in 0..ROUNDS {
        let (db, secs) =
            timed(|| TaleDatabase::build_in_temp(corpus.db.clone(), &params).expect("index build"));
        if secs < single_build_secs {
            single_build_secs = secs;
            single = Some(db);
        }
    }
    let single = single.expect("at least one build round");
    let reference = single.query_batch(&queries, &opts).expect("baseline query");

    let rows = shard_counts
        .iter()
        .map(|&nshards| {
            let mut build_secs = f64::INFINITY;
            let mut built = None;
            for _ in 0..ROUNDS {
                let dir = tempfile::tempdir().expect("tempdir");
                let (out, secs) = timed(|| {
                    ShardedTaleDatabase::build_with_stats(
                        corpus.db.clone(),
                        dir.path(),
                        &params,
                        nshards,
                        &HashPolicy,
                    )
                    .expect("sharded build")
                });
                // keep the stats from the same round as the best time,
                // so the per-shard breakdown matches `build_secs`
                if secs < build_secs {
                    build_secs = secs;
                    built = Some((out, dir));
                }
            }
            let ((sharded, bstats), _dir) = built.expect("at least one build round");

            let ((results, qstats), query_secs) = timed(|| {
                sharded
                    .query_batch_with_stats(&queries, &opts)
                    .expect("sharded query")
            });
            ShardRow {
                shards: nshards,
                build_secs,
                max_shard_build_secs: bstats.per_shard_secs.iter().copied().fold(0.0, f64::max),
                build_skew: bstats.skew(),
                graphs_per_shard: bstats.graphs_per_shard.clone(),
                build_speedup: single_build_secs / build_secs,
                query_secs,
                query_shard_skew: qstats.shard_skew(),
                shard_probes: qstats.shards.iter().map(|s| s.probes).collect(),
                identical: super::speedup::identical(&reference, &results),
            }
        })
        .collect();

    ShardReport {
        schema_version: SHARD_REPORT_SCHEMA_VERSION,
        seed,
        scale: scale.0,
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        graphs,
        queries: queries.len(),
        threads,
        single_build_secs,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sharding must not change answers at any shard count, placement
    /// must cover every shard, and the ratio is only loosely bounded —
    /// on a 1-core runner the honest build speedup is ~1x, so the test
    /// asserts sanity (not pathological), never a floor above 1.
    #[test]
    fn shard_report_is_identical_and_sane() {
        let r = run_shard(44, Scale(0.02), 2, &[1, 2, 4]);
        assert_eq!(r.schema_version, SHARD_REPORT_SCHEMA_VERSION);
        assert_eq!(r.rows.len(), 3);
        assert!(r.graphs > 1 && r.queries > 0 && r.cores > 0);
        for row in &r.rows {
            assert!(row.identical, "{} shards: answers diverged", row.shards);
            assert_eq!(row.graphs_per_shard.len(), row.shards);
            assert_eq!(row.shard_probes.len(), row.shards);
            assert_eq!(
                row.graphs_per_shard.iter().sum::<usize>(),
                r.graphs,
                "{} shards: placement must cover every graph",
                row.shards
            );
            assert!(row.build_skew >= 1.0 || row.shards == 1);
            assert!(
                row.build_speedup > 0.2,
                "{} shards: build pathologically slow ({}x)",
                row.shards,
                row.build_speedup
            );
        }
    }
}
