//! E-F7/F8/F9 — Figures 7, 8, 9: ASTRAL scalability.
//!
//! Paper setup: datasets from 200 graphs up to the full 75 626; 20
//! queries, top-20 results each. Reported shapes: index construction
//! time (Fig. 7) and index size (Fig. 8) grow steadily/linearly with the
//! database; average query time (Fig. 9) "scales nicely" (sub-linear,
//! gentle growth).

use crate::{timed, Scale};
use tale::{QueryOptions, TaleDatabase, TaleParams};
use tale_datasets::contact::{ContactDataset, ContactSpec};
use tale_graph::GraphDb;

/// One database-size point across the three figures.
#[derive(Debug, Clone)]
pub struct Fig789Row {
    /// Graphs in the database.
    pub graphs: usize,
    /// Fig. 7: index construction seconds.
    pub build_secs: f64,
    /// Fig. 8: index size in bytes.
    pub index_bytes: u64,
    /// Fig. 9: mean query seconds (top-20).
    pub query_secs: f64,
}

/// Runs the sweep. `sizes` are database graph counts (the paper's run is
/// 200..75 626; scaled runs use proportional points). Queries are drawn
/// from the smallest dataset, as in the paper.
pub fn run_fig789(seed: u64, sizes: &[usize], n_queries: usize) -> Vec<Fig789Row> {
    let max = *sizes.iter().max().expect("non-empty sizes");
    let spec = ContactSpec {
        families: max.div_ceil(10),
        domains_per_family: 10,
        ..ContactSpec::default()
    };
    let ds = ContactDataset::generate(seed, &spec);
    let queries = ds.pick_queries(seed ^ 0x77, n_queries);
    // restrict queries to graphs inside the smallest prefix
    let smallest = *sizes.iter().min().expect("non-empty");
    let queries: Vec<_> = queries
        .into_iter()
        .map(|q| tale_graph::GraphId(q.0 % smallest as u32))
        .collect();

    let mut rows = Vec::new();
    for &n in sizes {
        let sub = prefix_db(&ds.db, n);
        let (tale_db, build_secs) =
            timed(|| TaleDatabase::build_in_temp(sub, &TaleParams::astral()).expect("build"));
        let opts = QueryOptions::astral().with_top_k(20);
        let mut total = 0.0;
        for &q in &queries {
            let qg = ds.db.graph(q);
            let (_, secs) = timed(|| tale_db.query(qg, &opts).expect("query"));
            total += secs;
        }
        rows.push(Fig789Row {
            graphs: n,
            build_secs,
            index_bytes: tale_db.index_size_bytes(),
            query_secs: total / queries.len().max(1) as f64,
        });
    }
    rows
}

/// Default size ladder for a given scale: the paper's 200..75 626 sweep
/// compressed proportionally (5 points).
pub fn default_sizes(scale: Scale) -> Vec<usize> {
    let full = [200usize, 9_600, 28_800, 52_800, 75_626];
    full.iter()
        .map(|&s| ((s as f64 * scale.0).round() as usize).clamp(20, 75_626))
        .collect()
}

fn prefix_db(db: &GraphDb, n: usize) -> GraphDb {
    let mut out = GraphDb::new();
    for (_, name) in db.node_vocab().iter() {
        out.intern_node_label(name);
    }
    for (id, name, g) in db.iter().take(n) {
        let _ = id;
        out.insert(name.to_owned(), g.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_shapes() {
        let rows = run_fig789(6, &[30, 120, 240], 4);
        assert_eq!(rows.len(), 3);
        // Fig. 8: index size grows with the database, roughly linearly
        assert!(rows[2].index_bytes > rows[0].index_bytes * 3);
        assert!(rows[2].index_bytes < rows[0].index_bytes * 30);
        // Fig. 7: build time grows
        assert!(rows[2].build_secs > rows[0].build_secs);
        // Fig. 9: query time stays bounded (these are debug-build tests;
        // release runs are ~10x faster)
        assert!(rows.iter().all(|r| r.query_secs < 15.0));
    }
}
