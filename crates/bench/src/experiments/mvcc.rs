//! E-MVCC — query latency while the index folds in the background.
//!
//! The paper's motivating scenario is a database that keeps serving
//! queries while the corpus grows. Before the generational index, a fold
//! (rebuilding the on-disk structure to absorb accumulated inserts) held
//! the writer lock for its whole run — every query arriving in that
//! window stalled for the full rebuild. With MVCC generations the fold
//! builds off to the side and commits with one atomic manifest flip, so
//! a query's worst case is unchanged from its quiet-system baseline.
//!
//! This cell measures exactly that: per-query latency on a quiet system,
//! then per-query latency while a fold runs concurrently. The fold's own
//! wall clock is reported as `fold_secs` — the stall an exclusive-lock
//! design would have imposed on an unlucky query — and the headline
//! ratio is worst observed query latency over that stall. Answers during
//! the fold are checked bit-identical to the baseline (a fold changes
//! representation, never contents).

use crate::{timed, Scale};
use tale::{QueryMatch, QueryOptions, TaleDatabase, TaleParams};
use tale_datasets::pin::PinCorpus;
use tale_graph::Graph;

/// Schema version stamped into `BENCH_mvcc.json`.
pub const MVCC_REPORT_SCHEMA_VERSION: u32 = 1;

/// The E-MVCC report (serialized to `BENCH_mvcc.json`).
#[derive(Debug, Clone, serde::Serialize)]
pub struct MvccReport {
    /// Report format version ([`MVCC_REPORT_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Generator seed.
    pub seed: u64,
    /// Dataset scale factor.
    pub scale: f64,
    /// Cores the OS reports as available.
    pub cores: usize,
    /// Graphs in the folded base.
    pub graphs: usize,
    /// Graphs inserted into the delta overlay before measuring (the work
    /// the background fold absorbs).
    pub delta_graphs: usize,
    /// Queries per measurement pass.
    pub queries: usize,
    /// Thread count handed to each query.
    pub threads: usize,
    /// Quiet-system per-query latency, median, milliseconds.
    pub baseline_p50_ms: f64,
    /// Quiet-system per-query latency, 99th percentile, milliseconds.
    pub baseline_p99_ms: f64,
    /// Wall clock of the background fold, seconds — the stall an
    /// exclusive-lock design would impose on queries in its window.
    pub fold_secs: f64,
    /// Per-query latency while the fold ran, median, milliseconds.
    pub during_p50_ms: f64,
    /// Per-query latency while the fold ran, 99th percentile,
    /// milliseconds.
    pub during_p99_ms: f64,
    /// Worst single query observed while the fold ran, milliseconds.
    pub during_max_ms: f64,
    /// Queries completed while the fold was in flight (at least one full
    /// pass runs even if the fold finishes first, so tiny scales stay
    /// meaningful).
    pub queries_during_fold: usize,
    /// Worst during-fold query latency as a fraction of the fold's wall
    /// clock — what the unluckiest query paid, relative to what it would
    /// have paid under an exclusive lock (1.0 = no better than
    /// stalling).
    pub worst_query_vs_stall: f64,
    /// Whether every during-fold answer matched the quiet-system answer
    /// bit for bit.
    pub identical: bool,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx]
}

/// Runs the E-MVCC comparison: a quiet-system latency pass, then the
/// same workload with a fold running in the background, answers checked
/// bit-identical throughout.
pub fn run_mvcc(seed: u64, scale: Scale, threads: usize) -> MvccReport {
    let corpus = PinCorpus::generate(seed, 16, scale.0);
    let graphs = corpus.db.len();
    let query_ids = corpus.queries(None);
    let queries: Vec<&Graph> = query_ids.iter().map(|&g| corpus.db.graph(g)).collect();
    let params = TaleParams::bind();
    // Uncached on purpose: the cell measures index-path latency, and the
    // engine's generation-keyed cache would turn repeat passes into pure
    // cache reads.
    let opts = QueryOptions::bind().with_cache(false).with_threads(threads);

    let db = TaleDatabase::build_in_temp(corpus.db.clone(), &params).expect("index build");

    // Give the fold real work: re-insert a slice of the corpus as delta
    // graphs (same vocabulary by construction).
    let delta_graphs = (graphs / 8).clamp(2, 32);
    for k in 0..delta_graphs {
        let g = corpus.db.graph(tale_graph::GraphId(k as u32)).clone();
        db.insert_graph(format!("delta{k}"), g)
            .expect("delta insert");
    }

    // Quiet-system baseline: one warm-up pass, one measured pass.
    let reference: Vec<Vec<QueryMatch>> = queries
        .iter()
        .map(|q| db.query(q, &opts).expect("baseline query"))
        .collect();
    let mut baseline_ms: Vec<f64> = queries
        .iter()
        .map(|q| timed(|| db.query(q, &opts).expect("baseline query")).1 * 1e3)
        .collect();
    baseline_ms.sort_by(f64::total_cmp);

    // The measured phase: a background fold, queries hammering away.
    let mut during_ms: Vec<f64> = Vec::new();
    let mut during_answers: Vec<Vec<QueryMatch>> = Vec::new();
    let mut fold_secs = 0.0;
    let fold_done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let handle = scope.spawn(|| {
            let (report, secs) = timed(|| db.fold().expect("fold"));
            fold_done.store(true, std::sync::atomic::Ordering::Release);
            (report, secs)
        });
        let mut pass = 0usize;
        while pass == 0 || !fold_done.load(std::sync::atomic::Ordering::Acquire) {
            for q in &queries {
                let (res, secs) = timed(|| db.query(q, &opts).expect("during-fold query"));
                during_ms.push(secs * 1e3);
                if pass == 0 {
                    during_answers.push(res);
                }
            }
            pass += 1;
        }
        let (report, secs) = handle.join().expect("fold thread");
        assert_eq!(report.folded_inserts as usize, delta_graphs);
        fold_secs = secs;
    });

    let identical = super::speedup::identical(&reference, &during_answers);
    let queries_during_fold = during_ms.len();
    during_ms.sort_by(f64::total_cmp);
    let during_max_ms = during_ms.last().copied().unwrap_or(0.0);

    MvccReport {
        schema_version: MVCC_REPORT_SCHEMA_VERSION,
        seed,
        scale: scale.0,
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        graphs,
        delta_graphs,
        queries: queries.len(),
        threads,
        baseline_p50_ms: percentile(&baseline_ms, 0.5),
        baseline_p99_ms: percentile(&baseline_ms, 0.99),
        fold_secs,
        during_p50_ms: percentile(&during_ms, 0.5),
        during_p99_ms: percentile(&during_ms, 0.99),
        during_max_ms,
        queries_during_fold,
        worst_query_vs_stall: if fold_secs > 0.0 {
            (during_max_ms / 1e3) / fold_secs
        } else {
            0.0
        },
        identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Answers under a concurrent fold must stay bit-identical, the
    /// harness must actually overlap queries with the fold window, and
    /// the latency fields must be coherent (sorted percentiles, max is
    /// the max). No wall-clock floor is asserted — CI machines are too
    /// noisy — the ratio is reported, not gated.
    #[test]
    fn mvcc_report_is_identical_and_sane() {
        let r = run_mvcc(44, Scale(0.02), 2);
        assert_eq!(r.schema_version, MVCC_REPORT_SCHEMA_VERSION);
        assert!(r.identical, "answers diverged under a concurrent fold");
        assert!(r.graphs > 1 && r.queries > 0 && r.delta_graphs >= 2);
        assert!(r.queries_during_fold >= r.queries);
        assert!(r.fold_secs > 0.0);
        assert!(r.baseline_p50_ms <= r.baseline_p99_ms);
        assert!(r.during_p50_ms <= r.during_p99_ms);
        assert!(r.during_p99_ms <= r.during_max_ms);
    }
}
