//! Experiment harness: one module per table/figure of the paper's
//! evaluation section (§IV-D and §VI), shared between the `experiments`
//! binary and the criterion benches.
//!
//! Every experiment takes a [`Scale`] so the same code runs both as a
//! quick smoke (CI, `cargo bench`) and at the paper's full sizes
//! (`TALE_SCALE=1.0 experiments all`). Absolute numbers differ from the
//! paper (synthetic data, our storage engine, different hardware); the
//! harness reports the *shape* — who wins, rough factors, growth trends —
//! which is what EXPERIMENTS.md records against the paper's claims.

pub mod experiments;

pub use experiments::ablation::{run_ablation, AblationReport};
pub use experiments::alg1::{run_alg1, Alg1Row};
pub use experiments::fig5::{run_fig5, Fig5Report};
pub use experiments::fig789::{run_fig789, Fig789Row};
pub use experiments::kegg::{run_kegg, KeggExpReport};
pub use experiments::pimp::{run_pimp, PimpRow};
pub use experiments::plan::{run_plan, PlanExpReport};
pub use experiments::probe::{run_probe, ProbeExpReport};
pub use experiments::saga::{run_saga, SagaRow};
pub use experiments::serve::{run_serve, ServeReport};
pub use experiments::table1::{run_table1, Table1Row};
pub use experiments::table2::{run_table2, Table2Row};
pub use experiments::table3::{run_table3_fig6, Fig6Cell, Table3Fig6Report, Table3Row};

/// Workload scaling knob shared by all experiments.
#[derive(Debug, Clone, Copy)]
pub struct Scale(pub f64);

impl Scale {
    /// Reads `TALE_SCALE` from the environment (default `default`).
    pub fn from_env(default: f64) -> Scale {
        let v = std::env::var("TALE_SCALE")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(default);
        Scale(v.clamp(0.001, 1.0))
    }
}

/// Wall-clock helper returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = std::time::Instant::now();
    let r = f();
    (r, start.elapsed().as_secs_f64())
}
