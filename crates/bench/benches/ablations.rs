//! Design-choice ablations called out in DESIGN.md §7:
//! importance measures (§VI-D generalized), Hungarian vs greedy anchor
//! assignment, 1-hop vs 2-hop extension, and buffer-pool sensitivity
//! (the disk-residency claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tale::{ImportanceMeasure, QueryOptions, TaleDatabase, TaleParams};
use tale_datasets::contact::{ContactDataset, ContactSpec};

fn setup() -> (TaleDatabase, tale_graph::Graph) {
    let spec = ContactSpec {
        families: 12,
        domains_per_family: 10,
        mean_nodes: 100.0,
        mean_edges: 380.0,
    };
    let ds = ContactDataset::generate(20080407, &spec);
    let q = ds.db.graph(ds.pick_queries(5, 1)[0]).clone();
    let tale_db = TaleDatabase::build_in_temp(ds.db, &TaleParams::astral()).expect("build");
    (tale_db, q)
}

fn bench_importance(c: &mut Criterion) {
    let (tale_db, q) = setup();
    let mut group = c.benchmark_group("ablation/importance");
    group.sample_size(10);
    for (name, m) in [
        ("degree", ImportanceMeasure::Degree),
        ("closeness", ImportanceMeasure::Closeness),
        ("betweenness", ImportanceMeasure::Betweenness),
        ("eigenvector", ImportanceMeasure::Eigenvector),
        ("random", ImportanceMeasure::Random(7)),
    ] {
        let opts = QueryOptions::astral().with_top_k(20).with_importance(m);
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| tale_db.query(&q, &opts).expect("query"))
        });
    }
    group.finish();
}

fn bench_anchor_assignment(c: &mut Criterion) {
    let (tale_db, q) = setup();
    let mut group = c.benchmark_group("ablation/anchors");
    group.sample_size(10);
    for greedy in [false, true] {
        let opts = QueryOptions {
            greedy_anchors: greedy,
            top_k: Some(20),
            ..QueryOptions::astral()
        };
        let name = if greedy { "greedy" } else { "hungarian" };
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| tale_db.query(&q, &opts).expect("query"))
        });
    }
    group.finish();
}

fn bench_hops(c: &mut Criterion) {
    let (tale_db, q) = setup();
    let mut group = c.benchmark_group("ablation/hops");
    group.sample_size(10);
    for hops in [1u8, 2] {
        let opts = QueryOptions {
            hops,
            top_k: Some(20),
            ..QueryOptions::astral()
        };
        group.bench_function(BenchmarkId::from_parameter(hops), |b| {
            b.iter(|| tale_db.query(&q, &opts).expect("query"))
        });
    }
    group.finish();
}

fn bench_buffer_pool(c: &mut Criterion) {
    let spec = ContactSpec {
        families: 12,
        domains_per_family: 10,
        mean_nodes: 100.0,
        mean_edges: 380.0,
    };
    let ds = ContactDataset::generate(20080407, &spec);
    let q = ds.db.graph(ds.pick_queries(5, 1)[0]).clone();
    let mut group = c.benchmark_group("ablation/buffer_frames");
    group.sample_size(10);
    for &frames in &[16usize, 256, 4096] {
        let params = TaleParams {
            buffer_frames: frames,
            ..TaleParams::astral()
        };
        let tale_db = TaleDatabase::build_in_temp(ds.db.clone(), &params).expect("build");
        let opts = QueryOptions::astral().with_top_k(20);
        group.bench_function(BenchmarkId::from_parameter(frames), |b| {
            b.iter(|| tale_db.query(&q, &opts).expect("query"))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_importance,
    bench_anchor_assignment,
    bench_hops,
    bench_buffer_pool
);
criterion_main!(benches);
