//! E-T3 / E-F7 / E-F8 criterion bench: NH-Index construction cost and
//! size as the database grows (Table III, Figs. 7–8), plus a
//! deterministic-vs-Bloom neighbor-array ablation via `Sbit`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tale::{TaleDatabase, TaleParams};
use tale_datasets::contact::{ContactDataset, ContactSpec};

fn contact_db(families: usize) -> tale_graph::GraphDb {
    let spec = ContactSpec {
        families,
        domains_per_family: 10,
        mean_nodes: 90.0,
        mean_edges: 340.0,
    };
    ContactDataset::generate(9, &spec).db
}

fn bench_build_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build/db_size");
    group.sample_size(10);
    for &fams in &[2usize, 8, 24] {
        let db = contact_db(fams);
        group.bench_with_input(BenchmarkId::from_parameter(fams * 10), &db, |b, db| {
            b.iter(|| {
                TaleDatabase::build_in_temp(db.clone(), &TaleParams::astral()).expect("build")
            })
        });
    }
    group.finish();
}

fn bench_sbit_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build/sbit");
    group.sample_size(10);
    let db = contact_db(8);
    // 20 labels: sbit ≥ 20 = deterministic arrays, sbit < 20 = Bloom
    for &sbit in &[8u32, 16, 32, 96] {
        let params = TaleParams {
            sbit,
            ..TaleParams::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(sbit), &params, |b, p| {
            b.iter(|| TaleDatabase::build_in_temp(db.clone(), p).expect("build"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build_scaling, bench_sbit_ablation);
criterion_main!(benches);
