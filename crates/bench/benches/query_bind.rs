//! E-F6 criterion bench: BIND-style query latency as the database grows
//! (Fig. 6) — PIN queries against the nested D1..D4 datasets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tale::{QueryOptions, TaleDatabase, TaleParams};
use tale_datasets::pin::PinCorpus;

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_bind/fig6");
    group.sample_size(10);
    let corpus = PinCorpus::generate(20080407, 16, 0.04);
    let queries = corpus.queries(None);
    let small_q = corpus.db.graph(queries[0]).clone();
    let big_q = corpus.db.graph(*queries.last().expect("queries")).clone();
    for (di, ids) in corpus.datasets.iter().enumerate() {
        let mut sub = tale_graph::GraphDb::new();
        for (_, name) in corpus.db.node_vocab().iter() {
            sub.intern_node_label(name);
        }
        for &id in ids {
            sub.insert(corpus.db.name(id).to_owned(), corpus.db.graph(id).clone());
        }
        let tale_db = TaleDatabase::build_in_temp(sub, &TaleParams::bind()).expect("build");
        let opts = QueryOptions::bind();
        group.bench_with_input(BenchmarkId::new("small_query", di + 1), &tale_db, |b, t| {
            b.iter(|| t.query(&small_q, &opts).expect("query"))
        });
        group.bench_with_input(BenchmarkId::new("large_query", di + 1), &tale_db, |b, t| {
            b.iter(|| t.query(&big_q, &opts).expect("query"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
