//! E-ALG1 criterion bench: Algorithm 1 vs naive bitmap probe vs the
//! word-parallel row scan, across the paper's bitmap sizes (§IV-D).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tale_bench::experiments::alg1::{random_bitmap, random_query};
use tale_nhindex::bitprobe::{probe_bitsliced, probe_naive, probe_rowscan};

fn bench_probes(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitprobe");
    group.sample_size(20);
    let sbit = 32u32;
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    for &rows in &[16usize, 256, 4096, 32768] {
        let bm = random_bitmap(&mut rng, rows, sbit);
        let rows_major: Vec<Vec<u64>> = (0..rows).map(|r| bm.row(r)).collect();
        let q = random_query(&mut rng, sbit);
        group.bench_with_input(BenchmarkId::new("algorithm1", rows), &rows, |b, _| {
            b.iter(|| probe_bitsliced(&bm, &q, 2))
        });
        group.bench_with_input(BenchmarkId::new("naive", rows), &rows, |b, _| {
            b.iter(|| probe_naive(&bm, &q, 2))
        });
        group.bench_with_input(BenchmarkId::new("rowscan", rows), &rows, |b, _| {
            b.iter(|| probe_rowscan(&rows_major, &q, 2))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_probes);
criterion_main!(benches);
