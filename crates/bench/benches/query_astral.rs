//! E-F5 / E-F9 criterion bench: ASTRAL-style top-K queries — TALE vs
//! C-Tree latency on the family-retrieval workload (Figs. 5 and 9).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tale::{QueryOptions, TaleDatabase, TaleParams};
use tale_baselines::ctree::{CTree, CTreeConfig};
use tale_datasets::contact::{ContactDataset, ContactSpec};

fn bench_tale_vs_ctree(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_astral");
    group.sample_size(10);
    let spec = ContactSpec {
        families: 20,
        domains_per_family: 10,
        mean_nodes: 120.0,
        mean_edges: 460.0,
    };
    let ds = ContactDataset::generate(20080407, &spec);
    let q = ds.db.graph(ds.pick_queries(3, 1)[0]).clone();

    let tale_db = TaleDatabase::build_in_temp(ds.db.clone(), &TaleParams::astral()).expect("build");
    let opts = QueryOptions::astral().with_top_k(20);
    group.bench_function(BenchmarkId::new("tale", "top20"), |b| {
        b.iter(|| tale_db.query(&q, &opts).expect("query"))
    });

    let ctree = CTree::build(
        CTreeConfig::default(),
        ds.db.iter().map(|(_, _, g)| g.clone()).collect::<Vec<_>>(),
    );
    group.bench_function(BenchmarkId::new("ctree", "top20"), |b| {
        b.iter(|| ctree.knn(&q, 20))
    });
    group.finish();
}

criterion_group!(benches, bench_tale_vs_ctree);
criterion_main!(benches);
