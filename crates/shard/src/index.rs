//! [`ShardedNhIndex`]: N independent NH-Index files behind one handle.
//!
//! Each shard is a complete, self-contained `tale-nhindex` directory
//! (B+-tree, posting blobs, meta file) covering a disjoint subset of the
//! database's graphs. All shards share one neighbor-array scheme — every
//! [`NhIndex::build_subset`] call derives it from the *full* database
//! vocabulary — which is what makes per-shard probe answers byte-equal to
//! the matching slice of an unsharded probe (see `tale::engine::exec` for
//! the full determinism argument).
//!
//! Building fans one [`NhIndex::build_subset`] per shard across worker
//! threads: each shard extracts, sorts, and bulk-loads in isolation, so
//! the sort+merge step — serial in a single-file build even with
//! `parallel_build` on — is itself partitioned N ways.

use crate::manifest::{
    vocab_fingerprint, ShardManifest, ShardStatsSummary, MANIFEST_SCHEMA_VERSION,
};
use crate::policy::{policy_by_name, ShardPolicy};
use crate::{Result, ShardError};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;
use tale_graph::{GraphDb, GraphId};
use tale_nhindex::{IntegrityReport, NhIndex, NhIndexConfig, ProbeCounters, RecoveryReport};
use tale_storage::IoPool;

/// Per-shard build timings and sizes, for observability and the E-SHARD
/// experiment. Produced by [`ShardedNhIndex::build_with_stats`].
#[derive(Debug, Clone, serde::Serialize)]
pub struct ShardBuildStats {
    /// Wall-clock seconds each shard spent in its own
    /// extract/sort/bulk-load, indexed by shard.
    pub per_shard_secs: Vec<f64>,
    /// Wall clock of the whole sharded build (parallel region + manifest).
    pub total_secs: f64,
    /// Graphs assigned to each shard.
    pub graphs_per_shard: Vec<usize>,
    /// Total nodes assigned to each shard (the load the size-balanced
    /// policy equalizes).
    pub nodes_per_shard: Vec<u64>,
}

impl ShardBuildStats {
    /// Max shard build time over mean shard build time (1.0 = perfectly
    /// even; the build's critical path is the max).
    pub fn skew(&self) -> f64 {
        if self.per_shard_secs.is_empty() {
            return 0.0;
        }
        let max = self.per_shard_secs.iter().copied().fold(0.0, f64::max);
        let mean = self.per_shard_secs.iter().sum::<f64>() / self.per_shard_secs.len() as f64;
        if mean <= 0.0 {
            0.0
        } else {
            max / mean
        }
    }
}

/// Manifest-embedded digests of every shard's statistics (observability
/// only — the planner reads the live per-shard statistics instead).
fn summarize_shards(shards: &[NhIndex]) -> Vec<ShardStatsSummary> {
    shards
        .iter()
        .map(|sh| match sh.statistics() {
            Some(s) => ShardStatsSummary::from(s.as_ref()),
            None => ShardStatsSummary::default(),
        })
        .collect()
}

/// A partitioned NH-Index: one independent index file set per shard plus
/// the [`ShardManifest`] mapping graphs to shards.
pub struct ShardedNhIndex {
    shards: Vec<NhIndex>,
    manifest: ShardManifest,
    dir: PathBuf,
}

impl ShardedNhIndex {
    /// Builds a sharded index for `db` under `dir` (see
    /// [`ShardedNhIndex::build_with_stats`]).
    pub fn build(
        dir: &Path,
        db: &GraphDb,
        config: &NhIndexConfig,
        nshards: usize,
        policy: &dyn ShardPolicy,
        threads: usize,
    ) -> Result<Self> {
        Ok(Self::build_with_stats(dir, db, config, nshards, policy, threads)?.0)
    }

    /// Builds a sharded index and reports per-shard timings.
    ///
    /// `policy.assign` splits the graphs; each shard then runs a full
    /// [`NhIndex::build_subset`] in its own `shard-NNN/` directory, fanned
    /// over `threads` workers (`0` = all cores). The manifest is written
    /// last, so a crash mid-build leaves no directory that
    /// [`ShardedNhIndex::open`] would accept.
    pub fn build_with_stats(
        dir: &Path,
        db: &GraphDb,
        config: &NhIndexConfig,
        nshards: usize,
        policy: &dyn ShardPolicy,
        threads: usize,
    ) -> Result<(Self, ShardBuildStats)> {
        if nshards == 0 {
            return Err(ShardError::Manifest("shard count must be >= 1".into()));
        }
        std::fs::create_dir_all(dir)?;
        let assignment = policy.assign(db, nshards);
        if assignment.len() != db.len() {
            return Err(ShardError::Manifest(format!(
                "policy {} assigned {} graphs, database has {}",
                policy.name(),
                assignment.len(),
                db.len()
            )));
        }
        if let Some(&bad) = assignment.iter().find(|&&s| s >= nshards as u32) {
            return Err(ShardError::Manifest(format!(
                "policy {} assigned shard {bad} with only {nshards} shards",
                policy.name()
            )));
        }
        let mut groups: Vec<Vec<GraphId>> = vec![Vec::new(); nshards];
        for (i, &s) in assignment.iter().enumerate() {
            groups[s as usize].push(GraphId(i as u32));
        }

        let t_total = Instant::now();
        // The parallel region: every shard sorts its own units and
        // bulk-loads its own B+-tree — no cross-shard merge exists. With
        // more than one shard the shard-level fan-out already occupies the
        // workers, so each shard extracts serially inside its thread.
        // Per-shard async read paths are disabled here and rebound below
        // to ONE shared worker pool, so total I/O concurrency stays
        // `config.io_workers`, not `shards × io_workers`.
        let sub_config = NhIndexConfig {
            parallel_build: config.parallel_build && nshards == 1,
            io_workers: 0,
            ..config.clone()
        };
        let built: Vec<tale_nhindex::Result<(NhIndex, f64)>> =
            tale_par::parallel_map(threads, nshards, |s| {
                let t = Instant::now();
                let idx = NhIndex::build_subset(
                    &ShardManifest::shard_dir(dir, s as u32),
                    db,
                    &sub_config,
                    &groups[s],
                )?;
                Ok((idx, t.elapsed().as_secs_f64()))
            });
        let mut shards = Vec::with_capacity(nshards);
        let mut per_shard_secs = Vec::with_capacity(nshards);
        for r in built {
            let (idx, secs) = r?;
            shards.push(idx);
            per_shard_secs.push(secs);
        }
        if config.io_workers > 0 {
            let io = IoPool::new(config.io_workers);
            for sh in &mut shards {
                sh.attach_io(Arc::clone(&io), config.prefetch_pages);
            }
        }

        let fp = vocab_fingerprint(db);
        let manifest = ShardManifest {
            schema_version: MANIFEST_SCHEMA_VERSION,
            shard_count: nshards as u32,
            policy: policy.name().to_owned(),
            assignment,
            vocab_fingerprints: vec![fp; nshards],
            shard_stats: summarize_shards(&shards),
        };
        manifest.save(dir)?;

        let stats = ShardBuildStats {
            per_shard_secs,
            total_secs: t_total.elapsed().as_secs_f64(),
            graphs_per_shard: groups.iter().map(Vec::len).collect(),
            nodes_per_shard: groups
                .iter()
                .map(|g| g.iter().map(|&gid| db.graph(gid).node_count() as u64).sum())
                .collect(),
        };
        Ok((
            ShardedNhIndex {
                shards,
                manifest,
                dir: dir.to_owned(),
            },
            stats,
        ))
    }

    /// Reopens a sharded index built by [`ShardedNhIndex::build`].
    ///
    /// `db` must be the same database the index was built against; each
    /// shard's recorded vocabulary fingerprint is checked against it
    /// (vocabulary drift would silently corrupt probe bitmaps, so it is an
    /// error here). `buffer_frames` is the page budget *per shard*.
    pub fn open(dir: &Path, buffer_frames: usize, db: &GraphDb) -> Result<Self> {
        Ok(Self::open_with_recovery(dir, buffer_frames, db)?.0)
    }

    /// Like [`ShardedNhIndex::open`], but recovers each shard
    /// independently and reports what each one's WAL recovery did (in
    /// shard order). A shard that cannot be opened — even after its own
    /// rollback — fails with [`ShardError::Shard`] naming it, so a
    /// partial-shard failure is distinguishable from a bad manifest.
    pub fn open_with_recovery(
        dir: &Path,
        buffer_frames: usize,
        db: &GraphDb,
    ) -> Result<(Self, Vec<RecoveryReport>)> {
        let manifest = ShardManifest::load(dir)?;
        if manifest.assignment.len() != db.len() {
            return Err(ShardError::Manifest(format!(
                "manifest maps {} graphs, database has {}",
                manifest.assignment.len(),
                db.len()
            )));
        }
        let fp = vocab_fingerprint(db);
        if let Some(s) = manifest.vocab_fingerprints.iter().position(|&f| f != fp) {
            return Err(ShardError::Manifest(format!(
                "shard {s} was built against a different vocabulary \
                 (fingerprint {:#018x}, database has {fp:#018x})",
                manifest.vocab_fingerprints[s]
            )));
        }
        let mut shards = Vec::with_capacity(manifest.shard_count as usize);
        let mut reports = Vec::with_capacity(manifest.shard_count as usize);
        for s in 0..manifest.shard_count {
            // Open with prefetching off; all shards are bound to one
            // shared worker pool below.
            let (idx, report) = NhIndex::open_with_recovery_io(
                &ShardManifest::shard_dir(dir, s),
                buffer_frames,
                0,
                0,
            )
            .map_err(|source| ShardError::Shard { shard: s, source })?;
            shards.push(idx);
            reports.push(report);
        }
        let io = IoPool::new(tale_nhindex::DEFAULT_IO_WORKERS);
        for sh in &mut shards {
            sh.attach_io(Arc::clone(&io), tale_nhindex::DEFAULT_PREFETCH_PAGES);
        }
        Ok((
            ShardedNhIndex {
                shards,
                manifest,
                dir: dir.to_owned(),
            },
            reports,
        ))
    }

    /// Deep integrity check of every shard: page checksums, B+-tree key
    /// ordering, and posting decodability ([`NhIndex::verify`]). Returns
    /// one report per shard, in shard order; an I/O failure while sweeping
    /// a shard is attributed to it via [`ShardError::Shard`].
    pub fn verify(&self) -> Result<Vec<IntegrityReport>> {
        self.shards
            .iter()
            .enumerate()
            .map(|(s, sh)| {
                sh.verify().map_err(|source| ShardError::Shard {
                    shard: s as u32,
                    source,
                })
            })
            .collect()
    }

    /// The shards, in shard order. Each is a full [`NhIndex`]; the query
    /// engine scatters over exactly this slice.
    pub fn shards(&self) -> &[NhIndex] {
        &self.shards
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard map.
    pub fn manifest(&self) -> &ShardManifest {
        &self.manifest
    }

    /// Root directory (the one holding `shards.json`).
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The shard owning `gid`, or `None` if the manifest has never seen
    /// that id.
    pub fn shard_of(&self, gid: GraphId) -> Option<u32> {
        self.manifest.shard_of(gid)
    }

    /// Where the build policy would place a newly inserted graph, without
    /// mutating anything. `gid` must be the id just returned by
    /// [`GraphDb::insert`] on `db` (dense append). Exposed separately from
    /// [`ShardedNhIndex::insert_graph`] so a journaling caller can record
    /// the owning shard's pre-mutation generation before the insert runs.
    pub fn route(&self, db: &GraphDb, gid: GraphId) -> Result<u32> {
        if gid.idx() != self.manifest.assignment.len() {
            return Err(ShardError::Manifest(format!(
                "insert of graph {} but manifest maps {} graphs (ids are dense)",
                gid.0,
                self.manifest.assignment.len()
            )));
        }
        let policy = policy_by_name(&self.manifest.policy).ok_or_else(|| {
            ShardError::Manifest(format!("unknown routing policy {:?}", self.manifest.policy))
        })?;
        let loads: Vec<u64> = self.shards.iter().map(NhIndex::node_count).collect();
        Ok(policy.route(db, gid, &loads))
    }

    /// Incrementally indexes a newly inserted graph, routing it with the
    /// build policy and updating the manifest. `gid` must be the id just
    /// returned by [`GraphDb::insert`] on `db` (dense append). Returns the
    /// owning shard, so callers can scope cache invalidation to it.
    pub fn insert_graph(&mut self, db: &GraphDb, gid: GraphId) -> Result<u32> {
        let s = self.route(db, gid)?;
        self.insert_graph_routed(db, gid, s)?;
        Ok(s)
    }

    /// Indexes `gid` into the already-chosen shard `s` (from
    /// [`ShardedNhIndex::route`]) and persists the updated manifest.
    ///
    /// Crash ordering: the shard's own WAL transaction commits first (its
    /// generation bump), then the manifest is rewritten atomically. A
    /// crash in the window between the two leaves a committed shard with a
    /// short manifest; [`crate::ShardedTaleDatabase::open_with_recovery`]
    /// detects that from the mutation journal and rolls the manifest
    /// *forward*.
    pub fn insert_graph_routed(&mut self, db: &GraphDb, gid: GraphId, s: u32) -> Result<()> {
        self.shards[s as usize].insert_graph(db, gid)?;
        self.manifest.assignment.push(s);
        // Inserting can grow the vocabulary; every shard keyed off the old
        // one stays correct (bit positions only wrap), but the recorded
        // fingerprints must match what `open` will recompute.
        let fp = vocab_fingerprint(db);
        self.manifest.vocab_fingerprints = vec![fp; self.shards.len()];
        self.manifest.shard_stats = summarize_shards(&self.shards);
        self.manifest.save(&self.dir)?;
        Ok(())
    }

    /// Logically removes a graph (tombstone in its owning shard). Returns
    /// the owning shard, so callers can scope cache eviction to it.
    pub fn remove_graph(&mut self, gid: GraphId, vocab_size: u64) -> Result<u32> {
        let s = self.shard_of(gid).ok_or_else(|| {
            ShardError::Manifest(format!("graph {} is not in the shard map", gid.0))
        })?;
        self.shards[s as usize].remove_graph(gid, vocab_size)?;
        Ok(s)
    }

    /// Whether `gid` has been tombstoned (unknown ids read as removed).
    pub fn is_removed(&self, gid: GraphId) -> bool {
        match self.shard_of(gid) {
            Some(s) => self.shards[s as usize].is_removed(gid),
            None => true,
        }
    }

    /// Probe-traffic counters summed over all shards.
    pub fn counters(&self) -> ProbeCounters {
        let mut total = ProbeCounters::default();
        for sh in &self.shards {
            let c = sh.counters();
            total.probes += c.probes;
            total.keys_scanned += c.keys_scanned;
            total.postings_fetched += c.postings_fetched;
            total.postings_filtered += c.postings_filtered;
            total.rows_examined += c.rows_examined;
        }
        total
    }

    /// Buffer-pool statistics summed over all shards.
    pub fn pool_stats(&self) -> tale_storage::PoolStats {
        self.shards
            .iter()
            .map(NhIndex::pool_stats)
            .fold(tale_storage::PoolStats::default(), |a, b| a.merged(b))
    }

    /// Readahead statistics summed over all shards.
    pub fn prefetch_stats(&self) -> tale_storage::PrefetchStats {
        self.shards
            .iter()
            .map(NhIndex::prefetch_stats)
            .fold(tale_storage::PrefetchStats::default(), |a, b| a.merged(b))
    }

    /// Total on-disk footprint over all shards, in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.shards.iter().map(NhIndex::size_bytes).sum()
    }

    /// Total indexed nodes over all shards.
    pub fn node_count(&self) -> u64 {
        self.shards.iter().map(NhIndex::node_count).sum()
    }

    /// Total B+-tree keys over all shards (shards index disjoint graph
    /// sets but can share key values, so this can exceed the single-index
    /// key count).
    pub fn key_count(&self) -> u64 {
        self.shards.iter().map(NhIndex::key_count).sum()
    }
}
