//! [`ShardedTaleDatabase`]: the sharded counterpart of
//! [`tale::TaleDatabase`].
//!
//! Owns the [`GraphDb`], a [`ShardedNhIndex`], and one
//! [`ResultCache`] *per shard*. Queries scatter/gather through the same
//! staged engine as the unsharded database (`tale::engine::exec`), so
//! results are bit-identical to a single-index [`tale::TaleDatabase`]
//! over the same graphs at any shard count and thread count. The
//! per-shard caches make mutation-time invalidation scoped *and
//! clear-free*: cache keys fold in each shard's mutation generation, so
//! committing an in-place mutation to shard `S` simply moves `S` to a
//! fresh key space — its old partials become unreachable and age out of
//! the LRU — while every other shard's cached work keeps hitting.

use crate::index::{ShardBuildStats, ShardedNhIndex};
use crate::manifest::{vocab_fingerprint, ShardManifest};
use crate::policy::{HashPolicy, ShardPolicy};
use crate::{Result, ShardError};
use std::path::Path;
use tale::engine::cache::{CacheStats, ResultCache, DEFAULT_CACHE_ENTRIES};
use tale::engine::exec;
use tale::engine::stats::{BatchStats, QueryStats};
use tale::journal::{MutationJournal, PendingMutation};
use tale::{QueryMatch, QueryOptions, ScratchDir, TaleParams};
use tale_graph::{Graph, GraphDb, GraphId};
use tale_nhindex::{IndexReader, NhIndex, NhIndexConfig, RecoveryReport};

const DB_FILE: &str = "graphs.json";

/// What [`ShardedTaleDatabase::open_with_recovery`] found and repaired.
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct ShardedRecovery {
    /// A `pending.json` marker was present (a multi-file mutation was in
    /// flight at crash time).
    pub journal_present: bool,
    /// `graphs.json` was restored from its pre-mutation backup (the
    /// routed shard never committed).
    pub db_rolled_back: bool,
    /// The routed shard committed but the crash beat the manifest save;
    /// the missing assignment was re-appended and the manifest rewritten.
    pub manifest_rolled_forward: bool,
    /// Each shard's own WAL recovery outcome, in shard order.
    pub shards: Vec<RecoveryReport>,
}

fn config_of(params: &TaleParams) -> NhIndexConfig {
    NhIndexConfig {
        sbit: params.sbit,
        buffer_frames: params.buffer_frames,
        parallel_build: params.parallel_build,
        bloom_hashes: params.bloom_hashes,
        use_edge_labels: params.use_edge_labels,
        io_workers: params.io_workers,
        prefetch_pages: params.prefetch_pages,
    }
}

/// An indexed graph database partitioned across NH-Index shards, ready
/// for approximate subgraph queries.
pub struct ShardedTaleDatabase {
    db: GraphDb,
    index: ShardedNhIndex,
    caches: Vec<ResultCache>,
    // Keeps the scratch directory alive for in-temp builds.
    _scratch: Option<ScratchDir>,
}

impl ShardedTaleDatabase {
    /// Builds a sharded NH-Index for `db` into `dir` and persists the
    /// graphs alongside it, so [`ShardedTaleDatabase::open`] can restore
    /// everything.
    pub fn build(
        db: GraphDb,
        dir: &Path,
        params: &TaleParams,
        nshards: usize,
        policy: &dyn ShardPolicy,
    ) -> Result<Self> {
        Ok(Self::build_with_stats(db, dir, params, nshards, policy)?.0)
    }

    /// Like [`ShardedTaleDatabase::build`], also reporting per-shard
    /// build timings ([`ShardBuildStats`]).
    pub fn build_with_stats(
        db: GraphDb,
        dir: &Path,
        params: &TaleParams,
        nshards: usize,
        policy: &dyn ShardPolicy,
    ) -> Result<(Self, ShardBuildStats)> {
        std::fs::create_dir_all(dir)?;
        let (index, stats) =
            ShardedNhIndex::build_with_stats(dir, &db, &config_of(params), nshards, policy, 0)?;
        tale_graph::io::save_json(&db, &dir.join(DB_FILE))?;
        Ok((
            ShardedTaleDatabase {
                caches: (0..index.shard_count())
                    .map(|_| ResultCache::new(DEFAULT_CACHE_ENTRIES))
                    .collect(),
                db,
                index,
                _scratch: None,
            },
            stats,
        ))
    }

    /// Builds into a self-cleaning scratch directory with the default
    /// hash placement — convenient for experiments and tests.
    pub fn build_in_temp(db: GraphDb, params: &TaleParams, nshards: usize) -> Result<Self> {
        let scratch = ScratchDir::new("tale-shards")?;
        let (index, _) = ShardedNhIndex::build_with_stats(
            scratch.path(),
            &db,
            &config_of(params),
            nshards,
            &HashPolicy,
            0,
        )?;
        Ok(ShardedTaleDatabase {
            caches: (0..index.shard_count())
                .map(|_| ResultCache::new(DEFAULT_CACHE_ENTRIES))
                .collect(),
            db,
            index,
            _scratch: Some(scratch),
        })
    }

    /// Reopens a database previously built with
    /// [`ShardedTaleDatabase::build`]. `buffer_frames` is the page budget
    /// per shard. Fails if any shard's recorded vocabulary fingerprint
    /// disagrees with the reloaded graphs.
    pub fn open(dir: &Path, buffer_frames: usize) -> Result<Self> {
        Ok(Self::open_with_recovery(dir, buffer_frames)?.0)
    }

    /// Like [`ShardedTaleDatabase::open`], also repairing any mutation
    /// that a crash cut short and reporting what was done.
    ///
    /// The multi-file reconciliation runs *before* the shards are opened
    /// (their own WAL rollback happens inside
    /// [`ShardedNhIndex::open_with_recovery`]):
    ///
    /// * journal present and the routed shard's generation is still the
    ///   recorded pre-mutation value → the shard never committed; restore
    ///   `graphs.json` from the fsynced backup. The manifest was not yet
    ///   touched (it is saved after the shard commit).
    /// * journal present and the generation advanced → the shard
    ///   committed, and the already-saved `graphs.json` is the post-insert
    ///   state. If the crash beat the manifest save (one fewer assignment
    ///   than graphs), roll the manifest *forward*: re-append the routed
    ///   shard and recompute the vocabulary fingerprints — exactly what
    ///   the interrupted [`ShardedNhIndex::insert_graph_routed`] would
    ///   have written.
    pub fn open_with_recovery(dir: &Path, buffer_frames: usize) -> Result<(Self, ShardedRecovery)> {
        let journal = MutationJournal::new(dir);
        let mut rec = ShardedRecovery::default();
        if let Some(pending) = journal.load()? {
            rec.journal_present = true;
            let s = pending.shard.ok_or_else(|| {
                ShardError::Manifest(
                    "mutation journal lacks a shard (marker from an unsharded database?)".into(),
                )
            })?;
            let post = NhIndex::peek_generation(&ShardManifest::shard_dir(dir, s))
                .map_err(|source| ShardError::Shard { shard: s, source })?;
            if post == pending.pre_generation {
                rec.db_rolled_back = journal.roll_back_db(&dir.join(DB_FILE))?;
            } else {
                let db = tale_graph::io::load_json(&dir.join(DB_FILE))?;
                let mut manifest = ShardManifest::load(dir)?;
                if manifest.assignment.len() + 1 == db.len() {
                    manifest.assignment.push(s);
                    let fp = vocab_fingerprint(&db);
                    manifest.vocab_fingerprints = vec![fp; manifest.shard_count as usize];
                    manifest.save(dir)?;
                    rec.manifest_rolled_forward = true;
                }
            }
        }
        // Clears the marker (if any) and sweeps an orphaned backup left by
        // an interrupted clear; idempotent when there is nothing to do.
        journal.clear()?;
        let db = tale_graph::io::load_json(&dir.join(DB_FILE))?;
        let (index, shards) = ShardedNhIndex::open_with_recovery(dir, buffer_frames, &db)?;
        rec.shards = shards;
        Ok((
            ShardedTaleDatabase {
                caches: (0..index.shard_count())
                    .map(|_| ResultCache::new(DEFAULT_CACHE_ENTRIES))
                    .collect(),
                db,
                index,
                _scratch: None,
            },
            rec,
        ))
    }

    /// Adds a graph, routes it to a shard with the build policy, and
    /// extends that shard's index incrementally. Returns the new graph's
    /// id. No cache is cleared: the commit bumps the owning shard's
    /// mutation generation, which the cache keys fold in, so that shard's
    /// old partials become unreachable while every other shard's entries
    /// keep hitting.
    ///
    /// For a persistent database the whole multi-file mutation is
    /// journaled: route first (to learn the owning shard), stage the
    /// journal with that shard's pre-mutation generation, save the new
    /// `graphs.json`, run the shard's WAL-protected index commit plus the
    /// atomic manifest rewrite, then clear the journal. A crash at any
    /// point recovers to a state bit-identical to before or after the
    /// insert ([`ShardedTaleDatabase::open_with_recovery`]). After an
    /// error, drop this handle and reopen.
    pub fn insert_graph(&mut self, name: impl Into<String>, g: Graph) -> Result<GraphId> {
        let gid = self.db.insert(name, g);
        let s;
        if self._scratch.is_none() {
            let dir = self.index.dir().to_owned();
            s = self.index.route(&self.db, gid)?;
            let journal = MutationJournal::new(&dir);
            journal.stage(
                &dir.join(DB_FILE),
                PendingMutation {
                    pre_generation: self.index.shards()[s as usize].generation(),
                    shard: Some(s),
                },
            )?;
            tale_graph::io::save_json(&self.db, &dir.join(DB_FILE))?;
            self.index.insert_graph_routed(&self.db, gid, s)?;
            journal.clear()?;
        } else {
            s = self.index.insert_graph(&self.db, gid)?;
        }
        // No clear: shard `s`'s generation advanced with the commit, so
        // its stale partials are already unreachable under the new keys.
        let _ = s;
        Ok(gid)
    }

    /// Logically removes a graph (tombstone in its owning shard). The
    /// generation bump retires the owning shard's old cache keys;
    /// [`ResultCache::evict_graph`] additionally frees the now-unreachable
    /// entries that actually contain `id` instead of waiting for LRU aging.
    pub fn remove_graph(&mut self, id: GraphId) -> Result<()> {
        let s = self
            .index
            .remove_graph(id, self.db.effective_vocab_size() as u64)?;
        self.caches[s as usize].evict_graph(id);
        Ok(())
    }

    /// Interns a node label name into the database vocabulary (for
    /// authoring graphs to pass to
    /// [`ShardedTaleDatabase::insert_graph`]). Interning is append-only —
    /// it never renumbers existing labels — so cached results stay exact
    /// and nothing is cleared; a query using the new label is a new
    /// [`QueryRepr`](tale::engine::cache::QueryRepr) and misses naturally.
    pub fn intern_node_label(&mut self, name: &str) -> tale_graph::NodeLabel {
        self.db.intern_node_label(name)
    }

    /// The underlying graph database.
    pub fn db(&self) -> &GraphDb {
        &self.db
    }

    /// The sharded NH-Index (for introspection: shard map, sizes, probe
    /// counters).
    pub fn index(&self) -> &ShardedNhIndex {
        &self.index
    }

    /// On-disk index footprint in bytes, summed over shards.
    pub fn index_size_bytes(&self) -> u64 {
        self.index.size_bytes()
    }

    fn run(
        &self,
        queries: &[&Graph],
        opts: &QueryOptions,
    ) -> Result<(Vec<Vec<QueryMatch>>, BatchStats)> {
        let shard_refs: Vec<&dyn IndexReader> = self
            .index
            .shards()
            .iter()
            .map(|s| s as &dyn IndexReader)
            .collect();
        let cache_refs: Vec<&ResultCache> = self.caches.iter().collect();
        Ok(exec::run_batch(
            &self.db,
            &shard_refs,
            opts.use_cache.then_some(&cache_refs[..]),
            queries,
            opts,
        )?)
    }

    /// Describes — without executing — the plan the engine would choose
    /// for `query` under `opts`: probe order with row estimates, the
    /// readahead budget, and per-shard feasibility and score bounds from
    /// each shard's statistics. Render with
    /// [`tale::PlanReport::render`] or serialize to JSON.
    pub fn explain(&self, query: &Graph, opts: &QueryOptions) -> tale::PlanReport {
        let shard_refs: Vec<&dyn IndexReader> = self
            .index
            .shards()
            .iter()
            .map(|s| s as &dyn IndexReader)
            .collect();
        tale::engine::plan::plan_report(&self.db, &shard_refs, query, opts)
    }

    /// Runs an approximate subgraph query, scattered over the shards.
    /// Results are bit-identical to [`tale::TaleDatabase::query`] on the
    /// same graphs.
    pub fn query(&self, query: &Graph, opts: &QueryOptions) -> Result<Vec<QueryMatch>> {
        Ok(self.query_with_stats(query, opts)?.0)
    }

    /// Like [`ShardedTaleDatabase::query`], also returning per-stage
    /// execution statistics.
    pub fn query_with_stats(
        &self,
        query: &Graph,
        opts: &QueryOptions,
    ) -> Result<(Vec<QueryMatch>, QueryStats)> {
        let (mut outputs, mut batch) = self.run(&[query], opts)?;
        Ok((outputs.remove(0), batch.per_query.remove(0)))
    }

    /// Runs a batch of queries, scattered over the shards. Output is
    /// aligned with `queries` and bit-identical to the unsharded batch.
    pub fn query_batch(
        &self,
        queries: &[&Graph],
        opts: &QueryOptions,
    ) -> Result<Vec<Vec<QueryMatch>>> {
        Ok(self.query_batch_with_stats(queries, opts)?.0)
    }

    /// Like [`ShardedTaleDatabase::query_batch`], also returning
    /// batch-level statistics — including one
    /// [`tale::ShardStats`] per shard in
    /// [`BatchStats::shards`] and the skew ratio via
    /// [`BatchStats::shard_skew`].
    pub fn query_batch_with_stats(
        &self,
        queries: &[&Graph],
        opts: &QueryOptions,
    ) -> Result<(Vec<Vec<QueryMatch>>, BatchStats)> {
        self.run(queries, opts)
    }

    /// Result-cache counters summed over all shards.
    pub fn result_cache_stats(&self) -> CacheStats {
        self.caches
            .iter()
            .map(ResultCache::stats)
            .fold(CacheStats::default(), |a, b| CacheStats {
                entries: a.entries + b.entries,
                capacity: a.capacity + b.capacity,
                hits: a.hits + b.hits,
                misses: a.misses + b.misses,
                insertions: a.insertions + b.insertions,
                invalidations: a.invalidations + b.invalidations,
            })
    }

    /// Result-cache counters per shard, in shard order.
    pub fn shard_cache_stats(&self) -> Vec<CacheStats> {
        self.caches.iter().map(ResultCache::stats).collect()
    }

    /// Drops every cached result on every shard.
    pub fn clear_result_cache(&self) {
        for c in &self.caches {
            c.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tale::TaleDatabase;

    fn small_db() -> (GraphDb, Vec<Graph>) {
        let mut db = GraphDb::new();
        let labels: Vec<_> = (0..4)
            .map(|i| db.intern_node_label(&format!("L{i}")))
            .collect();
        let mut graphs = Vec::new();
        for k in 0..6usize {
            let mut g = Graph::new_undirected();
            let n: Vec<_> = (0..4 + k % 3)
                .map(|j| g.add_node(labels[(j + k) % 4]))
                .collect();
            for w in n.windows(2) {
                g.add_edge(w[0], w[1]).unwrap();
            }
            g.add_edge(n[0], n[n.len() - 1]).unwrap();
            db.insert(format!("g{k}"), g.clone());
            graphs.push(g);
        }
        (db, graphs)
    }

    #[test]
    fn sharded_matches_unsharded() {
        let (db, graphs) = small_db();
        let params = TaleParams::default();
        let single = TaleDatabase::build_in_temp(db.clone(), &params).unwrap();
        let opts = QueryOptions {
            p_imp: 0.5,
            ..Default::default()
        };
        let want: Vec<_> = graphs
            .iter()
            .map(|g| single.query(g, &opts).unwrap())
            .collect();
        for nshards in [1, 2, 3] {
            let sharded = ShardedTaleDatabase::build_in_temp(db.clone(), &params, nshards).unwrap();
            for (g, expect) in graphs.iter().zip(&want) {
                let got = sharded.query(g, &opts).unwrap();
                assert_eq!(got.len(), expect.len(), "nshards={nshards}");
                for (a, b) in got.iter().zip(expect) {
                    assert_eq!(a.graph, b.graph, "nshards={nshards}");
                    assert_eq!(a.score.to_bits(), b.score.to_bits(), "nshards={nshards}");
                    assert_eq!(a.m.pairs, b.m.pairs, "nshards={nshards}");
                }
            }
        }
    }

    #[test]
    fn insert_retires_only_owning_shard_cache_keys() {
        let (db, graphs) = small_db();
        let mut sharded =
            ShardedTaleDatabase::build_in_temp(db, &TaleParams::default(), 3).unwrap();
        let opts = QueryOptions {
            p_imp: 0.5,
            ..Default::default()
        };
        // populate every shard's cache
        for g in &graphs {
            sharded.query(g, &opts).unwrap();
        }
        let before: Vec<usize> = sharded
            .shard_cache_stats()
            .iter()
            .map(|s| s.entries)
            .collect();
        assert!(before.iter().all(|&e| e > 0), "{before:?}");
        // 1-WL canonicals can collide between these small rings, letting a
        // later populate query overwrite graphs[0]'s slot (same key,
        // different exact repr). Re-query the probe target so its repr is
        // the resident one before measuring.
        sharded.query(&graphs[0], &opts).unwrap();
        let gid = sharded.insert_graph("late", graphs[0].clone()).unwrap();
        let owner = sharded.index().shard_of(gid).unwrap() as usize;
        // nothing is cleared — the owning shard's old entries are merely
        // unreachable under its advanced generation
        let after: Vec<usize> = sharded
            .shard_cache_stats()
            .iter()
            .map(|s| s.entries)
            .collect();
        assert_eq!(before, after, "insert must not clear any cache");
        // a repeat query re-probes *only* the owning shard; every other
        // shard answers from its still-reachable cached partials
        let counters: Vec<_> = sharded
            .index()
            .shards()
            .iter()
            .map(|s| s.counters())
            .collect();
        let res = sharded.query(&graphs[0], &opts).unwrap();
        for (s, shard) in sharded.index().shards().iter().enumerate() {
            let d = shard.counters().since(counters[s]);
            if s == owner {
                assert!(d.probes > 0, "owning shard must re-run under its new key");
            } else {
                assert_eq!(d.probes, 0, "non-owning shard {s} must hit its cache");
            }
        }
        // and the inserted graph is immediately queryable
        assert!(res.iter().any(|m| m.graph == gid));
    }

    #[test]
    fn persist_reopen_and_fingerprint_guard() {
        let (db, graphs) = small_db();
        let dir = tempfile::tempdir().unwrap();
        let params = TaleParams::default();
        let opts = QueryOptions {
            p_imp: 0.5,
            ..Default::default()
        };
        let want = {
            let sharded =
                ShardedTaleDatabase::build(db, dir.path(), &params, 2, &HashPolicy).unwrap();
            sharded.query(&graphs[0], &opts).unwrap()
        };
        let sharded = ShardedTaleDatabase::open(dir.path(), 256).unwrap();
        let got = sharded.query(&graphs[0], &opts).unwrap();
        assert_eq!(got.len(), want.len());
        assert_eq!(got[0].graph, want[0].graph);
        drop(sharded);
        // swap graphs.json for one whose vocabulary drifted (an extra
        // interned label): open must refuse rather than serve wrong
        // bitmaps
        let mut drifted = tale_graph::io::load_json(&dir.path().join(DB_FILE)).unwrap();
        drifted.intern_node_label("ZZZ-drift");
        tale_graph::io::save_json(&drifted, &dir.path().join(DB_FILE)).unwrap();
        assert!(ShardedTaleDatabase::open(dir.path(), 256).is_err());
    }
}
