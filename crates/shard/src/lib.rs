//! Sharded NH-Index: partitioned build, scatter/gather query execution,
//! and shard-level observability.
//!
//! The single-file NH-Index (`tale-nhindex`) bulk-loads one B+-tree over
//! the postings of every graph in the database — the final sort + merge
//! is serial even when `parallel_build` fans the per-graph extraction out.
//! This crate partitions the database across `N` fully independent
//! NH-Index files ("shards"), each covering a disjoint subset of the
//! graphs:
//!
//! * **build** — each shard extracts, sorts, and bulk-loads its own
//!   B+-tree with no cross-shard synchronization
//!   ([`ShardedNhIndex::build`]), parallelizing the merge step itself;
//! * **query** — the staged engine scatters the probe/anchor/grow
//!   pipeline across shards and gathers with a deterministic merge, so
//!   sharded output is bit-identical to the single-index answer at any
//!   shard count and any thread count ([`ShardedTaleDatabase::query`];
//!   the determinism argument lives in `tale::engine::exec`);
//! * **mutate** — [`ShardedTaleDatabase::insert_graph`] and
//!   [`ShardedTaleDatabase::remove_graph`] route to the owning shard and
//!   invalidate only that shard's slice of the result cache;
//! * **observe** — per-shard probe/posting/row traffic, buffer-pool
//!   deltas, wall clocks, and the skew ratio surface through
//!   [`tale::BatchStats::shards`] (see [`tale::ShardStats`]).
//!
//! Graph placement is pluggable via [`ShardPolicy`]: hash-by-id
//! ([`HashPolicy`], the default), size-balanced ([`SizeBalancedPolicy`]),
//! or label-clustered ([`LabelClusteredPolicy`] — the one that lets the
//! cost-based planner prove whole shards prunable for a query). The shard
//! map is persisted in a `shards.json` manifest ([`ShardManifest`]) next
//! to the `shard-NNN/` index directories, along with per-shard statistics
//! summaries ([`ShardStatsSummary`]) for `tale-cli stats`.

mod database;
mod index;
mod manifest;
mod policy;

pub use database::{ShardedRecovery, ShardedTaleDatabase};
pub use index::{ShardBuildStats, ShardedNhIndex};
pub use manifest::{
    vocab_fingerprint, ShardManifest, ShardStatsSummary, MANIFEST_FILE, MANIFEST_SCHEMA_VERSION,
};
pub use policy::{
    policy_by_name, HashPolicy, LabelClusteredPolicy, ShardPolicy, SizeBalancedPolicy,
};

/// Errors surfaced by the sharding layer.
#[derive(Debug)]
pub enum ShardError {
    /// Failure in the query engine or database facade.
    Tale(tale::TaleError),
    /// Index-layer failure in one shard.
    Index(tale_nhindex::NhError),
    /// Index-layer failure attributed to a specific shard — produced by
    /// [`ShardedNhIndex::open_with_recovery`] so a partial-shard failure
    /// (one corrupt `shard-NNN/` among healthy siblings) is diagnosable.
    ///
    /// [`ShardedNhIndex::open_with_recovery`]: crate::ShardedNhIndex::open_with_recovery
    Shard {
        /// The shard whose index failed.
        shard: u32,
        /// The underlying index error.
        source: tale_nhindex::NhError,
    },
    /// Graph-layer failure.
    Graph(tale_graph::GraphError),
    /// Manifest missing, malformed, or inconsistent with the database.
    Manifest(String),
    /// Filesystem failure.
    Io(std::io::Error),
    /// A shard became unreachable on the networked path (`tale-server`):
    /// connection refused or reset, handshake failure, or a worker that
    /// died mid-batch. The frontend fails the whole batch with this —
    /// deterministically, never a partial merge — so callers can retry
    /// against a reconnected worker.
    Transport {
        /// The shard whose worker failed.
        shard: u32,
        /// The underlying transport failure.
        source: Box<dyn std::error::Error + Send + Sync>,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Tale(e) => write!(f, "tale: {e}"),
            ShardError::Index(e) => write!(f, "index: {e}"),
            ShardError::Shard { shard, source } => write!(f, "shard {shard}: {source}"),
            ShardError::Graph(e) => write!(f, "graph: {e}"),
            ShardError::Manifest(m) => write!(f, "manifest: {m}"),
            ShardError::Io(e) => write!(f, "io: {e}"),
            ShardError::Transport { shard, source } => {
                write!(f, "shard {shard} transport: {source}")
            }
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Tale(e) => Some(e),
            ShardError::Index(e) => Some(e),
            ShardError::Shard { source, .. } => Some(source),
            ShardError::Graph(e) => Some(e),
            ShardError::Manifest(_) => None,
            ShardError::Io(e) => Some(e),
            ShardError::Transport { source, .. } => Some(source.as_ref()),
        }
    }
}

impl From<tale::TaleError> for ShardError {
    fn from(e: tale::TaleError) -> Self {
        ShardError::Tale(e)
    }
}

impl From<tale_nhindex::NhError> for ShardError {
    fn from(e: tale_nhindex::NhError) -> Self {
        ShardError::Index(e)
    }
}

impl From<tale_graph::GraphError> for ShardError {
    fn from(e: tale_graph::GraphError) -> Self {
        ShardError::Graph(e)
    }
}

impl From<std::io::Error> for ShardError {
    fn from(e: std::io::Error) -> Self {
        ShardError::Io(e)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, ShardError>;
