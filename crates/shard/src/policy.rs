//! Graph-to-shard placement policies.
//!
//! A policy answers two questions: where does every existing graph go at
//! build time ([`ShardPolicy::assign`]), and where does a graph that
//! arrives *after* the build go ([`ShardPolicy::route`])? The answers are
//! recorded in the [`ShardManifest`](crate::ShardManifest), which is the
//! ground truth thereafter — queries and removals never re-derive
//! placement from the policy.

use tale_graph::{GraphDb, GraphId};

/// A graph-to-shard placement strategy.
///
/// Policies only *choose* placement; the chosen assignment is persisted in
/// the manifest, so changing or even losing the policy never strands a
/// graph. Implementations must be deterministic: the same database and
/// shard count must always produce the same assignment, or rebuilt
/// replicas would disagree with their manifests.
pub trait ShardPolicy: Send + Sync {
    /// Stable identifier persisted in the manifest (used to resolve the
    /// routing policy when the index is reopened).
    fn name(&self) -> &'static str;

    /// Assigns every graph in `db` to a shard in `0..nshards`. The
    /// returned vector is indexed by [`GraphId::idx`] and must have
    /// exactly `db.len()` entries.
    fn assign(&self, db: &GraphDb, nshards: usize) -> Vec<u32>;

    /// Routes one newly inserted graph given the current per-shard node
    /// loads (`loads.len()` is the shard count).
    fn route(&self, db: &GraphDb, gid: GraphId, loads: &[u64]) -> u32;
}

/// 64-bit FNV-1a over a graph id — stable across platforms and runs.
fn fnv1a_u32(v: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hash-by-id placement (the default): shard = FNV-1a(id) mod N.
///
/// Stateless and oblivious to graph sizes, so a late insert lands on the
/// same shard a full rebuild would put it on.
#[derive(Debug, Default, Clone, Copy)]
pub struct HashPolicy;

impl ShardPolicy for HashPolicy {
    fn name(&self) -> &'static str {
        "hash"
    }

    fn assign(&self, db: &GraphDb, nshards: usize) -> Vec<u32> {
        (0..db.len() as u32)
            .map(|g| (fnv1a_u32(g) % nshards as u64) as u32)
            .collect()
    }

    fn route(&self, _db: &GraphDb, gid: GraphId, loads: &[u64]) -> u32 {
        (fnv1a_u32(gid.0) % loads.len() as u64) as u32
    }
}

/// Size-balanced placement: longest-processing-time greedy over node
/// counts.
///
/// Graphs are placed largest-first onto the currently lightest shard
/// (ties broken toward the lowest shard id, then the lowest graph id, so
/// the assignment is deterministic). Late inserts go to the lightest
/// shard at insert time. Balances skewed corpora — a handful of huge
/// graphs hashed onto one shard would otherwise dominate the critical
/// path of both build and query.
#[derive(Debug, Default, Clone, Copy)]
pub struct SizeBalancedPolicy;

/// Lightest shard, lowest id on ties.
fn argmin(loads: &[u64]) -> u32 {
    let mut best = 0usize;
    for (s, &l) in loads.iter().enumerate().skip(1) {
        if l < loads[best] {
            best = s;
        }
    }
    best as u32
}

impl ShardPolicy for SizeBalancedPolicy {
    fn name(&self) -> &'static str {
        "size-balanced"
    }

    fn assign(&self, db: &GraphDb, nshards: usize) -> Vec<u32> {
        let mut order: Vec<(GraphId, usize)> =
            db.iter().map(|(id, _, g)| (id, g.node_count())).collect();
        order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut loads = vec![0u64; nshards];
        let mut assignment = vec![0u32; db.len()];
        for (gid, nodes) in order {
            let s = argmin(&loads);
            assignment[gid.idx()] = s;
            loads[s as usize] += nodes as u64;
        }
        assignment
    }

    fn route(&self, _db: &GraphDb, _gid: GraphId, loads: &[u64]) -> u32 {
        argmin(loads)
    }
}

/// Label-clustered placement: graphs sharing a dominant effective label
/// land on the same shard.
///
/// A graph's *dominant label* is its most frequent effective node label
/// (ties toward the smallest label id; empty graphs use label 0); the
/// shard is `FNV-1a(dominant) mod N`. Deterministic and insert-stable —
/// routing depends only on the graph's own labels, never on current
/// loads — so a late insert lands where a full rebuild would put it.
///
/// This is the policy that gives the cost-based planner teeth: clustering
/// makes per-shard label vocabularies *narrow*, so shard statistics can
/// prove whole shards infeasible for a query (its labels absent there) or
/// bound their best score far below the leaders'. Under hash placement
/// every shard holds a slice of everything and no shard is ever prunable.
#[derive(Debug, Default, Clone, Copy)]
pub struct LabelClusteredPolicy;

/// Most frequent effective label of `gid`'s graph (smallest id on ties).
fn dominant_label(db: &GraphDb, gid: GraphId) -> u32 {
    let g = db.graph(gid);
    let mut counts: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    for n in g.nodes() {
        *counts.entry(db.effective_of_raw(g.label(n))).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
        .map(|(l, _)| l)
        .unwrap_or(0)
}

impl ShardPolicy for LabelClusteredPolicy {
    fn name(&self) -> &'static str {
        "label-clustered"
    }

    fn assign(&self, db: &GraphDb, nshards: usize) -> Vec<u32> {
        db.iter()
            .map(|(gid, _, _)| (fnv1a_u32(dominant_label(db, gid)) % nshards as u64) as u32)
            .collect()
    }

    fn route(&self, db: &GraphDb, gid: GraphId, loads: &[u64]) -> u32 {
        (fnv1a_u32(dominant_label(db, gid)) % loads.len() as u64) as u32
    }
}

/// Resolves a policy from its manifest name ([`ShardPolicy::name`]).
pub fn policy_by_name(name: &str) -> Option<Box<dyn ShardPolicy>> {
    match name {
        "hash" => Some(Box::new(HashPolicy)),
        "size-balanced" => Some(Box::new(SizeBalancedPolicy)),
        "label-clustered" => Some(Box::new(LabelClusteredPolicy)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tale_graph::Graph;

    fn db_with_sizes(sizes: &[usize]) -> GraphDb {
        let mut db = GraphDb::new();
        let l = db.intern_node_label("A");
        for (i, &n) in sizes.iter().enumerate() {
            let mut g = Graph::new_undirected();
            for _ in 0..n {
                g.add_node(l);
            }
            db.insert(format!("g{i}"), g);
        }
        db
    }

    #[test]
    fn hash_assignment_is_stable_and_in_range() {
        let db = db_with_sizes(&[3; 20]);
        let a1 = HashPolicy.assign(&db, 4);
        let a2 = HashPolicy.assign(&db, 4);
        assert_eq!(a1, a2);
        assert_eq!(a1.len(), 20);
        assert!(a1.iter().all(|&s| s < 4));
        // route agrees with assign for the same id
        for gid in 0..20u32 {
            assert_eq!(
                HashPolicy.route(&db, GraphId(gid), &[0; 4]),
                a1[gid as usize]
            );
        }
    }

    #[test]
    fn size_balanced_beats_hash_on_skewed_sizes() {
        // one whale + shrimps: LPT isolates the whale
        let mut sizes = vec![1000usize];
        sizes.extend(std::iter::repeat(10).take(15));
        let db = db_with_sizes(&sizes);
        let assignment = SizeBalancedPolicy.assign(&db, 4);
        let mut loads = [0u64; 4];
        for (i, &s) in assignment.iter().enumerate() {
            loads[s as usize] += sizes[i] as u64;
        }
        let max = *loads.iter().max().unwrap();
        let min = *loads.iter().min().unwrap();
        // whale alone on its shard; the rest split the shrimps
        assert_eq!(max, 1000);
        assert!(min >= 50, "loads {loads:?}");
    }

    #[test]
    fn size_balanced_route_picks_lightest() {
        let db = db_with_sizes(&[1]);
        assert_eq!(SizeBalancedPolicy.route(&db, GraphId(0), &[5, 2, 9]), 1);
        // ties go to the lowest shard
        assert_eq!(SizeBalancedPolicy.route(&db, GraphId(0), &[4, 4, 4]), 0);
    }

    #[test]
    fn label_clustered_groups_by_dominant_label_and_routes_consistently() {
        let mut db = GraphDb::new();
        let a = db.intern_node_label("A");
        let b = db.intern_node_label("B");
        // two graphs dominated by A (one with a minority of B), one by B
        for (name, labels) in [
            ("a0", vec![a, a, a]),
            ("a1", vec![a, a, b]),
            ("b0", vec![b, b]),
        ] {
            let mut g = Graph::new_undirected();
            for l in labels {
                g.add_node(l);
            }
            db.insert(name, g);
        }
        let assignment = LabelClusteredPolicy.assign(&db, 4);
        assert_eq!(assignment.len(), 3);
        assert_eq!(assignment[0], assignment[1], "same dominant label");
        // route agrees with assign for every graph, regardless of loads
        for gid in 0..3u32 {
            assert_eq!(
                LabelClusteredPolicy.route(&db, GraphId(gid), &[9, 0, 0, 0]),
                assignment[gid as usize]
            );
        }
        // ties break toward the smallest label id: a 1-A 1-B graph is
        // dominated by A
        let mut g = Graph::new_undirected();
        g.add_node(a);
        g.add_node(b);
        let gid = db.insert("tie", g);
        let all = LabelClusteredPolicy.assign(&db, 4);
        assert_eq!(all[gid.idx()], assignment[0]);
    }

    #[test]
    fn policy_lookup_by_name() {
        assert_eq!(policy_by_name("hash").unwrap().name(), "hash");
        assert_eq!(
            policy_by_name("size-balanced").unwrap().name(),
            "size-balanced"
        );
        assert_eq!(
            policy_by_name("label-clustered").unwrap().name(),
            "label-clustered"
        );
        assert!(policy_by_name("nope").is_none());
    }
}
