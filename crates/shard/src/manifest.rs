//! The `shards.json` manifest: the persisted shard map.
//!
//! A sharded index directory looks like
//!
//! ```text
//! index-dir/
//!   shards.json      <- this manifest
//!   graphs.json      <- the graph database (same format as unsharded)
//!   shard-000/       <- a complete, self-contained NH-Index
//!   shard-001/
//!   ...
//! ```
//!
//! The manifest is the ground truth for placement: `assignment[gid]`
//! names the one shard whose index carries that graph's postings. It also
//! records a per-shard fingerprint of the vocabulary each shard was built
//! (or last extended) against; [`ShardedNhIndex::open`] refuses to serve
//! queries when a fingerprint disagrees with the reloaded database, which
//! catches a `graphs.json` swapped or edited behind the index's back —
//! the sharded analogue of the single-index vocabulary drift hazard.
//!
//! [`ShardedNhIndex::open`]: crate::ShardedNhIndex::open

use crate::{Result, ShardError};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use tale_graph::{GraphDb, GraphId};
use tale_nhindex::IndexStatistics;

/// Manifest file name inside a sharded index directory.
pub const MANIFEST_FILE: &str = "shards.json";

/// Current manifest schema version (bumped on incompatible change).
pub const MANIFEST_SCHEMA_VERSION: u32 = 1;

/// The persisted shard map (see the module docs for the directory layout).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardManifest {
    /// Manifest format version ([`MANIFEST_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Number of shards (`shard-000` .. `shard-{N-1}`).
    pub shard_count: u32,
    /// Name of the placement policy that produced `assignment`
    /// ([`crate::ShardPolicy::name`]); resolved again for routing late
    /// inserts.
    pub policy: String,
    /// `assignment[gid]` = owning shard, indexed by [`GraphId::idx`].
    pub assignment: Vec<u32>,
    /// Per-shard fingerprint of the vocabulary (node + edge + group map)
    /// the shard's index was built or last extended against.
    pub vocab_fingerprints: Vec<u64>,
    /// Per-shard statistics summaries, refreshed whenever the manifest is
    /// rewritten. **Observability only** (`tale-cli stats`, dashboards):
    /// manifests recovered by journal roll-forward can carry summaries one
    /// mutation behind, so the planner reads each shard's live
    /// `nh.stats.json` instead — the manifest copy may *under*estimate,
    /// which would be the unsafe direction for pruning. Absent in
    /// pre-statistics manifests (`serde` default: empty).
    #[serde(default)]
    pub shard_stats: Vec<ShardStatsSummary>,
}

/// A compact, human-oriented digest of one shard's [`IndexStatistics`],
/// embedded in the manifest for `tale-cli stats` and the E-PLAN
/// experiment. Never used for planning decisions (see
/// [`ShardManifest::shard_stats`]).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ShardStatsSummary {
    /// Whether the shard exposed statistics at the last manifest write
    /// (false for indexes built before the statistics subsystem).
    pub present: bool,
    /// Graphs indexed (including later-tombstoned ones).
    pub graphs: u64,
    /// Nodes indexed.
    pub nodes: u64,
    /// Distinct B+-tree keys.
    pub keys: u64,
    /// Distinct effective labels with at least one node.
    pub labels: usize,
    /// Largest node degree in the shard.
    pub max_degree: u32,
    /// Median posting-list length (rows per key).
    pub posting_p50: u64,
    /// 90th-percentile posting-list length.
    pub posting_p90: u64,
    /// 99th-percentile posting-list length.
    pub posting_p99: u64,
    /// Inserts merged since the last exact rebuild of the statistics
    /// (build/fold) — the staleness generation: 0 means exact.
    pub stale_inserts: u64,
}

impl From<&IndexStatistics> for ShardStatsSummary {
    fn from(s: &IndexStatistics) -> Self {
        ShardStatsSummary {
            present: true,
            graphs: s.graph_count,
            nodes: s.node_count,
            keys: s.key_count,
            labels: s.labels.len(),
            max_degree: s.max_degree,
            posting_p50: s.posting_rows.p50,
            posting_p90: s.posting_rows.p90,
            posting_p99: s.posting_rows.p99,
            stale_inserts: s.stale_inserts,
        }
    }
}

impl ShardManifest {
    /// The shard owning `gid`, or `None` for an id the manifest has never
    /// seen.
    pub fn shard_of(&self, gid: GraphId) -> Option<u32> {
        self.assignment.get(gid.idx()).copied()
    }

    /// All graph ids assigned to `shard`, in ascending id order.
    pub fn graphs_of(&self, shard: u32) -> Vec<GraphId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s == shard)
            .map(|(i, _)| GraphId(i as u32))
            .collect()
    }

    /// Directory of one shard's NH-Index under the sharded root.
    pub fn shard_dir(root: &Path, shard: u32) -> PathBuf {
        root.join(format!("shard-{shard:03}"))
    }

    /// Writes the manifest to `root/shards.json` atomically (temp file +
    /// fsync + rename), so a crash mid-save leaves either the old or the
    /// new manifest — never a torn one.
    pub fn save(&self, root: &Path) -> Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| ShardError::Manifest(format!("serialize: {e}")))?;
        tale_storage::atomic::write_atomic(&root.join(MANIFEST_FILE), json.as_bytes())?;
        Ok(())
    }

    /// Reads the manifest from `root/shards.json` and checks internal
    /// consistency (schema version, assignment range, fingerprint count).
    pub fn load(root: &Path) -> Result<ShardManifest> {
        let raw = std::fs::read_to_string(root.join(MANIFEST_FILE))?;
        let m: ShardManifest =
            serde_json::from_str(&raw).map_err(|e| ShardError::Manifest(format!("parse: {e}")))?;
        if m.schema_version != MANIFEST_SCHEMA_VERSION {
            return Err(ShardError::Manifest(format!(
                "schema version {} (this build reads {})",
                m.schema_version, MANIFEST_SCHEMA_VERSION
            )));
        }
        if m.shard_count == 0 {
            return Err(ShardError::Manifest("shard_count is zero".into()));
        }
        if m.vocab_fingerprints.len() != m.shard_count as usize {
            return Err(ShardError::Manifest(format!(
                "{} fingerprints for {} shards",
                m.vocab_fingerprints.len(),
                m.shard_count
            )));
        }
        if let Some(&bad) = m.assignment.iter().find(|&&s| s >= m.shard_count) {
            return Err(ShardError::Manifest(format!(
                "assignment names shard {bad} but shard_count is {}",
                m.shard_count
            )));
        }
        Ok(m)
    }

    /// Whether a directory holds a sharded index (manifest present).
    pub fn exists(root: &Path) -> bool {
        root.join(MANIFEST_FILE).is_file()
    }
}

/// Fingerprint of everything the index's key space depends on besides the
/// graphs themselves: node vocabulary, edge vocabulary, and the §IV-E
/// group map (which rewrites effective labels). FNV-1a over a
/// length-prefixed serialization, stable across platforms.
pub fn vocab_fingerprint(db: &GraphDb) -> u64 {
    fn eat(h: &mut u64, bytes: &[u8]) {
        for &b in bytes {
            *h ^= b as u64;
            *h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for (id, name) in db.node_vocab().iter() {
        eat(&mut h, &id.to_le_bytes());
        eat(&mut h, &(name.len() as u64).to_le_bytes());
        eat(&mut h, name.as_bytes());
    }
    eat(&mut h, &[0xff]); // domain separator: node vocab | edge vocab
    for (id, name) in db.edge_vocab().iter() {
        eat(&mut h, &id.to_le_bytes());
        eat(&mut h, &(name.len() as u64).to_le_bytes());
        eat(&mut h, name.as_bytes());
    }
    eat(&mut h, &[0xfe]); // edge vocab | group map
    if let Some(groups) = db.group_map() {
        for &g in groups {
            eat(&mut h, &g.to_le_bytes());
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_lookup() {
        let dir = tempfile::tempdir().unwrap();
        let m = ShardManifest {
            schema_version: MANIFEST_SCHEMA_VERSION,
            shard_count: 3,
            policy: "hash".into(),
            assignment: vec![2, 0, 1, 2, 0],
            vocab_fingerprints: vec![7, 7, 7],
            shard_stats: Vec::new(),
        };
        m.save(dir.path()).unwrap();
        assert!(ShardManifest::exists(dir.path()));
        let back = ShardManifest::load(dir.path()).unwrap();
        assert_eq!(back.shard_count, 3);
        assert_eq!(back.assignment, m.assignment);
        assert_eq!(back.shard_of(GraphId(0)), Some(2));
        assert_eq!(back.shard_of(GraphId(9)), None);
        assert_eq!(back.graphs_of(2), vec![GraphId(0), GraphId(3)]);
        assert_eq!(
            ShardManifest::shard_dir(dir.path(), 2),
            dir.path().join("shard-002")
        );
    }

    #[test]
    fn load_rejects_inconsistencies() {
        let dir = tempfile::tempdir().unwrap();
        assert!(ShardManifest::load(dir.path()).is_err()); // missing

        let mut m = ShardManifest {
            schema_version: MANIFEST_SCHEMA_VERSION + 1,
            shard_count: 2,
            policy: "hash".into(),
            assignment: vec![0, 1],
            vocab_fingerprints: vec![1, 2],
            shard_stats: Vec::new(),
        };
        m.save(dir.path()).unwrap();
        assert!(ShardManifest::load(dir.path()).is_err()); // bad version

        m.schema_version = MANIFEST_SCHEMA_VERSION;
        m.assignment = vec![0, 5];
        m.save(dir.path()).unwrap();
        assert!(ShardManifest::load(dir.path()).is_err()); // shard out of range

        m.assignment = vec![0, 1];
        m.vocab_fingerprints = vec![1];
        m.save(dir.path()).unwrap();
        assert!(ShardManifest::load(dir.path()).is_err()); // fingerprint count

        m.vocab_fingerprints = vec![1, 2];
        m.save(dir.path()).unwrap();
        assert!(ShardManifest::load(dir.path()).is_ok());
    }

    #[test]
    fn pre_statistics_manifest_loads_with_empty_summaries() {
        // a manifest written before the statistics subsystem has no
        // `shard_stats` key; serde's default must accept it
        let dir = tempfile::tempdir().unwrap();
        let json = r#"{
            "schema_version": 1,
            "shard_count": 2,
            "policy": "hash",
            "assignment": [0, 1],
            "vocab_fingerprints": [3, 3]
        }"#;
        std::fs::write(dir.path().join(MANIFEST_FILE), json).unwrap();
        let m = ShardManifest::load(dir.path()).unwrap();
        assert!(m.shard_stats.is_empty());
    }

    #[test]
    fn fingerprint_tracks_vocab_and_groups() {
        let mut db = GraphDb::new();
        db.intern_node_label("A");
        let f1 = vocab_fingerprint(&db);
        db.intern_node_label("B");
        let f2 = vocab_fingerprint(&db);
        assert_ne!(f1, f2);
        let f2_again = vocab_fingerprint(&db);
        assert_eq!(f2, f2_again);
        db.set_group(vec![0, 0]).unwrap();
        assert_ne!(vocab_fingerprint(&db), f2);
    }
}
