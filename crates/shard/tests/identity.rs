//! The load-bearing contract of the sharding layer: sharded query output
//! is **bit-identical** to the single-index answer at every shard count
//! and every thread count — including after interleaved insert/remove
//! mutations, and regardless of placement policy.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tale::{QueryMatch, QueryOptions, TaleDatabase, TaleParams};
use tale_graph::generate::{gnm, mutate, MutationRates};
use tale_graph::{Graph, GraphDb};
use tale_shard::{HashPolicy, ShardPolicy, ShardedTaleDatabase, SizeBalancedPolicy};

const LABELS: u32 = 6;
const SHARD_COUNTS: &[usize] = &[1, 2, 4, 7];
const THREAD_COUNTS: &[usize] = &[0, 1, 4];

fn corpus(seed: u64, n_graphs: usize) -> (GraphDb, Vec<Graph>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut db = GraphDb::new();
    for i in 0..LABELS {
        db.intern_node_label(&format!("L{i}"));
    }
    let mut originals = Vec::new();
    for i in 0..n_graphs {
        let g = gnm(&mut rng, 30, 60, LABELS);
        let (noisy, _) = mutate(&mut rng, &g, &MutationRates::mild(), LABELS);
        db.insert(format!("g{i}"), noisy);
        originals.push(g);
    }
    (db, originals)
}

fn assert_bit_identical(a: &[Vec<QueryMatch>], b: &[Vec<QueryMatch>], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: batch size");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.len(), y.len(), "{ctx}: result count for query {i}");
        for (m, n) in x.iter().zip(y) {
            assert_eq!(m.graph, n.graph, "{ctx}: graph order for query {i}");
            assert_eq!(m.graph_name, n.graph_name, "{ctx}: query {i}");
            assert_eq!(
                m.score.to_bits(),
                n.score.to_bits(),
                "{ctx}: score bits for query {i} graph {:?}",
                m.graph
            );
            assert_eq!(m.matched_nodes, n.matched_nodes, "{ctx}: query {i}");
            assert_eq!(m.matched_edges, n.matched_edges, "{ctx}: query {i}");
            assert_eq!(m.m.pairs, n.m.pairs, "{ctx}: pair list for query {i}");
        }
    }
}

/// The full grid: shard counts {1, 2, 4, 7} × thread counts {0, 1, 4} ×
/// placement policies, against the unsharded reference.
#[test]
fn sharded_equals_unsharded_across_shard_and_thread_grid() {
    let (db, originals) = corpus(41, 8);
    let params = TaleParams::default();
    let queries: Vec<&Graph> = originals.iter().collect();
    let base = QueryOptions {
        rho: 0.25,
        p_imp: 0.25,
        ..Default::default()
    }
    .with_cache(false);

    let single = TaleDatabase::build_in_temp(db.clone(), &params).unwrap();
    let reference = single
        .query_batch(&queries, &base.clone().with_threads(1))
        .unwrap();

    let policies: [&dyn ShardPolicy; 2] = [&HashPolicy, &SizeBalancedPolicy];
    for policy in policies {
        for &nshards in SHARD_COUNTS {
            let dir = tempfile::tempdir().unwrap();
            let sharded =
                ShardedTaleDatabase::build(db.clone(), dir.path(), &params, nshards, policy)
                    .unwrap();
            for &threads in THREAD_COUNTS {
                let got = sharded
                    .query_batch(&queries, &base.clone().with_threads(threads))
                    .unwrap();
                assert_bit_identical(
                    &reference,
                    &got,
                    &format!(
                        "policy={} shards={nshards} threads={threads}",
                        policy.name()
                    ),
                );
            }
        }
    }
}

/// Identity must survive mutation: after the same interleaved
/// insert/remove sequence on both databases, every (shard count, thread
/// count) combination still returns the unsharded answer bit for bit.
#[test]
fn sharded_equals_unsharded_after_interleaved_insert_remove() {
    let (db, originals) = corpus(42, 6);
    let params = TaleParams::default();
    let queries: Vec<&Graph> = originals.iter().collect();
    let opts = QueryOptions {
        rho: 0.25,
        p_imp: 0.25,
        ..Default::default()
    };
    // extra graphs to insert mid-stream
    let mut rng = ChaCha8Rng::seed_from_u64(43);
    let extras: Vec<Graph> = (0..3).map(|_| gnm(&mut rng, 30, 60, LABELS)).collect();

    for &nshards in SHARD_COUNTS {
        let single = TaleDatabase::build_in_temp(db.clone(), &params).unwrap();
        let dir = tempfile::tempdir().unwrap();
        let mut sharded =
            ShardedTaleDatabase::build(db.clone(), dir.path(), &params, nshards, &HashPolicy)
                .unwrap();

        // warm both caches, then interleave: insert, remove, insert,
        // query, remove, insert — caches must stay exactly coherent
        let _ = single.query_batch(&queries, &opts).unwrap();
        let _ = sharded.query_batch(&queries, &opts).unwrap();

        let g0 = single.insert_graph("x0", extras[0].clone()).unwrap();
        let s0 = sharded.insert_graph("x0", extras[0].clone()).unwrap();
        assert_eq!(g0, s0, "insertion ids must agree");

        single.remove_graph(g0).unwrap();
        sharded.remove_graph(s0).unwrap();

        let g1 = single.insert_graph("x1", extras[1].clone()).unwrap();
        let s1 = sharded.insert_graph("x1", extras[1].clone()).unwrap();
        assert_eq!(g1, s1);

        let mid_single = single.query_batch(&queries, &opts).unwrap();
        let mid_sharded = sharded.query_batch(&queries, &opts).unwrap();
        assert_bit_identical(
            &mid_single,
            &mid_sharded,
            &format!("shards={nshards} mid-stream"),
        );

        single.remove_graph(tale_graph::GraphId(1)).unwrap();
        sharded.remove_graph(tale_graph::GraphId(1)).unwrap();
        let g2 = single.insert_graph("x2", extras[2].clone()).unwrap();
        let s2 = sharded.insert_graph("x2", extras[2].clone()).unwrap();
        assert_eq!(g2, s2);

        for &threads in THREAD_COUNTS {
            let o = opts.clone().with_threads(threads);
            let want = single.query_batch(&queries, &o).unwrap();
            let got = sharded.query_batch(&queries, &o).unwrap();
            assert_bit_identical(
                &want,
                &got,
                &format!("shards={nshards} threads={threads} after mutations"),
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Randomized spot checks over seeds and grid points (cheap cases
    /// only; the exhaustive grid above covers the fixed corners).
    #[test]
    fn sharded_identity_holds_for_random_corpora(
        seed in 100u64..200,
        nshards in 1usize..6,
        threads in 0usize..3,
    ) {
        let (db, originals) = corpus(seed, 4);
        let params = TaleParams::default();
        let queries: Vec<&Graph> = originals.iter().collect();
        let opts = QueryOptions {
            rho: 0.25,
            p_imp: 0.25,
            ..Default::default()
        }
        .with_cache(false)
        .with_threads(threads);

        let single = TaleDatabase::build_in_temp(db.clone(), &params).unwrap();
        let want = single.query_batch(&queries, &opts).unwrap();
        let sharded = ShardedTaleDatabase::build_in_temp(db, &params, nshards).unwrap();
        let got = sharded.query_batch(&queries, &opts).unwrap();
        assert_bit_identical(&want, &got, &format!("seed={seed} shards={nshards} threads={threads}"));
    }
}
