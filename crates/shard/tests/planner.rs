//! Planner identity: `PlanMode::Cost` may change how the index is read —
//! probe order, readahead budgets, which shards execute at all — but
//! never what comes back. Every test here runs the same workload through
//! the fixed pipeline and the cost-based planner and demands bit-for-bit
//! equal answers (score bits included):
//!
//! * a full grid over shard count {1, 2, 4} × thread count {0, 1, 4} ×
//!   result cache {on, off}, warm and cold;
//! * after inserts, removals, and a fold (statistics go stale in exactly
//!   the ways the conservatism argument in `tale::engine::plan` permits);
//! * under proptest over random corpora and shard counts;
//! * on the skewed label-clustered placement where shard pruning
//!   actually fires — the cell where an unsound bound would first
//!   corrupt a top-K answer.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tale::{PlanMode, QueryMatch, QueryOptions, TaleDatabase, TaleParams};
use tale_graph::generate::{gnm, mutate, MutationRates};
use tale_graph::labels::NodeLabel;
use tale_graph::{Graph, GraphDb, NodeId};
use tale_shard::{HashPolicy, LabelClusteredPolicy, ShardedTaleDatabase};

const LABELS: u32 = 6;

fn corpus(seed: u64, n_graphs: usize) -> (GraphDb, Vec<Graph>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut db = GraphDb::new();
    for i in 0..LABELS {
        db.intern_node_label(&format!("L{i}"));
    }
    let mut originals = Vec::new();
    for i in 0..n_graphs {
        let g = gnm(&mut rng, 24, 48, LABELS);
        let (noisy, _) = mutate(&mut rng, &g, &MutationRates::mild(), LABELS);
        db.insert(format!("g{i}"), noisy);
        originals.push(g);
    }
    (db, originals)
}

fn assert_bit_identical(a: &[Vec<QueryMatch>], b: &[Vec<QueryMatch>], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: batch size");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.len(), y.len(), "{ctx}: result count for query {i}");
        for (m, n) in x.iter().zip(y) {
            assert_eq!(m.graph, n.graph, "{ctx}: graph order for query {i}");
            assert_eq!(
                m.score.to_bits(),
                n.score.to_bits(),
                "{ctx}: score bits for query {i} graph {:?}",
                m.graph
            );
            assert_eq!(m.matched_nodes, n.matched_nodes, "{ctx}: query {i}");
            assert_eq!(m.matched_edges, n.matched_edges, "{ctx}: query {i}");
            assert_eq!(m.m.pairs, n.m.pairs, "{ctx}: pair list for query {i}");
        }
    }
}

/// Top-K on so the threshold prune is reachable; Pimp raised so most
/// queries probe more than one node (reordering is reachable too).
fn base_opts() -> QueryOptions {
    QueryOptions {
        rho: 0.25,
        p_imp: 0.25,
        ..Default::default()
    }
    .with_top_k(5)
}

/// Runs `queries` in both plan modes against `run` and demands
/// bit-identical answers. `run` receives the fully-assembled options.
fn assert_modes_agree(
    run: &dyn Fn(&QueryOptions) -> Vec<Vec<QueryMatch>>,
    opts: &QueryOptions,
    ctx: &str,
) {
    let fixed = run(&opts.clone().with_plan(PlanMode::Fixed));
    let cost = run(&opts.clone().with_plan(PlanMode::Cost));
    assert_bit_identical(&fixed, &cost, ctx);
}

/// The full identity grid: shards × threads × cache, fixed vs planned,
/// plus a warm second pass when the cache is on (cache entries written by
/// one mode must satisfy the other — the options fingerprint folds the
/// plan mode, so warm hits stay mode-consistent).
#[test]
fn planned_execution_is_bit_identical_across_the_grid() {
    let (db, originals) = corpus(71, 8);
    let params = TaleParams::default();
    let queries: Vec<&Graph> = originals.iter().collect();

    for &nshards in &[1usize, 2, 4] {
        let dir = tempfile::tempdir().unwrap();
        ShardedTaleDatabase::build(db.clone(), dir.path(), &params, nshards, &HashPolicy).unwrap();
        let sharded = ShardedTaleDatabase::open(dir.path(), 4096).unwrap();
        for &threads in &[0usize, 1, 4] {
            for &cache in &[true, false] {
                let opts = base_opts().with_threads(threads).with_cache(cache);
                let ctx = format!("shards={nshards} threads={threads} cache={cache}");
                assert_modes_agree(&|o| sharded.query_batch(&queries, o).unwrap(), &opts, &ctx);
                if cache {
                    // warm pass: both modes again, now against a cache
                    // populated by both modes' first passes
                    assert_modes_agree(
                        &|o| sharded.query_batch(&queries, o).unwrap(),
                        &opts,
                        &format!("{ctx} warm"),
                    );
                }
            }
        }
    }
}

/// Identity must survive the statistics going stale: merged-in inserts,
/// tombstoned removals (stats unchanged — overestimates), and a fold
/// (stats rebuilt exact). Unsharded layout: insert → remove → fold.
#[test]
fn planned_identity_after_insert_remove_and_fold_unsharded() {
    let (db, originals) = corpus(72, 6);
    let (extra_db, extras) = corpus(172, 3);
    let queries: Vec<&Graph> = originals.iter().collect();
    let dir = tempfile::tempdir().unwrap();
    TaleDatabase::build(db, dir.path(), &TaleParams::default()).unwrap();
    let tale = TaleDatabase::open(dir.path(), 4096).unwrap();
    // remap the extra graphs into the live vocabulary by name
    let mut inserted = Vec::new();
    for (i, g) in extras.iter().enumerate() {
        let mut remapped = Graph::new(g.direction());
        for n in g.nodes() {
            let name = extra_db.node_vocab().name(g.label(n).0).unwrap().to_owned();
            let l = tale.intern_node_label(&name);
            remapped.add_node(l);
        }
        for (u, v, _) in g.edges() {
            remapped.add_edge(u, v).unwrap();
        }
        inserted.push(tale.insert_graph(format!("x{i}"), remapped).unwrap());
    }
    let run = |o: &QueryOptions| tale.query_batch(&queries, o).unwrap();
    let opts = base_opts().with_cache(false);
    assert_modes_agree(&run, &opts, "unsharded after insert");
    tale.remove_graph(inserted[0]).unwrap();
    assert_modes_agree(&run, &opts, "unsharded after remove");
    tale.fold().unwrap();
    assert_modes_agree(&run, &opts, "unsharded after fold");
}

/// Sharded layout: routed inserts update the owning shard's statistics;
/// removals leave them overestimating. Identity must hold either way.
#[test]
fn planned_identity_after_insert_and_remove_sharded() {
    let (db, originals) = corpus(73, 6);
    let queries: Vec<&Graph> = originals.iter().collect();
    let dir = tempfile::tempdir().unwrap();
    ShardedTaleDatabase::build(db, dir.path(), &TaleParams::default(), 3, &HashPolicy).unwrap();
    let mut sharded = ShardedTaleDatabase::open(dir.path(), 4096).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(173);
    let mut g = Graph::new_undirected();
    for _ in 0..10 {
        g.add_node(NodeLabel(rng.gen_range(0..LABELS)));
    }
    for j in 1..10u32 {
        g.add_edge(NodeId(j - 1), NodeId(j)).unwrap();
    }
    let gid = sharded.insert_graph("late", g).unwrap();
    {
        let run = |o: &QueryOptions| sharded.query_batch(&queries, o).unwrap();
        let opts = base_opts().with_cache(false);
        assert_modes_agree(&run, &opts, "sharded after insert");
    }
    sharded.remove_graph(gid).unwrap();
    let run = |o: &QueryOptions| sharded.query_batch(&queries, o).unwrap();
    let opts = base_opts().with_cache(false);
    assert_modes_agree(&run, &opts, "sharded after remove");
}

/// The placement where pruning actually fires: label domains with
/// private vocabularies, clustered placement, top-K workload. The cost
/// pass must (a) agree bit-for-bit with the fixed pass AND with the
/// unsharded single index, and (b) demonstrably prune — otherwise this
/// test guards nothing.
#[test]
fn shard_pruning_is_safe_on_skewed_clustered_placement() {
    const DOMAINS: usize = 5;
    const PER_DOMAIN: usize = 4;
    let mut rng = ChaCha8Rng::seed_from_u64(74);
    let mut db = GraphDb::new();
    for d in 0..DOMAINS {
        for j in 0..3 {
            db.intern_node_label(&format!("d{d}-l{j}"));
        }
    }
    let mut domain_graph = |base: u32, n: usize| {
        let mut g = Graph::new_undirected();
        for _ in 0..n {
            g.add_node(NodeLabel(base + rng.gen_range(0..3)));
        }
        for j in 1..n as u32 {
            g.add_edge(NodeId(j - 1), NodeId(j)).unwrap();
        }
        g.add_edge(NodeId(0), NodeId(n as u32 - 1)).unwrap();
        g
    };
    let mut queries = Vec::new();
    for d in 0..DOMAINS {
        let base = (d * 3) as u32;
        for i in 0..PER_DOMAIN {
            db.insert(format!("d{d}g{i}"), domain_graph(base, 8 + (i % 3) * 2));
        }
        queries.push(domain_graph(base, 6));
    }
    let query_refs: Vec<&Graph> = queries.iter().collect();

    let single_dir = tempfile::tempdir().unwrap();
    let single =
        TaleDatabase::build(db.clone(), single_dir.path(), &TaleParams::default()).unwrap();
    let shard_dir = tempfile::tempdir().unwrap();
    ShardedTaleDatabase::build(
        db,
        shard_dir.path(),
        &TaleParams::default(),
        4,
        &LabelClusteredPolicy,
    )
    .unwrap();
    let sharded = ShardedTaleDatabase::open(shard_dir.path(), 4096).unwrap();

    for k in [1usize, 3, 8] {
        let opts = base_opts().with_cache(false).with_top_k(k);
        let reference = single
            .query_batch(&query_refs, &opts.clone().with_plan(PlanMode::Fixed))
            .unwrap();
        let fixed = sharded
            .query_batch(&query_refs, &opts.clone().with_plan(PlanMode::Fixed))
            .unwrap();
        let (cost, stats) = sharded
            .query_batch_with_stats(&query_refs, &opts.clone().with_plan(PlanMode::Cost))
            .unwrap();
        assert_bit_identical(
            &reference,
            &fixed,
            &format!("k={k} single vs sharded fixed"),
        );
        assert_bit_identical(
            &reference,
            &cost,
            &format!("k={k} single vs sharded planned"),
        );
        assert!(
            stats.shards_pruned > 0,
            "k={k}: clustered placement never pruned — the safety claim went untested"
        );
    }
}

mod prop {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 6 })]

        /// Random corpora, shard counts, thread counts, and K: the two
        /// plan modes must agree bit-for-bit on every draw.
        #[test]
        fn planned_matches_fixed_on_random_corpora(
            seed in 0u64..1000,
            nshards in 1usize..5,
            n_graphs in 4usize..9,
            threads in 0usize..3,
            k in 1usize..7,
        ) {
            let (db, originals) = corpus(seed, n_graphs);
            let queries: Vec<&Graph> = originals.iter().collect();
            let dir = tempfile::tempdir().unwrap();
            ShardedTaleDatabase::build(
                db,
                dir.path(),
                &TaleParams::default(),
                nshards,
                &HashPolicy,
            )
            .unwrap();
            let sharded = ShardedTaleDatabase::open(dir.path(), 4096).unwrap();
            let opts = base_opts()
                .with_cache(false)
                .with_threads(threads)
                .with_top_k(k);
            let fixed = sharded
                .query_batch(&queries, &opts.clone().with_plan(PlanMode::Fixed))
                .unwrap();
            let cost = sharded
                .query_batch(&queries, &opts.clone().with_plan(PlanMode::Cost))
                .unwrap();
            assert_bit_identical(
                &fixed,
                &cost,
                &format!("seed={seed} shards={nshards} graphs={n_graphs} threads={threads} k={k}"),
            );
        }
    }
}
