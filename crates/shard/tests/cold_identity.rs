//! Cold-cache identity: buffer-pool size is a performance knob, never a
//! correctness knob. Every combination of pool size {1 frame, ~1% of the
//! index, unbounded} × thread count {0, 4} × layout {single index,
//! 4 shards} must answer the same query workload bit-identically to an
//! unbounded-pool serial reference — including `query` (the singular
//! path) and under repeated hammering of a 1-frame pool, where a single
//! leaked pin or cross-page flush contamination would surface
//! immediately.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tale::{QueryMatch, QueryOptions, TaleDatabase, TaleParams};
use tale_graph::generate::{gnm, mutate, MutationRates};
use tale_graph::{Graph, GraphDb};
use tale_shard::{HashPolicy, ShardedTaleDatabase};
use tale_storage::PAGE_SIZE;

const LABELS: u32 = 6;
const THREAD_COUNTS: &[usize] = &[0, 4];

fn corpus(seed: u64, n_graphs: usize) -> (GraphDb, Vec<Graph>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut db = GraphDb::new();
    for i in 0..LABELS {
        db.intern_node_label(&format!("L{i}"));
    }
    let mut originals = Vec::new();
    for i in 0..n_graphs {
        let g = gnm(&mut rng, 30, 60, LABELS);
        let (noisy, _) = mutate(&mut rng, &g, &MutationRates::mild(), LABELS);
        db.insert(format!("g{i}"), noisy);
        originals.push(g);
    }
    (db, originals)
}

fn assert_bit_identical(a: &[Vec<QueryMatch>], b: &[Vec<QueryMatch>], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: batch size");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.len(), y.len(), "{ctx}: result count for query {i}");
        for (m, n) in x.iter().zip(y) {
            assert_eq!(m.graph, n.graph, "{ctx}: graph order for query {i}");
            assert_eq!(
                m.score.to_bits(),
                n.score.to_bits(),
                "{ctx}: score bits for query {i} graph {:?}",
                m.graph
            );
            assert_eq!(m.matched_nodes, n.matched_nodes, "{ctx}: query {i}");
            assert_eq!(m.matched_edges, n.matched_edges, "{ctx}: query {i}");
            assert_eq!(m.m.pairs, n.m.pairs, "{ctx}: pair list for query {i}");
        }
    }
}

fn base_opts() -> QueryOptions {
    QueryOptions {
        rho: 0.25,
        p_imp: 0.25,
        ..Default::default()
    }
    .with_cache(false)
}

/// The pool sizes the grid sweeps for an index of `pages` total pages:
/// the degenerate 1-frame pool, ~1% of the index, and the whole index.
fn pool_sizes(pages: usize) -> [usize; 3] {
    [1, (pages / 100).max(2), pages.max(8)]
}

/// The full grid: pool sizes × thread counts × single/sharded, each cell
/// a *cold* open of the on-disk index, against an unbounded serial
/// reference. Also exercises the singular `query` path per pool size.
#[test]
fn cold_identity_across_pool_sizes_threads_and_layouts() {
    let (db, originals) = corpus(61, 8);
    let params = TaleParams::default();
    let queries: Vec<&Graph> = originals.iter().collect();

    let single_dir = tempfile::tempdir().unwrap();
    let built = TaleDatabase::build(db.clone(), single_dir.path(), &params).unwrap();
    let pages = (built.index_size_bytes() as usize)
        .div_ceil(PAGE_SIZE)
        .max(1);
    drop(built);
    let shard_dir = tempfile::tempdir().unwrap();
    ShardedTaleDatabase::build(db.clone(), shard_dir.path(), &params, 4, &HashPolicy).unwrap();

    let reference = {
        let r = TaleDatabase::open(single_dir.path(), pages.max(8)).unwrap();
        r.query_batch(&queries, &base_opts().with_threads(1))
            .unwrap()
    };

    for &frames in &pool_sizes(pages) {
        for &threads in THREAD_COUNTS {
            let opts = base_opts().with_threads(threads);

            let cold = TaleDatabase::open(single_dir.path(), frames).unwrap();
            let got = cold.query_batch(&queries, &opts).unwrap();
            assert_bit_identical(
                &reference,
                &got,
                &format!("single frames={frames} threads={threads}"),
            );
            // the singular path takes the same cold pool
            let one = cold.query(queries[0], &opts).unwrap();
            assert_bit_identical(
                &reference[..1],
                &[one],
                &format!("single query() frames={frames} threads={threads}"),
            );

            let cold = ShardedTaleDatabase::open(shard_dir.path(), frames).unwrap();
            let got = cold.query_batch(&queries, &opts).unwrap();
            assert_bit_identical(
                &reference,
                &got,
                &format!("sharded frames={frames} threads={threads}"),
            );
        }
    }
}

/// Hammers a 1-frame pool: every fetch evicts, every descent re-reads,
/// and 4 query threads fight over the single frame for several rounds.
/// Answers must stay bit-identical every round, the pool must report
/// real disk traffic, and the access taxonomy must stay a partition
/// (hits + coalesced + misses + prefetched == fetches). A leaked pin
/// would wedge round two; stale flush bytes would corrupt a later read.
#[test]
fn one_frame_pool_stress_keeps_identity_and_ledger() {
    let (db, originals) = corpus(62, 6);
    let params = TaleParams::default();
    let queries: Vec<&Graph> = originals.iter().collect();

    let dir = tempfile::tempdir().unwrap();
    let built = TaleDatabase::build(db.clone(), dir.path(), &params).unwrap();
    let pages = (built.index_size_bytes() as usize)
        .div_ceil(PAGE_SIZE)
        .max(8);
    drop(built);

    let reference = {
        let r = TaleDatabase::open(dir.path(), pages).unwrap();
        r.query_batch(&queries, &base_opts().with_threads(1))
            .unwrap()
    };

    let cold = TaleDatabase::open(dir.path(), 1).unwrap();
    for round in 0..4 {
        for &threads in THREAD_COUNTS {
            let got = cold
                .query_batch(&queries, &base_opts().with_threads(threads))
                .unwrap();
            assert_bit_identical(
                &reference,
                &got,
                &format!("round {round} threads {threads}"),
            );
        }
    }
    let stats = cold.index().pool_stats();
    assert!(stats.misses > 0, "a 1-frame pool cannot avoid disk reads");
    assert_eq!(
        stats.accesses(),
        stats.hits + stats.coalesced + stats.misses + stats.prefetched,
        "access taxonomy must partition every fetch"
    );
}
