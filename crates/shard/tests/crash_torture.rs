//! Sharded crash-torture harness: every gated I/O operation of a sharded
//! insert — journal staging, the `graphs.json` save, the owning shard's
//! WAL transaction, and the atomic `shards.json` rewrite — is failed in
//! turn, process death is simulated by dropping the handle with the fault
//! still tripped, and the reopened database must answer queries
//! bit-identically to either the pre-insert or the post-insert state.
//!
//! The fault shim is thread-local, so these tests are safe under the
//! default parallel test runner.

use std::path::Path;
use tale::{QueryOptions, TaleParams};
use tale_graph::{Graph, GraphDb, GraphId, NodeId};
use tale_shard::{HashPolicy, ShardError, ShardedTaleDatabase};
use tale_storage::faults;

/// Tiny per-shard pool so mutations overflow it and exercise eviction
/// write-backs (which must WAL-protect their pages) mid-transaction.
fn params() -> TaleParams {
    TaleParams {
        buffer_frames: 8,
        parallel_build: false,
        ..TaleParams::default()
    }
}

fn opts() -> QueryOptions {
    QueryOptions {
        p_imp: 0.5,
        ..QueryOptions::default()
    }
}

/// Six member graphs (cycles with a chord over four labels) plus one kept
/// aside as insertion fodder.
fn small_db() -> (GraphDb, Vec<Graph>, Graph) {
    let mut db = GraphDb::new();
    let labels: Vec<_> = (0..4)
        .map(|i| db.intern_node_label(&format!("L{i}")))
        .collect();
    let mut graphs = Vec::new();
    let build = |k: usize, labels: &[tale_graph::NodeLabel]| {
        let mut g = Graph::new_undirected();
        let n: Vec<NodeId> = (0..4 + k % 3)
            .map(|j| g.add_node(labels[(j + k) % 4]))
            .collect();
        for w in n.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        g.add_edge(n[0], n[n.len() - 1]).unwrap();
        g
    };
    for k in 0..6usize {
        let g = build(k, &labels);
        db.insert(format!("g{k}"), g.clone());
        graphs.push(g);
    }
    let fodder = build(6, &labels);
    (db, graphs, fodder)
}

/// One ranked match, compressed to raw bits for exact comparison.
type Row = (GraphId, u64, Vec<(NodeId, NodeId, u64)>);

/// Compressed query answers over all probe graphs — the "query output"
/// whose bit-identity the torture asserts.
fn answers(sharded: &ShardedTaleDatabase, queries: &[Graph]) -> Vec<Vec<Row>> {
    queries
        .iter()
        .map(|q| {
            sharded
                .query(q, &opts())
                .unwrap()
                .into_iter()
                .map(|m| {
                    let pairs =
                        m.m.pairs
                            .iter()
                            .map(|p| (p.query, p.target, p.quality.to_bits()))
                            .collect();
                    (m.graph, m.score.to_bits(), pairs)
                })
                .collect()
        })
        .collect()
}

/// Recursive copy: a sharded directory nests one index dir per shard.
fn copy_tree(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_tree(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).unwrap();
        }
    }
}

#[test]
fn torture_sharded_insert_graph() {
    let (db, graphs, fodder) = small_db();
    let scratch = tempfile::tempdir().unwrap();
    let pre = scratch.path().join("pre");
    let sharded = ShardedTaleDatabase::build(db, &pre, &params(), 2, &HashPolicy).unwrap();
    let mut queries = graphs.clone();
    queries.push(fodder.clone());
    let pre_len = sharded.db().len();
    let pre_answers = answers(&sharded, &queries);
    drop(sharded);

    // Reference post state: clean insert on a copy.
    let post_dir = scratch.path().join("post");
    copy_tree(&pre, &post_dir);
    let mut post = ShardedTaleDatabase::open(&post_dir, params().buffer_frames).unwrap();
    post.insert_graph("late", fodder.clone()).unwrap();
    let post_answers = answers(&post, &queries);
    drop(post);

    // Measuring run: how many gated I/O operations does the insert make?
    let count_dir = scratch.path().join("count");
    copy_tree(&pre, &count_dir);
    let mut counted = ShardedTaleDatabase::open(&count_dir, params().buffer_frames).unwrap();
    faults::arm_counting();
    counted.insert_graph("late", fodder.clone()).unwrap();
    let n = faults::disarm();
    drop(counted);
    // journal + graphs.json + shard WAL/pages + manifest: many gates
    assert!(n >= 8, "suspiciously few fault points: {n}");

    for i in 0..n {
        let work = scratch.path().join(format!("fault-{i}"));
        copy_tree(&pre, &work);
        let mut sharded = ShardedTaleDatabase::open(&work, params().buffer_frames).unwrap();
        faults::arm(i);
        let res = sharded.insert_graph("late", fodder.clone());
        drop(sharded); // Drop flush also fails: the process is "dead"
        faults::disarm();
        assert!(res.is_err(), "fault {i} of {n} did not surface");

        let (recovered, rec) =
            ShardedTaleDatabase::open_with_recovery(&work, params().buffer_frames).unwrap();
        assert!(
            !(rec.db_rolled_back && rec.manifest_rolled_forward),
            "fault {i}: recovery both rolled back and rolled forward"
        );
        let got = answers(&recovered, &queries);
        if recovered.db().len() == pre_len + 1 {
            assert_eq!(
                got, post_answers,
                "fault {i} of {n}: committed state differs from clean insert"
            );
        } else {
            assert_eq!(
                recovered.db().len(),
                pre_len,
                "fault {i}: graph count corrupt"
            );
            assert_eq!(
                got, pre_answers,
                "fault {i} of {n}: rolled-back state differs from pre-op"
            );
        }
        for (s, report) in recovered.index().verify().unwrap().iter().enumerate() {
            assert!(
                report.is_ok(),
                "fault {i} of {n}: shard {s} integrity errors after recovery: {:?}",
                report.errors
            );
        }
        drop(recovered);
        std::fs::remove_dir_all(&work).unwrap();
    }
}

#[test]
fn torture_sharded_remove_graph() {
    // Removal tombstones only the owning shard's index (no journal, no
    // graphs.json or manifest change), so the shard's own WAL covers it.
    let (db, graphs, _) = small_db();
    let scratch = tempfile::tempdir().unwrap();
    let pre = scratch.path().join("pre");
    let sharded = ShardedTaleDatabase::build(db, &pre, &params(), 2, &HashPolicy).unwrap();
    let pre_answers = answers(&sharded, &graphs);
    drop(sharded);

    let post_dir = scratch.path().join("post");
    copy_tree(&pre, &post_dir);
    let mut post = ShardedTaleDatabase::open(&post_dir, params().buffer_frames).unwrap();
    post.remove_graph(GraphId(0)).unwrap();
    let post_answers = answers(&post, &graphs);
    drop(post);

    let count_dir = scratch.path().join("count");
    copy_tree(&pre, &count_dir);
    let mut counted = ShardedTaleDatabase::open(&count_dir, params().buffer_frames).unwrap();
    faults::arm_counting();
    counted.remove_graph(GraphId(0)).unwrap();
    let n = faults::disarm();
    drop(counted);
    assert!(n > 0, "removal made no gated I/O");

    for i in 0..n {
        let work = scratch.path().join(format!("fault-{i}"));
        copy_tree(&pre, &work);
        let mut sharded = ShardedTaleDatabase::open(&work, params().buffer_frames).unwrap();
        faults::arm(i);
        let res = sharded.remove_graph(GraphId(0));
        drop(sharded);
        faults::disarm();
        assert!(res.is_err(), "fault {i} of {n} did not surface");

        let (recovered, _) =
            ShardedTaleDatabase::open_with_recovery(&work, params().buffer_frames).unwrap();
        let got = answers(&recovered, &graphs);
        let removed = recovered.index().is_removed(GraphId(0));
        if removed {
            assert_eq!(
                got, post_answers,
                "fault {i} of {n}: committed removal differs"
            );
        } else {
            assert_eq!(
                got, pre_answers,
                "fault {i} of {n}: rolled-back removal differs"
            );
        }
        drop(recovered);
        std::fs::remove_dir_all(&work).unwrap();
    }
}

#[test]
fn partial_shard_failure_names_the_shard() {
    let (db, _, _) = small_db();
    let dir = tempfile::tempdir().unwrap();
    let sharded = ShardedTaleDatabase::build(db, dir.path(), &params(), 3, &HashPolicy).unwrap();
    drop(sharded);
    // destroy one shard's meta file; its siblings stay healthy
    std::fs::remove_file(dir.path().join("shard-001").join("nh.meta.json")).unwrap();
    let err = match ShardedTaleDatabase::open(dir.path(), params().buffer_frames) {
        Ok(_) => panic!("open served a database with a destroyed shard"),
        Err(e) => e,
    };
    match err {
        ShardError::Shard { shard, .. } => assert_eq!(shard, 1),
        other => panic!("expected a shard-attributed error, got: {other}"),
    }
}

#[test]
fn sharded_verify_attributes_bit_flips() {
    let (db, _, _) = small_db();
    let dir = tempfile::tempdir().unwrap();
    let sharded = ShardedTaleDatabase::build(db, dir.path(), &params(), 2, &HashPolicy).unwrap();
    let clean = sharded.index().verify().unwrap();
    assert!(clean.iter().all(|r| r.is_ok()));
    drop(sharded);

    // flip one payload byte in the middle of shard 0's B+-tree file
    let bt = dir.path().join("shard-000").join("nh.btree");
    let mut bytes = std::fs::read(&bt).unwrap();
    let victim = bytes.len() / 2;
    bytes[victim] ^= 0x40;
    std::fs::write(&bt, &bytes).unwrap();

    let sharded = ShardedTaleDatabase::open(dir.path(), params().buffer_frames).unwrap();
    let reports = sharded.index().verify().unwrap();
    assert!(!reports[0].is_ok(), "bit flip in shard 0 not detected");
    assert!(reports[1].is_ok(), "healthy shard 1 flagged");
}
