//! Node-match quality `w` — Eq. IV.5.
//!
//! The formula lives in [`tale_graph::neighborhood`] (it scores
//! neighborhood agreement and is also used by the matcher's extension
//! step, which does not touch the index); it is re-exported here because
//! the paper introduces it as part of the NH-Index probe (§IV-B.1), and
//! this module carries its unit tests.

pub use tale_graph::neighborhood::node_match_quality;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_match_scores_two() {
        assert_eq!(node_match_quality(5, 4, 0, 0), 2.0);
        assert_eq!(node_match_quality(0, 0, 0, 0), 2.0);
    }

    #[test]
    fn missing_connections_only() {
        // nbmiss = 0, nbcmiss = 2 of 4 → w = 2 - 0.5
        assert!((node_match_quality(5, 4, 0, 2) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn missing_neighbors_amortizes_connections() {
        // nbmiss = 2 of degree 4 → fnb = 0.5; nbcmiss = 3 of 6 → fnbc = 0.5
        // w = 2 - (0.5 + 0.5/2) = 1.25
        assert!((node_match_quality(4, 6, 2, 3) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn quality_decreases_with_misses() {
        let w0 = node_match_quality(10, 8, 0, 0);
        let w1 = node_match_quality(10, 8, 1, 1);
        let w2 = node_match_quality(10, 8, 3, 4);
        assert!(w0 > w1 && w1 > w2);
    }

    #[test]
    fn bounded_zero_to_two() {
        for d in 0..8u32 {
            for nc in 0..8u32 {
                for m in 0..=d {
                    for cm in 0..=nc {
                        let w = node_match_quality(d, nc, m, cm);
                        assert!(
                            (0.0..=2.0).contains(&w),
                            "w={w} d={d} nc={nc} m={m} cm={cm}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn zero_degree_query_ignores_nb_terms() {
        // an isolated query node can't miss neighbors
        assert_eq!(node_match_quality(0, 0, 0, 0), 2.0);
    }
}
