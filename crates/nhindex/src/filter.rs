//! The label-pair pre-filter: a per-key neighboring-label summary that
//! discards postings *before* any blob prefetch or bitmap decode.
//!
//! l2Match (see PAPERS.md) observes that most candidate vertices die on a
//! cheap label-adjacency check long before the expensive matching step.
//! The same structure fits TALE's probe: condition IV.3 asks whether a
//! database node's neighbor array misses at most `bit_budget` of the
//! query's set bits, and every row of a posting shares one composite key
//! — so a single 64-bit OR over *all* of the posting's neighbor arrays
//! bounds what any row can possibly cover.
//!
//! ## Summary layout
//!
//! For a posting whose neighbor arrays are `ceil(sbit/64)` words wide,
//! the summary folds array bit `j` into summary slot `j % 64` (the
//! layout maps bit `j` to bit `j % 64` of word `j / 64`, so the fold is
//! just the OR of every word of every row). Slot `b` clear means **no**
//! row of the posting sets **any** array column congruent to `b` mod 64.
//!
//! ## Safety argument (why a skip can never lose a hit)
//!
//! For a query word `w`, every set bit `b` of `query[w] & !summary` is a
//! query column (`w*64 + b`) whose summary slot is clear — so *every* row
//! of the posting misses that column. Distinct query bits are distinct
//! columns even when they share a slot, so
//!
//! ```text
//! guaranteed = Σ_w popcount(query[w] & !summary)
//! ```
//!
//! is a lower bound on every row's Algorithm-1 miss count. When
//! `guaranteed > bit_budget`, condition IV.3 fails for every row and the
//! posting is skipped without touching the blob store. Folding can only
//! create false "present" slots (a slot set by *some* column hides the
//! emptiness of another column congruent to it), which makes the bound
//! *smaller* — the filter then merely fails to skip. It can never make
//! the bound larger, so no skip is ever wrong. For `sbit ≤ 64` the fold
//! is the exact column-occupancy bitmap. Debug builds re-check every
//! skipped posting against the real probe (`NhIndex::scan_keys`).
//!
//! Under mutation the same direction holds: inserts recompute the
//! summary from the full merged posting; removes leave it alone
//! (tombstoned rows only shrink true occupancy, so the stale summary is
//! a superset — fewer skips, never a wrong one). A key with no entry is
//! never skipped.
//!
//! ## Persistence
//!
//! Summaries live in a binary sidecar (`nh.lpf`) beside `nh.meta.json`,
//! written atomically *before* the meta rename (the commit point), like
//! `nh.stats.json`. The meta file records `label_filter:
//! FILTER_SCHEMA_VERSION` when a sidecar was written; absent field (old
//! indexes) or an unreadable/mismatched sidecar degrades to "no filter"
//! — the index still opens and probes, just without skips.

use crate::{NhError, Result};
use tale_storage::CompositeKey;

/// Sidecar file name, beside `nh.meta.json`.
pub const FILTER_FILE: &str = "nh.lpf";
/// Version stamped into both the sidecar header and the meta file.
pub const FILTER_SCHEMA_VERSION: u32 = 1;
/// Sidecar magic: `"TLPF"`.
const MAGIC: u32 = 0x5450_4C46;

/// Per-key neighboring-label summaries, sorted by composite key.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LabelPairFilter {
    /// `(key, folded column occupancy)`, sorted by key (unique).
    entries: Vec<(CompositeKey, u64)>,
}

/// Folds a posting's neighbor arrays into its 64-bit summary: the OR of
/// every word of every row (array bit `j` lands in slot `j % 64`).
pub fn summary_of_rows(rows: &[Vec<u64>]) -> u64 {
    rows.iter()
        .flat_map(|row| row.iter())
        .fold(0u64, |acc, &w| acc | w)
}

/// The lower bound on every row's miss count: query bits whose summary
/// slot is clear are missed by every row (see the module docs). Distinct
/// words are counted separately on purpose — two query columns sharing a
/// clear slot are two guaranteed misses.
pub fn guaranteed_misses(query: &[u64], summary: u64) -> u32 {
    query.iter().map(|&q| (q & !summary).count_ones()).sum()
}

impl LabelPairFilter {
    /// Builds from `(key, summary)` pairs in any order; last write per
    /// key wins.
    pub fn from_entries(mut entries: Vec<(CompositeKey, u64)>) -> Self {
        entries.sort_by_key(|&(k, _)| k);
        entries.dedup_by(|later, earlier| {
            if later.0 == earlier.0 {
                earlier.1 = later.1;
                true
            } else {
                false
            }
        });
        LabelPairFilter { entries }
    }

    /// Number of keys with a summary.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no key has a summary.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The summary for `key`, if recorded. `None` means "cannot skip".
    pub fn get(&self, key: CompositeKey) -> Option<u64> {
        self.entries
            .binary_search_by_key(&key, |&(k, _)| k)
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Records (or replaces) the summary for `key`.
    pub fn set(&mut self, key: CompositeKey, summary: u64) {
        match self.entries.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(i) => self.entries[i].1 = summary,
            Err(i) => self.entries.insert(i, (key, summary)),
        }
    }

    /// True when the posting under `key` cannot contain any row within
    /// `bit_budget` misses of `query` — i.e. the probe may skip it. A key
    /// without a summary never skips.
    pub fn can_skip(&self, key: CompositeKey, query: &[u64], bit_budget: u32) -> bool {
        match self.get(key) {
            Some(summary) => guaranteed_misses(query, summary) > bit_budget,
            None => false,
        }
    }

    /// Serializes to the sidecar format: little-endian
    /// `magic, version, count` then `(label, degree, nb_connection,
    /// summary)` per entry. (`CompositeKey` carries no serde impls, so
    /// the fields are written manually.)
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.entries.len() * 20);
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&FILTER_SCHEMA_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
        for &(k, summary) in &self.entries {
            out.extend_from_slice(&k.label.to_le_bytes());
            out.extend_from_slice(&k.degree.to_le_bytes());
            out.extend_from_slice(&k.nb_connection.to_le_bytes());
            out.extend_from_slice(&summary.to_le_bytes());
        }
        out
    }

    /// Parses the sidecar format. Errors describe what's wrong; callers
    /// on the open path treat any error as "no filter".
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let take4 = |at: usize| -> Result<u32> {
            bytes
                .get(at..at + 4)
                .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
                .ok_or_else(|| NhError::Meta(format!("label filter truncated at byte {at}")))
        };
        let magic = take4(0)?;
        if magic != MAGIC {
            return Err(NhError::Meta(format!("label filter bad magic {magic:#x}")));
        }
        let version = take4(4)?;
        if version != FILTER_SCHEMA_VERSION {
            return Err(NhError::Meta(format!(
                "label filter version {version} (want {FILTER_SCHEMA_VERSION})"
            )));
        }
        let count = take4(8)? as usize;
        let want = 12 + count * 20;
        if bytes.len() != want {
            return Err(NhError::Meta(format!(
                "label filter holds {} bytes but {count} entries need {want}",
                bytes.len()
            )));
        }
        let mut entries = Vec::with_capacity(count);
        for i in 0..count {
            let at = 12 + i * 20;
            let key = CompositeKey::new(take4(at)?, take4(at + 4)?, take4(at + 8)?);
            let summary = u64::from_le_bytes(bytes[at + 12..at + 20].try_into().unwrap());
            entries.push((key, summary));
        }
        // entries were written sorted; re-sorting tolerates a hand-edited
        // file and keeps the binary-search invariant
        Ok(Self::from_entries(entries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitprobe::{probe_bitsliced, ColumnBitmap};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn key(label: u32, degree: u32, nbc: u32) -> CompositeKey {
        CompositeKey::new(label, degree, nbc)
    }

    #[test]
    fn summary_folds_all_rows() {
        let rows = vec![vec![0b0001u64, 0b0100], vec![0b1000u64, 0b0000]];
        // slots: bits 0,3 (word 0) and bit 2 (word 1) → 0b1101
        assert_eq!(summary_of_rows(&rows), 0b1101);
        assert_eq!(summary_of_rows(&[]), 0);
    }

    #[test]
    fn guaranteed_misses_counts_per_word() {
        // summary has only slot 0; query sets slot 0 in word 0 (covered)
        // and slot 1 in BOTH words — two distinct columns, two misses.
        let summary = 0b01u64;
        let query = vec![0b11u64, 0b10u64];
        assert_eq!(guaranteed_misses(&query, summary), 2);
        assert_eq!(guaranteed_misses(&query, u64::MAX), 0);
        assert_eq!(guaranteed_misses(&[0, 0], 0), 0);
    }

    #[test]
    fn lookup_and_replace() {
        let mut f = LabelPairFilter::default();
        assert!(f.get(key(1, 2, 3)).is_none());
        assert!(!f.can_skip(key(1, 2, 3), &[u64::MAX], 0)); // no entry → never skip
        f.set(key(1, 2, 3), 0b10);
        f.set(key(0, 9, 9), 0b01);
        assert_eq!(f.get(key(1, 2, 3)), Some(0b10));
        f.set(key(1, 2, 3), 0b11);
        assert_eq!(f.get(key(1, 2, 3)), Some(0b11));
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn roundtrip_through_sidecar_bytes() {
        let f = LabelPairFilter::from_entries(vec![
            (key(5, 1, 0), u64::MAX),
            (key(0, 3, 7), 0xDEAD_BEEF),
            (key(5, 0, 2), 0),
        ]);
        let back = LabelPairFilter::decode(&f.encode()).unwrap();
        assert_eq!(back, f);
        assert_eq!(back.get(key(0, 3, 7)), Some(0xDEAD_BEEF));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(LabelPairFilter::decode(&[]).is_err());
        assert!(LabelPairFilter::decode(&[0u8; 12]).is_err()); // bad magic
        let mut good = LabelPairFilter::default().encode();
        good[4] = 99; // version
        assert!(LabelPairFilter::decode(&good).is_err());
        let mut truncated = LabelPairFilter::from_entries(vec![(key(1, 1, 1), 1)]).encode();
        truncated.pop();
        assert!(LabelPairFilter::decode(&truncated).is_err());
    }

    /// The load-bearing property: whenever `can_skip` says skip, the real
    /// probe finds nothing in the posting — across widths spanning one
    /// word and several, random rows, random queries, random budgets.
    #[test]
    fn skip_is_never_wrong() {
        let mut rng = ChaCha8Rng::seed_from_u64(4242);
        let mut skips = 0u32;
        for trial in 0..400 {
            let sbit = [24u32, 64, 96, 160][trial % 4];
            let words = (sbit as usize).div_ceil(64);
            let mask = if sbit % 64 == 0 {
                u64::MAX
            } else {
                (1u64 << (sbit % 64)) - 1
            };
            let n = rng.gen_range(1..24);
            // sparse rows make clear summary slots (and thus skips) common
            let rows: Vec<Vec<u64>> = (0..n)
                .map(|_| {
                    (0..words)
                        .map(|w| {
                            let v: u64 = rng.gen::<u64>() & rng.gen::<u64>() & rng.gen::<u64>();
                            if w == words - 1 {
                                v & mask
                            } else {
                                v
                            }
                        })
                        .collect()
                })
                .collect();
            let summary = summary_of_rows(&rows);
            let query: Vec<u64> = (0..words)
                .map(|w| {
                    let v: u64 = rng.gen::<u64>() & rng.gen::<u64>();
                    if w == words - 1 {
                        v & mask
                    } else {
                        v
                    }
                })
                .collect();
            let budget = rng.gen_range(0..6);
            let mut f = LabelPairFilter::default();
            f.set(key(0, 0, 0), summary);
            if f.can_skip(key(0, 0, 0), &query, budget) {
                skips += 1;
                let mut bm = ColumnBitmap::new(n, sbit);
                for (r, row) in rows.iter().enumerate() {
                    for j in 0..sbit {
                        if row[(j / 64) as usize] >> (j % 64) & 1 == 1 {
                            bm.set(r, j);
                        }
                    }
                }
                let hits = probe_bitsliced(&bm, &query, budget);
                assert!(
                    hits.rows.is_empty(),
                    "trial {trial}: filter skipped a posting with {} real hits \
                     (sbit={sbit} budget={budget})",
                    hits.rows.len()
                );
            }
        }
        assert!(skips > 20, "corpus produced only {skips} skips — too weak");
    }

    /// For sbit ≤ 64 the fold is exact column occupancy, so the bound
    /// equals the best possible: a query entirely inside the occupied
    /// columns is never skipped at budget 0.
    #[test]
    fn exact_for_single_word() {
        let rows = vec![vec![0b1010u64], vec![0b0110u64]];
        let summary = summary_of_rows(&rows); // 0b1110
        assert_eq!(guaranteed_misses(&[0b0110], summary), 0);
        assert_eq!(guaranteed_misses(&[0b0001], summary), 1);
    }
}
