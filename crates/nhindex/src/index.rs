//! The NH-Index proper: build, persist, reopen, probe.
//!
//! Layout on disk (one directory per index):
//! * `nh.btree` — first-level B+-tree pages.
//! * `nh.blobs` — second-level posting pages.
//! * `nh.meta.json` — root pointer, scheme, counters.
//!
//! Build is bulk: extract one indexing unit per database node (optionally
//! in parallel across graphs via `tale-par`), sort by composite key, write
//! one posting blob per distinct key, then bulk-load the B+-tree. This
//! mirrors how the paper materializes the index as a relation + B+-tree in
//! PostgreSQL (§IV-C) and gives the near-linear build times of Table III /
//! Fig. 7.
//!
//! Probe implements §IV-B + §IV-D: compute `nbmiss` and `nbcmiss` from the
//! user's approximation ratio `ρ`, range-scan the B+-tree for conditions
//! IV.1/IV.2/IV.4, then run Algorithm 1 on each posting's bitmap for
//! condition IV.3.

use crate::bitprobe::probe_bitsliced;
use crate::filter::{self, LabelPairFilter, FILTER_FILE, FILTER_SCHEMA_VERSION};
use crate::posting::{NodeRef, Posting};
use crate::scheme::NeighborArrayScheme;
use crate::stats::{IndexStatistics, StatsBuilder, STATS_FILE, STATS_SCHEMA_VERSION};
use crate::{NhError, Result};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use tale_graph::{Graph, GraphDb, NodeId};
use tale_storage::{
    BTree, BlobRef, BlobStore, BufferPool, CompositeKey, DiskManager, IoPool, PrefetchStats, Wal,
};

const BTREE_FILE: &str = "nh.btree";
const BLOB_FILE: &str = "nh.blobs";
const META_FILE: &str = "nh.meta.json";
const WAL_FILE: &str = "nh.wal";

/// WAL file tag of the B+-tree page file.
const TAG_BTREE: u8 = 0;
/// WAL file tag of the blob page file.
const TAG_BLOB: u8 = 1;

/// Build/open options.
#[derive(Debug, Clone)]
pub struct NhIndexConfig {
    /// Neighbor array width in bits (`Sbit`). The paper uses 96 for BIND
    /// and 32 for ASTRAL.
    pub sbit: u32,
    /// Buffer pool frames per page file (8 KiB each). 4096 frames = 32 MiB.
    pub buffer_frames: usize,
    /// Extract indexing units in parallel across graphs.
    pub parallel_build: bool,
    /// Bloom hash functions per neighbor label (§IV-A precision
    /// extension; 1 = the paper's default, ignored in the deterministic
    /// regime).
    pub bloom_hashes: u8,
    /// Fold incident edge labels into the neighborhood signature (the
    /// extended paper's labeled-edge adaptation). Forces the Bloom regime.
    pub use_edge_labels: bool,
    /// Async read-path worker threads shared by the index's page files
    /// (`0` disables prefetching entirely). Sharded indexes share one
    /// worker pool across every shard regardless of this count.
    pub io_workers: usize,
    /// Prefetch staging capacity in pages, per page file.
    pub prefetch_pages: usize,
}

/// Default async read-path worker threads (see
/// [`NhIndexConfig::io_workers`]).
pub const DEFAULT_IO_WORKERS: usize = 2;
/// Default prefetch staging capacity in pages (8 KiB each; see
/// [`NhIndexConfig::prefetch_pages`]).
pub const DEFAULT_PREFETCH_PAGES: usize = 1024;

impl Default for NhIndexConfig {
    fn default() -> Self {
        NhIndexConfig {
            sbit: 64,
            buffer_frames: 4096,
            parallel_build: true,
            bloom_hashes: 1,
            use_edge_labels: false,
            io_workers: DEFAULT_IO_WORKERS,
            prefetch_pages: DEFAULT_PREFETCH_PAGES,
        }
    }
}

fn default_hashes() -> u8 {
    1
}

#[derive(Debug, Serialize, Deserialize)]
struct MetaFile {
    sbit: u32,
    deterministic: bool,
    #[serde(default = "default_hashes")]
    hashes: u8,
    #[serde(default)]
    edge_labels: bool,
    root_page: u64,
    height: u32,
    blob_cursor: u64,
    node_count: u64,
    key_count: u64,
    vocab_size: u64,
    #[serde(default)]
    tombstones: Vec<u32>,
    /// Mutation counter: bumped by every committed `insert_graph` /
    /// `remove_graph`. Recovery compares it against the generation in the
    /// WAL's `Begin` record to tell a committed mutation (meta rename
    /// happened) from an in-flight one (roll back). Defaults to 0 for
    /// indexes persisted before the WAL existed.
    #[serde(default)]
    generation: u64,
    /// Label-pair filter sidecar version (`nh.lpf`, see [`crate::filter`]):
    /// 0 (or absent — indexes persisted before the filter existed) means no
    /// sidecar; [`FILTER_SCHEMA_VERSION`] means one was written alongside
    /// this meta. Open degrades to "no filter" on any mismatch.
    #[serde(default)]
    label_filter: u32,
}

/// What [`NhIndex::open_with_recovery`] found and did with the write-ahead
/// log.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct RecoveryReport {
    /// A WAL file was present on open.
    pub wal_present: bool,
    /// An in-flight mutation was rolled back to the pre-op state.
    pub rolled_back: bool,
    /// The logged mutation had already committed (meta rename happened);
    /// the log was simply discarded.
    pub committed: bool,
    /// Before-images written back during rollback.
    pub pages_restored: u64,
    /// Bytes truncated off the page files during rollback.
    pub bytes_truncated: u64,
}

/// Deep integrity report from [`NhIndex::verify`]: page checksums of both
/// files, B+-tree structure, and posting decodability.
#[derive(Debug, Clone, Default, Serialize)]
pub struct IntegrityReport {
    /// Pages checked in the B+-tree file.
    pub btree_pages: u64,
    /// Pages checked in the blob file.
    pub blob_pages: u64,
    /// B+-tree entries counted by the structural walk.
    pub keys: u64,
    /// Postings decoded.
    pub postings: u64,
    /// Posting rows (indexed nodes) seen across all postings.
    pub posting_rows: u64,
    /// Human-readable descriptions of every problem found.
    pub errors: Vec<String>,
}

impl IntegrityReport {
    /// True when no corruption or invariant violation was found.
    pub fn is_ok(&self) -> bool {
        self.errors.is_empty()
    }
}

/// A query node's probe signature, built against the index's array scheme.
#[derive(Debug, Clone)]
pub struct QuerySignature {
    /// Effective label of the query node.
    pub label: u32,
    /// Degree of the query node.
    pub degree: u32,
    /// Neighbor connection of the query node.
    pub nb_connection: u32,
    /// Neighbor array under the index's scheme.
    pub nb_array: Vec<u64>,
}

/// One index hit: a database node satisfying conditions IV.1–IV.4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeCandidate {
    /// The matching database node.
    pub node: NodeRef,
    /// Missing query neighbors in this match (bit-array misses, floored by
    /// the degree shortfall).
    pub nb_miss: u32,
    /// The database node's degree.
    pub db_degree: u32,
    /// The database node's neighbor connection.
    pub db_nb_connection: u32,
}

/// Probe-side counters for introspection and the index-explorer example.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// B+-tree keys visited by the range scan.
    pub keys_scanned: u64,
    /// Keys surviving the neighbor-connection filter (postings fetched).
    pub postings_fetched: u64,
    /// Postings skipped by the label-pair pre-filter before any blob
    /// prefetch (their guaranteed miss bound already exceeded the bit
    /// budget — see [`crate::filter`]).
    pub postings_filtered: u64,
    /// Bitmap rows examined by Algorithm 1.
    pub rows_examined: u64,
    /// Candidates returned.
    pub rows_returned: u64,
}

/// Cumulative probe counters over the index's lifetime. Snapshots are
/// cheap relaxed atomic loads; diff two snapshots to attribute index
/// traffic to a span of work (the query engine uses this to prove a
/// cached result never touched the disk index).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeCounters {
    /// Probes executed (one per query signature answered from disk).
    pub probes: u64,
    /// B+-tree keys visited across all probes.
    pub keys_scanned: u64,
    /// Postings fetched across all probes.
    pub postings_fetched: u64,
    /// Postings skipped by the label-pair pre-filter across all probes.
    pub postings_filtered: u64,
    /// Bitmap rows examined across all probes.
    pub rows_examined: u64,
}

impl ProbeCounters {
    /// Counter deltas since an `earlier` snapshot of the same index.
    pub fn since(self, earlier: ProbeCounters) -> ProbeCounters {
        ProbeCounters {
            probes: self.probes.saturating_sub(earlier.probes),
            keys_scanned: self.keys_scanned.saturating_sub(earlier.keys_scanned),
            postings_fetched: self
                .postings_fetched
                .saturating_sub(earlier.postings_fetched),
            postings_filtered: self
                .postings_filtered
                .saturating_sub(earlier.postings_filtered),
            rows_examined: self.rows_examined.saturating_sub(earlier.rows_examined),
        }
    }
}

/// Atomic backing for [`ProbeCounters`]; relaxed ordering is fine — the
/// counters are monotonic tallies, not synchronization. Shared with the
/// in-memory delta overlay, which reports the same counter taxonomy.
#[derive(Debug, Default)]
pub(crate) struct AtomicProbeCounters {
    probes: std::sync::atomic::AtomicU64,
    keys_scanned: std::sync::atomic::AtomicU64,
    postings_fetched: std::sync::atomic::AtomicU64,
    postings_filtered: std::sync::atomic::AtomicU64,
    rows_examined: std::sync::atomic::AtomicU64,
}

impl AtomicProbeCounters {
    pub(crate) fn record(&self, stats: &ProbeStats) {
        use std::sync::atomic::Ordering::Relaxed;
        self.probes.fetch_add(1, Relaxed);
        self.keys_scanned.fetch_add(stats.keys_scanned, Relaxed);
        self.postings_fetched
            .fetch_add(stats.postings_fetched, Relaxed);
        self.postings_filtered
            .fetch_add(stats.postings_filtered, Relaxed);
        self.rows_examined.fetch_add(stats.rows_examined, Relaxed);
    }

    pub(crate) fn snapshot(&self) -> ProbeCounters {
        use std::sync::atomic::Ordering::Relaxed;
        ProbeCounters {
            probes: self.probes.load(Relaxed),
            keys_scanned: self.keys_scanned.load(Relaxed),
            postings_fetched: self.postings_fetched.load(Relaxed),
            postings_filtered: self.postings_filtered.load(Relaxed),
            rows_examined: self.rows_examined.load(Relaxed),
        }
    }
}

/// The disk-resident neighborhood index.
pub struct NhIndex {
    btree: BTree,
    bt_pool: Arc<BufferPool>,
    blobs: BlobStore,
    scheme: NeighborArrayScheme,
    dir: PathBuf,
    node_count: u64,
    key_count: u64,
    /// Graphs logically removed; their posting rows are filtered at probe
    /// time until the next full rebuild reclaims the space.
    tombstones: std::collections::HashSet<u32>,
    /// Neighbor arrays are over (label, edge label) pairs.
    edge_labels: bool,
    /// Lifetime probe tallies (see [`NhIndex::counters`]).
    counters: AtomicProbeCounters,
    /// Write-ahead log bracketing mutations (attached to both disk
    /// managers; idle outside a transaction, so the read path and bulk
    /// build pay nothing).
    wal: Arc<Wal>,
    /// Committed mutation counter (see `MetaFile::generation`).
    generation: u64,
    /// Async read-path workers feeding both page files' prefetchers
    /// (`None` when prefetching is disabled). Shards of a sharded index
    /// all hold clones of one shared pool.
    io: Option<Arc<IoPool>>,
    /// Planner statistics (see [`crate::stats`]): exact after build/fold,
    /// merged conservatively by inserts, `None` for indexes persisted
    /// before statistics existed.
    stats: Option<Arc<IndexStatistics>>,
    /// Label-pair pre-filter (see [`crate::filter`]): per-key summaries
    /// consulted by the probe's key scan to skip postings before blob
    /// prefetch. `None` for indexes persisted before the filter existed
    /// (or with an unreadable sidecar) — probing works, just without
    /// skips.
    filter: Option<LabelPairFilter>,
    /// Runtime toggle for the pre-filter (default on). Benchmarks flip it
    /// off to prove bit-identity of the filtered path.
    filter_enabled: std::sync::atomic::AtomicBool,
}

/// One extracted indexing unit (pre-grouping). Shared with the delta
/// overlay, which extracts units with the same code path and groups them
/// into in-memory postings instead of on-disk blobs.
pub(crate) struct Unit {
    pub(crate) key: CompositeKey,
    pub(crate) node: NodeRef,
    pub(crate) array: Vec<u64>,
}

impl NhIndex {
    /// Builds the index for `db` into `dir` (created if needed).
    pub fn build(dir: &Path, db: &GraphDb, config: &NhIndexConfig) -> Result<Self> {
        let all: Vec<tale_graph::GraphId> = db.iter().map(|(id, _, _)| id).collect();
        Self::build_subset(dir, db, config, &all)
    }

    /// Builds an index covering only the listed `graphs` of `db` — the
    /// shard-local build. Node references keep their *global* graph ids
    /// and the neighbor-array scheme is chosen from the full database
    /// vocabulary, so a probe against a subset index returns exactly the
    /// subsequence of the full index's answer whose graphs are in the
    /// subset. An empty subset yields a valid, empty index.
    pub fn build_subset(
        dir: &Path,
        db: &GraphDb,
        config: &NhIndexConfig,
        graphs: &[tale_graph::GraphId],
    ) -> Result<Self> {
        let mut stats_builder = StatsBuilder::new();
        for &gid in graphs {
            let g = db.try_graph(gid)?;
            stats_builder.record_graph(g.node_count() as u64, g.edge_count() as u64);
        }
        std::fs::create_dir_all(dir)?;
        let scheme = if config.use_edge_labels {
            // pair space is too large for the deterministic regime
            NeighborArrayScheme {
                sbit: config.sbit,
                deterministic: false,
                hashes: config.bloom_hashes.max(1),
            }
        } else {
            NeighborArrayScheme::choose_with_hashes(
                config.sbit,
                db.effective_vocab_size(),
                config.bloom_hashes,
            )
        };

        let mut units = if config.parallel_build && graphs.len() > 1 {
            Self::extract_parallel(db, scheme, config.use_edge_labels, graphs)
        } else {
            Self::extract_serial(db, scheme, config.use_edge_labels, graphs)
        };
        // Group by key; within a key keep (graph, node) order for
        // deterministic postings.
        units.sort_unstable_by(|a, b| a.key.cmp(&b.key).then(a.node.cmp(&b.node)));

        let bt_disk = Arc::new(DiskManager::create(&dir.join(BTREE_FILE))?);
        let bt_pool = Arc::new(BufferPool::new(Arc::clone(&bt_disk), config.buffer_frames));
        let blob_disk = Arc::new(DiskManager::create(&dir.join(BLOB_FILE))?);
        let blob_pool = Arc::new(BufferPool::new(
            Arc::clone(&blob_disk),
            config.buffer_frames,
        ));
        let io = if config.io_workers > 0 {
            let io = IoPool::new(config.io_workers);
            bt_pool.attach_prefetcher(Arc::clone(&io), config.prefetch_pages);
            blob_pool.attach_prefetcher(Arc::clone(&io), config.prefetch_pages);
            Some(io)
        } else {
            None
        };
        let blobs = BlobStore::create(blob_pool);
        // A fresh build invalidates any log a previous index in this
        // directory left behind (the data files were just truncated, so a
        // stale rollback would corrupt them). Bulk build itself runs
        // outside any transaction: it is rebuild-on-failure by design.
        let wal = Arc::new(Wal::open(&dir.join(WAL_FILE))?);
        bt_disk.attach_wal(Arc::clone(&wal), TAG_BTREE);
        blob_disk.attach_wal(Arc::clone(&wal), TAG_BLOB);

        let mut pairs: Vec<(CompositeKey, u64)> = Vec::new();
        let mut summaries: Vec<(CompositeKey, u64)> = Vec::new();
        let mut i = 0;
        while i < units.len() {
            let key = units[i].key;
            let mut j = i;
            while j < units.len() && units[j].key == key {
                j += 1;
            }
            let group = &units[i..j];
            let refs: Vec<NodeRef> = group.iter().map(|u| u.node).collect();
            let rows: Vec<Vec<u64>> = group.iter().map(|u| u.array.clone()).collect();
            summaries.push((key, filter::summary_of_rows(&rows)));
            let posting = Posting::from_rows(refs, scheme.sbit, &rows);
            let r = blobs.put(&posting.encode())?;
            stats_builder.record_key(key.label, key.degree, group.len() as u64);
            pairs.push((key, r.pack()));
            i = j;
        }
        let btree = BTree::bulk_load(Arc::clone(&bt_pool), &pairs)?;

        let idx = NhIndex {
            btree,
            bt_pool,
            blobs,
            scheme,
            dir: dir.to_owned(),
            node_count: units.len() as u64,
            key_count: pairs.len() as u64,
            tombstones: std::collections::HashSet::new(),
            edge_labels: config.use_edge_labels,
            counters: AtomicProbeCounters::default(),
            wal,
            generation: 0,
            io,
            stats: Some(Arc::new(stats_builder.finish())),
            filter: Some(LabelPairFilter::from_entries(summaries)),
            filter_enabled: std::sync::atomic::AtomicBool::new(true),
        };
        idx.flush(db.effective_vocab_size() as u64)?;
        Ok(idx)
    }

    /// Incrementally indexes one more graph of `db` (by id) — the growing-
    /// database path the paper's introduction motivates (BIND "grew about
    /// 10 folds…"). Each affected posting is rewritten as a fresh blob and
    /// its B+-tree entry repointed; superseded blobs become dead space
    /// until the next full rebuild (the read-optimized trade-off of an
    /// append-only posting store).
    ///
    /// The caller must have inserted the graph into the same `GraphDb` the
    /// index was built over (vocabulary and group map unchanged — the
    /// neighbor-array scheme is fixed at build time).
    ///
    /// The whole mutation runs inside a WAL transaction: on any error the
    /// on-disk index is recoverable to its pre-call state, but this handle
    /// is no longer consistent with it — drop it and reopen (recovery runs
    /// in [`NhIndex::open`]).
    pub fn insert_graph(&mut self, db: &GraphDb, graph: tale_graph::GraphId) -> Result<()> {
        let g = db.try_graph(graph)?;
        self.begin_mutation()?;
        let mut units = Vec::with_capacity(g.node_count());
        Self::extract_graph(db, graph.0, g, self.scheme, self.edge_labels, &mut units);
        units.sort_unstable_by(|a, b| a.key.cmp(&b.key).then(a.node.cmp(&b.node)));

        let mut i = 0;
        while i < units.len() {
            let key = units[i].key;
            let mut j = i;
            while j < units.len() && units[j].key == key {
                j += 1;
            }
            let group = &units[i..j];
            // merge with the existing posting for this key, if any
            let existing = self.btree.get(key)?;
            let (mut refs, mut rows) = match existing {
                Some(packed) => {
                    let bytes = self.blobs.get(BlobRef::unpack(packed))?;
                    let posting = Posting::decode(&bytes)?;
                    let rows: Vec<Vec<u64>> = (0..posting.refs.len())
                        .map(|r| posting.bitmap.row(r))
                        .collect();
                    (posting.refs, rows)
                }
                None => (Vec::new(), Vec::new()),
            };
            for u in group {
                refs.push(u.node);
                rows.push(u.array.clone());
            }
            // The merged posting's summary is recomputed exactly (a crash
            // before commit leaves the old filter, whose summaries are a
            // subset of the rolled-forward one — the fail-to-skip, safe
            // direction either way).
            if let Some(f) = &mut self.filter {
                f.set(key, filter::summary_of_rows(&rows));
            }
            let posting = Posting::from_rows(refs, self.scheme.sbit, &rows);
            let r = self.blobs.put(&posting.encode())?;
            if existing.is_none() {
                self.key_count += 1;
            }
            if let Some(stats) = &mut self.stats {
                Arc::make_mut(stats).merge_inserted_key(
                    key.label,
                    key.degree,
                    group.len() as u64,
                    existing.is_none(),
                );
            }
            self.btree.insert(key, r.pack())?;
            i = j;
        }
        if let Some(stats) = &mut self.stats {
            Arc::make_mut(stats).note_inserted_graph(g.node_count() as u64 + g.edge_count() as u64);
        }
        self.node_count += units.len() as u64;
        self.generation += 1;
        self.flush(db.effective_vocab_size() as u64)?;
        self.wal.commit()?;
        Ok(())
    }

    /// Logically removes a graph: its posting rows stop matching probes
    /// immediately; the space is reclaimed at the next full rebuild (the
    /// standard tombstone trade-off for an append-only, read-optimized
    /// index). Idempotent. `vocab_size` is persisted metadata — pass
    /// `db.effective_vocab_size()`.
    pub fn remove_graph(&mut self, graph: tale_graph::GraphId, vocab_size: u64) -> Result<()> {
        self.begin_mutation()?;
        self.tombstones.insert(graph.0);
        self.generation += 1;
        self.flush(vocab_size)?;
        self.wal.commit()?;
        Ok(())
    }

    /// Opens a WAL transaction with the current file lengths as rollback
    /// baselines. Every page overwritten between here and the commit point
    /// (the meta rename in [`NhIndex::flush`]) gets a durable before-image
    /// first.
    fn begin_mutation(&self) -> Result<()> {
        let bt_pages = self.bt_pool.disk().pages_on_disk()?;
        let blob_pages = self.blobs.disk().pages_on_disk()?;
        let mut baselines = [0u64; tale_storage::wal::WAL_FILES];
        baselines[TAG_BTREE as usize] = bt_pages;
        baselines[TAG_BLOB as usize] = blob_pages;
        self.wal.begin(self.generation, baselines)?;
        Ok(())
    }

    /// True when `graph` has been removed.
    pub fn is_removed(&self, graph: tale_graph::GraphId) -> bool {
        self.tombstones.contains(&graph.0)
    }

    fn extract_serial(
        db: &GraphDb,
        scheme: NeighborArrayScheme,
        edge_labels: bool,
        graphs: &[tale_graph::GraphId],
    ) -> Vec<Unit> {
        let mut units = Vec::new();
        for &gid in graphs {
            let g = db.graph(gid);
            Self::extract_graph(db, gid.0, g, scheme, edge_labels, &mut units);
        }
        units
    }

    fn extract_parallel(
        db: &GraphDb,
        scheme: NeighborArrayScheme,
        edge_labels: bool,
        graphs: &[tale_graph::GraphId],
    ) -> Vec<Unit> {
        let threads = tale_par::effective_threads(0).min(graphs.len());
        let per_graph = tale_par::parallel_map(threads, graphs.len(), |i| {
            let gid = graphs[i];
            let g = db.graph(gid);
            let mut local = Vec::new();
            Self::extract_graph(db, gid.0, g, scheme, edge_labels, &mut local);
            local
        });
        per_graph.into_iter().flatten().collect()
    }

    pub(crate) fn extract_graph(
        db: &GraphDb,
        gid: u32,
        g: &Graph,
        scheme: NeighborArrayScheme,
        edge_labels: bool,
        out: &mut Vec<Unit>,
    ) {
        let graph_id = tale_graph::GraphId(gid);
        for n in g.nodes() {
            let degree = g.degree(n) as u32;
            let nbc = g.neighbor_connection(n) as u32;
            let label = db.effective_label(graph_id, n);
            let array = if edge_labels {
                scheme.array_of_pairs(g.neighbor_edges(n).map(|(nb, eid)| {
                    (
                        db.effective_label(graph_id, nb),
                        g.edge_label(eid).map(|l| l.0 + 1).unwrap_or(0),
                    )
                }))
            } else {
                scheme.array_of(g.neighbors(n).map(|nb| db.effective_label(graph_id, nb)))
            };
            out.push(Unit {
                key: CompositeKey::new(label, degree, nbc),
                node: NodeRef {
                    graph: gid,
                    node: n.0,
                },
                array,
            });
        }
    }

    /// Persists all dirty state. Ordering is the crash-safety protocol:
    /// data pages are flushed and fsynced *first* (their before-images hit
    /// the WAL ahead of them), then the meta file — carrying the new
    /// generation — is swapped in atomically. That rename is the commit
    /// point: recovery rolls a mutation back iff the persisted generation
    /// still equals the one recorded at `begin`.
    fn flush(&self, vocab_size: u64) -> Result<()> {
        self.sync()?;
        // Statistics land before the meta rename (the commit point): a
        // crash between the two leaves stats that overestimate the
        // rolled-back index, which is the safe direction (see
        // `crate::stats`). WAL rollback never touches this file.
        if let Some(stats) = &self.stats {
            let json = serde_json::to_string_pretty(stats.as_ref())
                .map_err(|e| NhError::Meta(format!("serialize stats: {e}")))?;
            tale_storage::atomic::write_atomic(&self.dir.join(STATS_FILE), json.as_bytes())?;
        }
        // Same ordering contract as the stats file: the filter sidecar
        // lands before the meta rename, and a crash between the two leaves
        // a sidecar whose summaries cover a superset of the rolled-back
        // postings — supersets only fail to skip (see `crate::filter`).
        if let Some(f) = &self.filter {
            tale_storage::atomic::write_atomic(&self.dir.join(FILTER_FILE), &f.encode())?;
        }
        let mut tombstones: Vec<u32> = self.tombstones.iter().copied().collect();
        tombstones.sort_unstable();
        let meta = MetaFile {
            sbit: self.scheme.sbit,
            deterministic: self.scheme.deterministic,
            hashes: self.scheme.hashes,
            edge_labels: self.edge_labels,
            root_page: self.btree.root().0,
            height: self.btree.height(),
            blob_cursor: self.blobs.cursor(),
            node_count: self.node_count,
            key_count: self.key_count,
            vocab_size,
            tombstones,
            generation: self.generation,
            label_filter: if self.filter.is_some() {
                FILTER_SCHEMA_VERSION
            } else {
                0
            },
        };
        let json = serde_json::to_string_pretty(&meta)
            .map_err(|e| NhError::Meta(format!("serialize: {e}")))?;
        tale_storage::atomic::write_atomic(&self.dir.join(META_FILE), json.as_bytes())?;
        // The meta rename is a generation flip: drop every staged
        // read-ahead image. Dirty-page hooks already invalidated pages
        // *this* pool rewrote, but the flip is the one point where the
        // on-disk state as a whole changes identity, so anything still
        // staged from before it is suspect.
        self.bt_pool.invalidate_prefetched();
        self.blobs.pool().invalidate_prefetched();
        Ok(())
    }

    /// Forces all pages to durable storage (flush + fsync both files).
    pub fn sync(&self) -> Result<()> {
        self.bt_pool.flush_all()?;
        self.bt_pool.disk().sync()?;
        self.blobs.sync()?;
        Ok(())
    }

    /// Reopens an index previously built in `dir`, running WAL recovery
    /// first (see [`NhIndex::open_with_recovery`]).
    pub fn open(dir: &Path, buffer_frames: usize) -> Result<Self> {
        Ok(Self::open_with_recovery(dir, buffer_frames)?.0)
    }

    /// Reads the persisted mutation generation without opening the index
    /// (used by recovery to decide whether a journaled mutation committed).
    pub fn peek_generation(dir: &Path) -> Result<u64> {
        let meta_raw = std::fs::read_to_string(dir.join(META_FILE))?;
        let meta: MetaFile =
            serde_json::from_str(&meta_raw).map_err(|e| NhError::Meta(format!("parse: {e}")))?;
        Ok(meta.generation)
    }

    /// Reopens an index, first repairing any interrupted mutation from the
    /// write-ahead log:
    ///
    /// 1. Read the WAL tail, stopping at the first torn or corrupt record.
    /// 2. If it holds a transaction, compare the persisted meta generation
    ///    against the generation recorded at `begin`. The atomic meta
    ///    rename is the commit point, so a *newer* persisted generation
    ///    means the mutation committed — the log is simply discarded.
    /// 3. Otherwise the mutation was in flight: write every before-image
    ///    back and truncate the page files to their pre-transaction
    ///    lengths, restoring the bit-exact pre-mutation state.
    ///
    /// Recovery is idempotent — crashing during rollback and reopening
    /// replays the same undo.
    pub fn open_with_recovery(dir: &Path, buffer_frames: usize) -> Result<(Self, RecoveryReport)> {
        Self::open_with_recovery_io(
            dir,
            buffer_frames,
            DEFAULT_IO_WORKERS,
            DEFAULT_PREFETCH_PAGES,
        )
    }

    /// [`NhIndex::open_with_recovery`] with explicit async read-path
    /// sizing. `io_workers == 0` opens with prefetching disabled — the
    /// sharded wrapper does this and then binds every shard to one shared
    /// worker pool via [`NhIndex::attach_io`].
    pub fn open_with_recovery_io(
        dir: &Path,
        buffer_frames: usize,
        io_workers: usize,
        prefetch_pages: usize,
    ) -> Result<(Self, RecoveryReport)> {
        let wal_path = dir.join(WAL_FILE);
        let mut report = RecoveryReport::default();
        if wal_path.exists() {
            report.wal_present = true;
            if let Some(tx) = tale_storage::wal::read_log(&wal_path)? {
                let meta_gen = Self::peek_generation(dir)?;
                if tx.committed || meta_gen > tx.generation {
                    report.committed = true;
                } else {
                    let stats = tale_storage::wal::rollback(
                        &tx,
                        [&dir.join(BTREE_FILE), &dir.join(BLOB_FILE)],
                    )?;
                    report.rolled_back = true;
                    report.pages_restored = stats.pages_restored;
                    report.bytes_truncated = stats.bytes_truncated;
                }
            }
        }

        let meta_raw = std::fs::read_to_string(dir.join(META_FILE))?;
        let meta: MetaFile =
            serde_json::from_str(&meta_raw).map_err(|e| NhError::Meta(format!("parse: {e}")))?;
        let bt_disk = Arc::new(DiskManager::open(&dir.join(BTREE_FILE))?);
        let bt_pool = Arc::new(BufferPool::new(Arc::clone(&bt_disk), buffer_frames));
        let blob_disk = Arc::new(DiskManager::open(&dir.join(BLOB_FILE))?);
        let blob_pool = Arc::new(BufferPool::new(Arc::clone(&blob_disk), buffer_frames));
        let io = if io_workers > 0 {
            let io = IoPool::new(io_workers);
            bt_pool.attach_prefetcher(Arc::clone(&io), prefetch_pages);
            blob_pool.attach_prefetcher(Arc::clone(&io), prefetch_pages);
            Some(io)
        } else {
            None
        };
        // Statistics are best-effort on open: absent (pre-stats index),
        // unparseable, or version-skewed files mean "no statistics" and
        // the planner falls back to the fixed pipeline.
        let stats = std::fs::read_to_string(dir.join(STATS_FILE))
            .ok()
            .and_then(|raw| serde_json::from_str::<IndexStatistics>(&raw).ok())
            .filter(|s| s.schema_version == STATS_SCHEMA_VERSION)
            .map(Arc::new);
        // The label-pair filter is likewise best-effort: only attempted
        // when this meta generation says a sidecar was written, and any
        // read/parse failure degrades to "no filter" (no skips) rather
        // than refusing to open.
        let lp_filter = if meta.label_filter == FILTER_SCHEMA_VERSION {
            std::fs::read(dir.join(FILTER_FILE))
                .ok()
                .and_then(|raw| LabelPairFilter::decode(&raw).ok())
        } else {
            None
        };
        // Opening the WAL truncates it: recovery is complete, so the old
        // log must not be replayed against the repaired files again.
        let wal = Arc::new(Wal::open(&wal_path)?);
        bt_disk.attach_wal(Arc::clone(&wal), TAG_BTREE);
        blob_disk.attach_wal(Arc::clone(&wal), TAG_BLOB);
        let idx = NhIndex {
            btree: BTree::open(
                Arc::clone(&bt_pool),
                tale_storage::PageId(meta.root_page),
                meta.height,
            ),
            bt_pool,
            blobs: BlobStore::open(blob_pool, meta.blob_cursor),
            scheme: NeighborArrayScheme {
                sbit: meta.sbit,
                deterministic: meta.deterministic,
                hashes: meta.hashes,
            },
            dir: dir.to_owned(),
            node_count: meta.node_count,
            key_count: meta.key_count,
            tombstones: meta.tombstones.into_iter().collect(),
            edge_labels: meta.edge_labels,
            counters: AtomicProbeCounters::default(),
            wal,
            generation: meta.generation,
            io,
            stats,
            filter: lp_filter,
            filter_enabled: std::sync::atomic::AtomicBool::new(true),
        };
        Ok((idx, report))
    }

    /// Committed mutation count (0 for a fresh build).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The planner statistics persisted with this index (`None` for
    /// indexes built before statistics existed). Cheap — clones an `Arc`.
    pub fn statistics(&self) -> Option<Arc<IndexStatistics>> {
        self.stats.clone()
    }

    /// Deep integrity check: reads every page of both files through the
    /// checksum-verifying path, walks the B+-tree validating structure and
    /// key order, and decodes every posting. Collects problems instead of
    /// failing fast so one report describes all damage.
    pub fn verify(&self) -> Result<IntegrityReport> {
        let mut report = IntegrityReport::default();

        // every page of both files must pass its checksum
        let mut sweep = |name: &str, disk: &DiskManager, counted: &mut u64| -> Result<()> {
            let pages = disk.pages_on_disk()?;
            for id in 0..pages {
                match disk.read_page(tale_storage::PageId(id)) {
                    Ok(_) => *counted += 1,
                    Err(e) => report.errors.push(format!("{name} page {id}: {e}")),
                }
            }
            Ok(())
        };
        let mut bt_pages = 0;
        let mut blob_pages = 0;
        sweep(BTREE_FILE, self.bt_pool.disk(), &mut bt_pages)?;
        sweep(BLOB_FILE, self.blobs.disk(), &mut blob_pages)?;
        report.btree_pages = bt_pages;
        report.blob_pages = blob_pages;

        // B+-tree structure: heights, fences, leaf chain, entry count
        match self.btree.verify() {
            Ok(check) => {
                report.keys = check.entries;
                if check.entries != self.key_count {
                    report.errors.push(format!(
                        "btree holds {} entries but meta records {}",
                        check.entries, self.key_count
                    ));
                }
            }
            Err(e) => report.errors.push(format!("btree structure: {e}")),
        }

        // every posting must decode and its rows must stay in range
        let lo = CompositeKey::new(0, 0, 0);
        let hi = CompositeKey::new(u32::MAX, u32::MAX, u32::MAX);
        let mut refs: Vec<(CompositeKey, BlobRef)> = Vec::new();
        if let Err(e) = self.btree.range_with(lo, hi, |k, v| {
            refs.push((k, BlobRef::unpack(v)));
            true
        }) {
            report.errors.push(format!("btree scan: {e}"));
        }
        let mut rows = 0u64;
        for (key, r) in refs {
            let bytes = match self.blobs.get(r) {
                Ok(b) => b,
                Err(e) => {
                    report.errors.push(format!("posting blob for {key:?}: {e}"));
                    continue;
                }
            };
            match Posting::decode(&bytes) {
                Ok(p) => {
                    report.postings += 1;
                    rows += p.refs.len() as u64;
                }
                Err(e) => report.errors.push(format!("posting for {key:?}: {e}")),
            }
        }
        report.posting_rows = rows;
        if rows != self.node_count {
            report.errors.push(format!(
                "postings hold {} rows but meta records {} indexed nodes",
                rows, self.node_count
            ));
        }
        Ok(report)
    }

    /// The neighbor-array scheme (query signatures must use it).
    pub fn scheme(&self) -> NeighborArrayScheme {
        self.scheme
    }

    /// Whether neighbor arrays fold incident edge labels (the extended
    /// labeled-edge adaptation). Needed to reconstruct a matching
    /// [`NhIndexConfig`] when reopening a generation from its meta file.
    pub fn edge_labels(&self) -> bool {
        self.edge_labels
    }

    /// Directory holding the index files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Indexed node count (one unit per database node, §IV-A).
    pub fn node_count(&self) -> u64 {
        self.node_count
    }

    /// Distinct `(label, degree, nbConnection)` keys.
    pub fn key_count(&self) -> u64 {
        self.key_count
    }

    /// Total on-disk footprint in bytes (both page files).
    pub fn size_bytes(&self) -> u64 {
        // Page files may not be fully extended until flush; compute from
        // allocation counters.
        let bt = self.dir.join(BTREE_FILE);
        let bl = self.dir.join(BLOB_FILE);
        let fs = |p: &Path| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0);
        fs(&bt) + fs(&bl)
    }

    /// Builds the probe signature for a query node. `label_of` maps query
    /// node ids to *effective* labels (group labels under §IV-E) — use
    /// [`GraphDb::effective_of_raw`] against the database vocabulary.
    /// When the index was built with edge labels, the query's incident
    /// edge labels enter the signature the same way.
    pub fn signature(
        &self,
        g: &Graph,
        node: NodeId,
        label_of: &dyn Fn(NodeId) -> u32,
    ) -> QuerySignature {
        let nb_array = if self.edge_labels {
            self.scheme
                .array_of_pairs(g.neighbor_edges(node).map(|(nb, eid)| {
                    (
                        label_of(nb),
                        g.edge_label(eid).map(|l| l.0 + 1).unwrap_or(0),
                    )
                }))
        } else {
            self.scheme.array_of(g.neighbors(node).map(label_of))
        };
        QuerySignature {
            label: label_of(node),
            degree: g.degree(node) as u32,
            nb_connection: g.neighbor_connection(node) as u32,
            nb_array,
        }
    }

    /// The miss budgets `(nbmiss, nbcmiss)` for a query node under `ρ`
    /// (§IV-B): `nbmiss = ⌊ρ·degree⌋` and the worst-case connection loss
    /// `nbcmiss = nbmiss(nbmiss−1)/2 + (degree−nbmiss)·nbmiss`.
    pub fn miss_budgets(degree: u32, rho: f64) -> (u32, u32) {
        let nbmiss = (rho.max(0.0) * degree as f64).floor() as u32;
        let nbmiss = nbmiss.min(degree);
        let nbcmiss = nbmiss * nbmiss.saturating_sub(1) / 2 + (degree - nbmiss) * nbmiss;
        (nbmiss, nbcmiss)
    }

    /// Probes the index for database nodes approximately matching `sig`
    /// under approximation ratio `rho` (conditions IV.1–IV.4).
    pub fn probe(&self, sig: &QuerySignature, rho: f64) -> Result<Vec<NodeCandidate>> {
        Ok(self.probe_with_stats(sig, rho)?.0)
    }

    /// Probe phase 1: the B+-tree range scan (conditions IV.1, IV.2,
    /// IV.4), returning the surviving `(key, posting ref)` pairs. Split
    /// out so batch probes can collect every signature's refs and queue
    /// posting readahead before phase 2 touches any blob page.
    fn scan_keys(
        &self,
        sig: &QuerySignature,
        rho: f64,
        stats: &mut ProbeStats,
    ) -> Result<Vec<(CompositeKey, BlobRef)>> {
        // The probe-width contract, enforced here as a typed error: a
        // signature built under a different generation's scheme (base vs
        // delta sbit skew after vocabulary growth) must fail loudly, not
        // silently under-count misses in the kernels below.
        self.scheme
            .check_query_width(&sig.nb_array)
            .map_err(NhError::Meta)?;
        let (nbmiss, nbcmiss) = Self::miss_budgets(sig.degree, rho);
        let deg_min = sig.degree - nbmiss; // condition IV.2
        let nbc_min = sig.nb_connection.saturating_sub(nbcmiss); // IV.4
        let bit_budget = self.scheme.bit_budget(nbmiss); // IV.3, bit space
        let lp_filter = if self.filter_enabled() {
            self.filter.as_ref()
        } else {
            None
        };

        let lo = CompositeKey::new(sig.label, deg_min, 0);
        let hi = CompositeKey::new(sig.label, u32::MAX, u32::MAX);
        let mut hits: Vec<(CompositeKey, BlobRef)> = Vec::new();
        // Postings the pre-filter skipped, re-checked below in debug
        // builds (outside the scan — blob reads must not run under the
        // B+-tree page latch).
        #[cfg(debug_assertions)]
        let mut skipped: Vec<BlobRef> = Vec::new();
        self.btree.range_with(lo, hi, |k, v| {
            stats.keys_scanned += 1;
            if k.nb_connection >= nbc_min {
                // The label-pair pre-filter (condition IV.3's cheap
                // bound): skipped postings never reach the prefetch list,
                // let alone bitmap decode.
                if lp_filter.is_some_and(|f| f.can_skip(k, &sig.nb_array, bit_budget)) {
                    stats.postings_filtered += 1;
                    #[cfg(debug_assertions)]
                    skipped.push(BlobRef::unpack(v));
                    return true;
                }
                stats.postings_fetched += 1;
                hits.push((k, BlobRef::unpack(v)));
            }
            true
        })?;
        // Verify mode: every skip must be provably safe — the real
        // Algorithm-1 probe over the skipped posting finds nothing.
        #[cfg(debug_assertions)]
        for r in skipped {
            let bytes = self.blobs.get(r)?;
            let posting = Posting::decode(&bytes)?;
            let ph = probe_bitsliced(&posting.bitmap, &sig.nb_array, bit_budget);
            debug_assert!(
                ph.rows.is_empty(),
                "label-pair filter skipped a posting with {} qualifying rows \
                 (bit_budget {bit_budget}) — the guaranteed-miss bound is unsound",
                ph.rows.len(),
            );
        }
        Ok(hits)
    }

    /// Whether the label-pair pre-filter is consulted (true unless turned
    /// off via [`NhIndex::set_filter_enabled`], or the index has no
    /// persisted filter).
    pub fn filter_enabled(&self) -> bool {
        self.filter.is_some()
            && self
                .filter_enabled
                .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Turns the label-pair pre-filter on or off at runtime. Answers are
    /// bit-identical either way (the filter only skips postings that can
    /// prove no row qualifies); benchmarks flip it to measure the skip
    /// fraction and verify identity.
    pub fn set_filter_enabled(&self, enabled: bool) {
        self.filter_enabled
            .store(enabled, std::sync::atomic::Ordering::Relaxed);
    }

    /// Number of keys carrying a label-pair summary (0 when the index has
    /// no filter).
    pub fn filter_keys(&self) -> u64 {
        self.filter.as_ref().map_or(0, |f| f.len() as u64)
    }

    /// Probe phase 2: fetch each surviving posting and run the bitmap
    /// test (condition IV.3, Algorithm 1). Pure per-hit work over a
    /// read-only index, so results are independent of any readahead that
    /// happened between the phases.
    fn process_postings(
        &self,
        sig: &QuerySignature,
        rho: f64,
        hits: &[(CompositeKey, BlobRef)],
        stats: &mut ProbeStats,
    ) -> Result<Vec<NodeCandidate>> {
        let (nbmiss, _) = Self::miss_budgets(sig.degree, rho);
        let mut out = Vec::new();
        // condition IV.3 threshold lives in bit space: with k Bloom hashes
        // a missing neighbor can clear up to k bits.
        let bit_budget = self.scheme.bit_budget(nbmiss);
        for &(key, blob_ref) in hits {
            let bytes = self.blobs.get(blob_ref)?;
            let posting = Posting::decode(&bytes)?;
            stats.rows_examined += posting.refs.len() as u64;
            let ph = probe_bitsliced(&posting.bitmap, &sig.nb_array, bit_budget);
            let k = if self.scheme.deterministic {
                1
            } else {
                self.scheme.hashes.max(1) as u32
            };
            for (row, &miss) in ph.rows.iter().zip(ph.misses.iter()) {
                if self.tombstones.contains(&posting.refs[*row as usize].graph) {
                    continue;
                }
                // Bit misses over-count by up to k per missing label under
                // multi-hash Bloom (divide, rounding up) and can undercount
                // when several query neighbors share a bit; the degree
                // shortfall is a second lower bound on missing neighbors.
                let label_misses = miss.div_ceil(k);
                let shortfall = sig.degree.saturating_sub(key.degree);
                out.push(NodeCandidate {
                    node: posting.refs[*row as usize],
                    nb_miss: label_misses.max(shortfall),
                    db_degree: key.degree,
                    db_nb_connection: key.nb_connection,
                });
            }
        }
        Ok(out)
    }

    /// [`NhIndex::probe`] plus pruning counters.
    pub fn probe_with_stats(
        &self,
        sig: &QuerySignature,
        rho: f64,
    ) -> Result<(Vec<NodeCandidate>, ProbeStats)> {
        let mut stats = ProbeStats::default();
        let hits = self.scan_keys(sig, rho, &mut stats)?;
        // Queue readahead for every posting this probe will read; pages
        // already resident are skipped by the pool, so a warm cache pays
        // only the (cheap) staging check.
        self.blobs
            .prefetch(&hits.iter().map(|&(_, r)| r).collect::<Vec<_>>());
        let out = self.process_postings(sig, rho, &hits, &mut stats)?;
        stats.rows_returned = out.len() as u64;
        self.counters.record(&stats);
        Ok((out, stats))
    }

    /// Probes a batch of signatures, fanning out across `threads` workers
    /// (`0` = one per core, `1` = serial). Results come back in signature
    /// order and are element-wise identical to serial [`NhIndex::probe_with_stats`]
    /// calls — probing is a pure function of `(signature, rho)` over a
    /// read-only index, so only the wall clock changes.
    ///
    /// The batch runs in two phases: every signature's B+-tree scan first
    /// (phase 1), then one readahead request covering the union of every
    /// posting page the batch needs, then the bitmap work (phase 2). On a
    /// cold pool the posting reads overlap with phase-2 compute instead
    /// of serializing miss-by-miss inside each probe.
    pub fn probe_batch(
        &self,
        sigs: &[QuerySignature],
        rho: f64,
        threads: usize,
    ) -> Result<Vec<(Vec<NodeCandidate>, ProbeStats)>> {
        self.probe_batch_budgeted(sigs, rho, threads, None)
    }

    /// [`NhIndex::probe_batch`] with an explicit readahead budget: at most
    /// `prefetch_cap` postings are queued for async readahead between the
    /// phases (`None` = unbounded). The cap only shapes *readahead* — any
    /// posting not staged is demand-read by phase 2 exactly as before, so
    /// results are bit-identical for every budget. The planner sizes the
    /// cap from its posting-count estimates so a tiny probe doesn't spin
    /// up readahead it will never use.
    pub fn probe_batch_budgeted(
        &self,
        sigs: &[QuerySignature],
        rho: f64,
        threads: usize,
        prefetch_cap: Option<u64>,
    ) -> Result<Vec<(Vec<NodeCandidate>, ProbeStats)>> {
        // phase-1 output per signature: scanned (key, posting ref) hits
        // plus the stats accumulated so far
        type Scanned = (Vec<(CompositeKey, BlobRef)>, ProbeStats);
        let threads = tale_par::effective_threads(threads);
        let scanned: Result<Vec<Scanned>> = tale_par::parallel_map(threads, sigs.len(), |i| {
            let mut stats = ProbeStats::default();
            let hits = self.scan_keys(&sigs[i], rho, &mut stats)?;
            Ok((hits, stats))
        })
        .into_iter()
        .collect();
        let scanned = scanned?;

        let mut all_refs: Vec<BlobRef> = scanned
            .iter()
            .flat_map(|(hits, _)| hits.iter().map(|&(_, r)| r))
            .collect();
        if let Some(cap) = prefetch_cap {
            all_refs.truncate(cap.min(usize::MAX as u64) as usize);
        }
        self.blobs.prefetch(&all_refs);

        tale_par::parallel_map(threads, sigs.len(), |i| {
            let (hits, mut stats) = scanned[i].clone();
            let out = self.process_postings(&sigs[i], rho, &hits, &mut stats)?;
            stats.rows_returned = out.len() as u64;
            self.counters.record(&stats);
            Ok((out, stats))
        })
        .into_iter()
        .collect()
    }

    /// Lifetime probe tallies for this index handle (since build/open;
    /// not persisted). Diff two snapshots with [`ProbeCounters::since`]
    /// to attribute index traffic to a span of work.
    pub fn counters(&self) -> ProbeCounters {
        self.counters.snapshot()
    }

    /// Combined hit/miss counters of the B+-tree and blob buffer pools.
    pub fn pool_stats(&self) -> tale_storage::PoolStats {
        self.bt_pool.pool_stats().merged(self.blobs.pool_stats())
    }

    /// Combined readahead counters of both page files' prefetchers
    /// (zeros when prefetching is disabled).
    pub fn prefetch_stats(&self) -> PrefetchStats {
        self.bt_pool
            .prefetch_stats()
            .merged(self.blobs.pool().prefetch_stats())
    }

    /// Rebinds both page files' prefetchers to `io`, replacing whatever
    /// worker pool the index was built or opened with. A sharded index
    /// calls this on every shard with one shared pool so total I/O
    /// concurrency is bounded by that pool's workers, not
    /// `shards × workers`.
    pub fn attach_io(&mut self, io: Arc<IoPool>, staging_pages: usize) {
        self.bt_pool
            .attach_prefetcher(Arc::clone(&io), staging_pages);
        self.blobs
            .pool()
            .attach_prefetcher(Arc::clone(&io), staging_pages);
        self.io = Some(io);
    }

    /// The async read-path worker pool this index's prefetchers feed
    /// (`None` when prefetching is disabled).
    pub fn io_pool(&self) -> Option<&Arc<IoPool>> {
        self.io.as_ref()
    }

    /// Adds a fixed per-read delay to both page files' read backends —
    /// benchmark-only, modeling a device with seek latency when the index
    /// files are page-cache-hot (see the E-COLD harness). Probe answers
    /// are unaffected; only read timing changes.
    pub fn simulate_read_latency(&self, delay: std::time::Duration) {
        self.bt_pool.simulate_read_latency(delay);
        self.blobs.pool().simulate_read_latency(delay);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// db with two graphs:
    /// g0: triangle A-B-C plus pendant A-D(A)
    /// g1: star center A with leaves B, B, C
    fn sample_db() -> GraphDb {
        let mut db = GraphDb::new();
        let a = db.intern_node_label("A");
        let b = db.intern_node_label("B");
        let c = db.intern_node_label("C");

        let mut g0 = Graph::new_undirected();
        let n0 = g0.add_node(a);
        let n1 = g0.add_node(b);
        let n2 = g0.add_node(c);
        let n3 = g0.add_node(a);
        g0.add_edge(n0, n1).unwrap();
        g0.add_edge(n1, n2).unwrap();
        g0.add_edge(n0, n2).unwrap();
        g0.add_edge(n0, n3).unwrap();
        db.insert("g0", g0);

        let mut g1 = Graph::new_undirected();
        let m0 = g1.add_node(a);
        let m1 = g1.add_node(b);
        let m2 = g1.add_node(b);
        let m3 = g1.add_node(c);
        g1.add_edge(m0, m1).unwrap();
        g1.add_edge(m0, m2).unwrap();
        g1.add_edge(m0, m3).unwrap();
        db.insert("g1", g1);
        db
    }

    fn build_sample(config: &NhIndexConfig) -> (tempfile::TempDir, GraphDb, NhIndex) {
        let dir = tempfile::tempdir().unwrap();
        let db = sample_db();
        let idx = NhIndex::build(dir.path(), &db, config).unwrap();
        (dir, db, idx)
    }

    fn cfg() -> NhIndexConfig {
        NhIndexConfig {
            sbit: 32,
            buffer_frames: 64,
            parallel_build: false,
            bloom_hashes: 1,
            use_edge_labels: false,
            ..NhIndexConfig::default()
        }
    }

    #[test]
    fn build_counts() {
        let (_d, db, idx) = build_sample(&cfg());
        assert_eq!(idx.node_count(), db.total_nodes() as u64);
        assert!(idx.key_count() > 0 && idx.key_count() <= idx.node_count());
        assert!(idx.size_bytes() > 0);
    }

    #[test]
    fn exact_probe_finds_equal_neighborhood() {
        let (_d, db, idx) = build_sample(&cfg());
        // Query = the g1 star center: label A, degree 3, nbc 0,
        // neighbors {B, B, C}.
        let g1 = db.graph(tale_graph::GraphId(1));
        let sig = idx.signature(g1, NodeId(0), &|n| {
            db.effective_label(tale_graph::GraphId(1), n)
        });
        let hits = idx.probe(&sig, 0.0).unwrap();
        // g0's n0 has label A, degree 3, neighbors {B, C, A}: misses B? No:
        // query needs {B, C} present; n0's neighbors are {B, C, A} → 0
        // misses, degree 3 ≥ 3, nbc 1 ≥ 0. So both centers hit.
        let nodes: Vec<NodeRef> = hits.iter().map(|h| h.node).collect();
        assert!(nodes.contains(&NodeRef { graph: 1, node: 0 }));
        assert!(nodes.contains(&NodeRef { graph: 0, node: 0 }));
        // the exact self-hit has zero misses
        let self_hit = hits
            .iter()
            .find(|h| h.node == NodeRef { graph: 1, node: 0 })
            .unwrap();
        assert_eq!(self_hit.nb_miss, 0);
    }

    #[test]
    fn rho_zero_rejects_smaller_degree() {
        let (_d, db, idx) = build_sample(&cfg());
        // Query node of degree 3 must not match db nodes of degree < 3
        // when ρ = 0.
        let g1 = db.graph(tale_graph::GraphId(1));
        let sig = idx.signature(g1, NodeId(0), &|n| {
            db.effective_label(tale_graph::GraphId(1), n)
        });
        let hits = idx.probe(&sig, 0.0).unwrap();
        assert!(hits.iter().all(|h| h.db_degree >= 3));
    }

    #[test]
    fn rho_relaxes_matches() {
        let (_d, db, idx) = build_sample(&cfg());
        let g1 = db.graph(tale_graph::GraphId(1));
        let sig = idx.signature(g1, NodeId(0), &|n| {
            db.effective_label(tale_graph::GraphId(1), n)
        });
        let strict = idx.probe(&sig, 0.0).unwrap();
        let loose = idx.probe(&sig, 0.5).unwrap();
        assert!(loose.len() >= strict.len());
    }

    #[test]
    fn miss_budget_formula() {
        // degree 8, ρ = 25% → nbmiss 2; nbcmiss = 1 + 6*2 = 13
        assert_eq!(NhIndex::miss_budgets(8, 0.25), (2, 13));
        // ρ = 0 → no misses
        assert_eq!(NhIndex::miss_budgets(8, 0.0), (0, 0));
        // degenerate degree 0
        assert_eq!(NhIndex::miss_budgets(0, 0.5), (0, 0));
        // ρ ≥ 1 caps at degree
        assert_eq!(NhIndex::miss_budgets(4, 2.0).0, 4);
    }

    #[test]
    fn probe_stats_populated() {
        let (_d, db, idx) = build_sample(&cfg());
        let g1 = db.graph(tale_graph::GraphId(1));
        let sig = idx.signature(g1, NodeId(0), &|n| {
            db.effective_label(tale_graph::GraphId(1), n)
        });
        let (hits, stats) = idx.probe_with_stats(&sig, 0.25).unwrap();
        assert_eq!(stats.rows_returned as usize, hits.len());
        assert!(stats.keys_scanned >= stats.postings_fetched);
        assert!(stats.rows_examined >= stats.rows_returned);
    }

    #[test]
    fn reopen_probes_identically() {
        let (dir, db, idx) = build_sample(&cfg());
        let g1 = db.graph(tale_graph::GraphId(1));
        let sig = idx.signature(g1, NodeId(0), &|n| {
            db.effective_label(tale_graph::GraphId(1), n)
        });
        let before = idx.probe(&sig, 0.25).unwrap();
        drop(idx);
        let idx2 = NhIndex::open(dir.path(), 64).unwrap();
        let mut after = idx2.probe(&sig, 0.25).unwrap();
        let mut before = before;
        before.sort_by_key(|h| h.node);
        after.sort_by_key(|h| h.node);
        assert_eq!(before, after);
        assert_eq!(idx2.node_count(), db.total_nodes() as u64);
    }

    #[test]
    fn parallel_build_equals_serial() {
        let dir_a = tempfile::tempdir().unwrap();
        let dir_b = tempfile::tempdir().unwrap();
        let db = sample_db();
        let mut ca = cfg();
        ca.parallel_build = false;
        let mut cb = cfg();
        cb.parallel_build = true;
        let ia = NhIndex::build(dir_a.path(), &db, &ca).unwrap();
        let ib = NhIndex::build(dir_b.path(), &db, &cb).unwrap();
        assert_eq!(ia.node_count(), ib.node_count());
        assert_eq!(ia.key_count(), ib.key_count());
        let g1 = db.graph(tale_graph::GraphId(1));
        for n in g1.nodes() {
            let sig = ia.signature(g1, n, &|x| db.effective_label(tale_graph::GraphId(1), x));
            let mut a = ia.probe(&sig, 0.3).unwrap();
            let mut b = ib.probe(&sig, 0.3).unwrap();
            a.sort_by_key(|h| h.node);
            b.sort_by_key(|h| h.node);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn group_labels_enable_mismatches() {
        // Two nodes with different raw labels but the same group must
        // match each other (§IV-E).
        let mut db = GraphDb::new();
        let p1 = db.intern_node_label("prot1");
        let p2 = db.intern_node_label("prot2");
        let q = db.intern_node_label("other");
        let mut g = Graph::new_undirected();
        let n0 = g.add_node(p1);
        let n1 = g.add_node(q);
        g.add_edge(n0, n1).unwrap();
        db.insert("g", g);
        // prot1 and prot2 share an ortholog group
        db.set_group_by_names(&[
            ("prot1".into(), "orthA".into()),
            ("prot2".into(), "orthA".into()),
        ])
        .unwrap();
        let dir = tempfile::tempdir().unwrap();
        let idx = NhIndex::build(dir.path(), &db, &cfg()).unwrap();
        // Query graph uses prot2 — different raw label, same group.
        let mut qg = Graph::new_undirected();
        let m0 = qg.add_node(p2);
        let m1 = qg.add_node(q);
        qg.add_edge(m0, m1).unwrap();
        let sig = idx.signature(&qg, NodeId(0), &|n| db.effective_of_raw(qg.label(n)));
        let hits = idx.probe(&sig, 0.0).unwrap();
        assert!(hits.iter().any(|h| h.node == NodeRef { graph: 0, node: 0 }));
        let _ = p1;
    }

    #[test]
    fn insert_graph_extends_index() {
        let dir = tempfile::tempdir().unwrap();
        let mut db = sample_db();
        let idx_before;
        let mut idx = {
            // build over the original two graphs
            let i = NhIndex::build(dir.path(), &db, &cfg()).unwrap();
            idx_before = (i.node_count(), i.key_count());
            i
        };
        // grow the database: a third graph, a fresh A-B edge pair
        let a = db.intern_node_label("A"); // existing label
        let b = db.intern_node_label("B");
        let mut g2 = Graph::new_undirected();
        let x = g2.add_node(a);
        let y = g2.add_node(b);
        g2.add_edge(x, y).unwrap();
        let gid = db.insert("g2", g2);
        idx.insert_graph(&db, gid).unwrap();
        assert_eq!(idx.node_count(), idx_before.0 + 2);
        assert!(idx.key_count() >= idx_before.1);

        // the new node is findable through a probe
        let g2ref = db.graph(gid);
        let sig = idx.signature(g2ref, NodeId(0), &|n| db.effective_label(gid, n));
        let hits = idx.probe(&sig, 0.5).unwrap();
        assert!(
            hits.iter().any(|h| h.node
                == NodeRef {
                    graph: gid.0,
                    node: 0
                }),
            "inserted node not probeable: {hits:?}"
        );
        // pre-existing nodes still probeable
        let g1 = db.graph(tale_graph::GraphId(1));
        let sig = idx.signature(g1, NodeId(0), &|n| {
            db.effective_label(tale_graph::GraphId(1), n)
        });
        let hits = idx.probe(&sig, 0.0).unwrap();
        assert!(hits.iter().any(|h| h.node == NodeRef { graph: 1, node: 0 }));
    }

    #[test]
    fn insert_graph_then_reopen() {
        let dir = tempfile::tempdir().unwrap();
        let mut db = sample_db();
        let mut idx = NhIndex::build(dir.path(), &db, &cfg()).unwrap();
        let a = db.intern_node_label("A");
        let mut g2 = Graph::new_undirected();
        g2.add_node(a);
        let gid = db.insert("solo", g2);
        idx.insert_graph(&db, gid).unwrap();
        let total = idx.node_count();
        drop(idx);
        let idx = NhIndex::open(dir.path(), 64).unwrap();
        assert_eq!(idx.node_count(), total);
        let g2ref = db.graph(gid);
        let sig = idx.signature(g2ref, NodeId(0), &|n| db.effective_label(gid, n));
        assert!(!idx.probe(&sig, 0.0).unwrap().is_empty());
    }

    #[test]
    fn insert_graph_bad_id_errors() {
        let dir = tempfile::tempdir().unwrap();
        let db = sample_db();
        let mut idx = NhIndex::build(dir.path(), &db, &cfg()).unwrap();
        assert!(idx.insert_graph(&db, tale_graph::GraphId(99)).is_err());
    }

    #[test]
    fn multi_hash_bloom_index_probes_correctly() {
        // Force the Bloom regime (sbit below vocab) with 3 hashes; probes
        // must still find every true match (no false negatives).
        let dir = tempfile::tempdir().unwrap();
        let db = sample_db();
        let config = NhIndexConfig {
            sbit: 2, // vocabulary has 3 labels → Bloom
            buffer_frames: 64,
            parallel_build: false,
            bloom_hashes: 3,
            use_edge_labels: false,
            ..NhIndexConfig::default()
        };
        let idx = NhIndex::build(dir.path(), &db, &config).unwrap();
        assert!(!idx.scheme().deterministic);
        assert_eq!(idx.scheme().hashes, 3);
        for gid in [tale_graph::GraphId(0), tale_graph::GraphId(1)] {
            let g = db.graph(gid);
            for n in g.nodes() {
                let sig = idx.signature(g, n, &|x| db.effective_label(gid, x));
                let hits = idx.probe(&sig, 0.0).unwrap();
                assert!(
                    hits.iter().any(|h| h.node
                        == NodeRef {
                            graph: gid.0,
                            node: n.0
                        }),
                    "self-match lost under multi-hash bloom: {gid:?} {n:?}"
                );
            }
        }
        // persists and reopens with the hash count intact
        drop(idx);
        let idx = NhIndex::open(dir.path(), 64).unwrap();
        assert_eq!(idx.scheme().hashes, 3);
    }

    #[test]
    fn remove_graph_hides_rows_and_persists() {
        let dir = tempfile::tempdir().unwrap();
        let db = sample_db();
        let mut idx = NhIndex::build(dir.path(), &db, &cfg()).unwrap();
        let g1 = db.graph(tale_graph::GraphId(1));
        let sig = idx.signature(g1, NodeId(0), &|n| {
            db.effective_label(tale_graph::GraphId(1), n)
        });
        assert!(idx
            .probe(&sig, 0.25)
            .unwrap()
            .iter()
            .any(|h| h.node.graph == 1));
        idx.remove_graph(tale_graph::GraphId(1), db.effective_vocab_size() as u64)
            .unwrap();
        assert!(idx.is_removed(tale_graph::GraphId(1)));
        assert!(idx
            .probe(&sig, 0.25)
            .unwrap()
            .iter()
            .all(|h| h.node.graph != 1));
        // graph 0's rows are untouched
        let g0 = db.graph(tale_graph::GraphId(0));
        let sig0 = idx.signature(g0, NodeId(0), &|n| {
            db.effective_label(tale_graph::GraphId(0), n)
        });
        assert!(idx
            .probe(&sig0, 0.25)
            .unwrap()
            .iter()
            .any(|h| h.node.graph == 0));
        // persists across reopen
        drop(idx);
        let idx = NhIndex::open(dir.path(), 64).unwrap();
        assert!(idx.is_removed(tale_graph::GraphId(1)));
        assert!(idx
            .probe(&sig, 0.25)
            .unwrap()
            .iter()
            .all(|h| h.node.graph != 1));
    }

    #[test]
    fn subset_build_is_the_full_index_filtered() {
        // Probing a one-graph subset index must return exactly the rows of
        // the full index whose graph is in the subset — same scheme, same
        // global ids, same miss counts.
        let db = sample_db();
        let full_dir = tempfile::tempdir().unwrap();
        let full = NhIndex::build(full_dir.path(), &db, &cfg()).unwrap();
        for keep in [tale_graph::GraphId(0), tale_graph::GraphId(1)] {
            let dir = tempfile::tempdir().unwrap();
            let sub = NhIndex::build_subset(dir.path(), &db, &cfg(), &[keep]).unwrap();
            assert_eq!(sub.scheme(), full.scheme());
            assert_eq!(sub.node_count(), db.graph(keep).node_count() as u64);
            for gid in [tale_graph::GraphId(0), tale_graph::GraphId(1)] {
                let g = db.graph(gid);
                for n in g.nodes() {
                    let sig = full.signature(g, n, &|x| db.effective_label(gid, x));
                    let mut want: Vec<NodeCandidate> = full
                        .probe(&sig, 0.4)
                        .unwrap()
                        .into_iter()
                        .filter(|h| h.node.graph == keep.0)
                        .collect();
                    let mut got = sub.probe(&sig, 0.4).unwrap();
                    want.sort_by_key(|h| h.node);
                    got.sort_by_key(|h| h.node);
                    assert_eq!(got, want, "subset {keep:?}, probe from {gid:?} {n:?}");
                }
            }
        }
    }

    #[test]
    fn empty_subset_builds_valid_empty_index() {
        let db = sample_db();
        let dir = tempfile::tempdir().unwrap();
        let idx = NhIndex::build_subset(dir.path(), &db, &cfg(), &[]).unwrap();
        assert_eq!(idx.node_count(), 0);
        assert_eq!(idx.key_count(), 0);
        let g = db.graph(tale_graph::GraphId(0));
        let sig = idx.signature(g, NodeId(0), &|n| {
            db.effective_label(tale_graph::GraphId(0), n)
        });
        assert!(idx.probe(&sig, 1.0).unwrap().is_empty());
        drop(idx);
        // an empty index persists and reopens
        let idx = NhIndex::open(dir.path(), 64).unwrap();
        assert!(idx.probe(&sig, 1.0).unwrap().is_empty());
    }

    #[test]
    fn subset_build_rejects_bad_ids() {
        let db = sample_db();
        let dir = tempfile::tempdir().unwrap();
        assert!(NhIndex::build_subset(dir.path(), &db, &cfg(), &[tale_graph::GraphId(7)]).is_err());
    }

    #[test]
    fn probe_label_absent_returns_empty() {
        let (_d, db, idx) = build_sample(&cfg());
        let _ = db;
        let sig = QuerySignature {
            label: 999,
            degree: 1,
            nb_connection: 0,
            nb_array: vec![0u64; idx.scheme().words()],
        };
        assert!(idx.probe(&sig, 0.5).unwrap().is_empty());
    }

    /// A query whose neighbor bit no posting covers: under ρ = 0 the
    /// label-pair filter must skip every range-scanned posting before the
    /// blob store is touched, and the answer must equal the unfiltered
    /// path's (empty here).
    fn skipping_signature(idx: &NhIndex, db: &GraphDb) -> QuerySignature {
        // label A (deterministic scheme, vocab {A,B,C}); neighbor label 3
        // is outside the vocabulary, so no summary has its bit.
        let a = 0;
        let _ = db;
        QuerySignature {
            label: a,
            degree: 3,
            nb_connection: 0,
            nb_array: idx.scheme().array_of([3u32]),
        }
    }

    #[test]
    fn filter_skips_postings_before_fetch() {
        let (_d, db, idx) = build_sample(&cfg());
        assert!(idx.scheme().deterministic);
        assert!(idx.filter_enabled());
        assert!(idx.filter_keys() > 0);
        let sig = skipping_signature(&idx, &db);
        let (hits, stats) = idx.probe_with_stats(&sig, 0.0).unwrap();
        assert!(hits.is_empty());
        assert!(stats.postings_filtered > 0, "expected skips, got {stats:?}");
        assert_eq!(
            stats.postings_fetched, 0,
            "every surviving key should have been filtered: {stats:?}"
        );

        // identity against the unfiltered path, and the counter taxonomy
        // flips back to fetches
        idx.set_filter_enabled(false);
        assert!(!idx.filter_enabled());
        let (hits_off, stats_off) = idx.probe_with_stats(&sig, 0.0).unwrap();
        assert_eq!(hits_off, hits);
        assert_eq!(stats_off.postings_filtered, 0);
        assert!(stats_off.postings_fetched > 0);

        // lifetime counters carried the skip
        idx.set_filter_enabled(true);
        assert!(idx.counters().postings_filtered > 0);
    }

    #[test]
    fn filter_on_off_answers_identically() {
        let (_d, db, idx) = build_sample(&cfg());
        for gid in [tale_graph::GraphId(0), tale_graph::GraphId(1)] {
            let g = db.graph(gid);
            for n in g.nodes() {
                let sig = idx.signature(g, n, &|x| db.effective_label(gid, x));
                for rho in [0.0, 0.25, 0.5, 1.0] {
                    idx.set_filter_enabled(true);
                    let on = idx.probe(&sig, rho).unwrap();
                    idx.set_filter_enabled(false);
                    let off = idx.probe(&sig, rho).unwrap();
                    assert_eq!(on, off, "gid={gid:?} n={n:?} rho={rho}");
                }
            }
        }
    }

    #[test]
    fn filter_survives_reopen_and_insert() {
        let (dir, mut db, idx) = build_sample(&cfg());
        drop(idx);
        let mut idx = NhIndex::open(dir.path(), 64).unwrap();
        assert!(idx.filter_keys() > 0, "sidecar should reload on open");
        let sig = skipping_signature(&idx, &db);
        let (_, stats) = idx.probe_with_stats(&sig, 0.0).unwrap();
        assert!(stats.postings_filtered > 0);

        // inserts keep the filter exact: the new graph's postings get
        // summaries, and probes stay identical with the filter on or off
        let mut g2 = Graph::new_undirected();
        let a = tale_graph::NodeLabel(0);
        let b = tale_graph::NodeLabel(1);
        let p0 = g2.add_node(a);
        let p1 = g2.add_node(b);
        let p2 = g2.add_node(b);
        g2.add_edge(p0, p1).unwrap();
        g2.add_edge(p0, p2).unwrap();
        let gid = db.insert("g2", g2);
        idx.insert_graph(&db, gid).unwrap();
        let g = db.graph(gid);
        let probe_sig = idx.signature(g, NodeId(0), &|x| db.effective_label(gid, x));
        let on = idx.probe(&probe_sig, 0.25).unwrap();
        idx.set_filter_enabled(false);
        let off = idx.probe(&probe_sig, 0.25).unwrap();
        assert_eq!(on, off);
        assert!(on.iter().any(|h| h.node.graph == gid.0));

        // and the updated sidecar persists
        drop(idx);
        let idx = NhIndex::open(dir.path(), 64).unwrap();
        assert!(idx.filter_keys() > 0);
        let again = idx.probe(&probe_sig, 0.25).unwrap();
        assert_eq!(again, on);
    }

    #[test]
    fn missing_or_stale_sidecar_degrades_to_no_filter() {
        let (dir, db, idx) = build_sample(&cfg());
        let sig = skipping_signature(&idx, &db);
        let want = idx.probe(&sig, 0.0).unwrap();
        drop(idx);

        // sidecar deleted: the index opens and answers identically, with
        // no skips
        std::fs::remove_file(dir.path().join(FILTER_FILE)).unwrap();
        let idx = NhIndex::open(dir.path(), 64).unwrap();
        assert_eq!(idx.filter_keys(), 0);
        assert!(!idx.filter_enabled());
        let (got, stats) = idx.probe_with_stats(&sig, 0.0).unwrap();
        assert_eq!(got, want);
        assert_eq!(stats.postings_filtered, 0);
        drop(idx);

        // meta recording no filter (the absent-field default is also 0):
        // a sidecar present on disk is ignored
        let meta_path = dir.path().join(META_FILE);
        let meta = std::fs::read_to_string(&meta_path).unwrap();
        assert!(meta.contains("\"label_filter\": 1"));
        std::fs::write(
            &meta_path,
            meta.replace("\"label_filter\": 1", "\"label_filter\": 0"),
        )
        .unwrap();
        let idx = NhIndex::open(dir.path(), 64).unwrap();
        assert_eq!(idx.filter_keys(), 0);
        assert_eq!(idx.probe(&sig, 0.0).unwrap(), want);
    }

    /// The probe-width contract at the `IndexReader` boundary: a signature
    /// built under a different generation's scheme (sbit skew after
    /// vocabulary growth) must surface a typed error, not silently
    /// under-count misses.
    #[test]
    fn probe_rejects_width_skew_via_reader() {
        use crate::reader::IndexReader;
        let (_d, db, idx) = build_sample(&cfg());
        let g1 = db.graph(tale_graph::GraphId(1));
        let good = idx.signature(g1, NodeId(0), &|n| {
            db.effective_label(tale_graph::GraphId(1), n)
        });
        let reader: &dyn IndexReader = &idx;

        // one word too many (signature from a wider-vocabulary scheme)
        let mut wide = good.clone();
        wide.nb_array.push(0);
        let err = reader.probe_batch(&[wide], 0.5, 1).unwrap_err();
        assert!(matches!(err, NhError::Meta(_)), "{err}");
        assert!(err.to_string().contains("words"), "{err}");

        // right word count, but bits at/above sbit 32
        let mut stray = good.clone();
        stray.nb_array[0] |= 1u64 << 40;
        let err = reader.probe_batch(&[stray], 0.5, 1).unwrap_err();
        assert!(matches!(err, NhError::Meta(_)), "{err}");
        assert!(err.to_string().contains("stray"), "{err}");

        // the good signature still works after the rejections
        assert!(reader.probe_batch(&[good], 0.5, 1).is_ok());
    }
}
