//! Neighbor arrays (§IV-A).
//!
//! The neighbors of a node are summarized as an `Sbit`-bit array. Two
//! regimes, exactly as the paper describes:
//!
//! * **Deterministic**: when the vocabulary is small (`|Σv| ≤ Sbit`), bit
//!   `i` records whether a neighbor with label `i` exists. Condition IV.3
//!   is then exact over label *sets*.
//! * **Bloom**: for large vocabularies, a hash function maps each label to
//!   a bit position (the paper uses one bit array and one hash function,
//!   as do we). This admits false positives — a query neighbor label may
//!   appear present when only a colliding label is — but never false
//!   negatives, so the index remains a safe filter.

use serde::{Deserialize, Serialize};

/// How labels map to neighbor-array bit positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NeighborArrayScheme {
    /// Array width in bits (`Sbit`, user-controllable; the paper uses 96
    /// for BIND and 32 for ASTRAL).
    pub sbit: u32,
    /// True when bit positions are label ids directly.
    pub deterministic: bool,
    /// Hash functions per label in the Bloom regime (§IV-A: "to improve
    /// precision, multiple bit arrays and hash functions can be used" —
    /// the paper uses one "for simplicity"; ignored when deterministic).
    /// Each missing neighbor label then costs up to `hashes` bit misses,
    /// so probe thresholds scale accordingly (see
    /// [`NeighborArrayScheme::bit_budget`]).
    #[serde(default = "default_hashes")]
    pub hashes: u8,
}

fn default_hashes() -> u8 {
    1
}

impl NeighborArrayScheme {
    /// Picks the regime the paper prescribes: deterministic when the whole
    /// vocabulary fits in the array, Bloom hashing otherwise (one hash).
    pub fn choose(sbit: u32, vocab_size: usize) -> Self {
        Self::choose_with_hashes(sbit, vocab_size, 1)
    }

    /// [`NeighborArrayScheme::choose`] with an explicit Bloom hash count.
    pub fn choose_with_hashes(sbit: u32, vocab_size: usize, hashes: u8) -> Self {
        NeighborArrayScheme {
            sbit,
            deterministic: vocab_size <= sbit as usize,
            hashes: hashes.max(1),
        }
    }

    /// Scales a neighbor-miss budget to bit-miss space: in the
    /// deterministic (or single-hash) regime the two coincide; with `k`
    /// hashes a missing label may clear up to `k` bits, so the admissible
    /// (no-false-negative) bit budget is `nbmiss × k`.
    pub fn bit_budget(&self, nbmiss: u32) -> u32 {
        if self.deterministic {
            nbmiss
        } else {
            nbmiss.saturating_mul(self.hashes.max(1) as u32)
        }
    }

    /// Number of `u64` words per array.
    #[inline]
    pub fn words(&self) -> usize {
        (self.sbit as usize).div_ceil(64)
    }

    /// Primary bit position for a label (first hash).
    #[inline]
    pub fn bit_of(&self, label: u32) -> u32 {
        self.bit_of_hash(label, 0)
    }

    /// Bit position for a label under hash function `i`.
    #[inline]
    pub fn bit_of_hash(&self, label: u32, i: u8) -> u32 {
        if self.deterministic {
            // Labels outside the build-time vocabulary (possible for query
            // graphs) wrap around; a false-positive bit is harmless for a
            // filter, and the B+-tree label-equality condition still
            // rejects unknown node labels outright.
            label % self.sbit
        } else {
            // Double hashing: h1 + i·h2, the standard Bloom construction,
            // over two Fibonacci-style multiplicative mixes.
            let h1 = (label as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
            let h2 = ((label as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F) >> 32) | 1;
            ((h1.wrapping_add(h2.wrapping_mul(i as u64))) % self.sbit as u64) as u32
        }
    }

    /// Bit position for a (neighbor label, edge label) pair — the
    /// extended paper's edge-labeled adaptation folds the incident edge's
    /// label into the neighborhood signature. Always hashed (the pair
    /// space exceeds any practical deterministic array).
    #[inline]
    pub fn bit_of_pair(&self, label: u32, edge_label: u32, i: u8) -> u32 {
        let key = ((label as u64) << 32) | edge_label as u64;
        let h1 = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        let h2 = (key.wrapping_mul(0xC2B2_AE3D_27D4_EB4F) >> 32) | 1;
        ((h1.wrapping_add(h2.wrapping_mul(i as u64))) % self.sbit as u64) as u32
    }

    /// Builds the neighbor array over (neighbor label, edge label) pairs.
    /// `0` encodes "no edge label"; real labels are passed as `id + 1`.
    pub fn array_of_pairs<I: IntoIterator<Item = (u32, u32)>>(&self, pairs: I) -> Vec<u64> {
        let mut words = vec![0u64; self.words()];
        let k = self.hashes.max(1);
        for (l, el) in pairs {
            for i in 0..k {
                let b = self.bit_of_pair(l, el, i);
                words[(b / 64) as usize] |= 1u64 << (b % 64);
            }
        }
        words
    }

    /// Builds the neighbor array for a set of (effective) neighbor labels.
    pub fn array_of<I: IntoIterator<Item = u32>>(&self, labels: I) -> Vec<u64> {
        let mut words = vec![0u64; self.words()];
        let k = if self.deterministic {
            1
        } else {
            self.hashes.max(1)
        };
        for l in labels {
            for i in 0..k {
                let b = self.bit_of_hash(l, i);
                words[(b / 64) as usize] |= 1u64 << (b % 64);
            }
        }
        words
    }

    /// Validates a query neighbor array against this scheme's width
    /// contract: exactly [`NeighborArrayScheme::words`] words, no bits at
    /// or above `sbit`. The probe kernels assert the same contract and
    /// panic; boundaries that can legitimately see skew — a signature
    /// built under a different generation's scheme after vocabulary
    /// growth — call this first and surface a typed error instead.
    pub fn check_query_width(&self, nb_array: &[u64]) -> std::result::Result<(), String> {
        let words = self.words();
        if nb_array.len() != words {
            return Err(format!(
                "query neighbor array has {} words but the index scheme (sbit {}) needs {} — \
                 signature built under a different array width?",
                nb_array.len(),
                self.sbit,
                words,
            ));
        }
        if self.sbit % 64 != 0 {
            let stray = nb_array[words - 1] & !((1u64 << (self.sbit % 64)) - 1);
            if stray != 0 {
                return Err(format!(
                    "query neighbor array sets bits at or above sbit {} (stray mask {stray:#x})",
                    self.sbit,
                ));
            }
        }
        Ok(())
    }

    /// Counts query bits missing from the database array — the sum in
    /// condition IV.3: positions set in `query` but clear in `db`.
    pub fn count_misses(query: &[u64], db: &[u64]) -> u32 {
        debug_assert_eq!(query.len(), db.len());
        query
            .iter()
            .zip(db.iter())
            .map(|(q, d)| (q & !d).count_ones())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn choose_picks_regime() {
        assert!(NeighborArrayScheme::choose(32, 20).deterministic);
        assert!(NeighborArrayScheme::choose(32, 32).deterministic);
        assert!(!NeighborArrayScheme::choose(32, 33).deterministic);
    }

    #[test]
    fn deterministic_bits_are_identity() {
        let s = NeighborArrayScheme {
            sbit: 20,
            deterministic: true,
            hashes: 1,
        };
        for l in 0..20 {
            assert_eq!(s.bit_of(l), l);
        }
    }

    #[test]
    fn bloom_bits_in_range_and_spread() {
        let s = NeighborArrayScheme {
            sbit: 96,
            deterministic: false,
            hashes: 1,
        };
        let positions: HashSet<u32> = (0..1000).map(|l| s.bit_of(l)).collect();
        assert!(positions.iter().all(|&b| b < 96));
        // a decent hash should hit most buckets with 1000 labels
        assert!(positions.len() > 80, "only {} buckets hit", positions.len());
    }

    #[test]
    fn array_sets_expected_bits() {
        let s = NeighborArrayScheme {
            sbit: 96,
            deterministic: true,
            hashes: 1,
        };
        let arr = s.array_of([0, 5, 70]);
        assert_eq!(arr.len(), 2);
        assert_ne!(arr[0] & 1, 0);
        assert_ne!(arr[0] & (1 << 5), 0);
        assert_ne!(arr[1] & (1 << (70 - 64)), 0);
        assert_eq!(arr[0] & (1 << 6), 0);
    }

    #[test]
    fn miss_counting() {
        let s = NeighborArrayScheme {
            sbit: 64,
            deterministic: true,
            hashes: 1,
        };
        let q = s.array_of([1, 2, 3]);
        let db = s.array_of([2, 3, 4]);
        assert_eq!(NeighborArrayScheme::count_misses(&q, &db), 1); // label 1 missing
        assert_eq!(NeighborArrayScheme::count_misses(&db, &q), 1); // label 4 missing
        assert_eq!(NeighborArrayScheme::count_misses(&q, &q), 0);
    }

    #[test]
    fn bloom_superset_no_false_negatives() {
        // If the db node's neighbor labels are a superset of the query's,
        // the miss count must be 0 regardless of hash collisions.
        let s = NeighborArrayScheme {
            sbit: 16,
            deterministic: false,
            hashes: 1,
        };
        let q_labels = vec![100, 2000, 35];
        let mut db_labels = q_labels.clone();
        db_labels.extend([7, 8, 9, 1000]);
        let q = s.array_of(q_labels);
        let db = s.array_of(db_labels);
        assert_eq!(NeighborArrayScheme::count_misses(&q, &db), 0);
    }

    #[test]
    fn multi_hash_superset_still_no_false_negatives() {
        let s = NeighborArrayScheme {
            sbit: 96,
            deterministic: false,
            hashes: 3,
        };
        let q_labels = vec![17u32, 3000, 42, 99999];
        let mut db_labels = q_labels.clone();
        db_labels.extend([1, 2, 3]);
        let q = s.array_of(q_labels);
        let db = s.array_of(db_labels);
        assert_eq!(NeighborArrayScheme::count_misses(&q, &db), 0);
    }

    #[test]
    fn multi_hash_improves_precision() {
        // With sparse arrays, a random non-member label is less likely to
        // appear present when it must hit k positions. Estimate the false
        // positive rate empirically for k = 1 vs k = 3.
        let fp_rate = |hashes: u8| -> f64 {
            let s = NeighborArrayScheme {
                sbit: 96,
                deterministic: false,
                hashes,
            };
            let members: Vec<u32> = (0..8).map(|i| i * 1009 + 7).collect();
            let arr = s.array_of(members.iter().copied());
            let mut fp = 0;
            let trials = 2000u32;
            for probe in 0..trials {
                let label = 1_000_000 + probe; // non-members
                let single = s.array_of([label]);
                if NeighborArrayScheme::count_misses(&single, &arr) == 0 {
                    fp += 1;
                }
            }
            fp as f64 / trials as f64
        };
        let fp1 = fp_rate(1);
        let fp3 = fp_rate(3);
        assert!(fp3 < fp1, "k=3 fp {fp3:.3} should beat k=1 fp {fp1:.3}");
    }

    #[test]
    fn bit_budget_scales_with_hashes() {
        let det = NeighborArrayScheme {
            sbit: 32,
            deterministic: true,
            hashes: 4,
        };
        assert_eq!(det.bit_budget(3), 3); // deterministic ignores hashes
        let bloom = NeighborArrayScheme {
            sbit: 32,
            deterministic: false,
            hashes: 4,
        };
        assert_eq!(bloom.bit_budget(3), 12);
        assert_eq!(bloom.bit_budget(0), 0);
    }

    #[test]
    fn pair_arrays_distinguish_edge_labels() {
        let s = NeighborArrayScheme {
            sbit: 96,
            deterministic: false,
            hashes: 1,
        };
        let strong = s.array_of_pairs([(5, 1)]);
        let weak = s.array_of_pairs([(5, 2)]);
        assert_ne!(strong, weak, "same neighbor, different edge label");
        // superset property still holds over pairs
        let q = s.array_of_pairs([(5, 1), (9, 2)]);
        let db = s.array_of_pairs([(5, 1), (9, 2), (7, 7)]);
        assert_eq!(NeighborArrayScheme::count_misses(&q, &db), 0);
    }

    #[test]
    fn empty_labels_give_zero_array() {
        let s = NeighborArrayScheme {
            sbit: 32,
            deterministic: true,
            hashes: 1,
        };
        let arr = s.array_of(std::iter::empty());
        assert!(arr.iter().all(|&w| w == 0));
    }
}
