//! The probe seam between the query engine and an index.
//!
//! The engine's plan/probe/exec stages only need four things from an
//! index: build a query-node signature under the index's neighbor-array
//! scheme, answer a batch of probe signatures, and expose its probe and
//! buffer-pool counters for attribution. [`IndexReader`] captures exactly
//! that surface so the same engine code runs against
//!
//! * a plain [`NhIndex`] (the sharded path mutates these in place),
//! * an MVCC base generation (an `NhIndex` filtered by a snapshot's
//!   removed set), and
//! * the in-memory delta overlay holding not-yet-folded inserts,
//!
//! with the scatter/gather executor treating each reader as one "shard"
//! whose graphs are disjoint from every other reader's.
//!
//! [`cache_generation`](IndexReader::cache_generation) is what makes the
//! result cache generation-keyed instead of invalidate-on-write: the
//! engine folds it into every cache key, so a mutation that changes what
//! a reader would answer simply moves that reader to a fresh key space
//! and old entries become unreachable — no wholesale clear, and entries
//! for untouched readers stay warm.

use crate::index::{NodeCandidate, ProbeCounters, ProbeStats, QuerySignature};
use crate::stats::IndexStatistics;
use crate::{NhIndex, Result};
use std::sync::Arc;
use tale_graph::{Graph, NodeId};
use tale_storage::PoolStats;

/// Read-only probe surface of one index "shard".
///
/// Implementations must answer [`probe_batch`](IndexReader::probe_batch)
/// as a pure function of `(signatures, rho)` over their frozen contents —
/// element-wise identical across calls and thread counts — because the
/// engine's bit-identity oracles (sharded vs. unsharded, pinned snapshot
/// vs. pre-mutation run) compare results structurally.
pub trait IndexReader: Sync {
    /// Builds the probe signature of one query node under this reader's
    /// neighbor-array scheme (see [`NhIndex::signature`]).
    fn signature(
        &self,
        g: &Graph,
        node: NodeId,
        label_of: &dyn Fn(NodeId) -> u32,
    ) -> QuerySignature;

    /// Answers a batch of probe signatures (see [`NhIndex::probe_batch`]).
    fn probe_batch(
        &self,
        sigs: &[QuerySignature],
        rho: f64,
        threads: usize,
    ) -> Result<Vec<(Vec<NodeCandidate>, ProbeStats)>>;

    /// [`probe_batch`](IndexReader::probe_batch) with a readahead budget:
    /// stage at most `prefetch_cap` postings for async readahead (`None` =
    /// unbounded). Purely a latency hint — results must be bit-identical
    /// for every budget. Readers without readahead ignore it.
    fn probe_batch_budgeted(
        &self,
        sigs: &[QuerySignature],
        rho: f64,
        threads: usize,
        prefetch_cap: Option<u64>,
    ) -> Result<Vec<(Vec<NodeCandidate>, ProbeStats)>> {
        let _ = prefetch_cap;
        self.probe_batch(sigs, rho, threads)
    }

    /// The planner statistics describing this reader's contents, if it
    /// has any (see [`crate::stats`]). The default is `None`: the planner
    /// then treats the reader as opaque — every probe feasible, no
    /// selectivity ordering, no pruning. Implementations must uphold the
    /// conservatism invariant: statistics may overestimate what the
    /// reader can answer, never underestimate.
    fn statistics(&self) -> Option<Arc<IndexStatistics>> {
        None
    }

    /// Lifetime probe tallies of this reader (diff two snapshots to
    /// attribute traffic to a span of work).
    fn counters(&self) -> ProbeCounters;

    /// Buffer-pool counters underneath this reader (zeros for purely
    /// in-memory readers).
    fn pool_stats(&self) -> PoolStats;

    /// The value the result cache folds into every key for this reader.
    /// Two calls may share a cache entry iff they observe the same
    /// `cache_generation`; any mutation that could *add or alter* answers
    /// must move it to a value never used before. Mutations that can only
    /// *delete* answers (graph removal under MVCC) may keep the value and
    /// rely on [`is_visible`](IndexReader::is_visible) instead — deletion
    /// is the one change a read-time filter can reproduce exactly.
    fn cache_generation(&self) -> u64;

    /// Read-time visibility of `graph`'s results. The engine filters
    /// every cached partial list through this before use, so a reader
    /// whose tombstone set grew since an entry was stored still serves
    /// exactly correct answers from it (removal only deletes matches —
    /// it can never add any). Readers without tombstones keep the
    /// default.
    fn is_visible(&self, graph: u32) -> bool {
        let _ = graph;
        true
    }
}

impl IndexReader for NhIndex {
    fn signature(
        &self,
        g: &Graph,
        node: NodeId,
        label_of: &dyn Fn(NodeId) -> u32,
    ) -> QuerySignature {
        NhIndex::signature(self, g, node, label_of)
    }

    fn probe_batch(
        &self,
        sigs: &[QuerySignature],
        rho: f64,
        threads: usize,
    ) -> Result<Vec<(Vec<NodeCandidate>, ProbeStats)>> {
        NhIndex::probe_batch(self, sigs, rho, threads)
    }

    fn probe_batch_budgeted(
        &self,
        sigs: &[QuerySignature],
        rho: f64,
        threads: usize,
        prefetch_cap: Option<u64>,
    ) -> Result<Vec<(Vec<NodeCandidate>, ProbeStats)>> {
        NhIndex::probe_batch_budgeted(self, sigs, rho, threads, prefetch_cap)
    }

    fn statistics(&self) -> Option<Arc<IndexStatistics>> {
        NhIndex::statistics(self)
    }

    fn counters(&self) -> ProbeCounters {
        NhIndex::counters(self)
    }

    fn pool_stats(&self) -> PoolStats {
        NhIndex::pool_stats(self)
    }

    /// The persisted mutation counter: every committed `insert_graph` /
    /// `remove_graph` bumps it, so in-place mutations (the sharded path)
    /// retire old cache entries by moving to a new key space.
    fn cache_generation(&self) -> u64 {
        self.generation()
    }
}
