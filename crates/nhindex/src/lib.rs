//! The NH-Index (Neighborhood Index) — §IV of the paper.
//!
//! The indexing unit is the *neighborhood* of each database node:
//! `(label, degree, nbConnection, nbArray)` (§IV-A). The index is a hybrid
//! two-level disk structure (§IV-C, Fig. 2):
//!
//! 1. a B+-tree on `(label, degree, nbConnection)` answering the equality
//!    and range conditions IV.1, IV.2 and IV.4, whose leaf entries point to
//! 2. second-level postings: the list of database node ids sharing that key
//!    plus a bitmap index over their neighbor arrays, probed with the
//!    bit-sliced Algorithm 1 for condition IV.3.
//!
//! Because one indexing unit exists per database node, the index grows
//! linearly with the database (§IV-A), while the neighborhood information
//! gives it the pruning power plain node indexing lacks.
//!
//! Modules:
//! * [`scheme`] — neighbor arrays: deterministic bit array for small `Σv`,
//!   Bloom-filter hashing for large `Σv` (§IV-A).
//! * [`posting`] — the second-level blob layout (node refs + column-major
//!   bitmap).
//! * [`bitprobe`] — Algorithm 1 (bit-sliced counting probe, scalar + AVX2
//!   kernels behind runtime dispatch) and the naive scan it is benchmarked
//!   against in §IV-D.
//! * [`filter`] — [`LabelPairFilter`]: per-key neighboring-label summaries
//!   that skip postings before blob prefetch (the l2Match-style pre-probe
//!   level).
//! * [`quality`] — the node-match quality `w` of Eq. IV.5.
//! * [`index`] — [`NhIndex`]: build, persist, reopen and probe.
//! * [`reader`] — [`IndexReader`]: the probe seam the engine runs against.
//! * [`delta`] — [`DeltaOverlay`]: in-memory postings for unfolded inserts.
//! * [`mvcc`] — [`GenerationalNhIndex`]: immutable on-disk generations with
//!   snapshot (pin) reads, delta/tombstone mutations and background folds.
//! * [`stats`] — [`IndexStatistics`]: per-index planner statistics,
//!   collected exactly at build/fold time and persisted atomically.

pub mod bitprobe;
pub mod delta;
pub mod filter;
pub mod index;
pub mod mvcc;
pub mod posting;
pub mod quality;
pub mod reader;
pub mod scheme;
pub mod stats;

pub use bitprobe::{ColumnBitmap, ProbeKernel};
pub use delta::DeltaOverlay;
pub use filter::{LabelPairFilter, FILTER_FILE, FILTER_SCHEMA_VERSION};
pub use index::{
    IntegrityReport, NhIndex, NhIndexConfig, NodeCandidate, ProbeCounters, ProbeStats,
    QuerySignature, RecoveryReport, DEFAULT_IO_WORKERS, DEFAULT_PREFETCH_PAGES,
};
pub use mvcc::{FoldReport, GenerationInfo, GenerationalNhIndex, MvccRecovery, Snapshot};
pub use posting::{NodeRef, Posting};
pub use quality::node_match_quality;
pub use reader::IndexReader;
pub use scheme::NeighborArrayScheme;
pub use stats::{
    IndexStatistics, LabelStats, SketchSummary, StatsBuilder, STATS_FILE, STATS_SCHEMA_VERSION,
};

/// Errors from index construction and probing.
#[derive(Debug)]
pub enum NhError {
    /// Underlying storage failure.
    Storage(tale_storage::StorageError),
    /// Graph-layer failure.
    Graph(tale_graph::GraphError),
    /// Index metadata missing or malformed.
    Meta(String),
    /// I/O failure outside the page files (metadata file).
    Io(std::io::Error),
}

impl std::fmt::Display for NhError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NhError::Storage(e) => write!(f, "storage: {e}"),
            NhError::Graph(e) => write!(f, "graph: {e}"),
            NhError::Meta(m) => write!(f, "index metadata: {m}"),
            NhError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for NhError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NhError::Storage(e) => Some(e),
            NhError::Graph(e) => Some(e),
            NhError::Io(e) => Some(e),
            NhError::Meta(_) => None,
        }
    }
}

impl From<tale_storage::StorageError> for NhError {
    fn from(e: tale_storage::StorageError) -> Self {
        NhError::Storage(e)
    }
}

impl From<tale_graph::GraphError> for NhError {
    fn from(e: tale_graph::GraphError) -> Self {
        NhError::Graph(e)
    }
}

impl From<std::io::Error> for NhError {
    fn from(e: std::io::Error) -> Self {
        NhError::Io(e)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, NhError>;
