//! Per-index statistics: collected at build/fold time, persisted next to
//! the generation's page files, consumed by the cost-based planner.
//!
//! The statistics answer two planner questions without touching the
//! B+-tree or the postings:
//!
//! 1. **Feasibility** — can a probe signature `(label, degree)` under `ρ`
//!    possibly return a candidate from this index? The probe's range scan
//!    (conditions IV.1/IV.2) only visits keys with `key.label == label`
//!    and `key.degree ≥ degree − ⌊ρ·degree⌋`, so "no indexed unit of that
//!    label reaches `deg_min`" is an *exact* emptiness proof — the scan
//!    would visit no posting at all.
//! 2. **Selectivity** — roughly how many posting rows would the scan
//!    visit? A per-label log₂ degree histogram gives an overestimate used
//!    to order probes (most selective first) and to size readahead.
//!
//! ## Conservatism invariant
//!
//! Statistics may only **overestimate** what the index can answer, never
//! underestimate:
//!
//! * A full build or fold collects them exactly.
//! * [`NhIndex::insert_graph`](crate::NhIndex::insert_graph) merges the
//!   inserted units in (counts grow, `max_degree` ratchets up) and bumps
//!   [`IndexStatistics::stale_inserts`]; the percentile sketches go stale
//!   but remain lower bounds on nothing the planner relies on.
//! * `remove_graph` leaves statistics untouched — tombstoned rows still
//!   occupy the index, so feasibility stays an upper bound.
//! * The stats file is written inside `flush` *before* the meta rename
//!   (the commit point). A crash between the two leaves statistics that
//!   overestimate the rolled-back index — safe in the same direction.
//!
//! An index persisted before this file existed simply has no statistics
//! ([`NhIndex::statistics`](crate::NhIndex::statistics) returns `None`)
//! and the planner falls back to the fixed pipeline for it.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// File name of the persisted statistics, next to `nh.meta.json`.
pub const STATS_FILE: &str = "nh.stats.json";

/// Bump when the statistics layout changes incompatibly; readers ignore
/// files with an unexpected version (treated as "no statistics").
pub const STATS_SCHEMA_VERSION: u32 = 1;

/// Log₂ bucket of a value: 0 → 0, and bucket `i ≥ 1` covers
/// `[2^(i-1), 2^i − 1]`.
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper edge of bucket `i`.
fn bucket_hi(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Per-effective-label statistics over one index's units.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LabelStats {
    /// The effective label (group label under §IV-E).
    pub label: u32,
    /// Indexed units (database nodes) carrying this label.
    pub nodes: u64,
    /// Distinct composite keys under this label.
    pub keys: u64,
    /// Largest unit degree seen for this label — the feasibility bound.
    pub max_degree: u32,
    /// Log₂ degree histogram: `degree_buckets[i]` counts units whose
    /// degree falls in bucket `i` (see `bucket_hi`).
    pub degree_buckets: Vec<u64>,
}

/// Five-number-style summary of a value distribution (nearest-rank
/// percentiles). Exact as of the last full build/fold; inserts since then
/// are counted by [`IndexStatistics::stale_inserts`] instead of being
/// folded in.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct SketchSummary {
    /// Values summarized.
    pub count: u64,
    /// Smallest value.
    pub min: u64,
    /// Largest value.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest rank).
    pub p50: u64,
    /// 90th percentile (nearest rank).
    pub p90: u64,
    /// 99th percentile (nearest rank).
    pub p99: u64,
}

impl SketchSummary {
    /// Summary of a weighted value multiset (`(value, weight)` pairs).
    pub fn from_weighted(mut pairs: Vec<(u64, u64)>) -> SketchSummary {
        pairs.retain(|&(_, w)| w > 0);
        if pairs.is_empty() {
            return SketchSummary::default();
        }
        pairs.sort_unstable();
        let total: u64 = pairs.iter().map(|&(_, w)| w).sum();
        let sum: u128 = pairs.iter().map(|&(v, w)| v as u128 * w as u128).sum();
        let pct = |q: f64| -> u64 {
            // nearest-rank (ceil convention) over the expanded multiset
            let rank = ((total as f64) * q).ceil().max(1.0) as u64;
            let mut cum = 0u64;
            for &(v, w) in &pairs {
                cum += w;
                if cum >= rank {
                    return v;
                }
            }
            pairs.last().map(|&(v, _)| v).unwrap_or(0)
        };
        SketchSummary {
            count: total,
            min: pairs.first().map(|&(v, _)| v).unwrap_or(0),
            max: pairs.last().map(|&(v, _)| v).unwrap_or(0),
            mean: sum as f64 / total as f64,
            p50: pct(0.5),
            p90: pct(0.9),
            p99: pct(0.99),
        }
    }
}

/// The persisted per-index statistics (`nh.stats.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IndexStatistics {
    /// [`STATS_SCHEMA_VERSION`] at write time.
    pub schema_version: u32,
    /// Graphs covered by this index when the statistics were collected
    /// (plus merged inserts).
    pub graph_count: u64,
    /// Indexed units.
    pub node_count: u64,
    /// Distinct composite keys.
    pub key_count: u64,
    /// Largest unit degree across all labels.
    pub max_degree: u32,
    /// Smallest `node_count + edge_count` over covered graphs — a lower
    /// bound on any *remaining* graph's size (removals can only raise the
    /// true minimum). `None` for an empty index.
    pub min_graph_size: Option<u64>,
    /// Inserts merged in since the last exact (build/fold) collection.
    /// Nonzero means the percentile sketches are stale; the label
    /// histogram and counts are still maintained conservatively.
    pub stale_inserts: u64,
    /// Per-label statistics, sorted by label.
    pub labels: Vec<LabelStats>,
    /// Posting-list sizes (rows per composite key).
    pub posting_rows: SketchSummary,
    /// Unit degrees.
    pub degrees: SketchSummary,
}

impl IndexStatistics {
    /// The stats for one effective label, if any unit carries it.
    pub fn label(&self, label: u32) -> Option<&LabelStats> {
        self.labels
            .binary_search_by_key(&label, |l| l.label)
            .ok()
            .map(|i| &self.labels[i])
    }

    /// Exact-conservative feasibility of a probe range scan: `true` iff
    /// some indexed unit has this label with degree ≥ `deg_min`
    /// (conditions IV.1/IV.2 lower bound). `false` **proves** the probe
    /// returns no candidate from this index.
    pub fn matchable(&self, label: u32, deg_min: u32) -> bool {
        self.label(label)
            .map(|l| l.max_degree >= deg_min)
            .unwrap_or(false)
    }

    /// Overestimate of posting rows a probe's range scan would visit:
    /// the histogram mass of every degree bucket whose range reaches
    /// `deg_min`. Used for ordering and readahead sizing only — never
    /// for pruning.
    pub fn estimate_rows(&self, label: u32, deg_min: u32) -> u64 {
        let Some(l) = self.label(label) else { return 0 };
        l.degree_buckets
            .iter()
            .enumerate()
            .filter(|&(i, _)| bucket_hi(i) >= deg_min as u64)
            .map(|(_, &c)| c)
            .sum()
    }

    /// Overestimate of postings (distinct keys) a probe would fetch:
    /// the label's key count scaled by the feasible row fraction,
    /// rounded up. A readahead hint, not a bound.
    pub fn estimate_postings(&self, label: u32, deg_min: u32) -> u64 {
        let Some(l) = self.label(label) else { return 0 };
        if l.nodes == 0 {
            return 0;
        }
        let rows = self.estimate_rows(label, deg_min);
        (l.keys * rows).div_ceil(l.nodes)
    }

    /// Units carrying `label` — the per-graph cap the score bound uses
    /// (any single graph holds at most this many nodes of the label).
    pub fn label_nodes(&self, label: u32) -> u64 {
        self.label(label).map(|l| l.nodes).unwrap_or(0)
    }

    /// Merges one inserted composite-key group (conservative: counts and
    /// maxima only grow).
    pub fn merge_inserted_key(&mut self, label: u32, degree: u32, rows: u64, new_key: bool) {
        self.node_count += rows;
        self.max_degree = self.max_degree.max(degree);
        if new_key {
            self.key_count += 1;
        }
        let idx = match self.labels.binary_search_by_key(&label, |l| l.label) {
            Ok(i) => i,
            Err(i) => {
                self.labels.insert(
                    i,
                    LabelStats {
                        label,
                        nodes: 0,
                        keys: 0,
                        max_degree: 0,
                        degree_buckets: Vec::new(),
                    },
                );
                i
            }
        };
        let l = &mut self.labels[idx];
        l.nodes += rows;
        if new_key {
            l.keys += 1;
        }
        l.max_degree = l.max_degree.max(degree);
        let b = bucket_of(degree as u64);
        if l.degree_buckets.len() <= b {
            l.degree_buckets.resize(b + 1, 0);
        }
        l.degree_buckets[b] += rows;
    }

    /// Records one inserted graph: size lower bound, graph count, and the
    /// staleness marker for the percentile sketches.
    pub fn note_inserted_graph(&mut self, graph_size: u64) {
        self.graph_count += 1;
        self.min_graph_size = Some(match self.min_graph_size {
            Some(m) => m.min(graph_size),
            None => graph_size,
        });
        self.stale_inserts += 1;
    }
}

#[derive(Default)]
struct LabelAgg {
    nodes: u64,
    keys: u64,
    max_degree: u32,
    degree_buckets: Vec<u64>,
}

/// Accumulates exact statistics during a bulk build (or fold — a fold is
/// a bulk build of the surviving graphs).
#[derive(Default)]
pub struct StatsBuilder {
    labels: BTreeMap<u32, LabelAgg>,
    posting_rows: Vec<u64>,
    degrees: Vec<(u64, u64)>,
    min_graph_size: Option<u64>,
    graph_count: u64,
    node_count: u64,
}

impl StatsBuilder {
    /// A fresh, empty builder.
    pub fn new() -> StatsBuilder {
        StatsBuilder::default()
    }

    /// Records one covered graph's size (`nodes + edges`).
    pub fn record_graph(&mut self, nodes: u64, edges: u64) {
        self.graph_count += 1;
        let size = nodes + edges;
        self.min_graph_size = Some(match self.min_graph_size {
            Some(m) => m.min(size),
            None => size,
        });
    }

    /// Records one distinct composite key holding `rows` units.
    pub fn record_key(&mut self, label: u32, degree: u32, rows: u64) {
        self.node_count += rows;
        self.posting_rows.push(rows);
        self.degrees.push((degree as u64, rows));
        let agg = self.labels.entry(label).or_default();
        agg.nodes += rows;
        agg.keys += 1;
        agg.max_degree = agg.max_degree.max(degree);
        let b = bucket_of(degree as u64);
        if agg.degree_buckets.len() <= b {
            agg.degree_buckets.resize(b + 1, 0);
        }
        agg.degree_buckets[b] += rows;
    }

    /// Finalizes into the persistable statistics.
    pub fn finish(self) -> IndexStatistics {
        let labels: Vec<LabelStats> = self
            .labels
            .into_iter()
            .map(|(label, a)| LabelStats {
                label,
                nodes: a.nodes,
                keys: a.keys,
                max_degree: a.max_degree,
                degree_buckets: a.degree_buckets,
            })
            .collect();
        IndexStatistics {
            schema_version: STATS_SCHEMA_VERSION,
            graph_count: self.graph_count,
            node_count: self.node_count,
            key_count: self.posting_rows.len() as u64,
            max_degree: labels.iter().map(|l| l.max_degree).max().unwrap_or(0),
            min_graph_size: self.min_graph_size,
            stale_inserts: 0,
            labels,
            posting_rows: SketchSummary::from_weighted(
                self.posting_rows.iter().map(|&r| (r, 1)).collect(),
            ),
            degrees: SketchSummary::from_weighted(self.degrees),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> IndexStatistics {
        let mut b = StatsBuilder::new();
        b.record_graph(4, 4);
        b.record_graph(3, 3);
        b.record_key(0, 3, 2); // label 0, degree 3, two units
        b.record_key(0, 1, 1);
        b.record_key(1, 2, 3);
        b.finish()
    }

    #[test]
    fn builder_counts() {
        let s = sample();
        assert_eq!(s.graph_count, 2);
        assert_eq!(s.node_count, 6);
        assert_eq!(s.key_count, 3);
        assert_eq!(s.max_degree, 3);
        assert_eq!(s.min_graph_size, Some(6));
        assert_eq!(s.labels.len(), 2);
        assert_eq!(s.label_nodes(0), 3);
        assert_eq!(s.label_nodes(1), 3);
        assert_eq!(s.label_nodes(9), 0);
    }

    #[test]
    fn feasibility_is_exact_on_max_degree() {
        let s = sample();
        assert!(s.matchable(0, 3));
        assert!(!s.matchable(0, 4));
        assert!(s.matchable(1, 0));
        assert!(!s.matchable(7, 0));
    }

    #[test]
    fn estimates_overestimate_and_order() {
        let s = sample();
        // deg_min 0 counts everything under the label
        assert_eq!(s.estimate_rows(0, 0), 3);
        // deg_min 3 excludes at least the degree-1 bucket
        let est3 = s.estimate_rows(0, 3);
        assert!((2..=3).contains(&est3));
        assert_eq!(s.estimate_rows(7, 0), 0);
        assert!(s.estimate_postings(0, 0) >= 1);
    }

    #[test]
    fn sketch_percentiles() {
        let s = SketchSummary::from_weighted(vec![(1, 9), (100, 1)]);
        assert_eq!(s.count, 10);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert_eq!(s.p50, 1);
        assert_eq!(s.p99, 100);
        assert!((s.mean - 10.9).abs() < 1e-9);
        assert_eq!(SketchSummary::from_weighted(vec![]).count, 0);
    }

    #[test]
    fn insert_merge_is_conservative() {
        let mut s = sample();
        let rows_before = s.estimate_rows(0, 0);
        s.merge_inserted_key(0, 5, 2, true);
        s.merge_inserted_key(7, 1, 1, true);
        s.note_inserted_graph(2);
        assert!(s.matchable(0, 5));
        assert!(s.matchable(7, 1));
        assert!(s.estimate_rows(0, 0) >= rows_before + 2);
        assert_eq!(s.stale_inserts, 1);
        assert_eq!(s.min_graph_size, Some(2));
        assert_eq!(s.max_degree, 5);
        // labels stay sorted for binary search
        assert!(s.labels.windows(2).all(|w| w[0].label < w[1].label));
    }

    #[test]
    fn roundtrips_through_json() {
        let s = sample();
        let json = serde_json::to_string(&s).unwrap();
        let back: IndexStatistics = serde_json::from_str(&json).unwrap();
        assert_eq!(back.node_count, s.node_count);
        assert_eq!(back.labels.len(), s.labels.len());
        assert_eq!(back.posting_rows.p50, s.posting_rows.p50);
    }
}
