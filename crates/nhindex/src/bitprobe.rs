//! Algorithm 1: the bit-sliced bitmap probe (§IV-D).
//!
//! Given a query neighbor array and a bitmap of `n` database neighbor
//! arrays, find every database row whose miss count
//! `Σ_j Miss(db[j], q[j])` is at most `nbmiss` (condition IV.3).
//!
//! **Step 1** counts misses for all rows simultaneously: for each query bit
//! position `j` that is set, the negated bit-column `NOT B_j` is added into
//! `countSize+1` bit-sliced counters (`Count[0..countSize]` hold the binary
//! digits of every row's counter; `Count[countSize]` is a sticky overflow
//! bit). This is the textbook bit-sliced arithmetic the paper spells out in
//! lines 1–17.
//!
//! **Step 2** compares every counter against `nbmiss` by scanning the bits
//! of `nbmiss` from most to least significant, maintaining `Result_lt` /
//! `Result_eq` vectors (lines 18–30).
//!
//! The paper's complexity: `O(Sbit × log(ρ·d))` bitwise vector operations.
//! [`probe_naive`] is the baseline §IV-D simulates against (a per-row,
//! per-bit scan), reported there as 2×–12× slower; `cargo bench -p
//! tale-bench --bench bitprobe` regenerates that comparison.

/// A column-major bit matrix: `sbit` columns over `n` rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnBitmap {
    n: usize,
    sbit: u32,
    /// words per column
    wpc: usize,
    /// column `j` occupies `words[j*wpc .. (j+1)*wpc]`
    words: Vec<u64>,
}

impl ColumnBitmap {
    /// An all-zero bitmap for `n` rows × `sbit` columns.
    pub fn new(n: usize, sbit: u32) -> Self {
        let wpc = n.div_ceil(64);
        ColumnBitmap {
            n,
            sbit,
            wpc,
            words: vec![0; sbit as usize * wpc],
        }
    }

    /// Rebuilds from raw words (column-major, `sbit × ceil(n/64)`).
    ///
    /// # Panics
    ///
    /// Panics when `words.len() != sbit * ceil(n/64)`. The check is
    /// unconditional: a wrong-length word vector would otherwise slice out
    /// of bounds (or silently mis-read columns) only later, deep inside
    /// [`probe_bitsliced`], in release builds where a `debug_assert!`
    /// compiles away.
    pub fn from_words(n: usize, sbit: u32, words: Vec<u64>) -> Self {
        let wpc = n.div_ceil(64);
        assert_eq!(
            words.len(),
            sbit as usize * wpc,
            "ColumnBitmap::from_words: {} words for {} columns × {} words/column",
            words.len(),
            sbit,
            wpc,
        );
        ColumnBitmap {
            n,
            sbit,
            wpc,
            words,
        }
    }

    /// Number of rows (database nodes).
    #[inline]
    pub fn rows(&self) -> usize {
        self.n
    }

    /// Array width in bits.
    #[inline]
    pub fn sbit(&self) -> u32 {
        self.sbit
    }

    /// Raw column-major words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Column `j` as a word slice.
    #[inline]
    pub fn column(&self, j: u32) -> &[u64] {
        let j = j as usize;
        &self.words[j * self.wpc..(j + 1) * self.wpc]
    }

    /// Sets bit `(row, col)`.
    pub fn set(&mut self, row: usize, col: u32) {
        let w = col as usize * self.wpc + row / 64;
        self.words[w] |= 1u64 << (row % 64);
    }

    /// Reads bit `(row, col)`.
    pub fn get(&self, row: usize, col: u32) -> bool {
        let w = col as usize * self.wpc + row / 64;
        self.words[w] >> (row % 64) & 1 == 1
    }

    /// Extracts row `r` as a neighbor array (`ceil(sbit/64)` words).
    pub fn row(&self, r: usize) -> Vec<u64> {
        let mut out = vec![0u64; (self.sbit as usize).div_ceil(64)];
        for j in 0..self.sbit {
            if self.get(r, j) {
                out[(j / 64) as usize] |= 1u64 << (j % 64);
            }
        }
        out
    }
}

/// Result of a probe: the qualifying rows and their exact miss counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeHits {
    /// Row indices with `misses ≤ nbmiss`, ascending.
    pub rows: Vec<u32>,
    /// `misses[i]` is the miss count of `rows[i]`.
    pub misses: Vec<u32>,
}

/// Algorithm 1. Returns the rows of `bitmap` whose neighbor arrays miss at
/// most `nbmiss` of the set bits in `query` (given as `ceil(sbit/64)`
/// words), along with each row's exact miss count (needed by the quality
/// function, Eq. IV.5).
pub fn probe_bitsliced(bitmap: &ColumnBitmap, query: &[u64], nbmiss: u32) -> ProbeHits {
    let n = bitmap.rows();
    if n == 0 {
        return ProbeHits {
            rows: Vec::new(),
            misses: Vec::new(),
        };
    }
    let wpc = bitmap.wpc;
    // countSize = ⌊log2(nbmiss)⌋ + 1 (line 3); nbmiss = 0 still needs one
    // digit to detect any miss.
    let count_size = if nbmiss == 0 {
        1
    } else {
        (32 - nbmiss.leading_zeros()) as usize
    };
    // Count[0..=count_size]: bit-sliced counters (line 4–6).
    let mut count: Vec<Vec<u64>> = vec![vec![0u64; wpc]; count_size + 1];
    let mut carries = vec![0u64; wpc];
    let mut temp = vec![0u64; wpc];

    // Step 1 (lines 7–17): for each set query bit, add NOT B_j.
    let sbit = bitmap.sbit();
    for j in 0..sbit {
        if query[(j / 64) as usize] >> (j % 64) & 1 == 0 {
            continue;
        }
        let col = bitmap.column(j);
        for w in 0..wpc {
            carries[w] = !col[w];
        }
        for slice in count.iter_mut().take(count_size) {
            for w in 0..wpc {
                temp[w] = slice[w] & carries[w];
                slice[w] ^= carries[w];
                carries[w] = temp[w];
            }
        }
        for w in 0..wpc {
            count[count_size][w] |= carries[w];
        }
    }

    // Step 2 (lines 18–30): keep rows with counter ≤ nbmiss.
    let mut result_lt = vec![0u64; wpc];
    let mut result_eq = vec![u64::MAX; wpc];
    for k in (0..=count_size).rev() {
        if nbmiss >> k & 1 == 1 {
            for w in 0..wpc {
                result_lt[w] |= result_eq[w] & !count[k][w];
                result_eq[w] &= count[k][w];
            }
        } else {
            for w in 0..wpc {
                result_eq[w] &= !count[k][w];
            }
        }
    }

    let mut rows = Vec::new();
    let mut misses = Vec::new();
    for w in 0..wpc {
        let mut word = result_lt[w] | result_eq[w];
        // mask rows beyond n in the last word
        if w == wpc - 1 && n % 64 != 0 {
            word &= (1u64 << (n % 64)) - 1;
        }
        while word != 0 {
            let bit = word.trailing_zeros() as usize;
            let row = w * 64 + bit;
            word &= word - 1;
            // reconstruct the exact miss count from the counter slices
            let mut m = 0u32;
            for (k, slice) in count.iter().enumerate() {
                if slice[w] >> bit & 1 == 1 {
                    m |= 1 << k;
                }
            }
            rows.push(row as u32);
            misses.push(m);
        }
    }
    ProbeHits { rows, misses }
}

/// The naive probe §IV-D compares against: visit every row, walk the query
/// bits one by one, count misses, keep the row if within threshold. Per-bit
/// (not word-parallel) on purpose — it models scanning each stored neighbor
/// array and evaluating condition IV.3 directly.
pub fn probe_naive(bitmap: &ColumnBitmap, query: &[u64], nbmiss: u32) -> ProbeHits {
    let mut rows = Vec::new();
    let mut misses = Vec::new();
    let sbit = bitmap.sbit();
    'rows: for r in 0..bitmap.rows() {
        let mut m = 0u32;
        for j in 0..sbit {
            let qbit = query[(j / 64) as usize] >> (j % 64) & 1 == 1;
            if qbit && !bitmap.get(r, j) {
                m += 1;
                if m > nbmiss {
                    continue 'rows;
                }
            }
        }
        rows.push(r as u32);
        misses.push(m);
    }
    ProbeHits { rows, misses }
}

/// Word-parallel row scan: an intermediate design point (popcount per row)
/// used as an extra ablation in the benches. Requires row-major access, so
/// it pays the row-extraction cost when data is stored column-major.
pub fn probe_rowscan(rows_major: &[Vec<u64>], query: &[u64], nbmiss: u32) -> ProbeHits {
    let mut rows = Vec::new();
    let mut misses = Vec::new();
    for (r, row) in rows_major.iter().enumerate() {
        let m: u32 = query
            .iter()
            .zip(row.iter())
            .map(|(q, d)| (q & !d).count_ones())
            .sum();
        if m <= nbmiss {
            rows.push(r as u32);
            misses.push(m);
        }
    }
    ProbeHits { rows, misses }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn bitmap_from_rows(rows: &[Vec<u64>], sbit: u32) -> ColumnBitmap {
        let mut bm = ColumnBitmap::new(rows.len(), sbit);
        for (i, row) in rows.iter().enumerate() {
            for j in 0..sbit {
                if row[(j / 64) as usize] >> (j % 64) & 1 == 1 {
                    bm.set(i, j);
                }
            }
        }
        bm
    }

    #[test]
    fn paper_figure3_example() {
        // Fig. 3: query array 11011 (bits 0,1,3,4 set), nbmiss = 1,
        // 4 db rows; expected result 1001 → rows {0, 3}.
        let sbit = 5;
        let rows = vec![
            vec![0b11010u64], // n0: misses bit 0 → 1 miss
            vec![0b01110u64], // n1: misses bits 0? bit0=0 miss, bit4=0 miss → 2
            vec![0b00011u64], // n2: bits 3,4 missing → wait recompute below
            vec![0b11111u64], // n3: 0 misses
        ];
        // Recompute by hand: query bits {0,1,3,4}.
        // n0 = 11010: has bits {1,3,4}; missing {0} → 1 ✓
        // n1 = 01110: has {1,2,3}; missing {0,4} → 2 ✗
        // n2 = 00011: has {0,1}; missing {3,4} → 2 ✗
        // n3 = 11111: all → 0 ✓
        let bm = bitmap_from_rows(&rows, sbit);
        let q = vec![0b11011u64];
        let hits = probe_bitsliced(&bm, &q, 1);
        assert_eq!(hits.rows, vec![0, 3]);
        assert_eq!(hits.misses, vec![1, 0]);
    }

    #[test]
    fn zero_nbmiss_requires_superset() {
        let rows = vec![vec![0b111u64], vec![0b101u64]];
        let bm = bitmap_from_rows(&rows, 3);
        let q = vec![0b101u64];
        let hits = probe_bitsliced(&bm, &q, 0);
        assert_eq!(hits.rows, vec![0, 1]);
        let q2 = vec![0b111u64];
        let hits2 = probe_bitsliced(&bm, &q2, 0);
        assert_eq!(hits2.rows, vec![0]);
    }

    #[test]
    fn empty_bitmap() {
        let bm = ColumnBitmap::new(0, 32);
        let hits = probe_bitsliced(&bm, &[u64::MAX], 5);
        assert!(hits.rows.is_empty());
    }

    #[test]
    fn empty_query_matches_everything() {
        let rows = vec![vec![0u64]; 10];
        let bm = bitmap_from_rows(&rows, 32);
        let hits = probe_bitsliced(&bm, &[0u64], 0);
        assert_eq!(hits.rows.len(), 10);
        assert!(hits.misses.iter().all(|&m| m == 0));
    }

    #[test]
    fn rows_beyond_word_boundary() {
        // 100 rows: only every 7th row has the query bit set.
        let sbit = 8;
        let rows: Vec<Vec<u64>> = (0..100)
            .map(|i| vec![if i % 7 == 0 { 0b1u64 } else { 0 }])
            .collect();
        let bm = bitmap_from_rows(&rows, sbit);
        let hits = probe_bitsliced(&bm, &[0b1u64], 0);
        let expect: Vec<u32> = (0..100).filter(|i| i % 7 == 0).collect();
        assert_eq!(hits.rows, expect);
    }

    #[test]
    fn agrees_with_naive_random() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        for trial in 0..50 {
            let n = rng.gen_range(1..300);
            let sbit = *[16u32, 32, 96, 128].get(trial % 4).unwrap();
            let words = (sbit as usize).div_ceil(64);
            let mask: u64 = if sbit % 64 == 0 {
                u64::MAX
            } else {
                (1u64 << (sbit % 64)) - 1
            };
            let gen_row = |rng: &mut ChaCha8Rng| -> Vec<u64> {
                (0..words)
                    .map(|w| {
                        let v: u64 = rng.gen();
                        if w == words - 1 {
                            v & mask
                        } else {
                            v
                        }
                    })
                    .collect()
            };
            let rows: Vec<Vec<u64>> = (0..n).map(|_| gen_row(&mut rng)).collect();
            let bm = bitmap_from_rows(&rows, sbit);
            let q = gen_row(&mut rng);
            let nbmiss = rng.gen_range(0..10);
            let a = probe_bitsliced(&bm, &q, nbmiss);
            let b = probe_naive(&bm, &q, nbmiss);
            assert_eq!(
                a.rows, b.rows,
                "trial {trial} n={n} sbit={sbit} nbmiss={nbmiss}"
            );
            assert_eq!(a.misses, b.misses, "trial {trial}");
            let c = probe_rowscan(&rows, &q, nbmiss);
            assert_eq!(a.rows, c.rows);
            assert_eq!(a.misses, c.misses);
        }
    }

    #[test]
    fn overflow_rows_excluded() {
        // Query with 40 set bits, db rows all zero → 40 misses, far past
        // any small nbmiss; the sticky overflow bit must exclude them.
        let rows = vec![vec![0u64]; 70];
        let bm = bitmap_from_rows(&rows, 40);
        let q = vec![(1u64 << 40) - 1];
        for nbmiss in [0u32, 1, 3, 7] {
            let hits = probe_bitsliced(&bm, &q, nbmiss);
            assert!(hits.rows.is_empty(), "nbmiss={nbmiss}");
        }
        let hits = probe_bitsliced(&bm, &q, 40);
        assert_eq!(hits.rows.len(), 70);
        assert!(hits.misses.iter().all(|&m| m == 40));
    }

    #[test]
    fn row_extraction_roundtrip() {
        let rows = vec![vec![0xDEADBEEFu64, 0x1234], vec![0x0, 0xFFFF]];
        let bm = bitmap_from_rows(&rows, 96);
        assert_eq!(bm.row(0), vec![0xDEADBEEF, 0x1234]);
        assert_eq!(bm.row(1), vec![0x0, 0xFFFF]);
    }

    #[test]
    fn from_words_roundtrip() {
        // 70 rows → 2 words per column; 3 columns.
        let mut bm = ColumnBitmap::new(70, 3);
        bm.set(0, 0);
        bm.set(69, 2);
        let rebuilt = ColumnBitmap::from_words(70, 3, bm.words().to_vec());
        assert_eq!(rebuilt, bm);
        assert!(rebuilt.get(0, 0) && rebuilt.get(69, 2));
    }

    #[test]
    #[should_panic(expected = "ColumnBitmap::from_words")]
    fn from_words_rejects_wrong_length() {
        // Regression: this was a debug_assert!, so release builds accepted
        // a short word vector and failed later (out-of-bounds column
        // slicing) or not at all. The length check must be unconditional.
        ColumnBitmap::from_words(70, 3, vec![0u64; 5]); // needs 6
    }
}
