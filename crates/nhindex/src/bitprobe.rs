//! Algorithm 1: the bit-sliced bitmap probe (§IV-D).
//!
//! Given a query neighbor array and a bitmap of `n` database neighbor
//! arrays, find every database row whose miss count
//! `Σ_j Miss(db[j], q[j])` is at most `nbmiss` (condition IV.3).
//!
//! **Step 1** counts misses for all rows simultaneously: for each query bit
//! position `j` that is set, the negated bit-column `NOT B_j` is added into
//! `countSize+1` bit-sliced counters (`Count[0..countSize]` hold the binary
//! digits of every row's counter; `Count[countSize]` is a sticky overflow
//! bit). This is the textbook bit-sliced arithmetic the paper spells out in
//! lines 1–17.
//!
//! **Step 2** compares every counter against `nbmiss` by scanning the bits
//! of `nbmiss` from most to least significant, maintaining `Result_lt` /
//! `Result_eq` vectors (lines 18–30).
//!
//! The paper's complexity: `O(Sbit × log(ρ·d))` bitwise vector operations.
//! [`probe_naive`] is the baseline §IV-D simulates against (a per-row,
//! per-bit scan), reported there as 2×–12× slower; `cargo bench -p
//! tale-bench --bench bitprobe` and `experiments probe` regenerate that
//! comparison.
//!
//! ## Kernels and dispatch
//!
//! Both steps are pure bitwise vector arithmetic over `ceil(n/64)`-word
//! columns, so they vectorize mechanically. Two kernels implement the
//! identical algorithm:
//!
//! * [`ProbeKernel::Scalar`] — portable word-at-a-time Rust (the original
//!   implementation, and the reference the SIMD kernel is property-tested
//!   against).
//! * [`ProbeKernel::Avx2`] — explicit `std::arch` AVX2 intrinsics
//!   (x86_64 only): 256-bit lanes carry four counter words at once through
//!   Step 1's ripple-carry and Step 2's threshold compare, with the carry
//!   kept in a register across the whole slice ripple. All `unsafe` is
//!   confined to this module's `avx2` submodule.
//!
//! [`probe_bitsliced`] picks a kernel once per process: AVX2 when the CPU
//! reports it (`is_x86_feature_detected!`), scalar otherwise. Setting the
//! environment variable `TALE_PROBE_KERNEL=scalar` forces the scalar
//! kernel (the CI fallback leg uses this so both dispatch arms stay
//! green); any other value keeps auto-detection.
//!
//! ## Width contract
//!
//! Every probe takes the query as `ceil(sbit/64)` words with no bits set
//! at or above `sbit`. The contract is asserted **unconditionally** (not
//! `debug_assert!`): a wider query word would silently drop the extra
//! words (under-counting misses — the base/delta sbit-skew hazard after
//! vocabulary growth), and stray high bits would probe columns that do
//! not exist. Release builds must fail loudly, for the same reason
//! [`ColumnBitmap::from_words`] checks unconditionally. Callers that can
//! see width skew (the index probe boundary) validate first and surface a
//! typed error instead of this panic.

/// A column-major bit matrix: `sbit` columns over `n` rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnBitmap {
    n: usize,
    sbit: u32,
    /// words per column
    wpc: usize,
    /// column `j` occupies `words[j*wpc .. (j+1)*wpc]`
    words: Vec<u64>,
}

impl ColumnBitmap {
    /// An all-zero bitmap for `n` rows × `sbit` columns.
    pub fn new(n: usize, sbit: u32) -> Self {
        let wpc = n.div_ceil(64);
        ColumnBitmap {
            n,
            sbit,
            wpc,
            words: vec![0; sbit as usize * wpc],
        }
    }

    /// Rebuilds from raw words (column-major, `sbit × ceil(n/64)`).
    ///
    /// # Panics
    ///
    /// Panics when `words.len() != sbit * ceil(n/64)`. The check is
    /// unconditional: a wrong-length word vector would otherwise slice out
    /// of bounds (or silently mis-read columns) only later, deep inside
    /// [`probe_bitsliced`], in release builds where a `debug_assert!`
    /// compiles away.
    pub fn from_words(n: usize, sbit: u32, words: Vec<u64>) -> Self {
        let wpc = n.div_ceil(64);
        assert_eq!(
            words.len(),
            sbit as usize * wpc,
            "ColumnBitmap::from_words: {} words for {} columns × {} words/column",
            words.len(),
            sbit,
            wpc,
        );
        ColumnBitmap {
            n,
            sbit,
            wpc,
            words,
        }
    }

    /// Number of rows (database nodes).
    #[inline]
    pub fn rows(&self) -> usize {
        self.n
    }

    /// Array width in bits.
    #[inline]
    pub fn sbit(&self) -> u32 {
        self.sbit
    }

    /// Raw column-major words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Column `j` as a word slice.
    #[inline]
    pub fn column(&self, j: u32) -> &[u64] {
        let j = j as usize;
        &self.words[j * self.wpc..(j + 1) * self.wpc]
    }

    /// Sets bit `(row, col)`.
    pub fn set(&mut self, row: usize, col: u32) {
        let w = col as usize * self.wpc + row / 64;
        self.words[w] |= 1u64 << (row % 64);
    }

    /// Reads bit `(row, col)`.
    pub fn get(&self, row: usize, col: u32) -> bool {
        let w = col as usize * self.wpc + row / 64;
        self.words[w] >> (row % 64) & 1 == 1
    }

    /// Extracts row `r` as a neighbor array (`ceil(sbit/64)` words).
    pub fn row(&self, r: usize) -> Vec<u64> {
        let mut out = vec![0u64; (self.sbit as usize).div_ceil(64)];
        for j in 0..self.sbit {
            if self.get(r, j) {
                out[(j / 64) as usize] |= 1u64 << (j % 64);
            }
        }
        out
    }

    /// Folds every column's occupancy into one 64-bit summary: bit
    /// `j % 64` is set iff column `j` has any set row. Because the layout
    /// maps array bit `j` to bit `j % 64` of word `j / 64`, this is just
    /// the OR of all row words — the label-pair pre-filter
    /// ([`crate::filter`]) builds its per-key summaries from this.
    pub fn fold_columns(&self) -> u64 {
        let mut folded = 0u64;
        for j in 0..self.sbit {
            if self.column(j).iter().any(|&w| w != 0) {
                folded |= 1u64 << (j % 64);
            }
        }
        folded
    }
}

/// Result of a probe: the qualifying rows and their exact miss counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeHits {
    /// Row indices with `misses ≤ nbmiss`, ascending.
    pub rows: Vec<u32>,
    /// `misses[i]` is the miss count of `rows[i]`.
    pub misses: Vec<u32>,
}

impl ProbeHits {
    fn empty() -> Self {
        ProbeHits {
            rows: Vec::new(),
            misses: Vec::new(),
        }
    }
}

/// One of the interchangeable Algorithm-1 kernel implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeKernel {
    /// Portable word-parallel Rust.
    Scalar,
    /// Explicit AVX2 intrinsics (x86_64 with runtime feature detection).
    Avx2,
}

impl ProbeKernel {
    /// Kernel name as reported in benchmark output.
    pub fn name(self) -> &'static str {
        match self {
            ProbeKernel::Scalar => "scalar",
            ProbeKernel::Avx2 => "avx2",
        }
    }
}

/// The kernels runnable on this machine (scalar always; AVX2 when the CPU
/// reports it). Property tests probe every available kernel so both
/// dispatch arms stay covered wherever they can execute.
pub fn available_kernels() -> Vec<ProbeKernel> {
    let mut out = vec![ProbeKernel::Scalar];
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        out.push(ProbeKernel::Avx2);
    }
    out
}

/// The kernel [`probe_bitsliced`] dispatches to: AVX2 when available
/// unless `TALE_PROBE_KERNEL=scalar` forces the fallback. Resolved once
/// per process.
pub fn active_kernel() -> ProbeKernel {
    static ACTIVE: std::sync::OnceLock<ProbeKernel> = std::sync::OnceLock::new();
    *ACTIVE.get_or_init(|| {
        let forced_scalar = std::env::var("TALE_PROBE_KERNEL")
            .map(|v| v.eq_ignore_ascii_case("scalar"))
            .unwrap_or(false);
        if !forced_scalar && available_kernels().contains(&ProbeKernel::Avx2) {
            ProbeKernel::Avx2
        } else {
            ProbeKernel::Scalar
        }
    })
}

/// `countSize` (line 3): `⌊log2(nbmiss)⌋ + 1` counter digits; `nbmiss = 0`
/// still needs one digit to detect any miss.
fn count_size_for(nbmiss: u32) -> usize {
    if nbmiss == 0 {
        1
    } else {
        (32 - nbmiss.leading_zeros()) as usize
    }
}

/// The unconditional probe width contract (see the module docs): `query`
/// must span exactly `ceil(sbit/64)` words with no bits at or above
/// `sbit`.
fn assert_query_width(who: &str, sbit: u32, query: &[u64]) {
    let words = (sbit as usize).div_ceil(64);
    assert_eq!(
        query.len(),
        words,
        "{who}: query has {} words but sbit {sbit} needs {words} — \
         signature built under a different array width?",
        query.len(),
    );
    if sbit % 64 != 0 {
        let stray = query[words - 1] & !((1u64 << (sbit % 64)) - 1);
        assert_eq!(
            stray, 0,
            "{who}: query sets bits at or above sbit {sbit} (stray mask {stray:#x}) — \
             those columns do not exist and their misses would be dropped",
        );
    }
}

/// Walks `Result_lt | Result_eq`, masking rows past `n`, and reconstructs
/// each qualifying row's exact miss count from the counter slices
/// (`count_word(k, w)` reads digit-slice `k`, word `w`). Shared by both
/// kernels so extraction is bit-identical by construction.
fn collect_hits(
    n: usize,
    wpc: usize,
    result_lt: &[u64],
    result_eq: &[u64],
    slices: usize,
    count_word: impl Fn(usize, usize) -> u64,
) -> ProbeHits {
    let mut rows = Vec::new();
    let mut misses = Vec::new();
    for w in 0..wpc {
        let mut word = result_lt[w] | result_eq[w];
        // mask rows beyond n in the last word
        if w == wpc - 1 && n % 64 != 0 {
            word &= (1u64 << (n % 64)) - 1;
        }
        while word != 0 {
            let bit = word.trailing_zeros() as usize;
            let row = w * 64 + bit;
            word &= word - 1;
            let mut m = 0u32;
            for k in 0..slices {
                if count_word(k, w) >> bit & 1 == 1 {
                    m |= 1 << k;
                }
            }
            rows.push(row as u32);
            misses.push(m);
        }
    }
    ProbeHits { rows, misses }
}

/// Algorithm 1. Returns the rows of `bitmap` whose neighbor arrays miss at
/// most `nbmiss` of the set bits in `query` (given as `ceil(sbit/64)`
/// words), along with each row's exact miss count (needed by the quality
/// function, Eq. IV.5). Dispatches to the [`active_kernel`].
///
/// # Panics
///
/// Panics when `query` violates the width contract (see the module docs).
pub fn probe_bitsliced(bitmap: &ColumnBitmap, query: &[u64], nbmiss: u32) -> ProbeHits {
    assert_query_width("probe_bitsliced", bitmap.sbit(), query);
    if bitmap.rows() == 0 {
        return ProbeHits::empty();
    }
    match active_kernel() {
        ProbeKernel::Scalar => scalar_probe(bitmap, query, nbmiss),
        #[cfg(target_arch = "x86_64")]
        ProbeKernel::Avx2 => avx2::probe(bitmap, query, nbmiss),
        #[cfg(not(target_arch = "x86_64"))]
        ProbeKernel::Avx2 => unreachable!("AVX2 kernel selected off x86_64"),
    }
}

/// [`probe_bitsliced`] through an explicit kernel (benchmarks and the
/// dual-arm property tests; normal callers use the dispatcher).
///
/// # Panics
///
/// Panics on a width-contract violation, or when `kernel` is not in
/// [`available_kernels`] on this machine.
pub fn probe_bitsliced_with(
    kernel: ProbeKernel,
    bitmap: &ColumnBitmap,
    query: &[u64],
    nbmiss: u32,
) -> ProbeHits {
    assert_query_width("probe_bitsliced_with", bitmap.sbit(), query);
    if bitmap.rows() == 0 {
        return ProbeHits::empty();
    }
    match kernel {
        ProbeKernel::Scalar => scalar_probe(bitmap, query, nbmiss),
        ProbeKernel::Avx2 => {
            assert!(
                available_kernels().contains(&ProbeKernel::Avx2),
                "AVX2 kernel requested but not available on this CPU"
            );
            #[cfg(target_arch = "x86_64")]
            {
                avx2::probe(bitmap, query, nbmiss)
            }
            #[cfg(not(target_arch = "x86_64"))]
            unreachable!("AVX2 kernel is never available off x86_64")
        }
    }
}

/// The portable scalar kernel (the original word-parallel implementation).
/// Public so benchmarks can pin it regardless of dispatch.
pub fn probe_bitsliced_scalar(bitmap: &ColumnBitmap, query: &[u64], nbmiss: u32) -> ProbeHits {
    assert_query_width("probe_bitsliced_scalar", bitmap.sbit(), query);
    if bitmap.rows() == 0 {
        return ProbeHits::empty();
    }
    scalar_probe(bitmap, query, nbmiss)
}

/// Scalar Algorithm 1 body (width checked, `n > 0`).
fn scalar_probe(bitmap: &ColumnBitmap, query: &[u64], nbmiss: u32) -> ProbeHits {
    let n = bitmap.rows();
    let wpc = bitmap.wpc;
    let count_size = count_size_for(nbmiss);
    // Count[0..=count_size]: bit-sliced counters (line 4–6).
    let mut count: Vec<Vec<u64>> = vec![vec![0u64; wpc]; count_size + 1];
    let mut carries = vec![0u64; wpc];
    let mut temp = vec![0u64; wpc];

    // Step 1 (lines 7–17): for each set query bit, add NOT B_j.
    let sbit = bitmap.sbit();
    for j in 0..sbit {
        if query[(j / 64) as usize] >> (j % 64) & 1 == 0 {
            continue;
        }
        let col = bitmap.column(j);
        for w in 0..wpc {
            carries[w] = !col[w];
        }
        for slice in count.iter_mut().take(count_size) {
            for w in 0..wpc {
                temp[w] = slice[w] & carries[w];
                slice[w] ^= carries[w];
                carries[w] = temp[w];
            }
        }
        for w in 0..wpc {
            count[count_size][w] |= carries[w];
        }
    }

    // Step 2 (lines 18–30): keep rows with counter ≤ nbmiss.
    let mut result_lt = vec![0u64; wpc];
    let mut result_eq = vec![u64::MAX; wpc];
    for k in (0..=count_size).rev() {
        if (nbmiss as u64) >> k & 1 == 1 {
            for w in 0..wpc {
                result_lt[w] |= result_eq[w] & !count[k][w];
                result_eq[w] &= count[k][w];
            }
        } else {
            for w in 0..wpc {
                result_eq[w] &= !count[k][w];
            }
        }
    }

    collect_hits(n, wpc, &result_lt, &result_eq, count_size + 1, |k, w| {
        count[k][w]
    })
}

/// The AVX2 kernel: identical algorithm, 256-bit lanes. All `unsafe`
/// lives here; the sole entry point is safe and assumes dispatch already
/// verified CPU support.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{collect_hits, count_size_for, ColumnBitmap, ProbeHits};
    use std::arch::x86_64::*;

    /// AVX2 lanes per iteration (4 × u64 = 256 bits).
    const LANES: usize = 4;

    /// Runs Algorithm 1 with AVX2 intrinsics. The caller (kernel
    /// dispatch) must have verified `is_x86_feature_detected!("avx2")`.
    pub(super) fn probe(bitmap: &ColumnBitmap, query: &[u64], nbmiss: u32) -> ProbeHits {
        // SAFETY: every dispatch path guards this call behind a runtime
        // AVX2 feature check (`available_kernels`/`active_kernel`).
        unsafe { probe_impl(bitmap, query, nbmiss) }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn probe_impl(bitmap: &ColumnBitmap, query: &[u64], nbmiss: u32) -> ProbeHits {
        let n = bitmap.rows();
        let wpc = bitmap.wpc;
        let count_size = count_size_for(nbmiss);
        // Flat slice-major counter buffer: digit-slice `k` occupies
        // `count[k*wpc .. (k+1)*wpc]` (contiguous for the lane loads).
        let mut count = vec![0u64; (count_size + 1) * wpc];

        // Step 1: add NOT B_j for each set query bit. The ripple keeps
        // the carry in a register across all count_size slices.
        let sbit = bitmap.sbit();
        for j in 0..sbit {
            if query[(j / 64) as usize] >> (j % 64) & 1 == 0 {
                continue;
            }
            ripple_add_not(bitmap.column(j), &mut count, count_size, wpc);
        }

        // Step 2: threshold compare against nbmiss.
        let mut result_lt = vec![0u64; wpc];
        let mut result_eq = vec![u64::MAX; wpc];
        for k in (0..=count_size).rev() {
            let slice = &count[k * wpc..(k + 1) * wpc];
            compare_digit(
                slice,
                (nbmiss as u64) >> k & 1 == 1,
                &mut result_lt,
                &mut result_eq,
            );
        }

        collect_hits(n, wpc, &result_lt, &result_eq, count_size + 1, |k, w| {
            count[k * wpc + w]
        })
    }

    /// `Count += NOT col` in bit-sliced form, sticky overflow in the last
    /// slice. Lane part first, scalar tail for `wpc % 4` words.
    #[target_feature(enable = "avx2")]
    unsafe fn ripple_add_not(col: &[u64], count: &mut [u64], count_size: usize, wpc: usize) {
        let ones = _mm256_set1_epi64x(-1);
        let mut w = 0usize;
        while w + LANES <= wpc {
            let c = _mm256_loadu_si256(col.as_ptr().add(w) as *const __m256i);
            let mut carry = _mm256_xor_si256(c, ones); // NOT col
            for k in 0..count_size {
                let p = count.as_mut_ptr().add(k * wpc + w) as *mut __m256i;
                let digit = _mm256_loadu_si256(p as *const __m256i);
                let next = _mm256_and_si256(digit, carry);
                _mm256_storeu_si256(p, _mm256_xor_si256(digit, carry));
                carry = next;
            }
            let p = count.as_mut_ptr().add(count_size * wpc + w) as *mut __m256i;
            let overflow = _mm256_loadu_si256(p as *const __m256i);
            _mm256_storeu_si256(p, _mm256_or_si256(overflow, carry));
            w += LANES;
        }
        while w < wpc {
            let mut carry = !col[w];
            for k in 0..count_size {
                let digit = count[k * wpc + w];
                count[k * wpc + w] = digit ^ carry;
                carry &= digit;
            }
            count[count_size * wpc + w] |= carry;
            w += 1;
        }
    }

    /// One Step-2 digit: when the nbmiss bit is set,
    /// `lt |= eq & !digit; eq &= digit`; otherwise `eq &= !digit`.
    #[target_feature(enable = "avx2")]
    unsafe fn compare_digit(digit: &[u64], bit_set: bool, lt: &mut [u64], eq: &mut [u64]) {
        let wpc = digit.len();
        let mut w = 0usize;
        while w + LANES <= wpc {
            let d = _mm256_loadu_si256(digit.as_ptr().add(w) as *const __m256i);
            let pe = eq.as_mut_ptr().add(w) as *mut __m256i;
            let e = _mm256_loadu_si256(pe as *const __m256i);
            if bit_set {
                let pl = lt.as_mut_ptr().add(w) as *mut __m256i;
                let l = _mm256_loadu_si256(pl as *const __m256i);
                // eq & !digit == andnot(digit, eq)
                _mm256_storeu_si256(pl, _mm256_or_si256(l, _mm256_andnot_si256(d, e)));
                _mm256_storeu_si256(pe, _mm256_and_si256(e, d));
            } else {
                _mm256_storeu_si256(pe, _mm256_andnot_si256(d, e));
            }
            w += LANES;
        }
        while w < wpc {
            if bit_set {
                lt[w] |= eq[w] & !digit[w];
                eq[w] &= digit[w];
            } else {
                eq[w] &= !digit[w];
            }
            w += 1;
        }
    }
}

/// The naive probe §IV-D compares against: visit every row, walk the query
/// bits one by one, count misses, keep the row if within threshold. Per-bit
/// (not word-parallel) on purpose — it models scanning each stored neighbor
/// array and evaluating condition IV.3 directly.
///
/// # Panics
///
/// Panics when `query` violates the width contract (see the module docs).
pub fn probe_naive(bitmap: &ColumnBitmap, query: &[u64], nbmiss: u32) -> ProbeHits {
    assert_query_width("probe_naive", bitmap.sbit(), query);
    let mut rows = Vec::new();
    let mut misses = Vec::new();
    let sbit = bitmap.sbit();
    'rows: for r in 0..bitmap.rows() {
        let mut m = 0u32;
        for j in 0..sbit {
            let qbit = query[(j / 64) as usize] >> (j % 64) & 1 == 1;
            if qbit && !bitmap.get(r, j) {
                m += 1;
                if m > nbmiss {
                    continue 'rows;
                }
            }
        }
        rows.push(r as u32);
        misses.push(m);
    }
    ProbeHits { rows, misses }
}

/// Word-parallel row scan: an intermediate design point (popcount per row)
/// used as an extra ablation in the benches. Requires row-major access, so
/// it pays the row-extraction cost when data is stored column-major.
///
/// # Panics
///
/// Panics when any row's word length differs from the query's. The check
/// is unconditional for the same reason as [`ColumnBitmap::from_words`]:
/// `zip` would silently truncate the longer side and under-count misses —
/// exactly the release-mode failure class the width contract exists to
/// catch.
pub fn probe_rowscan(rows_major: &[Vec<u64>], query: &[u64], nbmiss: u32) -> ProbeHits {
    let mut rows = Vec::new();
    let mut misses = Vec::new();
    for (r, row) in rows_major.iter().enumerate() {
        assert_eq!(
            row.len(),
            query.len(),
            "probe_rowscan: row {r} has {} words but the query has {} — \
             zipping would silently truncate and under-count misses",
            row.len(),
            query.len(),
        );
        let m: u32 = query
            .iter()
            .zip(row.iter())
            .map(|(q, d)| (q & !d).count_ones())
            .sum();
        if m <= nbmiss {
            rows.push(r as u32);
            misses.push(m);
        }
    }
    ProbeHits { rows, misses }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn bitmap_from_rows(rows: &[Vec<u64>], sbit: u32) -> ColumnBitmap {
        let mut bm = ColumnBitmap::new(rows.len(), sbit);
        for (i, row) in rows.iter().enumerate() {
            for j in 0..sbit {
                if row[(j / 64) as usize] >> (j % 64) & 1 == 1 {
                    bm.set(i, j);
                }
            }
        }
        bm
    }

    #[test]
    fn paper_figure3_example() {
        // Fig. 3: query array 11011 (bits 0,1,3,4 set), nbmiss = 1,
        // 4 db rows; expected result 1001 → rows {0, 3}.
        let sbit = 5;
        let rows = vec![
            vec![0b11010u64], // n0: misses bit 0 → 1 miss
            vec![0b01110u64], // n1: misses bits 0? bit0=0 miss, bit4=0 miss → 2
            vec![0b00011u64], // n2: bits 3,4 missing → wait recompute below
            vec![0b11111u64], // n3: 0 misses
        ];
        // Recompute by hand: query bits {0,1,3,4}.
        // n0 = 11010: has bits {1,3,4}; missing {0} → 1 ✓
        // n1 = 01110: has {1,2,3}; missing {0,4} → 2 ✗
        // n2 = 00011: has {0,1}; missing {3,4} → 2 ✗
        // n3 = 11111: all → 0 ✓
        let bm = bitmap_from_rows(&rows, sbit);
        let q = vec![0b11011u64];
        for kernel in available_kernels() {
            let hits = probe_bitsliced_with(kernel, &bm, &q, 1);
            assert_eq!(hits.rows, vec![0, 3], "{kernel:?}");
            assert_eq!(hits.misses, vec![1, 0], "{kernel:?}");
        }
    }

    #[test]
    fn zero_nbmiss_requires_superset() {
        let rows = vec![vec![0b111u64], vec![0b101u64]];
        let bm = bitmap_from_rows(&rows, 3);
        let q = vec![0b101u64];
        let hits = probe_bitsliced(&bm, &q, 0);
        assert_eq!(hits.rows, vec![0, 1]);
        let q2 = vec![0b111u64];
        let hits2 = probe_bitsliced(&bm, &q2, 0);
        assert_eq!(hits2.rows, vec![0]);
    }

    #[test]
    fn empty_bitmap() {
        let bm = ColumnBitmap::new(0, 32);
        let hits = probe_bitsliced(&bm, &[0xFFFF_FFFF], 5);
        assert!(hits.rows.is_empty());
    }

    #[test]
    fn empty_query_matches_everything() {
        let rows = vec![vec![0u64]; 10];
        let bm = bitmap_from_rows(&rows, 32);
        let hits = probe_bitsliced(&bm, &[0u64], 0);
        assert_eq!(hits.rows.len(), 10);
        assert!(hits.misses.iter().all(|&m| m == 0));
    }

    #[test]
    fn rows_beyond_word_boundary() {
        // 100 rows: only every 7th row has the query bit set.
        let sbit = 8;
        let rows: Vec<Vec<u64>> = (0..100)
            .map(|i| vec![if i % 7 == 0 { 0b1u64 } else { 0 }])
            .collect();
        let bm = bitmap_from_rows(&rows, sbit);
        for kernel in available_kernels() {
            let hits = probe_bitsliced_with(kernel, &bm, &[0b1u64], 0);
            let expect: Vec<u32> = (0..100).filter(|i| i % 7 == 0).collect();
            assert_eq!(hits.rows, expect, "{kernel:?}");
        }
    }

    /// One random corpus drives every probe implementation and every
    /// available kernel; the naive per-row scan is the oracle.
    ///
    /// Coverage (the regression spread that caught the old gaps):
    /// * `sbit` at, below, and beyond one word — 16..256 including the
    ///   exact word boundaries 64/128/192/256;
    /// * `nbmiss` up to the full `sbit` (the old corpus stopped at 9, so
    ///   high counter digits and the overflow slice went unexercised);
    /// * all-ones and all-zeros columns (carry chains that saturate or
    ///   never fire).
    #[test]
    fn agrees_with_naive_random() {
        let kernels = available_kernels();
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let widths = [16u32, 32, 64, 96, 128, 192, 256];
        for trial in 0..140 {
            let n = rng.gen_range(1..300);
            let sbit = widths[trial % widths.len()];
            let words = (sbit as usize).div_ceil(64);
            let mask: u64 = if sbit % 64 == 0 {
                u64::MAX
            } else {
                (1u64 << (sbit % 64)) - 1
            };
            let gen_row = |rng: &mut ChaCha8Rng| -> Vec<u64> {
                (0..words)
                    .map(|w| {
                        let v: u64 = rng.gen();
                        if w == words - 1 {
                            v & mask
                        } else {
                            v
                        }
                    })
                    .collect()
            };
            let mut rows: Vec<Vec<u64>> = (0..n).map(|_| gen_row(&mut rng)).collect();
            // Degenerate columns: force column 0 all-ones and (when wide
            // enough) column sbit-1 all-zeros across every row.
            for row in &mut rows {
                row[0] |= 1;
                if sbit > 1 {
                    row[(sbit as usize - 1) / 64] &= !(1u64 << ((sbit - 1) % 64));
                }
            }
            let bm = bitmap_from_rows(&rows, sbit);
            let mut q = gen_row(&mut rng);
            // All-zeros and all-ones queries every few trials; otherwise
            // make sure the degenerate columns participate.
            match trial % 5 {
                0 => q.iter_mut().for_each(|w| *w = 0),
                1 => {
                    for (w, word) in q.iter_mut().enumerate() {
                        *word = if w == words - 1 { mask } else { u64::MAX };
                    }
                }
                _ => q[0] |= 1,
            }
            // nbmiss spans the whole budget range, not just tiny values.
            let nbmiss = rng.gen_range(0..=sbit);
            let oracle = probe_naive(&bm, &q, nbmiss);
            for &kernel in &kernels {
                let got = probe_bitsliced_with(kernel, &bm, &q, nbmiss);
                assert_eq!(
                    got.rows, oracle.rows,
                    "{kernel:?} trial {trial} n={n} sbit={sbit} nbmiss={nbmiss}"
                );
                assert_eq!(got.misses, oracle.misses, "{kernel:?} trial {trial}");
            }
            let dispatched = probe_bitsliced(&bm, &q, nbmiss);
            assert_eq!(dispatched.rows, oracle.rows, "dispatch trial {trial}");
            assert_eq!(dispatched.misses, oracle.misses, "dispatch trial {trial}");
            let c = probe_rowscan(&rows, &q, nbmiss);
            assert_eq!(c.rows, oracle.rows, "rowscan trial {trial}");
            assert_eq!(c.misses, oracle.misses, "rowscan trial {trial}");
        }
    }

    #[test]
    fn overflow_rows_excluded() {
        // Query with 40 set bits, db rows all zero → 40 misses, far past
        // any small nbmiss; the sticky overflow bit must exclude them.
        let rows = vec![vec![0u64]; 70];
        let bm = bitmap_from_rows(&rows, 40);
        let q = vec![(1u64 << 40) - 1];
        for kernel in available_kernels() {
            for nbmiss in [0u32, 1, 3, 7] {
                let hits = probe_bitsliced_with(kernel, &bm, &q, nbmiss);
                assert!(hits.rows.is_empty(), "{kernel:?} nbmiss={nbmiss}");
            }
            let hits = probe_bitsliced_with(kernel, &bm, &q, 40);
            assert_eq!(hits.rows.len(), 70, "{kernel:?}");
            assert!(hits.misses.iter().all(|&m| m == 40), "{kernel:?}");
        }
    }

    #[test]
    fn row_extraction_roundtrip() {
        let rows = vec![vec![0xDEADBEEFu64, 0x1234], vec![0x0, 0xFFFF]];
        let bm = bitmap_from_rows(&rows, 96);
        assert_eq!(bm.row(0), vec![0xDEADBEEF, 0x1234]);
        assert_eq!(bm.row(1), vec![0x0, 0xFFFF]);
    }

    #[test]
    fn from_words_roundtrip() {
        // 70 rows → 2 words per column; 3 columns.
        let mut bm = ColumnBitmap::new(70, 3);
        bm.set(0, 0);
        bm.set(69, 2);
        let rebuilt = ColumnBitmap::from_words(70, 3, bm.words().to_vec());
        assert_eq!(rebuilt, bm);
        assert!(rebuilt.get(0, 0) && rebuilt.get(69, 2));
    }

    #[test]
    #[should_panic(expected = "ColumnBitmap::from_words")]
    fn from_words_rejects_wrong_length() {
        // Regression: this was a debug_assert!, so release builds accepted
        // a short word vector and failed later (out-of-bounds column
        // slicing) or not at all. The length check must be unconditional.
        ColumnBitmap::from_words(70, 3, vec![0u64; 5]); // needs 6
    }

    #[test]
    fn fold_columns_records_nonempty_columns() {
        let mut bm = ColumnBitmap::new(3, 130);
        bm.set(0, 0); // slot 0
        bm.set(2, 65); // slot 1
        bm.set(1, 129); // slot 1 (129 % 64)
        assert_eq!(bm.fold_columns(), 0b11);
        assert_eq!(ColumnBitmap::new(5, 32).fold_columns(), 0);
    }

    // --- width-contract regressions -------------------------------------

    #[test]
    #[should_panic(expected = "probe_rowscan: row 1 has 1 words but the query has 2")]
    fn rowscan_rejects_width_mismatch() {
        // Regression: zip silently truncated the longer side, so a short
        // row (or short query) under-counted misses and admitted rows that
        // should have been rejected. Now an unconditional panic.
        let rows = vec![vec![0u64, 0u64], vec![0u64]];
        probe_rowscan(&rows, &[u64::MAX, u64::MAX], 0);
    }

    #[test]
    #[should_panic(expected = "probe_rowscan")]
    fn rowscan_rejects_short_query() {
        probe_rowscan(&[vec![0u64, 0u64]], &[u64::MAX], 0);
    }

    #[test]
    #[should_panic(expected = "query has 2 words but sbit 32 needs 1")]
    fn bitsliced_rejects_wide_query() {
        // Regression: a query built under a wider scheme (base/delta sbit
        // skew) used to have its extra words silently ignored.
        let bm = ColumnBitmap::new(4, 32);
        probe_bitsliced(&bm, &[u64::MAX, u64::MAX], 1);
    }

    #[test]
    #[should_panic(expected = "sets bits at or above sbit")]
    fn bitsliced_rejects_stray_high_bits() {
        let bm = ColumnBitmap::new(4, 40);
        // bit 63 is past sbit 40 — its miss would silently vanish
        probe_bitsliced(&bm, &[1u64 << 63], 1);
    }

    #[test]
    #[should_panic(expected = "probe_naive")]
    fn naive_rejects_short_query() {
        let bm = ColumnBitmap::new(4, 96);
        probe_naive(&bm, &[0u64], 1);
    }

    #[test]
    fn kernel_dispatch_reports_consistent_state() {
        let kernels = available_kernels();
        assert!(kernels.contains(&ProbeKernel::Scalar));
        assert!(kernels.contains(&active_kernel()));
        assert_eq!(ProbeKernel::Scalar.name(), "scalar");
        assert_eq!(ProbeKernel::Avx2.name(), "avx2");
    }
}
