//! The in-memory delta overlay: not-yet-folded inserts, probe-compatible
//! with the on-disk index.
//!
//! Under MVCC (see [`crate::mvcc`]) the on-disk generation is immutable;
//! graphs inserted since it was built live here instead. The overlay is
//! extracted with the *same* code path as the disk index
//! (`NhIndex::extract_graph` under the base generation's scheme) and
//! grouped into the same [`Posting`] structure, but the postings stay in
//! a sorted in-memory vector instead of B+-tree-addressed blobs. Probing
//! replicates the disk probe exactly — range scan over composite keys
//! (conditions IV.1/IV.2/IV.4), then Algorithm 1 on each posting's
//! bitmap (IV.3) — so the engine can treat the overlay as one more index
//! shard: because freshly inserted graph ids are disjoint from the base
//! generation's, concatenating base and delta answers is bit-identical
//! to probing one index holding both (the same disjointness argument the
//! sharded executor relies on).
//!
//! An overlay is immutable once built; each insert publishes a fresh one
//! covering `[first_gid, upto)`. Removals are *not* the overlay's
//! business — the MVCC snapshot filters removed graphs out of both base
//! and delta answers, which keeps one overlay shareable across remove
//! operations.

use crate::bitprobe::probe_bitsliced;
use crate::filter;
use crate::index::{NodeCandidate, ProbeCounters, ProbeStats, QuerySignature};
use crate::posting::Posting;
use crate::scheme::NeighborArrayScheme;
use crate::stats::{IndexStatistics, StatsBuilder};
use crate::NhError;
use crate::{NhIndex, Result};
use std::sync::Arc;
use tale_graph::{Graph, GraphDb, GraphId, NodeId};
use tale_storage::CompositeKey;

use crate::index::AtomicProbeCounters;

/// Immutable in-memory postings over the graphs inserted since the
/// current base generation was built.
pub struct DeltaOverlay {
    scheme: NeighborArrayScheme,
    edge_labels: bool,
    /// Covered graph-id range: `[first_gid, upto)`.
    first_gid: u32,
    upto: u32,
    /// `(key, posting, label-pair summary)` sorted by key — the leaf
    /// level of the disk index, without the tree above it (binary search
    /// replaces the descent). The summary is the same fold the disk
    /// index persists in its sidecar (see [`crate::filter`]), computed
    /// inline since the overlay is rebuilt from scratch on publish.
    postings: Vec<(CompositeKey, Posting, u64)>,
    node_count: u64,
    counters: AtomicProbeCounters,
    /// Planner statistics over the overlay's postings — exact, because
    /// every overlay is rebuilt from scratch on publish.
    stats: Arc<IndexStatistics>,
}

impl DeltaOverlay {
    /// Builds the overlay for graphs `[first_gid, upto)` of `db`, using
    /// the base generation's `scheme` so signatures probe both sides
    /// unchanged. `first_gid == upto` yields a valid empty overlay.
    pub fn build(
        db: &GraphDb,
        scheme: NeighborArrayScheme,
        edge_labels: bool,
        first_gid: u32,
        upto: u32,
    ) -> Result<Self> {
        let mut stats_builder = StatsBuilder::new();
        let mut units = Vec::new();
        for gid in first_gid..upto {
            let g = db.try_graph(GraphId(gid))?;
            stats_builder.record_graph(g.node_count() as u64, g.edge_count() as u64);
            NhIndex::extract_graph(db, gid, g, scheme, edge_labels, &mut units);
        }
        units.sort_unstable_by(|a, b| a.key.cmp(&b.key).then(a.node.cmp(&b.node)));

        let node_count = units.len() as u64;
        let mut postings = Vec::new();
        let mut i = 0;
        while i < units.len() {
            let key = units[i].key;
            let mut j = i;
            while j < units.len() && units[j].key == key {
                j += 1;
            }
            let group = &units[i..j];
            let refs = group.iter().map(|u| u.node).collect();
            let rows: Vec<Vec<u64>> = group.iter().map(|u| u.array.clone()).collect();
            stats_builder.record_key(key.label, key.degree, group.len() as u64);
            let summary = filter::summary_of_rows(&rows);
            postings.push((key, Posting::from_rows(refs, scheme.sbit, &rows), summary));
            i = j;
        }
        Ok(DeltaOverlay {
            scheme,
            edge_labels,
            first_gid,
            upto,
            postings,
            node_count,
            counters: AtomicProbeCounters::default(),
            stats: Arc::new(stats_builder.finish()),
        })
    }

    /// Exact planner statistics over the overlay's contents.
    pub fn statistics(&self) -> Arc<IndexStatistics> {
        Arc::clone(&self.stats)
    }

    /// First graph id the overlay covers (== the base generation's length).
    pub fn first_gid(&self) -> u32 {
        self.first_gid
    }

    /// One past the last covered graph id.
    pub fn upto(&self) -> u32 {
        self.upto
    }

    /// Graphs held by the overlay.
    pub fn graph_count(&self) -> u32 {
        self.upto - self.first_gid
    }

    /// Indexed nodes held by the overlay.
    pub fn node_count(&self) -> u64 {
        self.node_count
    }

    /// Distinct composite keys held by the overlay.
    pub fn key_count(&self) -> u64 {
        self.postings.len() as u64
    }

    /// The neighbor-array scheme (the base generation's).
    pub fn scheme(&self) -> NeighborArrayScheme {
        self.scheme
    }

    /// Builds a probe signature — identical to the base generation's
    /// [`NhIndex::signature`] because the scheme is shared.
    pub fn signature(
        &self,
        g: &Graph,
        node: NodeId,
        label_of: &dyn Fn(NodeId) -> u32,
    ) -> QuerySignature {
        let nb_array = if self.edge_labels {
            self.scheme
                .array_of_pairs(g.neighbor_edges(node).map(|(nb, eid)| {
                    (
                        label_of(nb),
                        g.edge_label(eid).map(|l| l.0 + 1).unwrap_or(0),
                    )
                }))
        } else {
            self.scheme.array_of(g.neighbors(node).map(label_of))
        };
        QuerySignature {
            label: label_of(node),
            degree: g.degree(node) as u32,
            nb_connection: g.neighbor_connection(node) as u32,
            nb_array,
        }
    }

    /// Probes the overlay for `sig` under `rho` — the in-memory mirror of
    /// [`NhIndex::probe_with_stats`], byte-for-byte the same candidate
    /// construction (conditions IV.1–IV.4, Algorithm 1, the multi-hash
    /// miss division and the degree-shortfall floor). The counters use
    /// the same taxonomy; `postings_fetched` counts postings *visited*
    /// even though no disk is involved.
    pub fn probe_with_stats(
        &self,
        sig: &QuerySignature,
        rho: f64,
    ) -> (Vec<NodeCandidate>, ProbeStats) {
        let mut stats = ProbeStats::default();
        let (nbmiss, nbcmiss) = NhIndex::miss_budgets(sig.degree, rho);
        let deg_min = sig.degree - nbmiss; // condition IV.2
        let nbc_min = sig.nb_connection.saturating_sub(nbcmiss); // IV.4
        let lo = CompositeKey::new(sig.label, deg_min, 0);

        let bit_budget = self.scheme.bit_budget(nbmiss);
        let k = if self.scheme.deterministic {
            1
        } else {
            self.scheme.hashes.max(1) as u32
        };
        let mut out = Vec::new();
        let start = self.postings.partition_point(|(key, _, _)| *key < lo);
        for (key, posting, summary) in &self.postings[start..] {
            // hi is (label, MAX, MAX): the range ends with the label.
            if key.label != sig.label {
                break;
            }
            stats.keys_scanned += 1;
            if key.nb_connection < nbc_min {
                continue;
            }
            // The label-pair pre-filter, mirroring the disk probe: a
            // posting whose guaranteed miss bound exceeds the budget
            // can't hold a qualifying row (safety argument in
            // `crate::filter`), so Algorithm 1 never runs on it.
            if filter::guaranteed_misses(&sig.nb_array, *summary) > bit_budget {
                stats.postings_filtered += 1;
                debug_assert!(
                    probe_bitsliced(&posting.bitmap, &sig.nb_array, bit_budget)
                        .rows
                        .is_empty(),
                    "label-pair filter skipped a delta posting with qualifying rows",
                );
                continue;
            }
            stats.postings_fetched += 1;
            stats.rows_examined += posting.refs.len() as u64;
            let ph = probe_bitsliced(&posting.bitmap, &sig.nb_array, bit_budget);
            for (row, &miss) in ph.rows.iter().zip(ph.misses.iter()) {
                let label_misses = miss.div_ceil(k);
                let shortfall = sig.degree.saturating_sub(key.degree);
                out.push(NodeCandidate {
                    node: posting.refs[*row as usize],
                    nb_miss: label_misses.max(shortfall),
                    db_degree: key.degree,
                    db_nb_connection: key.nb_connection,
                });
            }
        }
        stats.rows_returned = out.len() as u64;
        self.counters.record(&stats);
        (out, stats)
    }

    /// Batch probe, answer order = signature order. The overlay is small
    /// and purely in-memory, so the batch runs serially regardless of
    /// `threads` — results are element-wise identical either way.
    ///
    /// Signatures violating the scheme's width contract (base/delta sbit
    /// skew) surface as a typed error here, matching the disk index's
    /// probe boundary; the infallible
    /// [`DeltaOverlay::probe_with_stats`] would panic in the kernel
    /// instead.
    pub fn probe_batch(
        &self,
        sigs: &[QuerySignature],
        rho: f64,
    ) -> Result<Vec<(Vec<NodeCandidate>, ProbeStats)>> {
        for sig in sigs {
            self.scheme
                .check_query_width(&sig.nb_array)
                .map_err(NhError::Meta)?;
        }
        Ok(sigs.iter().map(|s| self.probe_with_stats(s, rho)).collect())
    }

    /// Lifetime probe tallies of this overlay instance.
    pub fn counters(&self) -> ProbeCounters {
        self.counters.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::NhIndexConfig;

    /// Three small labeled graphs over a shared vocabulary.
    fn sample_db() -> GraphDb {
        let mut db = GraphDb::new();
        let a = db.intern_node_label("A");
        let b = db.intern_node_label("B");
        let c = db.intern_node_label("C");
        for i in 0..3u32 {
            let mut g = Graph::new_undirected();
            let n0 = g.add_node(a);
            let n1 = g.add_node(b);
            let n2 = g.add_node(c);
            let n3 = g.add_node(if i % 2 == 0 { a } else { b });
            g.add_edge(n0, n1).unwrap();
            g.add_edge(n1, n2).unwrap();
            g.add_edge(n0, n2).unwrap();
            g.add_edge(n2, n3).unwrap();
            db.insert(format!("g{i}"), g);
        }
        db
    }

    /// The oracle: probing the overlay over graphs `[s, n)` must return
    /// exactly the full index's answer filtered to those graphs —
    /// identical candidates in identical order.
    #[test]
    fn overlay_probe_equals_full_index_filtered() {
        let db = sample_db();
        let dir = tempfile::tempdir().unwrap();
        let config = NhIndexConfig {
            sbit: 32,
            buffer_frames: 64,
            parallel_build: false,
            ..NhIndexConfig::default()
        };
        let full = NhIndex::build(dir.path(), &db, &config).unwrap();
        let overlay = DeltaOverlay::build(&db, full.scheme(), false, 1, db.len() as u32).unwrap();

        for (gid, _, g) in db.iter() {
            for n in g.nodes() {
                let label_of = |x: NodeId| db.effective_label(gid, x);
                let sig = full.signature(g, n, &label_of);
                for rho in [0.0, 0.25, 0.5] {
                    let want: Vec<NodeCandidate> = full
                        .probe(&sig, rho)
                        .unwrap()
                        .into_iter()
                        .filter(|c| c.node.graph >= 1)
                        .collect();
                    let (got, _) = overlay.probe_with_stats(&sig, rho);
                    assert_eq!(got, want, "gid={gid:?} node={n:?} rho={rho}");
                }
            }
        }
    }

    /// The overlay applies the same label-pair pre-filter as the disk
    /// probe: a query bit no delta posting covers skips the posting
    /// (counted, not fetched), with the identical (empty) answer.
    #[test]
    fn overlay_filter_skips_uncoverable_postings() {
        let db = sample_db();
        let dir = tempfile::tempdir().unwrap();
        let config = NhIndexConfig {
            sbit: 32,
            buffer_frames: 64,
            parallel_build: false,
            ..NhIndexConfig::default()
        };
        let full = NhIndex::build(dir.path(), &db, &config).unwrap();
        let overlay = DeltaOverlay::build(&db, full.scheme(), false, 0, db.len() as u32).unwrap();
        // vocab is {A,B,C} = {0,1,2}; neighbor label 3 is in no posting
        let sig = QuerySignature {
            label: 0,
            degree: 1,
            nb_connection: 0,
            nb_array: full.scheme().array_of([3u32]),
        };
        let (hits, stats) = overlay.probe_with_stats(&sig, 0.0);
        assert!(hits.is_empty());
        assert!(stats.postings_filtered > 0, "{stats:?}");
        assert_eq!(stats.postings_fetched, 0, "{stats:?}");
        assert!(overlay.counters().postings_filtered > 0);
    }

    /// The width contract at the overlay's `probe_batch` boundary —
    /// mirrors `NhIndex`: sbit skew is a typed error, not a silent
    /// under-count.
    #[test]
    fn overlay_probe_batch_rejects_width_skew() {
        let db = sample_db();
        let dir = tempfile::tempdir().unwrap();
        let config = NhIndexConfig {
            sbit: 32,
            buffer_frames: 64,
            parallel_build: false,
            ..NhIndexConfig::default()
        };
        let full = NhIndex::build(dir.path(), &db, &config).unwrap();
        let overlay = DeltaOverlay::build(&db, full.scheme(), false, 1, db.len() as u32).unwrap();
        let g = db.graph(GraphId(0));
        let label_of = |x: NodeId| db.effective_label(GraphId(0), x);
        let good = overlay.signature(g, g.nodes().next().unwrap(), &label_of);

        let mut wide = good.clone();
        wide.nb_array.push(0);
        assert!(overlay.probe_batch(&[wide], 0.5).is_err());

        let mut stray = good.clone();
        stray.nb_array[0] |= 1u64 << 40; // sbit 32: bit 40 is out of range
        assert!(overlay.probe_batch(&[stray], 0.5).is_err());

        assert!(overlay.probe_batch(&[good], 0.5).is_ok());
    }

    #[test]
    fn empty_overlay_answers_nothing() {
        let db = sample_db();
        let dir = tempfile::tempdir().unwrap();
        let config = NhIndexConfig {
            sbit: 32,
            buffer_frames: 64,
            parallel_build: false,
            ..NhIndexConfig::default()
        };
        let full = NhIndex::build(dir.path(), &db, &config).unwrap();
        let overlay = DeltaOverlay::build(&db, full.scheme(), false, 3, 3).unwrap();
        assert_eq!(overlay.graph_count(), 0);
        assert_eq!(overlay.node_count(), 0);
        let g = db.graph(GraphId(0));
        let label_of = |x: NodeId| db.effective_label(GraphId(0), x);
        let sig = full.signature(g, g.nodes().next().unwrap(), &label_of);
        let (got, stats) = overlay.probe_with_stats(&sig, 0.5);
        assert!(got.is_empty());
        assert_eq!(stats.keys_scanned, 0);
    }
}
