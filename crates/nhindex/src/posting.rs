//! Second-level posting layout (§IV-C, Fig. 2).
//!
//! Each distinct `(label, degree, nbConnection)` B+-tree key owns one
//! posting blob with two components, mirroring the paper's "relation with
//! two attributes":
//!
//! 1. the list of database node ids sharing the key, and
//! 2. a bitmap index over their neighbor arrays, stored **column-major**
//!    (one bit-column per array position `B_j`, as drawn in Fig. 2) so
//!    Algorithm 1's column operations are contiguous word scans.
//!
//! Binary layout (little-endian):
//! ```text
//! u32 n             — number of nodes
//! u32 sbit_and_flag — neighbor array width; high bit set = row-major
//! n × (u32 graph, u32 node)
//! then either
//!   sbit × ceil(n/64) × u64   — bit columns (column-major, n ≥ sbit)
//! or
//!   n × ceil(sbit/64) × u64   — neighbor arrays (row-major, n < sbit)
//! ```
//!
//! Small postings (fewer rows than bits) would waste a full word per
//! column in the bit-sliced layout — 32× overhead for a singleton key —
//! so they are stored row-major and converted on decode. This keeps the
//! on-disk index size linear in the node count (Table III / Fig. 8's
//! shape); Algorithm 1 still runs on the decoded column form.

use crate::bitprobe::ColumnBitmap;
use crate::{NhError, Result};
use serde::{Deserialize, Serialize};

/// High bit of the sbit header word marks the row-major layout.
const ROW_MAJOR_FLAG: u32 = 1 << 31;
/// Bit 30 marks WAH-compressed column-major (chosen when it is smaller).
const WAH_FLAG: u32 = 1 << 30;

/// A database node: which graph, which node within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeRef {
    /// Graph id within the database.
    pub graph: u32,
    /// Node id within the graph.
    pub node: u32,
}

/// A decoded posting: node refs plus the neighbor-array bitmap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Posting {
    /// Nodes sharing the B+-tree key, in the order of bitmap rows.
    pub refs: Vec<NodeRef>,
    /// Column-major neighbor-array bitmap; row `i` belongs to `refs[i]`.
    pub bitmap: ColumnBitmap,
}

impl Posting {
    /// Builds a posting from node refs and their (row-major) neighbor
    /// arrays. Each array must have `scheme.words()` words.
    pub fn from_rows(refs: Vec<NodeRef>, sbit: u32, rows: &[Vec<u64>]) -> Self {
        debug_assert_eq!(refs.len(), rows.len());
        let mut bitmap = ColumnBitmap::new(refs.len(), sbit);
        for (i, row) in rows.iter().enumerate() {
            for b in 0..sbit {
                if row[(b / 64) as usize] >> (b % 64) & 1 == 1 {
                    bitmap.set(i, b);
                }
            }
        }
        Posting { refs, bitmap }
    }

    /// True when a posting of `n` rows stores row-major (small postings).
    fn row_major(n: usize, sbit: u32) -> bool {
        n < sbit as usize
    }

    /// Serialized byte size for `n` nodes at width `sbit` in the *raw*
    /// layouts (the WAH layout's size is data-dependent; [`Posting::encode`]
    /// picks it only when strictly smaller than this).
    pub fn encoded_len(n: usize, sbit: u32) -> usize {
        let payload_words = if Self::row_major(n, sbit) {
            n * (sbit as usize).div_ceil(64)
        } else {
            sbit as usize * n.div_ceil(64)
        };
        8 + n * 8 + payload_words * 8
    }

    /// Encodes into the blob layout, picking the smallest of the three
    /// forms: row-major (small postings), raw column-major, or
    /// WAH-compressed column-major (sparse columns of big postings).
    pub fn encode(&self) -> Vec<u8> {
        let n = self.refs.len();
        let sbit = self.bitmap.sbit();
        let row_major = Self::row_major(n, sbit);
        if !row_major {
            // consider the compressed layout: per column a u32 word count
            // followed by the WAH words
            let wpc = n.div_ceil(64);
            let raw_payload = sbit as usize * wpc * 8;
            let cols: Vec<Vec<u64>> = (0..sbit)
                .map(|j| tale_storage::wah::compress(self.bitmap.column(j), n))
                .collect();
            let wah_payload = 4 * sbit as usize + 8 * cols.iter().map(Vec::len).sum::<usize>();
            if wah_payload < raw_payload {
                let mut out = Vec::with_capacity(8 + n * 8 + wah_payload);
                out.extend_from_slice(&(n as u32).to_le_bytes());
                out.extend_from_slice(&(sbit | WAH_FLAG).to_le_bytes());
                for r in &self.refs {
                    out.extend_from_slice(&r.graph.to_le_bytes());
                    out.extend_from_slice(&r.node.to_le_bytes());
                }
                for col in &cols {
                    out.extend_from_slice(&(col.len() as u32).to_le_bytes());
                }
                for col in &cols {
                    for w in col {
                        out.extend_from_slice(&w.to_le_bytes());
                    }
                }
                return out;
            }
        }
        let mut out = Vec::with_capacity(Self::encoded_len(n, sbit));
        out.extend_from_slice(&(n as u32).to_le_bytes());
        let flagged = if row_major {
            sbit | ROW_MAJOR_FLAG
        } else {
            sbit
        };
        out.extend_from_slice(&flagged.to_le_bytes());
        for r in &self.refs {
            out.extend_from_slice(&r.graph.to_le_bytes());
            out.extend_from_slice(&r.node.to_le_bytes());
        }
        if row_major {
            for r in 0..n {
                for w in self.bitmap.row(r) {
                    out.extend_from_slice(&w.to_le_bytes());
                }
            }
        } else {
            for w in self.bitmap.words() {
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
        out
    }

    /// Decodes a blob produced by [`Posting::encode`].
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let fail = |m: &str| NhError::Meta(format!("posting decode: {m}"));
        if bytes.len() < 8 {
            return Err(fail("short header"));
        }
        let n = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        let flagged = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        let row_major = flagged & ROW_MAJOR_FLAG != 0;
        let wah = flagged & WAH_FLAG != 0;
        let sbit = flagged & !(ROW_MAJOR_FLAG | WAH_FLAG);
        if row_major && wah {
            return Err(fail("conflicting layout flags"));
        }
        if !wah && row_major != Self::row_major(n, sbit) {
            return Err(fail("layout flag inconsistent with size"));
        }
        if !wah {
            let expect = Self::encoded_len(n, sbit);
            if bytes.len() != expect {
                return Err(fail("length mismatch"));
            }
        } else if bytes.len() < 8 + n * 8 + 4 * sbit as usize {
            return Err(fail("short WAH header"));
        }
        let mut refs = Vec::with_capacity(n);
        let mut off = 8;
        for _ in 0..n {
            let graph = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
            let node = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap());
            refs.push(NodeRef { graph, node });
            off += 8;
        }
        if wah {
            let wpc = n.div_ceil(64);
            let mut lens = Vec::with_capacity(sbit as usize);
            for _ in 0..sbit {
                lens.push(u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize);
                off += 4;
            }
            let total: usize = lens.iter().sum();
            if bytes.len() != off + total * 8 {
                return Err(fail("WAH length mismatch"));
            }
            let mut words = Vec::with_capacity(sbit as usize * wpc);
            for &len in &lens {
                let mut col_wah = Vec::with_capacity(len);
                for _ in 0..len {
                    col_wah.push(u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap()));
                    off += 8;
                }
                words.extend(tale_storage::wah::decompress(&col_wah, n));
            }
            return Ok(Posting {
                refs,
                bitmap: ColumnBitmap::from_words(n, sbit, words),
            });
        }
        let read_word = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
        let bitmap = if row_major {
            let words_per_row = (sbit as usize).div_ceil(64);
            let mut bm = ColumnBitmap::new(n, sbit);
            for r in 0..n {
                for w in 0..words_per_row {
                    let word = read_word(off + (r * words_per_row + w) * 8);
                    let mut rem = word;
                    while rem != 0 {
                        let bit = rem.trailing_zeros() as usize;
                        rem &= rem - 1;
                        let col = (w * 64 + bit) as u32;
                        if col < sbit {
                            bm.set(r, col);
                        }
                    }
                }
            }
            bm
        } else {
            let wpc = n.div_ceil(64);
            let mut words = Vec::with_capacity(sbit as usize * wpc);
            for i in 0..sbit as usize * wpc {
                words.push(read_word(off + i * 8));
            }
            ColumnBitmap::from_words(n, sbit, words)
        };
        Ok(Posting { refs, bitmap })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Posting {
        let refs = vec![
            NodeRef { graph: 0, node: 3 },
            NodeRef { graph: 1, node: 7 },
            NodeRef { graph: 2, node: 0 },
        ];
        let rows = vec![vec![0b0101u64], vec![0b1100u64], vec![0b0000u64]];
        Posting::from_rows(refs, 32, &rows)
    }

    #[test]
    fn from_rows_sets_columns() {
        let p = sample();
        assert!(p.bitmap.get(0, 0));
        assert!(!p.bitmap.get(0, 1));
        assert!(p.bitmap.get(0, 2));
        assert!(p.bitmap.get(1, 2));
        assert!(p.bitmap.get(1, 3));
        assert!(!p.bitmap.get(2, 0));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let p = sample();
        let bytes = p.encode();
        assert_eq!(bytes.len(), Posting::encoded_len(3, 32));
        let back = Posting::decode(&bytes).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn roundtrip_large_posting() {
        let n = 200;
        let refs: Vec<NodeRef> = (0..n)
            .map(|i| NodeRef {
                graph: i as u32 / 10,
                node: i as u32,
            })
            .collect();
        let rows: Vec<Vec<u64>> = (0..n).map(|i| vec![i as u64, (i * 31) as u64]).collect();
        let p = Posting::from_rows(refs, 96, &rows);
        let back = Posting::decode(&p.encode()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Posting::decode(&[1, 2, 3]).is_err());
        let mut bytes = sample().encode();
        bytes.pop();
        assert!(Posting::decode(&bytes).is_err());
    }

    #[test]
    fn wah_layout_kicks_in_for_sparse_large_postings() {
        // 512 rows, 32 columns, very sparse → WAH wins and roundtrips
        let n = 512;
        let refs: Vec<NodeRef> = (0..n)
            .map(|i| NodeRef {
                graph: 0,
                node: i as u32,
            })
            .collect();
        let rows: Vec<Vec<u64>> = (0..n)
            .map(|i| vec![if i % 97 == 0 { 0b1u64 } else { 0 }])
            .collect();
        let p = Posting::from_rows(refs, 32, &rows);
        let bytes = p.encode();
        assert!(
            bytes.len() < Posting::encoded_len(n, 32),
            "sparse posting should compress: {} vs raw {}",
            bytes.len(),
            Posting::encoded_len(n, 32)
        );
        let back = Posting::decode(&bytes).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn dense_large_posting_stays_raw_and_roundtrips() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let n = 256;
        let refs: Vec<NodeRef> = (0..n)
            .map(|i| NodeRef {
                graph: 1,
                node: i as u32,
            })
            .collect();
        let rows: Vec<Vec<u64>> = (0..n)
            .map(|_| vec![rng.gen::<u64>() & 0xFFFF_FFFF])
            .collect();
        let p = Posting::from_rows(refs, 32, &rows);
        let back = Posting::decode(&p.encode()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn empty_posting_roundtrip() {
        let p = Posting::from_rows(Vec::new(), 32, &[]);
        let back = Posting::decode(&p.encode()).unwrap();
        assert_eq!(back.refs.len(), 0);
    }
}
