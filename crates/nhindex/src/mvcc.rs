//! Immutable index generations with MVCC reads.
//!
//! A [`GenerationalNhIndex`] never mutates an on-disk index in place.
//! Instead:
//!
//! * The on-disk index is an immutable **generation** (`gens/g{N}/`, a
//!   complete [`NhIndex`] directory) that writers never touch after it is
//!   built.
//! * Inserts accumulate in an in-memory [`DeltaOverlay`]; removals
//!   accumulate in a tombstone set consulted when filtering probe
//!   answers. Both are recorded in the `mvcc.json` manifest (the delta's
//!   *contents* are re-derived from the graph database on open — graphs
//!   `[base_len, len)` are by construction the not-yet-folded ones).
//! * [`fold`](GenerationalNhIndex::fold) builds delta + base − removed
//!   into generation `N+1` on disk and commits it with one atomic
//!   manifest flip. The old generation's directory is deleted when the
//!   last reader pin drops ([`Generation`]'s `Drop`).
//!
//! ## Readers never block on writers
//!
//! All shared state lives in one immutable `MvccState` behind an
//! `RwLock<Arc<_>>` that is only ever held for the duration of a pointer
//! clone/swap. A reader entering a query takes a [`Snapshot`] (one Arc
//! clone) and runs to completion against it: the base generation it pins
//! cannot change (it is immutable and its directory outlives the pin),
//! the delta overlay it pins is itself immutable (each insert publishes a
//! *new* overlay), and the removed set is snapshotted the same way. A
//! writer prepares everything off to the side and publishes by swapping
//! the Arc — the paper-motivated serving property (queries keep flowing
//! while the corpus mutates) with bit-identical answers as the oracle:
//! a pinned snapshot answers exactly as the database stood at pin time.
//!
//! ## Crash safety
//!
//! The manifest is written with [`tale_storage::atomic::write_atomic`] —
//! the same gated commit point the crash-torture harness drives. A
//! mutation's only durable step *is* the manifest write (`graphs.json`
//! durability is the caller's job, sequenced by its mutation journal), so
//! a crash mid-fold leaves either the old manifest (generation `N`, delta
//! re-derived on open) or the new one (generation `N+1`, empty delta) —
//! never a hybrid. Orphaned generation directories from unfinished folds
//! are swept on open.
//!
//! ## Cache epochs
//!
//! Each snapshot carries two opaque **cache epochs** (allocated from one
//! monotonic counter): `base_epoch` keys cached answers derived from the
//! base generation and `delta_epoch` keys those derived from the delta.
//! An insert allocates a fresh delta epoch but *keeps* the base epoch —
//! base-derived cache entries survive, which is exactly the
//! "insert no longer clears the result cache" contract. A fold allocates
//! fresh epochs for both (the new base absorbs the delta). A removal
//! keeps *both*: removal can only delete answers, never add them, so the
//! readers expose the tombstone set through
//! [`IndexReader::is_visible`] and the engine filters cached entries at
//! read time instead — entries stay warm across removals and are still
//! exactly correct. Because epochs come from the snapshot a query
//! pinned, a slow reader that finishes after a concurrent insert or fold
//! stores its (now stale) answer under the *old* epoch, where no future
//! reader will look; a slow reader racing a removal may store an
//! unfiltered list, which the next reader's `is_visible` filter prunes —
//! the put-races an invalidate-then-recompute scheme would lose are
//! structurally gone.

use crate::delta::DeltaOverlay;
use crate::index::{NhIndexConfig, ProbeCounters, RecoveryReport};
use crate::reader::IndexReader;
use crate::{NhError, NhIndex, Result};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use tale_graph::{GraphDb, GraphId};

const MVCC_FILE: &str = "mvcc.json";
const GENS_DIR: &str = "gens";
const SCHEMA_VERSION: u32 = 1;

/// The durable MVCC manifest. Writing this file (atomically) is the one
/// and only commit point of every generational mutation.
#[derive(Debug, Serialize, Deserialize)]
struct MvccManifest {
    schema_version: u32,
    /// Number of the current on-disk generation (`gens/g{current}`).
    current: u64,
    /// Logical mutation counter: bumped by every committed insert/remove,
    /// unchanged by a fold (a fold changes representation, not contents).
    /// The mutation journal records it as the pre-mutation generation.
    logical: u64,
    /// Graphs `[0, base_len)` are covered by the on-disk generation;
    /// graphs `[base_len, db.len())` are the delta (re-derived on open).
    base_len: u32,
    /// Tombstoned graph ids, filtered out of every probe answer until the
    /// next fold drops their postings entirely.
    removed: Vec<u32>,
}

/// One immutable on-disk generation. Holds the open [`NhIndex`] plus the
/// bookkeeping to delete the directory once the generation is both
/// retired (a newer generation committed) and unpinned (dropped by the
/// last snapshot holding it).
pub struct Generation {
    index: NhIndex,
    number: u64,
    dir: PathBuf,
    retired: AtomicBool,
}

impl Generation {
    /// The generation's sequence number (`g{number}`).
    pub fn number(&self) -> u64 {
        self.number
    }

    /// The open index of this generation.
    pub fn index(&self) -> &NhIndex {
        &self.index
    }
}

impl Drop for Generation {
    fn drop(&mut self) {
        // GC: a retired generation's files are garbage the moment the
        // last pin drops. Removal is best-effort — a leftover directory
        // is swept on the next open.
        if self.retired.load(Ordering::Acquire) {
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }
}

/// The immutable shared state one snapshot pins: base generation, delta
/// overlay, tombstones, and the cache epochs derived from them.
struct MvccState {
    base: Arc<Generation>,
    delta: Arc<DeltaOverlay>,
    removed: Arc<HashSet<u32>>,
    logical: u64,
    base_len: u32,
    base_epoch: u64,
    delta_epoch: u64,
}

/// A reader's pin on one `MvccState`. Cheap to clone (Arc). Queries
/// hold one for their whole run; the pinned generation and overlay are
/// immutable, so answers are bit-identical to the database as it stood
/// at pin time regardless of concurrent writers.
#[derive(Clone)]
pub struct Snapshot {
    state: Arc<MvccState>,
}

impl Snapshot {
    /// The pinned on-disk generation's index.
    pub fn base(&self) -> &NhIndex {
        &self.state.base.index
    }

    /// The pinned delta overlay.
    pub fn delta(&self) -> &DeltaOverlay {
        &self.state.delta
    }

    /// The pinned base generation number.
    pub fn base_generation(&self) -> u64 {
        self.state.base.number
    }

    /// The pinned logical mutation counter.
    pub fn logical(&self) -> u64 {
        self.state.logical
    }

    /// True when `graph` is tombstoned in this snapshot.
    pub fn is_removed(&self, graph: GraphId) -> bool {
        self.state.removed.contains(&graph.0)
    }

    /// Tombstoned graph count in this snapshot.
    pub fn removed_count(&self) -> usize {
        self.state.removed.len()
    }

    /// Graphs pending in the delta (inserted since the base was built).
    pub fn delta_graphs(&self) -> u32 {
        self.state.delta.graph_count()
    }

    /// Indexed nodes across base and delta (tombstoned rows included —
    /// they still occupy the index until the next fold).
    pub fn node_count(&self) -> u64 {
        self.state.base.index.node_count() + self.state.delta.node_count()
    }

    /// Distinct composite keys across base and delta (keys present in
    /// both are counted twice — the two sides are separate structures).
    pub fn key_count(&self) -> u64 {
        self.state.base.index.key_count() + self.state.delta.key_count()
    }

    /// The reader over the pinned base generation (filters tombstones).
    pub fn base_reader(&self) -> BaseReader<'_> {
        BaseReader { snap: self }
    }

    /// The reader over the pinned delta overlay (filters tombstones).
    pub fn delta_reader(&self) -> DeltaReader<'_> {
        DeltaReader { snap: self }
    }
}

/// [`IndexReader`] over a snapshot's base generation: probes the on-disk
/// index and filters tombstoned graphs out of the answer. Cache entries
/// key on the snapshot's base epoch, which survives inserts (the base's
/// answers cannot change) and rolls on removals and folds.
pub struct BaseReader<'a> {
    snap: &'a Snapshot,
}

impl IndexReader for BaseReader<'_> {
    fn signature(
        &self,
        g: &tale_graph::Graph,
        node: tale_graph::NodeId,
        label_of: &dyn Fn(tale_graph::NodeId) -> u32,
    ) -> crate::index::QuerySignature {
        self.snap.state.base.index.signature(g, node, label_of)
    }

    fn probe_batch(
        &self,
        sigs: &[crate::index::QuerySignature],
        rho: f64,
        threads: usize,
    ) -> Result<Vec<(Vec<crate::index::NodeCandidate>, crate::index::ProbeStats)>> {
        let mut out = self.snap.state.base.index.probe_batch(sigs, rho, threads)?;
        let removed = &self.snap.state.removed;
        if !removed.is_empty() {
            for (cands, stats) in &mut out {
                cands.retain(|c| !removed.contains(&c.node.graph));
                stats.rows_returned = cands.len() as u64;
            }
        }
        Ok(out)
    }

    fn probe_batch_budgeted(
        &self,
        sigs: &[crate::index::QuerySignature],
        rho: f64,
        threads: usize,
        prefetch_cap: Option<u64>,
    ) -> Result<Vec<(Vec<crate::index::NodeCandidate>, crate::index::ProbeStats)>> {
        let mut out =
            self.snap
                .state
                .base
                .index
                .probe_batch_budgeted(sigs, rho, threads, prefetch_cap)?;
        let removed = &self.snap.state.removed;
        if !removed.is_empty() {
            for (cands, stats) in &mut out {
                cands.retain(|c| !removed.contains(&c.node.graph));
                stats.rows_returned = cands.len() as u64;
            }
        }
        Ok(out)
    }

    /// The base generation's statistics. Removed graphs are filtered at
    /// read time, so these *overestimate* the snapshot's base answers —
    /// exactly the direction the planner's conservatism invariant needs.
    fn statistics(&self) -> Option<std::sync::Arc<crate::stats::IndexStatistics>> {
        self.snap.state.base.index.statistics()
    }

    fn counters(&self) -> ProbeCounters {
        self.snap.state.base.index.counters()
    }

    fn pool_stats(&self) -> tale_storage::PoolStats {
        self.snap.state.base.index.pool_stats()
    }

    fn cache_generation(&self) -> u64 {
        self.snap.state.base_epoch
    }

    fn is_visible(&self, graph: u32) -> bool {
        !self.snap.state.removed.contains(&graph)
    }
}

/// [`IndexReader`] over a snapshot's delta overlay: purely in-memory, so
/// its pool counters are zero — a cache hit or a delta-only probe causes
/// no disk traffic at all. Cache entries key on the snapshot's delta
/// epoch, which rolls on every mutation.
pub struct DeltaReader<'a> {
    snap: &'a Snapshot,
}

impl IndexReader for DeltaReader<'_> {
    fn signature(
        &self,
        g: &tale_graph::Graph,
        node: tale_graph::NodeId,
        label_of: &dyn Fn(tale_graph::NodeId) -> u32,
    ) -> crate::index::QuerySignature {
        self.snap.state.delta.signature(g, node, label_of)
    }

    fn probe_batch(
        &self,
        sigs: &[crate::index::QuerySignature],
        rho: f64,
        _threads: usize,
    ) -> Result<Vec<(Vec<crate::index::NodeCandidate>, crate::index::ProbeStats)>> {
        let mut out = self.snap.state.delta.probe_batch(sigs, rho)?;
        let removed = &self.snap.state.removed;
        if !removed.is_empty() {
            for (cands, stats) in &mut out {
                cands.retain(|c| !removed.contains(&c.node.graph));
                stats.rows_returned = cands.len() as u64;
            }
        }
        Ok(out)
    }

    /// The overlay's exact statistics (removed graphs filtered at read
    /// time, so again an overestimate of the snapshot's answers).
    fn statistics(&self) -> Option<std::sync::Arc<crate::stats::IndexStatistics>> {
        Some(self.snap.state.delta.statistics())
    }

    fn counters(&self) -> ProbeCounters {
        self.snap.state.delta.counters()
    }

    fn pool_stats(&self) -> tale_storage::PoolStats {
        tale_storage::PoolStats::default()
    }

    fn cache_generation(&self) -> u64 {
        self.snap.state.delta_epoch
    }

    fn is_visible(&self, graph: u32) -> bool {
        !self.snap.state.removed.contains(&graph)
    }
}

/// What [`GenerationalNhIndex::open`] found and did.
#[derive(Debug, Clone, Default, Serialize)]
pub struct MvccRecovery {
    /// WAL recovery of the current generation's index (always a no-op
    /// transaction-wise — generations are never mutated — but reported
    /// for symmetry with the in-place path).
    pub index: RecoveryReport,
    /// Orphaned generation numbers swept from `gens/` (unfinished folds,
    /// or retired generations whose process died before GC).
    pub swept: Vec<u64>,
}

/// What one [`GenerationalNhIndex::fold`] did.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct FoldReport {
    /// The generation the fold committed.
    pub new_generation: u64,
    /// Delta graphs folded into the new generation.
    pub folded_inserts: u32,
    /// Tombstoned graphs excluded from the new generation. The tombstones
    /// themselves persist (the dead graphs still hold ids in the graph
    /// database), so repeated folds report the same count until a
    /// compaction retires them.
    pub folded_removes: usize,
}

/// One row of [`GenerationalNhIndex::generations`].
#[derive(Debug, Clone, Copy, Serialize)]
pub struct GenerationInfo {
    /// Generation number (`gens/g{number}`).
    pub number: u64,
    /// Live reader pins: snapshots whose base is this generation.
    pub pins: usize,
    /// True for the generation new snapshots will pin.
    pub current: bool,
}

/// The MVCC index: immutable on-disk generations + in-memory delta, with
/// snapshot reads and single-writer mutations through `&self`.
pub struct GenerationalNhIndex {
    dir: PathBuf,
    config: NhIndexConfig,
    state: RwLock<Arc<MvccState>>,
    /// Serializes mutations (insert/remove/fold). Readers never touch it.
    writer: Mutex<()>,
    /// Every state ever published, for pin accounting. Dead weaks are
    /// pruned opportunistically.
    states: Mutex<Vec<(u64, Weak<MvccState>)>>,
    /// Monotonic cache-epoch allocator shared by base and delta epochs.
    epoch_source: AtomicU64,
}

impl GenerationalNhIndex {
    fn gen_dir(dir: &Path, number: u64) -> PathBuf {
        dir.join(GENS_DIR).join(format!("g{number}"))
    }

    fn write_manifest(dir: &Path, m: &MvccManifest) -> Result<()> {
        let json = serde_json::to_string_pretty(m)
            .map_err(|e| NhError::Meta(format!("serialize mvcc manifest: {e}")))?;
        tale_storage::atomic::write_atomic(&dir.join(MVCC_FILE), json.as_bytes())?;
        Ok(())
    }

    fn read_manifest(dir: &Path) -> Result<MvccManifest> {
        let raw = std::fs::read_to_string(dir.join(MVCC_FILE))?;
        let m: MvccManifest = serde_json::from_str(&raw)
            .map_err(|e| NhError::Meta(format!("parse mvcc manifest: {e}")))?;
        if m.schema_version != SCHEMA_VERSION {
            return Err(NhError::Meta(format!(
                "mvcc manifest schema {} unsupported (expected {SCHEMA_VERSION})",
                m.schema_version
            )));
        }
        Ok(m)
    }

    /// Builds generation 0 for `db` into `dir` and commits the initial
    /// manifest. Any `gens/` leftovers from a previous index in this
    /// directory are cleared first (fresh build = fresh history).
    pub fn build(dir: &Path, db: &GraphDb, config: &NhIndexConfig) -> Result<Self> {
        let gens = dir.join(GENS_DIR);
        if gens.exists() {
            std::fs::remove_dir_all(&gens)?;
        }
        let g0 = Self::gen_dir(dir, 0);
        let index = NhIndex::build(&g0, db, config)?;
        let base_len = db.len() as u32;
        Self::write_manifest(
            dir,
            &MvccManifest {
                schema_version: SCHEMA_VERSION,
                current: 0,
                logical: 0,
                base_len,
                removed: Vec::new(),
            },
        )?;
        let delta = DeltaOverlay::build(
            db,
            index.scheme(),
            config.use_edge_labels,
            base_len,
            base_len,
        )?;
        Ok(Self::assemble(
            dir,
            config.clone(),
            index,
            0,
            delta,
            HashSet::new(),
            0,
            base_len,
        ))
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        dir: &Path,
        config: NhIndexConfig,
        index: NhIndex,
        number: u64,
        delta: DeltaOverlay,
        removed: HashSet<u32>,
        logical: u64,
        base_len: u32,
    ) -> Self {
        let state = Arc::new(MvccState {
            base: Arc::new(Generation {
                index,
                number,
                dir: Self::gen_dir(dir, number),
                retired: AtomicBool::new(false),
            }),
            delta: Arc::new(delta),
            removed: Arc::new(removed),
            logical,
            base_len,
            base_epoch: 0,
            delta_epoch: 1,
        });
        let states = vec![(number, Arc::downgrade(&state))];
        GenerationalNhIndex {
            dir: dir.to_owned(),
            config,
            state: RwLock::new(state),
            writer: Mutex::new(()),
            states: Mutex::new(states),
            epoch_source: AtomicU64::new(2),
        }
    }

    /// Reads the persisted logical mutation counter without opening the
    /// index — the mutation journal compares it against a pending
    /// mutation's pre-generation to decide rollback.
    pub fn peek_logical(dir: &Path) -> Result<u64> {
        Ok(Self::read_manifest(dir)?.logical)
    }

    /// Reopens the index: loads the manifest, opens the current
    /// generation (running its — always empty — WAL recovery), sweeps
    /// orphaned generation directories, and re-derives the delta overlay
    /// from `db` (graphs `[base_len, db.len())` are the unfolded ones).
    ///
    /// `db` must be the *recovered* graph database: run the mutation
    /// journal against [`GenerationalNhIndex::peek_logical`] first.
    pub fn open(dir: &Path, db: &GraphDb, buffer_frames: usize) -> Result<(Self, MvccRecovery)> {
        let manifest = Self::read_manifest(dir)?;
        let gdir = Self::gen_dir(dir, manifest.current);
        let (index, report) = NhIndex::open_with_recovery(&gdir, buffer_frames)?;

        // Sweep every generation directory except the current one:
        // unfinished folds (crash before the manifest flip) and retired
        // generations whose GC never ran.
        let mut swept = Vec::new();
        if let Ok(entries) = std::fs::read_dir(dir.join(GENS_DIR)) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let name = name.to_string_lossy();
                let Some(num) = name.strip_prefix('g').and_then(|s| s.parse::<u64>().ok()) else {
                    continue;
                };
                if num != manifest.current {
                    std::fs::remove_dir_all(entry.path())?;
                    swept.push(num);
                }
            }
        }
        swept.sort_unstable();

        let n = db.len() as u32;
        if manifest.base_len > n {
            return Err(NhError::Meta(format!(
                "mvcc manifest covers {} graphs but the database holds {n}",
                manifest.base_len
            )));
        }
        let delta = DeltaOverlay::build(
            db,
            index.scheme(),
            index.edge_labels(),
            manifest.base_len,
            n,
        )?;
        let scheme = index.scheme();
        let config = NhIndexConfig {
            sbit: scheme.sbit,
            buffer_frames,
            bloom_hashes: scheme.hashes,
            use_edge_labels: index.edge_labels(),
            ..NhIndexConfig::default()
        };
        let idx = Self::assemble(
            dir,
            config,
            index,
            manifest.current,
            delta,
            manifest.removed.into_iter().collect(),
            manifest.logical,
            manifest.base_len,
        );
        Ok((
            idx,
            MvccRecovery {
                index: report,
                swept,
            },
        ))
    }

    /// Pins the current state. The returned snapshot answers queries
    /// bit-identically to the database as of this call, forever.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            state: self.state.read().clone(),
        }
    }

    fn publish(&self, number: u64, state: MvccState) {
        let state = Arc::new(state);
        let mut states = self.states.lock();
        states.retain(|(_, w)| w.strong_count() > 0);
        states.push((number, Arc::downgrade(&state)));
        *self.state.write() = state;
    }

    fn next_epoch(&self) -> u64 {
        self.epoch_source.fetch_add(1, Ordering::Relaxed)
    }

    /// Records the insertion of graph `gid` (already inserted into `db`
    /// by the caller). Publishes a fresh delta overlay covering every
    /// unfolded graph; the on-disk generation and the base cache epoch
    /// are untouched, so in-flight readers and base-derived cache entries
    /// are completely unaffected. The manifest write (bumping the logical
    /// counter) is the commit point.
    pub fn insert_graph(&self, db: &GraphDb, gid: GraphId) -> Result<()> {
        let _w = self.writer.lock();
        db.try_graph(gid)?;
        let state = self.state.read().clone();
        if gid.0 < state.base_len {
            return Err(NhError::Meta(format!(
                "graph {} is already covered by generation {}",
                gid.0, state.base.number
            )));
        }
        let n = db.len() as u32;
        let delta = DeltaOverlay::build(
            db,
            state.base.index.scheme(),
            state.base.index.edge_labels(),
            state.base_len,
            n,
        )?;
        let mut removed: Vec<u32> = state.removed.iter().copied().collect();
        removed.sort_unstable();
        Self::write_manifest(
            &self.dir,
            &MvccManifest {
                schema_version: SCHEMA_VERSION,
                current: state.base.number,
                logical: state.logical + 1,
                base_len: state.base_len,
                removed,
            },
        )?;
        self.publish(
            state.base.number,
            MvccState {
                base: Arc::clone(&state.base),
                delta: Arc::new(delta),
                removed: Arc::clone(&state.removed),
                logical: state.logical + 1,
                base_len: state.base_len,
                base_epoch: state.base_epoch,
                delta_epoch: self.next_epoch(),
            },
        );
        Ok(())
    }

    /// Tombstones `graph`: it disappears from every *new* snapshot's
    /// answers immediately (pinned snapshots keep seeing it — that is the
    /// MVCC contract), and its postings are reclaimed by the next fold.
    /// Neither cache epoch rolls: removal only *deletes* answers, and the
    /// readers' [`IndexReader::is_visible`] filter reproduces that
    /// deletion on cached entries at read time, so they stay warm.
    /// Idempotent.
    pub fn remove_graph(&self, graph: GraphId) -> Result<()> {
        let _w = self.writer.lock();
        let state = self.state.read().clone();
        let mut removed: HashSet<u32> = (*state.removed).clone();
        removed.insert(graph.0);
        let mut removed_sorted: Vec<u32> = removed.iter().copied().collect();
        removed_sorted.sort_unstable();
        Self::write_manifest(
            &self.dir,
            &MvccManifest {
                schema_version: SCHEMA_VERSION,
                current: state.base.number,
                logical: state.logical + 1,
                base_len: state.base_len,
                removed: removed_sorted,
            },
        )?;
        self.publish(
            state.base.number,
            MvccState {
                base: Arc::clone(&state.base),
                delta: Arc::clone(&state.delta),
                removed: Arc::new(removed),
                logical: state.logical + 1,
                base_len: state.base_len,
                base_epoch: state.base_epoch,
                delta_epoch: state.delta_epoch,
            },
        );
        Ok(())
    }

    /// Folds the delta and the tombstones into a new on-disk generation:
    /// builds `gens/g{N+1}` from every live graph (scheme re-derived from
    /// the current vocabulary, exactly as a from-scratch rebuild would),
    /// commits it with one atomic manifest flip, publishes the new state
    /// with an empty delta, and retires generation `N` — its directory is
    /// deleted when the last snapshot pinning it drops.
    ///
    /// The tombstone set is *kept*: the removed graphs still occupy their
    /// ids in the graph database, so forgetting them here would let the
    /// *next* fold — which derives its live set from the database again —
    /// resurrect their postings. Only a compaction (which rebuilds the
    /// database without the dead graphs) retires tombstones.
    ///
    /// Readers are never blocked: they keep resolving against whatever
    /// state they pinned. The logical counter is unchanged — a fold
    /// changes representation, not logical contents.
    pub fn fold(&self, db: &GraphDb) -> Result<FoldReport> {
        let _w = self.writer.lock();
        let state = self.state.read().clone();
        let n = db.len() as u32;
        let live: Vec<GraphId> = (0..n)
            .filter(|g| !state.removed.contains(g))
            .map(GraphId)
            .collect();
        let new_number = state.base.number + 1;
        let gdir = Self::gen_dir(&self.dir, new_number);
        if gdir.exists() {
            std::fs::remove_dir_all(&gdir)?;
        }
        let index = match NhIndex::build_subset(&gdir, db, &self.config, &live) {
            Ok(idx) => idx,
            Err(e) => {
                // Best-effort cleanup; open() sweeps leftovers anyway.
                let _ = std::fs::remove_dir_all(&gdir);
                return Err(e);
            }
        };
        let report = FoldReport {
            new_generation: new_number,
            folded_inserts: state.delta.graph_count(),
            folded_removes: state.removed.len(),
        };
        let mut removed_sorted: Vec<u32> = state.removed.iter().copied().collect();
        removed_sorted.sort_unstable();
        // Commit point: after this write, open() lands on the new
        // generation; before it, on the old one (with the delta
        // re-derived from the database). Never on a hybrid.
        Self::write_manifest(
            &self.dir,
            &MvccManifest {
                schema_version: SCHEMA_VERSION,
                current: new_number,
                logical: state.logical,
                base_len: n,
                removed: removed_sorted,
            },
        )?;
        let delta = DeltaOverlay::build(db, index.scheme(), self.config.use_edge_labels, n, n)?;
        state.base.retired.store(true, Ordering::Release);
        self.publish(
            new_number,
            MvccState {
                base: Arc::new(Generation {
                    index,
                    number: new_number,
                    dir: gdir,
                    retired: AtomicBool::new(false),
                }),
                delta: Arc::new(delta),
                removed: Arc::clone(&state.removed),
                logical: state.logical,
                base_len: n,
                base_epoch: self.next_epoch(),
                delta_epoch: self.next_epoch(),
            },
        );
        Ok(report)
    }

    /// The logical mutation counter (journal commit point).
    pub fn logical_generation(&self) -> u64 {
        self.state.read().logical
    }

    /// The current on-disk generation number.
    pub fn current_generation(&self) -> u64 {
        self.state.read().base.number
    }

    /// True when `graph` is tombstoned in the current state.
    pub fn is_removed(&self, graph: GraphId) -> bool {
        self.state.read().removed.contains(&graph.0)
    }

    /// The index directory (holding `mvcc.json` and `gens/`).
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The build configuration (reconstructed from the generation's meta
    /// file after [`GenerationalNhIndex::open`]).
    pub fn config(&self) -> &NhIndexConfig {
        &self.config
    }

    /// Live generations with their reader pin counts: the current one
    /// plus every retired generation still pinned by a snapshot. A pin is
    /// one live [`Snapshot`] whose base is that generation.
    pub fn generations(&self) -> Vec<GenerationInfo> {
        let current = self.state.read().clone();
        let current_number = current.base.number;
        let mut states = self.states.lock();
        states.retain(|(_, w)| w.strong_count() > 0);
        let mut pins: std::collections::BTreeMap<u64, usize> = std::collections::BTreeMap::new();
        for (num, weak) in states.iter() {
            let Some(arc) = weak.upgrade() else { continue };
            // Internal refs to subtract: our upgrade, plus (for the
            // current state) the RwLock's reference and our `current`
            // clone above.
            let internal = if Arc::ptr_eq(&arc, &current) { 3 } else { 1 };
            *pins.entry(*num).or_default() += Arc::strong_count(&arc).saturating_sub(internal);
        }
        pins.entry(current_number).or_default();
        pins.into_iter()
            .map(|(number, pins)| GenerationInfo {
                number,
                pins,
                current: number == current_number,
            })
            .collect()
    }

    /// Total on-disk footprint of the current generation in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.state.read().base.index.size_bytes()
    }

    /// Indexed nodes across the current base and delta.
    pub fn node_count(&self) -> u64 {
        self.snapshot().node_count()
    }

    /// Composite keys across the current base and delta.
    pub fn key_count(&self) -> u64 {
        self.snapshot().key_count()
    }

    /// The neighbor-array scheme (shared by every generation and delta).
    pub fn scheme(&self) -> crate::NeighborArrayScheme {
        self.state.read().base.index.scheme()
    }

    /// Builds a probe signature under the current scheme (identical for
    /// base and delta — they share it by construction).
    pub fn signature(
        &self,
        g: &tale_graph::Graph,
        node: tale_graph::NodeId,
        label_of: &dyn Fn(tale_graph::NodeId) -> u32,
    ) -> crate::index::QuerySignature {
        self.state.read().base.index.signature(g, node, label_of)
    }

    /// Structural integrity check of the current on-disk generation.
    pub fn verify(&self) -> Result<crate::IntegrityReport> {
        self.state.read().base.index.verify()
    }

    /// Injects synthetic read latency into the current generation's page
    /// files (cold-cache experiments).
    pub fn simulate_read_latency(&self, latency: std::time::Duration) {
        self.state.read().base.index.simulate_read_latency(latency);
    }

    /// Combined probe counters of the current base and delta.
    pub fn counters(&self) -> ProbeCounters {
        let state = self.state.read().clone();
        let b = state.base.index.counters();
        let d = state.delta.counters();
        ProbeCounters {
            probes: b.probes + d.probes,
            keys_scanned: b.keys_scanned + d.keys_scanned,
            postings_fetched: b.postings_fetched + d.postings_fetched,
            postings_filtered: b.postings_filtered + d.postings_filtered,
            rows_examined: b.rows_examined + d.rows_examined,
        }
    }

    /// Buffer-pool counters of the current generation.
    pub fn pool_stats(&self) -> tale_storage::PoolStats {
        self.state.read().base.index.pool_stats()
    }

    /// Readahead counters of the current generation.
    pub fn prefetch_stats(&self) -> tale_storage::PrefetchStats {
        self.state.read().base.index.prefetch_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::NhIndexConfig;
    use tale_graph::Graph;

    fn cfg() -> NhIndexConfig {
        NhIndexConfig {
            sbit: 32,
            buffer_frames: 64,
            parallel_build: false,
            ..NhIndexConfig::default()
        }
    }

    fn chain(db: &mut GraphDb, labels: &[&str]) -> GraphId {
        let ids: Vec<_> = labels.iter().map(|l| db.intern_node_label(l)).collect();
        let mut g = Graph::new_undirected();
        let nodes: Vec<_> = ids.iter().map(|&l| g.add_node(l)).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1]).unwrap();
        }
        let n = db.len();
        db.insert(format!("g{n}"), g)
    }

    #[test]
    fn build_insert_fold_reopen_roundtrip() {
        let dir = tempfile::tempdir().unwrap();
        let mut db = GraphDb::new();
        chain(&mut db, &["A", "B", "C"]);
        chain(&mut db, &["B", "C", "A"]);
        let idx = GenerationalNhIndex::build(dir.path(), &db, &cfg()).unwrap();
        assert_eq!(idx.current_generation(), 0);
        assert_eq!(idx.logical_generation(), 0);

        let gid = chain(&mut db, &["C", "A", "B"]);
        idx.insert_graph(&db, gid).unwrap();
        assert_eq!(idx.logical_generation(), 1);
        assert_eq!(idx.snapshot().delta_graphs(), 1);

        let report = idx.fold(&db).unwrap();
        assert_eq!(report.new_generation, 1);
        assert_eq!(report.folded_inserts, 1);
        assert_eq!(idx.snapshot().delta_graphs(), 0);
        assert_eq!(idx.logical_generation(), 1);
        drop(idx);

        let (idx, rec) = GenerationalNhIndex::open(dir.path(), &db, 64).unwrap();
        assert_eq!(idx.current_generation(), 1);
        assert_eq!(idx.logical_generation(), 1);
        assert!(
            rec.swept.is_empty(),
            "GC already removed g0: {:?}",
            rec.swept
        );
        assert_eq!(idx.snapshot().delta_graphs(), 0);
    }

    #[test]
    fn pinned_snapshot_survives_fold_and_gc_runs_after() {
        let dir = tempfile::tempdir().unwrap();
        let mut db = GraphDb::new();
        chain(&mut db, &["A", "B"]);
        let idx = GenerationalNhIndex::build(dir.path(), &db, &cfg()).unwrap();
        let pinned = idx.snapshot();
        let g0_dir = pinned.base().dir().to_owned();

        let gid = chain(&mut db, &["B", "A"]);
        idx.insert_graph(&db, gid).unwrap();
        idx.fold(&db).unwrap();

        // The pinned snapshot still reads generation 0 and its files are
        // still on disk.
        assert_eq!(pinned.base_generation(), 0);
        assert!(g0_dir.exists(), "pinned generation deleted too early");
        let gens = idx.generations();
        assert_eq!(gens.len(), 2);
        assert_eq!(gens[0].number, 0);
        assert_eq!(gens[0].pins, 1);
        assert!(!gens[0].current);
        assert!(gens[1].current);

        drop(pinned);
        assert!(!g0_dir.exists(), "last pin dropped but generation not GCed");
        let gens = idx.generations();
        assert_eq!(gens.len(), 1);
        assert_eq!(gens[0].number, 1);
    }

    #[test]
    fn insert_keeps_base_epoch_remove_keeps_both_fold_rolls_both() {
        let dir = tempfile::tempdir().unwrap();
        let mut db = GraphDb::new();
        chain(&mut db, &["A", "B"]);
        let idx = GenerationalNhIndex::build(dir.path(), &db, &cfg()).unwrap();
        let s0 = idx.snapshot();
        let (b0, d0) = (
            s0.base_reader().cache_generation(),
            s0.delta_reader().cache_generation(),
        );

        let gid = chain(&mut db, &["B", "A"]);
        idx.insert_graph(&db, gid).unwrap();
        let s1 = idx.snapshot();
        assert_eq!(
            s1.base_reader().cache_generation(),
            b0,
            "insert must keep the base epoch"
        );
        assert_ne!(s1.delta_reader().cache_generation(), d0);

        idx.remove_graph(GraphId(0)).unwrap();
        let s2 = idx.snapshot();
        assert_eq!(
            s2.base_reader().cache_generation(),
            b0,
            "remove filters at read time"
        );
        assert_eq!(
            s2.delta_reader().cache_generation(),
            s1.delta_reader().cache_generation()
        );
        assert!(
            !s2.base_reader().is_visible(0),
            "tombstone must surface via is_visible"
        );
        assert!(s2.base_reader().is_visible(1));
        assert!(
            s1.base_reader().is_visible(0),
            "pinned snapshot keeps the graph visible"
        );

        idx.fold(&db).unwrap();
        let s3 = idx.snapshot();
        assert_ne!(s3.base_reader().cache_generation(), b0);
        assert_ne!(
            s3.delta_reader().cache_generation(),
            s2.delta_reader().cache_generation()
        );
        assert!(s3.base_reader().is_visible(1));
        assert!(
            !s3.base_reader().is_visible(0),
            "tombstone must persist across folds — graph 0 still holds its id"
        );
    }

    #[test]
    fn second_fold_does_not_resurrect_removed_graphs() {
        let dir = tempfile::tempdir().unwrap();
        let mut db = GraphDb::new();
        let g0 = chain(&mut db, &["A", "B", "C"]);
        chain(&mut db, &["A", "B", "C"]);
        let idx = GenerationalNhIndex::build(dir.path(), &db, &cfg()).unwrap();

        let g = db.graph(g0);
        let label_of = |n: tale_graph::NodeId| db.effective_label(g0, n);
        let sig = idx.signature(g, g.nodes().next().unwrap(), &label_of);

        idx.remove_graph(g0).unwrap();
        idx.fold(&db).unwrap();
        // A second fold re-derives the live set from the database, where
        // graph 0 still holds its id — the persisted tombstone must keep
        // excluding it.
        let report = idx.fold(&db).unwrap();
        assert_eq!(report.folded_removes, 1);
        let snap = idx.snapshot();
        assert_eq!(snap.removed_count(), 1);
        let hits = snap
            .base_reader()
            .probe_batch(std::slice::from_ref(&sig), 0.0, 1)
            .unwrap();
        assert!(
            hits[0].0.iter().all(|c| c.node.graph != g0.0),
            "second fold resurrected a removed graph's postings"
        );
        drop(snap);

        // Reopen sees the persisted tombstone too.
        drop(idx);
        let (idx, _) = GenerationalNhIndex::open(dir.path(), &db, 64).unwrap();
        assert_eq!(idx.snapshot().removed_count(), 1);
        assert!(idx.is_removed(g0));
    }

    #[test]
    fn removed_graph_filtered_from_new_snapshots_not_pinned_ones() {
        let dir = tempfile::tempdir().unwrap();
        let mut db = GraphDb::new();
        let g0 = chain(&mut db, &["A", "B", "C"]);
        chain(&mut db, &["A", "B", "C"]);
        let idx = GenerationalNhIndex::build(dir.path(), &db, &cfg()).unwrap();
        let pinned = idx.snapshot();

        let g = db.graph(g0);
        let label_of = |n: tale_graph::NodeId| db.effective_label(g0, n);
        let sig = pinned
            .base()
            .signature(g, g.nodes().next().unwrap(), &label_of);

        idx.remove_graph(g0).unwrap();
        let fresh = idx.snapshot();

        let pre = pinned
            .base_reader()
            .probe_batch(std::slice::from_ref(&sig), 0.0, 1)
            .unwrap();
        assert!(
            pre[0].0.iter().any(|c| c.node.graph == g0.0),
            "pinned snapshot must keep seeing the removed graph"
        );
        let post = fresh
            .base_reader()
            .probe_batch(std::slice::from_ref(&sig), 0.0, 1)
            .unwrap();
        assert!(
            post[0].0.iter().all(|c| c.node.graph != g0.0),
            "fresh snapshot must filter the removed graph"
        );
    }

    #[test]
    fn crash_between_db_save_and_manifest_reopens_consistently() {
        // Simulate "insert saved graphs.json but the manifest write never
        // happened": on reopen with the *pre-insert* logical counter, the
        // delta is simply re-derived from whatever db the caller passes —
        // with the rolled-back db the new graph doesn't exist.
        let dir = tempfile::tempdir().unwrap();
        let mut db = GraphDb::new();
        chain(&mut db, &["A", "B"]);
        let idx = GenerationalNhIndex::build(dir.path(), &db, &cfg()).unwrap();
        drop(idx);

        // db grew but the manifest never saw the insert (logical still 0)
        let mut grown = db.clone();
        chain(&mut grown, &["B", "A"]);
        let (idx, _) = GenerationalNhIndex::open(dir.path(), &grown, 64).unwrap();
        // the unfolded tail [base_len, len) is derived as the delta
        assert_eq!(idx.snapshot().delta_graphs(), 1);
        drop(idx);

        // with the rolled-back db there is no delta
        let (idx, _) = GenerationalNhIndex::open(dir.path(), &db, 64).unwrap();
        assert_eq!(idx.snapshot().delta_graphs(), 0);
    }
}
