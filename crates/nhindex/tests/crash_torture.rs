//! Crash-torture harness: every I/O operation of every mutation is failed
//! in turn, the process death is simulated by dropping the handle with the
//! fault still tripped (so even the buffer pool's best-effort `Drop` flush
//! fails), and the reopened index must be *bit-identical in query output*
//! to either the pre-mutation state (rolled back) or the post-mutation
//! state (committed) — never anything in between.
//!
//! The fault shim is thread-local, so these tests are safe under the
//! default parallel test runner.

use std::path::{Path, PathBuf};
use tale_graph::{Graph, GraphDb, GraphId, NodeId};
use tale_nhindex::{NhIndex, NhIndexConfig, NodeCandidate};
use tale_storage::faults;

/// Tiny pool so mutations overflow it and exercise eviction write-backs
/// (which must WAL-protect their pages) mid-transaction.
fn cfg() -> NhIndexConfig {
    NhIndexConfig {
        sbit: 32,
        buffer_frames: 8,
        parallel_build: false,
        bloom_hashes: 1,
        use_edge_labels: false,
        ..NhIndexConfig::default()
    }
}

/// Five graphs over labels {A, B, C}: three in the initial index, two kept
/// aside as insertion fodder.
fn sample_db() -> GraphDb {
    let mut db = GraphDb::new();
    let a = db.intern_node_label("A");
    let b = db.intern_node_label("B");
    let c = db.intern_node_label("C");

    // g0: triangle with a pendant
    let mut g0 = Graph::new_undirected();
    let n0 = g0.add_node(a);
    let n1 = g0.add_node(b);
    let n2 = g0.add_node(c);
    let n3 = g0.add_node(a);
    g0.add_edge(n0, n1).unwrap();
    g0.add_edge(n1, n2).unwrap();
    g0.add_edge(n0, n2).unwrap();
    g0.add_edge(n0, n3).unwrap();
    db.insert("g0", g0);

    // g1: star
    let mut g1 = Graph::new_undirected();
    let m0 = g1.add_node(a);
    let m1 = g1.add_node(b);
    let m2 = g1.add_node(b);
    let m3 = g1.add_node(c);
    g1.add_edge(m0, m1).unwrap();
    g1.add_edge(m0, m2).unwrap();
    g1.add_edge(m0, m3).unwrap();
    db.insert("g1", g1);

    // g2: 6-chain alternating labels
    let mut g2 = Graph::new_undirected();
    let nodes: Vec<NodeId> = [a, b, c, a, b, c].iter().map(|&l| g2.add_node(l)).collect();
    for w in nodes.windows(2) {
        g2.add_edge(w[0], w[1]).unwrap();
    }
    db.insert("g2", g2);

    // g3, g4: insertion fodder
    let mut g3 = Graph::new_undirected();
    let x = g3.add_node(a);
    let y = g3.add_node(b);
    let z = g3.add_node(a);
    g3.add_edge(x, y).unwrap();
    g3.add_edge(y, z).unwrap();
    db.insert("g3", g3);

    let mut g4 = Graph::new_undirected();
    let u = g4.add_node(c);
    let v = g4.add_node(c);
    g4.add_edge(u, v).unwrap();
    db.insert("g4", g4);

    db
}

const INITIAL: [GraphId; 3] = [GraphId(0), GraphId(1), GraphId(2)];

/// Probes every node of every graph in `db` and returns the full sorted
/// answer set — the "query output" whose bit-identity the torture asserts.
fn probe_matrix(idx: &NhIndex, db: &GraphDb) -> Vec<Vec<NodeCandidate>> {
    let mut out = Vec::new();
    for (gid, _, g) in db.iter() {
        for n in g.nodes() {
            let sig = idx.signature(g, n, &|x| db.effective_label(gid, x));
            let mut hits = idx.probe(&sig, 0.3).unwrap();
            hits.sort_by_key(|h| h.node);
            out.push(hits);
        }
    }
    out
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

/// Runs `mutate` against a copy of `pre` failing the `i`-th gated I/O
/// operation for every `i`, and asserts the recovered index is query-
/// identical to the pre state (not committed) or the post state
/// (committed). Returns the number of fault points swept.
fn sweep<F>(db: &GraphDb, pre: &Path, scratch: &Path, mutate: F) -> u64
where
    F: Fn(&mut NhIndex) -> tale_nhindex::Result<()>,
{
    // Reference states: pre as-is, post = clean mutation on a copy.
    let pre_idx = NhIndex::open(pre, cfg().buffer_frames).unwrap();
    let pre_gen = pre_idx.generation();
    let pre_matrix = probe_matrix(&pre_idx, db);
    drop(pre_idx);

    let post_dir = scratch.join("post");
    copy_dir(pre, &post_dir);
    let mut post_idx = NhIndex::open(&post_dir, cfg().buffer_frames).unwrap();
    mutate(&mut post_idx).unwrap();
    let post_gen = post_idx.generation();
    let post_matrix = probe_matrix(&post_idx, db);
    drop(post_idx);
    assert_eq!(post_gen, pre_gen + 1);

    // Measuring run: how many gated I/O operations does the mutation make?
    let count_dir = scratch.join("count");
    copy_dir(pre, &count_dir);
    let mut idx = NhIndex::open(&count_dir, cfg().buffer_frames).unwrap();
    faults::arm_counting();
    mutate(&mut idx).unwrap();
    let n = faults::disarm();
    drop(idx);
    assert!(n > 0, "mutation made no gated I/O");

    for i in 0..n {
        let work = scratch.join(format!("fault-{i}"));
        copy_dir(pre, &work);
        let mut idx = NhIndex::open(&work, cfg().buffer_frames).unwrap();
        faults::arm(i);
        let res = mutate(&mut idx);
        drop(idx); // Drop flush also fails: the process is "dead"
        faults::disarm();
        assert!(res.is_err(), "fault {i} of {n} did not surface");

        let (idx, report) = NhIndex::open_with_recovery(&work, cfg().buffer_frames).unwrap();
        assert!(report.wal_present, "fault {i}: WAL missing on reopen");
        assert!(
            !(report.rolled_back && report.committed),
            "fault {i}: recovery both rolled back and committed"
        );
        let matrix = probe_matrix(&idx, db);
        if idx.generation() == post_gen {
            assert_eq!(
                matrix, post_matrix,
                "fault {i} of {n}: committed state differs from clean mutation"
            );
        } else {
            assert_eq!(idx.generation(), pre_gen, "fault {i}: generation corrupt");
            assert_eq!(
                matrix, pre_matrix,
                "fault {i} of {n}: rolled-back state differs from pre-op"
            );
        }
        let integrity = idx.verify().unwrap();
        assert!(
            integrity.is_ok(),
            "fault {i} of {n}: integrity errors after recovery: {:?}",
            integrity.errors
        );
        std::fs::remove_dir_all(&work).unwrap();
    }
    n
}

#[test]
fn torture_insert_graph() {
    let db = sample_db();
    let scratch = tempfile::tempdir().unwrap();
    let pre = scratch.path().join("pre");
    NhIndex::build_subset(&pre, &db, &cfg(), &INITIAL).unwrap();
    let n = sweep(&db, &pre, scratch.path(), |idx| {
        idx.insert_graph(&db, GraphId(3))
    });
    // sanity: insert touches WAL, pages and the manifest — many gates
    assert!(n >= 5, "suspiciously few fault points: {n}");
}

#[test]
fn torture_remove_graph() {
    let db = sample_db();
    let scratch = tempfile::tempdir().unwrap();
    let pre = scratch.path().join("pre");
    NhIndex::build_subset(&pre, &db, &cfg(), &INITIAL).unwrap();
    sweep(&db, &pre, scratch.path(), |idx| {
        idx.remove_graph(GraphId(1), db.effective_vocab_size() as u64)
    });
}

#[test]
fn torture_second_insert_after_first_commits() {
    // The WAL holds at most one transaction; a crash in mutation k must
    // not disturb mutation k-1's committed state.
    let db = sample_db();
    let scratch = tempfile::tempdir().unwrap();
    let pre = scratch.path().join("pre");
    let mut idx = NhIndex::build_subset(&pre, &db, &cfg(), &INITIAL).unwrap();
    idx.insert_graph(&db, GraphId(3)).unwrap();
    drop(idx);
    sweep(&db, &pre, scratch.path(), |idx| {
        idx.insert_graph(&db, GraphId(4))
    });
}

#[test]
fn bit_flip_is_refused_not_served() {
    let db = sample_db();
    let dir = tempfile::tempdir().unwrap();
    let idx = NhIndex::build_subset(dir.path(), &db, &cfg(), &INITIAL).unwrap();
    let clean = idx.verify().unwrap();
    assert!(
        clean.is_ok(),
        "clean index fails verify: {:?}",
        clean.errors
    );
    assert!(clean.btree_pages > 0 && clean.postings > 0);
    drop(idx);

    // flip one payload byte in the middle of the B+-tree file
    let bt = dir.path().join("nh.btree");
    let mut bytes = std::fs::read(&bt).unwrap();
    let victim = bytes.len() / 2;
    bytes[victim] ^= 0x40;
    std::fs::write(&bt, &bytes).unwrap();

    let idx = NhIndex::open(dir.path(), cfg().buffer_frames).unwrap();
    let report = idx.verify().unwrap();
    assert!(!report.is_ok(), "bit flip not detected");
    assert!(
        report.errors.iter().any(|e| e.contains("nh.btree")),
        "corruption not attributed to the damaged file: {:?}",
        report.errors
    );
}

mod mvcc_fold {
    //! Mid-fold kill: every gated I/O of a generational fold is failed in
    //! turn, the handle is dropped with the fault tripped, and the
    //! reopened index must land on exactly generation G (fold never
    //! committed) or G+1 (manifest flip landed) — with orphaned
    //! generation directories swept and query output bit-identical either
    //! way, because a fold changes representation, never contents.

    use super::sample_db;
    use std::path::Path;
    use tale_graph::{Graph, GraphDb, GraphId, NodeId};
    use tale_nhindex::{GenerationalNhIndex, IndexReader, NhIndexConfig, NodeCandidate};
    use tale_storage::faults;

    fn cfg() -> NhIndexConfig {
        NhIndexConfig {
            sbit: 32,
            buffer_frames: 8,
            parallel_build: false,
            bloom_hashes: 1,
            use_edge_labels: false,
            ..NhIndexConfig::default()
        }
    }

    /// Recursive variant of `copy_dir` — a generational index directory
    /// holds `mvcc.json` plus `gens/g{N}/` subtrees.
    fn copy_tree(src: &Path, dst: &Path) {
        std::fs::create_dir_all(dst).unwrap();
        for entry in std::fs::read_dir(src).unwrap() {
            let entry = entry.unwrap();
            if entry.file_type().unwrap().is_dir() {
                copy_tree(&entry.path(), &dst.join(entry.file_name()));
            } else {
                std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
            }
        }
    }

    /// Full probe matrix through a snapshot (base + delta concatenated,
    /// sorted) — the query output whose bit-identity the kill asserts.
    fn probe_matrix(idx: &GenerationalNhIndex, db: &GraphDb) -> Vec<Vec<NodeCandidate>> {
        let snap = idx.snapshot();
        let mut out = Vec::new();
        for (gid, _, g) in db.iter() {
            let label_of = |n: NodeId| db.effective_label(gid, n);
            let sigs: Vec<_> = g
                .nodes()
                .map(|n| snap.base().signature(g, n, &label_of))
                .collect();
            let base = snap.base_reader().probe_batch(&sigs, 0.3, 1).unwrap();
            let delta = snap.delta_reader().probe_batch(&sigs, 0.3, 1).unwrap();
            for ((mut hits, _), (d, _)) in base.into_iter().zip(delta) {
                hits.extend(d);
                hits.sort_by_key(|c| c.node);
                out.push(hits);
            }
        }
        out
    }

    /// `gens/` must hold exactly the current generation's directory.
    fn assert_gens_swept(dir: &Path, current: u64) {
        let names: Vec<String> = std::fs::read_dir(dir.join("gens"))
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(
            names,
            vec![format!("g{current}")],
            "orphaned generation directories not swept"
        );
    }

    #[test]
    fn torture_mid_fold_kill_lands_on_g_or_g_plus_one() {
        let scratch = tempfile::tempdir().unwrap();
        let pre = scratch.path().join("pre");

        // Pre state: generation 0 over the five sample graphs, one
        // unfolded insert in the delta, one tombstone — a fold with real
        // work to do.
        let mut db = sample_db();
        let idx = GenerationalNhIndex::build(&pre, &db, &cfg()).unwrap();
        let extra = {
            let a = db.intern_node_label("A");
            let c = db.intern_node_label("C");
            let mut g = Graph::new_undirected();
            let x = g.add_node(a);
            let y = g.add_node(c);
            let z = g.add_node(a);
            g.add_edge(x, y).unwrap();
            g.add_edge(y, z).unwrap();
            db.insert("extra", g)
        };
        idx.insert_graph(&db, extra).unwrap();
        idx.remove_graph(GraphId(1)).unwrap();
        let pre_gen = idx.current_generation();
        let pre_logical = idx.logical_generation();
        let pre_matrix = probe_matrix(&idx, &db);
        drop(idx);

        // Reference post state: a clean fold on a copy. Its matrix must
        // equal the pre matrix — the fold-is-representation-only oracle.
        let post_dir = scratch.path().join("post");
        copy_tree(&pre, &post_dir);
        let (idx, _) = GenerationalNhIndex::open(&post_dir, &db, cfg().buffer_frames).unwrap();
        let report = idx.fold(&db).unwrap();
        assert_eq!(report.new_generation, pre_gen + 1);
        assert_eq!(report.folded_inserts, 1);
        assert_eq!(report.folded_removes, 1);
        assert_eq!(probe_matrix(&idx, &db), pre_matrix, "fold changed answers");
        drop(idx);

        // Measure the fold's gated I/O footprint.
        let count_dir = scratch.path().join("count");
        copy_tree(&pre, &count_dir);
        let (idx, _) = GenerationalNhIndex::open(&count_dir, &db, cfg().buffer_frames).unwrap();
        faults::arm_counting();
        idx.fold(&db).unwrap();
        let n = faults::disarm();
        drop(idx);
        assert!(n > 0, "fold made no gated I/O");

        for i in 0..n {
            let work = scratch.path().join(format!("fault-{i}"));
            copy_tree(&pre, &work);
            let (idx, _) = GenerationalNhIndex::open(&work, &db, cfg().buffer_frames).unwrap();
            faults::arm(i);
            let res = idx.fold(&db);
            drop(idx); // the process is "dead"; no GC runs
            faults::disarm();
            assert!(res.is_err(), "fault {i} of {n} did not surface");

            let (idx, rec) = GenerationalNhIndex::open(&work, &db, cfg().buffer_frames).unwrap();
            let landed = idx.current_generation();
            assert!(
                landed == pre_gen || landed == pre_gen + 1,
                "fault {i} of {n}: landed on generation {landed}, expected {pre_gen} or {}",
                pre_gen + 1
            );
            assert_eq!(
                idx.logical_generation(),
                pre_logical,
                "fault {i}: a fold must never move the logical counter"
            );
            assert_gens_swept(&work, landed);
            let snap = idx.snapshot();
            if landed == pre_gen {
                // Fold never committed: the unfinished g{N+1} was swept
                // (if it ever hit disk) and the delta is re-derived.
                assert!(rec.swept.iter().all(|&g| g == pre_gen + 1));
                assert_eq!(snap.delta_graphs(), 1, "fault {i}: delta not re-derived");
            } else {
                assert_eq!(snap.delta_graphs(), 0, "fault {i}: delta survived a commit");
            }
            // The tombstone persists across the fold either way.
            assert_eq!(snap.removed_count(), 1, "fault {i}: tombstone lost");
            drop(snap);
            assert_eq!(
                probe_matrix(&idx, &db),
                pre_matrix,
                "fault {i} of {n}: recovered state is not bit-identical"
            );
            let integrity = idx.verify().unwrap();
            assert!(
                integrity.is_ok(),
                "fault {i} of {n}: integrity errors after recovery: {:?}",
                integrity.errors
            );
            drop(idx);
            std::fs::remove_dir_all(&work).unwrap();
        }
        assert!(n >= 3, "suspiciously few fold fault points: {n}");
    }
}

use proptest::prelude::*;

proptest! {
    // Each case builds and crash-recovers several indexes, so keep the
    // case count modest; the deterministic sweeps above cover every fault
    // point exhaustively, this adds interleaving coverage.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomized interleavings: shuffle insert/remove operations, crash
    /// one of them at a random fault point, and check the recovered index
    /// equals a clean from-scratch replay of exactly the committed prefix.
    #[test]
    fn random_interleavings_recover_to_a_clean_replay(
        order_seed in any::<u64>(),
        crash_at in 0usize..4,
        fault_seed in any::<u64>(),
    ) {
        // Fisher–Yates over the four ops, driven by the generated seed.
        let mut order = [0usize, 1, 2, 3];
        let mut s = order_seed | 1;
        for i in (1..order.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s >> 33) as usize % (i + 1));
        }
        let db = sample_db();
        let apply = |idx: &mut NhIndex, op: usize| match op {
            0 => idx.insert_graph(&db, GraphId(3)),
            1 => idx.insert_graph(&db, GraphId(4)),
            2 => idx.remove_graph(GraphId(0), db.effective_vocab_size() as u64),
            _ => idx.remove_graph(GraphId(1), db.effective_vocab_size() as u64),
        };
        let scratch = tempfile::tempdir().unwrap();

        // work index: clean ops before the crash point
        let work: PathBuf = scratch.path().join("work");
        let mut idx = NhIndex::build_subset(&work, &db, &cfg(), &INITIAL).unwrap();
        for &op in &order[..crash_at] {
            apply(&mut idx, op).unwrap();
        }
        drop(idx);

        // measure the crashing op's fault points on a throwaway copy
        let count_dir = scratch.path().join("count");
        copy_dir(&work, &count_dir);
        let mut idx = NhIndex::open(&count_dir, cfg().buffer_frames).unwrap();
        faults::arm_counting();
        apply(&mut idx, order[crash_at]).unwrap();
        let n = faults::disarm();
        drop(idx);
        prop_assert!(n > 0);

        // crash the real one
        let mut idx = NhIndex::open(&work, cfg().buffer_frames).unwrap();
        faults::arm(fault_seed % n);
        let res = apply(&mut idx, order[crash_at]);
        drop(idx);
        faults::disarm();
        prop_assert!(res.is_err());

        let (idx, _) = NhIndex::open_with_recovery(&work, cfg().buffer_frames).unwrap();
        let committed = idx.generation() as usize;
        prop_assert!(committed == crash_at || committed == crash_at + 1);

        // clean replay of exactly the committed prefix
        let replay_dir = scratch.path().join("replay");
        let mut replay = NhIndex::build_subset(&replay_dir, &db, &cfg(), &INITIAL).unwrap();
        for &op in &order[..committed] {
            apply(&mut replay, op).unwrap();
        }
        prop_assert_eq!(probe_matrix(&idx, &db), probe_matrix(&replay, &db));
        let integrity = idx.verify().unwrap();
        prop_assert!(integrity.is_ok(), "integrity: {:?}", integrity.errors);
    }
}
