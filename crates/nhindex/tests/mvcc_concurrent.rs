//! Concurrent reader-during-mutation harness for the generational MVCC
//! index — the tentpole's serving property, tested with bit-identity as
//! the oracle:
//!
//! * A snapshot pinned *before* a mutation storm answers every probe
//!   bit-identically to its pre-storm answers, forever — while inserts,
//!   removes and folds commit around it.
//! * A snapshot pinned *during* the storm is self-consistent: probing it
//!   twice brackets any number of concurrent commits and must agree
//!   bit-for-bit.
//! * After the storm (plus a final fold), the served state is
//!   bit-identical to an index rebuilt from scratch over exactly the
//!   live graphs — folding is a representation change, never a logical
//!   one.
//!
//! Readers never take the writer lock, so the harness also doubles as a
//! liveness check: reader iterations proceed while folds are running.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use tale_graph::{Graph, GraphDb, GraphId, NodeId, NodeLabel};
use tale_nhindex::{
    GenerationalNhIndex, IndexReader, NhIndex, NhIndexConfig, NodeCandidate, Snapshot,
};

const RHO: f64 = 0.3;
const READERS: usize = 4;
const MIN_READER_ITERS: u32 = 25;

fn cfg() -> NhIndexConfig {
    NhIndexConfig {
        sbit: 32,
        buffer_frames: 64,
        parallel_build: false,
        ..NhIndexConfig::default()
    }
}

fn chain(db: &mut GraphDb, labels: &[&str]) -> GraphId {
    let ids: Vec<_> = labels.iter().map(|l| db.intern_node_label(l)).collect();
    let mut g = Graph::new_undirected();
    let nodes: Vec<_> = ids.iter().map(|&l| g.add_node(l)).collect();
    for w in nodes.windows(2) {
        g.add_edge(w[0], w[1]).unwrap();
    }
    let n = db.len();
    db.insert(format!("g{n}"), g)
}

/// Standalone query graphs over the label ids the database interns for
/// A=0, B=1, C=2 — independent of the (mutating) database, so reader
/// threads need no reference to it.
fn query_graphs() -> Vec<Graph> {
    [&[0u32, 1, 2][..], &[1, 2, 0], &[2, 0, 1, 2], &[0, 1]]
        .iter()
        .map(|labels| {
            let mut g = Graph::new_undirected();
            let nodes: Vec<_> = labels.iter().map(|&l| g.add_node(NodeLabel(l))).collect();
            for w in nodes.windows(2) {
                g.add_edge(w[0], w[1]).unwrap();
            }
            g
        })
        .collect()
}

/// Probes every node of every query graph against the snapshot (base and
/// delta readers, answers concatenated and sorted — exactly the engine's
/// scatter/gather shape) and returns the full answer matrix.
fn probe_snapshot(snap: &Snapshot, queries: &[Graph]) -> Vec<Vec<NodeCandidate>> {
    let mut out = Vec::new();
    for g in queries {
        let label_of = |n: NodeId| g.label(n).0;
        let sigs: Vec<_> = g
            .nodes()
            .map(|n| snap.base().signature(g, n, &label_of))
            .collect();
        let base = snap.base_reader().probe_batch(&sigs, RHO, 1).unwrap();
        let delta = snap.delta_reader().probe_batch(&sigs, RHO, 1).unwrap();
        for ((mut hits, _), (d, _)) in base.into_iter().zip(delta) {
            hits.extend(d);
            hits.sort_by_key(|c| c.node);
            out.push(hits);
        }
    }
    out
}

/// Same matrix from a plain (non-generational) index — the rebuild oracle.
fn probe_oracle(idx: &NhIndex, queries: &[Graph]) -> Vec<Vec<NodeCandidate>> {
    let mut out = Vec::new();
    for g in queries {
        let label_of = |n: NodeId| g.label(n).0;
        let sigs: Vec<_> = g.nodes().map(|n| idx.signature(g, n, &label_of)).collect();
        for (mut hits, _) in idx.probe_batch(&sigs, RHO, 1).unwrap() {
            hits.sort_by_key(|c| c.node);
            out.push(hits);
        }
    }
    out
}

#[test]
fn pinned_snapshots_answer_bit_identically_under_concurrent_mutations() {
    let dir = tempfile::tempdir().unwrap();
    let mut db = GraphDb::new();
    for labels in [
        &["A", "B", "C"][..],
        &["B", "C", "A"],
        &["C", "A", "B"],
        &["A", "B", "C", "A"],
        &["B", "A"],
    ] {
        chain(&mut db, labels);
    }
    let idx = GenerationalNhIndex::build(dir.path(), &db, &cfg()).unwrap();
    let queries = query_graphs();

    // Pin the pre-storm state and record its answers.
    let pinned = idx.snapshot();
    let g0_dir = pinned.base().dir().to_owned();
    let pinned_matrix = probe_snapshot(&pinned, &queries);

    // The writer's scripted storm: a rotation of inserts, tombstones and
    // folds. Removed ids are graphs that exist from the start.
    let removed = [GraphId(1), GraphId(3)];
    let writer_done = AtomicBool::new(false);
    let start = Barrier::new(READERS + 1);

    std::thread::scope(|scope| {
        let idx = &idx;
        let queries = &queries;
        let pinned_matrix = &pinned_matrix;
        let writer_done = &writer_done;
        let start = &start;
        for r in 0..READERS {
            let pinned = pinned.clone();
            scope.spawn(move || {
                start.wait();
                let mut iters = 0u32;
                while iters < MIN_READER_ITERS || !writer_done.load(Ordering::Acquire) {
                    assert_eq!(
                        &probe_snapshot(&pinned, queries),
                        pinned_matrix,
                        "reader {r}: pinned pre-storm snapshot drifted"
                    );
                    // A snapshot taken mid-storm must be self-consistent:
                    // any number of commits can land between these two
                    // probe passes.
                    let snap = idx.snapshot();
                    let first = probe_snapshot(&snap, queries);
                    let second = probe_snapshot(&snap, queries);
                    assert_eq!(
                        first,
                        second,
                        "reader {r}: one snapshot answered two ways (logical {})",
                        snap.logical()
                    );
                    iters += 1;
                }
            });
        }

        let db = &mut db;
        scope.spawn(move || {
            start.wait();
            let rotation = [&["C", "B", "A"][..], &["A", "C", "B"], &["B", "A", "C"]];
            for step in 0..12usize {
                let gid = chain(db, rotation[step % rotation.len()]);
                idx.insert_graph(db, gid).unwrap();
                match step {
                    2 => idx.remove_graph(removed[0]).unwrap(),
                    7 => idx.remove_graph(removed[1]).unwrap(),
                    _ => {}
                }
                if step % 3 == 2 {
                    idx.fold(db).unwrap();
                }
                std::thread::yield_now();
            }
            writer_done.store(true, Ordering::Release);
        });
    });

    // The pinned snapshot survived the whole storm unchanged...
    assert_eq!(probe_snapshot(&pinned, &queries), pinned_matrix);
    assert_eq!(pinned.base_generation(), 0);
    assert!(g0_dir.exists(), "pinned generation GCed under a live pin");
    // ...and its generation is GCed the moment the pin drops (the storm's
    // folds retired it long ago).
    drop(pinned);
    assert!(
        !g0_dir.exists(),
        "retired generation leaked after last unpin"
    );

    // Final oracle: fold whatever delta remains, then compare the served
    // state against an index rebuilt from scratch over the live graphs.
    idx.fold(&db).unwrap();
    let live: Vec<GraphId> = (0..db.len() as u32)
        .map(GraphId)
        .filter(|g| !removed.contains(g))
        .collect();
    let oracle_dir = tempfile::tempdir().unwrap();
    let oracle = NhIndex::build_subset(oracle_dir.path(), &db, &cfg(), &live).unwrap();

    let snap = idx.snapshot();
    assert_eq!(snap.delta_graphs(), 0);
    assert_eq!(
        probe_snapshot(&snap, &queries),
        probe_oracle(&oracle, &queries),
        "post-fold state is not bit-identical to a from-scratch rebuild"
    );
}

#[test]
fn fold_is_a_pure_representation_change() {
    // Deterministic single-thread variant of the oracle above, for clear
    // failure attribution: insert + remove + two folds, compared against
    // a from-scratch rebuild after every fold.
    let dir = tempfile::tempdir().unwrap();
    let mut db = GraphDb::new();
    chain(&mut db, &["A", "B", "C"]);
    chain(&mut db, &["B", "C", "A"]);
    chain(&mut db, &["C", "A", "B"]);
    let idx = GenerationalNhIndex::build(dir.path(), &db, &cfg()).unwrap();
    let queries = query_graphs();

    let g3 = chain(&mut db, &["A", "C", "B", "A"]);
    idx.insert_graph(&db, g3).unwrap();
    idx.remove_graph(GraphId(0)).unwrap();

    let before = probe_snapshot(&idx.snapshot(), &queries);
    for round in 1..=2u64 {
        let report = idx.fold(&db).unwrap();
        assert_eq!(report.new_generation, round);
        let after = probe_snapshot(&idx.snapshot(), &queries);
        assert_eq!(
            before, after,
            "fold {round} changed query answers (representation leaked into logic)"
        );
    }

    let live: Vec<GraphId> = (1..db.len() as u32).map(GraphId).collect();
    let oracle_dir = tempfile::tempdir().unwrap();
    let oracle = NhIndex::build_subset(oracle_dir.path(), &db, &cfg(), &live).unwrap();
    assert_eq!(before, probe_oracle(&oracle, &queries));
}
