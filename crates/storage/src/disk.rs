//! Page-granular file manager.
//!
//! Owns one storage file and hands out fresh [`PageId`]s. Reads verify the
//! page checksum; writes seal it. Thread-safe: the file handle is guarded
//! by a mutex (positional I/O via `read_exact_at`/`write_all_at` on Unix
//! would avoid it, but a mutex keeps this portable and the buffer pool
//! already batches accesses).
//!
//! When a [`Wal`] is attached ([`DiskManager::attach_wal`]), every
//! overwrite of a pre-transaction page first appends the page's
//! before-image to the log and fsyncs it — write-ahead in the literal
//! sense. Without an attached log (bulk build, read-only use) the hook is
//! a `None` check and writes behave exactly as before.

use crate::page::{Page, PageId, PAGE_SIZE};
use crate::wal::Wal;
use crate::{Result, StorageError};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Debug-build guard for the pool's no-I/O-under-lock invariant: every
/// page read or write must happen with the calling thread holding *no*
/// buffer-pool mutex. Compiled to nothing in release builds.
#[inline]
fn assert_unlocked(op: &str) {
    #[cfg(debug_assertions)]
    debug_assert!(
        !crate::buffer::lockcheck::held(),
        "disk {op} while the buffer-pool mutex is held"
    );
    let _ = op;
}

/// Manages page allocation and I/O for one file.
pub struct DiskManager {
    file: Mutex<File>,
    path: PathBuf,
    next_page: AtomicU64,
    /// Pages written + read, for the index-size/IO accounting the paper's
    /// Table III and Fig. 8 report.
    reads: AtomicU64,
    writes: AtomicU64,
    /// Optional write-ahead log + this file's tag within it.
    wal: Mutex<Option<(Arc<Wal>, u8)>>,
}

impl DiskManager {
    /// Creates (truncating) a new storage file.
    pub fn create(path: &Path) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(DiskManager {
            file: Mutex::new(file),
            path: path.to_owned(),
            next_page: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            wal: Mutex::new(None),
        })
    }

    /// Opens an existing storage file; page count is derived from its size.
    pub fn open(path: &Path) -> Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        Ok(DiskManager {
            file: Mutex::new(file),
            path: path.to_owned(),
            next_page: AtomicU64::new(len / PAGE_SIZE as u64),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            wal: Mutex::new(None),
        })
    }

    /// Attaches a write-ahead log; `file_tag` identifies this file within
    /// it (0 = B+-tree, 1 = blobs by NH-Index convention). Subsequent
    /// writes to pages that predate the log's open transaction are
    /// preceded by a durable before-image.
    pub fn attach_wal(&self, wal: Arc<Wal>, file_tag: u8) {
        *self.wal.lock() = Some((wal, file_tag));
    }

    /// Current file length in whole pages (what has actually been
    /// persisted, as opposed to [`DiskManager::page_count`], which counts
    /// allocations). This is the WAL baseline at transaction begin.
    pub fn pages_on_disk(&self) -> Result<u64> {
        Ok(self.file.lock().metadata()?.len() / PAGE_SIZE as u64)
    }

    /// File path backing this manager.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Allocates a fresh page id (contents undefined until first write).
    pub fn allocate(&self) -> PageId {
        PageId(self.next_page.fetch_add(1, Ordering::Relaxed))
    }

    /// Number of pages allocated so far.
    pub fn page_count(&self) -> u64 {
        self.next_page.load(Ordering::Relaxed)
    }

    /// Total bytes the file will occupy (page count × page size).
    pub fn size_bytes(&self) -> u64 {
        self.page_count() * PAGE_SIZE as u64
    }

    /// `(reads, writes)` page-I/O counters since creation.
    pub fn io_counts(&self) -> (u64, u64) {
        (
            self.reads.load(Ordering::Relaxed),
            self.writes.load(Ordering::Relaxed),
        )
    }

    /// Reads and verifies a page.
    pub fn read_page(&self, id: PageId) -> Result<Page> {
        assert_unlocked("read_page");
        if id.0 >= self.page_count() {
            return Err(StorageError::PageOutOfRange(id));
        }
        let page = Page::from_raw(self.read_raw(id)?);
        self.reads.fetch_add(1, Ordering::Relaxed);
        if !page.verify_for(id) {
            return Err(StorageError::Corrupt(id));
        }
        Ok(page)
    }

    /// Reads a raw page image without checksum verification (WAL
    /// before-images must capture the bytes exactly as they are, even if
    /// torn). Does not bump the read counter.
    pub fn read_raw(&self, id: PageId) -> Result<Box<[u8; PAGE_SIZE]>> {
        assert_unlocked("read_raw");
        let mut buf = vec![0u8; PAGE_SIZE].into_boxed_slice();
        {
            let mut f = self.file.lock();
            f.seek(SeekFrom::Start(id.offset()))?;
            f.read_exact(&mut buf)?;
        }
        Ok(buf.try_into().unwrap())
    }

    /// Logs the before-image of `id` to the attached WAL if the open
    /// transaction still needs it. Called by the buffer pool ahead of a
    /// batch flush so one [`Wal::sync`] barrier covers every image (group
    /// fsync); [`DiskManager::write_page`] also calls it, which makes
    /// dirty-page *eviction* safe — an evicted page's image is logged
    /// before the frame is dropped.
    pub fn prelog_for_wal(&self, id: PageId) -> Result<()> {
        let hook = self.wal.lock().clone();
        if let Some((wal, tag)) = hook {
            if wal.needs_image(tag, id.0) {
                let raw = self.read_raw(id)?;
                wal.log_image(tag, id.0, &raw)?;
            }
        }
        Ok(())
    }

    /// Seals and writes a page. With a WAL attached and a transaction
    /// open, the page's before-image is made durable first.
    pub fn write_page(&self, id: PageId, page: &mut Page) -> Result<()> {
        assert_unlocked("write_page");
        if id.0 >= self.page_count() {
            return Err(StorageError::PageOutOfRange(id));
        }
        self.prelog_for_wal(id)?;
        if let Some((wal, _)) = &*self.wal.lock() {
            // Write-ahead barrier: no data page is overwritten until the
            // images logged so far are on disk. A no-op when nothing new
            // was appended, so batch flushes pay one fsync.
            wal.sync()?;
        }
        crate::fault_check("disk.write_page")?;
        page.seal_for(id);
        {
            let mut f = self.file.lock();
            f.seek(SeekFrom::Start(id.offset()))?;
            f.write_all(page.raw())?;
        }
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Flushes OS buffers to durable storage.
    pub fn sync(&self) -> Result<()> {
        crate::fault_check("disk.sync")?;
        self.file.lock().sync_all()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp() -> (tempfile::TempDir, PathBuf) {
        let d = tempfile::tempdir().unwrap();
        let p = d.path().join("store.db");
        (d, p)
    }

    #[test]
    fn allocate_write_read_roundtrip() {
        let (_d, p) = tmp();
        let dm = DiskManager::create(&p).unwrap();
        let id = dm.allocate();
        let mut page = Page::zeroed();
        page.payload_mut()[..4].copy_from_slice(b"TALE");
        dm.write_page(id, &mut page).unwrap();
        let back = dm.read_page(id).unwrap();
        assert_eq!(&back.payload()[..4], b"TALE");
    }

    #[test]
    fn out_of_range_rejected() {
        let (_d, p) = tmp();
        let dm = DiskManager::create(&p).unwrap();
        assert!(matches!(
            dm.read_page(PageId(0)),
            Err(StorageError::PageOutOfRange(_))
        ));
        let mut pg = Page::zeroed();
        assert!(dm.write_page(PageId(3), &mut pg).is_err());
    }

    #[test]
    fn corruption_surfaces_as_error() {
        let (_d, p) = tmp();
        let dm = DiskManager::create(&p).unwrap();
        let id = dm.allocate();
        let mut page = Page::zeroed();
        page.payload_mut()[0] = 42;
        dm.write_page(id, &mut page).unwrap();
        drop(dm);
        // flip a byte on disk
        let mut bytes = std::fs::read(&p).unwrap();
        bytes[crate::page::HEADER_LEN + 10] ^= 0xFF;
        std::fs::write(&p, &bytes).unwrap();
        let dm = DiskManager::open(&p).unwrap();
        assert!(matches!(dm.read_page(id), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn reopen_preserves_page_count() {
        let (_d, p) = tmp();
        {
            let dm = DiskManager::create(&p).unwrap();
            for _ in 0..5 {
                let id = dm.allocate();
                dm.write_page(id, &mut Page::zeroed()).unwrap();
            }
            dm.sync().unwrap();
        }
        let dm = DiskManager::open(&p).unwrap();
        assert_eq!(dm.page_count(), 5);
        assert_eq!(dm.size_bytes(), 5 * PAGE_SIZE as u64);
        // new allocations continue past existing pages
        assert_eq!(dm.allocate(), PageId(5));
    }

    #[test]
    fn io_counters_track() {
        let (_d, p) = tmp();
        let dm = DiskManager::create(&p).unwrap();
        let id = dm.allocate();
        dm.write_page(id, &mut Page::zeroed()).unwrap();
        dm.read_page(id).unwrap();
        dm.read_page(id).unwrap();
        assert_eq!(dm.io_counts(), (2, 1));
    }
}
